//! A minimal JSON reader/writer: just enough to escape strings on the way
//! out and to parse + validate the traces this crate emits (the workspace
//! builds fully offline, so no serde).
//!
//! Objects preserve key order (`Vec<(String, Value)>`), which the golden
//! tests use to assert stable field ordering.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, with key order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(vs) => Some(vs),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(kvs) => Some(kvs),
            _ => None,
        }
    }
}

/// A parse failure: message plus byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, s: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{s}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut kvs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(kvs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            kvs.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(kvs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut vs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(vs));
        }
        loop {
            self.skip_ws();
            vs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(vs));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our traces;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":null,\"d\":true},\"e\":\"x\\ny\"}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn preserves_key_order() {
        let v = parse("{\"z\":1,\"a\":2}").unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123abc").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}";
        let v = parse(&escape(s)).unwrap();
        assert_eq!(v.as_str(), Some(s));
    }
}
