//! A minimal JSON reader/writer: just enough to escape strings on the way
//! out and to parse + validate the traces this crate emits (the workspace
//! builds fully offline, so no serde).
//!
//! Objects preserve key order (`Vec<(String, Value)>`), which the golden
//! tests use to assert stable field ordering.
//!
//! For producing JSON there are the incremental single-line builders
//! [`Obj`] and [`Arr`]: every serialized response, access-log record, and
//! snapshot in the workspace goes through this one escaping path instead
//! of hand-rolled `format!` strings.

use std::fmt;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, with key order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(vs) => Some(vs),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(kvs) => Some(kvs),
            _ => None,
        }
    }
}

/// A parse failure: message plus byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An incremental single-line JSON object builder. Keys are emitted in
/// call order; values are escaped through [`escape`]. Consume with
/// [`Obj::finish`].
///
/// ```
/// use dhpf_obs::json::Obj;
/// let line = Obj::new().str("id", "r1").bool("ok", true).u64("n", 3).finish();
/// assert_eq!(line, "{\"id\":\"r1\",\"ok\":true,\"n\":3}");
/// ```
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// An empty object builder.
    pub fn new() -> Self {
        Obj::default()
    }

    fn key(&mut self, k: &str) {
        self.buf.push(if self.buf.is_empty() { '{' } else { ',' });
        self.buf.push_str(&escape(k));
        self.buf.push(':');
    }

    /// Adds a string field (escaped).
    #[must_use]
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(&escape(v));
        self
    }

    /// Adds a string field, or `null` when `v` is `None`.
    #[must_use]
    pub fn opt_str(mut self, k: &str, v: Option<&str>) -> Self {
        self.key(k);
        match v {
            Some(s) => self.buf.push_str(&escape(s)),
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a signed integer field.
    #[must_use]
    pub fn i64(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field with `decimals` digits after the point.
    #[must_use]
    pub fn f64(mut self, k: &str, v: f64, decimals: usize) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v:.decimals$}");
        self
    }

    /// Adds a field whose value is already-serialized JSON (a nested
    /// object, array, or literal). The caller guarantees `json` is valid.
    #[must_use]
    pub fn raw(mut self, k: &str, json: &str) -> Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Adds a nested object field.
    #[must_use]
    pub fn obj(self, k: &str, v: Obj) -> Self {
        let inner = v.finish();
        self.raw(k, &inner)
    }

    /// Adds a nested array field.
    #[must_use]
    pub fn arr(self, k: &str, v: Arr) -> Self {
        let inner = v.finish();
        self.raw(k, &inner)
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        if self.buf.is_empty() {
            return "{}".to_string();
        }
        self.buf.push('}');
        self.buf
    }
}

/// An incremental single-line JSON array builder, the [`Obj`] counterpart.
#[derive(Debug, Default)]
pub struct Arr {
    buf: String,
}

impl Arr {
    /// An empty array builder.
    pub fn new() -> Self {
        Arr::default()
    }

    fn sep(&mut self) {
        self.buf.push(if self.buf.is_empty() { '[' } else { ',' });
    }

    /// Appends a string element (escaped).
    #[must_use]
    pub fn str(mut self, v: &str) -> Self {
        self.sep();
        self.buf.push_str(&escape(v));
        self
    }

    /// Appends an element that is already-serialized JSON.
    #[must_use]
    pub fn raw(mut self, json: &str) -> Self {
        self.sep();
        self.buf.push_str(json);
        self
    }

    /// Appends a nested object element.
    #[must_use]
    pub fn obj(self, v: Obj) -> Self {
        let inner = v.finish();
        self.raw(&inner)
    }

    /// Closes the array and returns the JSON text.
    pub fn finish(mut self) -> String {
        if self.buf.is_empty() {
            return "[]".to_string();
        }
        self.buf.push(']');
        self.buf
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, s: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{s}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut kvs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(kvs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            kvs.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(kvs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut vs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(vs));
        }
        loop {
            self.skip_ws();
            vs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(vs));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our traces;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":null,\"d\":true},\"e\":\"x\\ny\"}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn preserves_key_order() {
        let v = parse("{\"z\":1,\"a\":2}").unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123abc").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn obj_and_arr_builders_produce_parseable_json() {
        let line = Obj::new()
            .str("id", "a\"b")
            .bool("ok", true)
            .u64("count", 7)
            .i64("delta", -2)
            .f64("rate", 0.12345, 3)
            .opt_str("err", None)
            .arr(
                "xs",
                Arr::new().str("x").raw("1").obj(Obj::new().u64("y", 2)),
            )
            .obj("nested", Obj::new().bool("z", false))
            .finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("a\"b"));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("count").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("delta").unwrap().as_f64(), Some(-2.0));
        assert_eq!(v.get("rate").unwrap().as_f64(), Some(0.123));
        assert_eq!(v.get("err"), Some(&Value::Null));
        assert_eq!(v.get("xs").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("nested").unwrap().get("z"), Some(&Value::Bool(false)));
        assert!(!line.contains('\n'), "builders must emit a single line");
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(Arr::new().finish(), "[]");
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}";
        let v = parse(&escape(s)).unwrap();
        assert_eq!(v.as_str(), Some(s));
    }
}
