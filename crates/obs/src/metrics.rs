//! A zero-dependency, fleet-grade metrics layer: a [`Registry`] of named
//! counters, gauges, and log-linear latency histograms, built for a
//! serving tier with many concurrent writers.
//!
//! Design:
//!
//! - **Lock-free hot path.** Every metric handle ([`Counter`], [`Gauge`],
//!   [`Histogram`]) is an `Arc` around atomics; recording an observation
//!   is one or three relaxed `fetch_add`s and never takes a lock. The
//!   registry's mutex guards only registration (get-or-create of a
//!   series) and snapshotting, both off the request path — handlers
//!   resolve their handles once at startup and clone them.
//! - **Log-linear buckets.** A [`Histogram`] covers `0..2^40` with
//!   [`HIST_SUB`] sub-buckets per power of two (values below [`HIST_SUB`]
//!   get exact unit-width buckets), so the bucket containing any sample
//!   is at most `1/HIST_SUB` (12.5%) wide relative to its lower bound.
//!   Quantile extraction ([`HistSnapshot::quantile`]) walks the exact
//!   per-bucket counts with nearest-rank semantics: the returned bucket
//!   provably brackets the exact sorted-sample quantile.
//! - **Snapshot-on-read.** [`Registry::snapshot`] materializes every
//!   series into a [`MetricsSnapshot`] of plain values, sorted by name
//!   then labels, so exporters are deterministic and never observe a
//!   half-updated structure. A histogram snapshot derives its `count`
//!   from the bucket sums it just read, so cumulative bucket counts and
//!   the total always reconcile even under concurrent writers.
//!
//! ```
//! use dhpf_obs::metrics::Registry;
//!
//! let reg = Registry::new();
//! let reqs = reg.counter("requests_total", &[("op", "compile")]);
//! let lat = reg.histogram("duration_us", &[("kind", "warm")]);
//! reqs.inc();
//! lat.observe(1500);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters[0].value, 1);
//! let (lo, hi) = snap.histograms[0].1.quantile_bounds(0.5);
//! assert!(lo <= 1500 && 1500 <= hi);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-buckets per power of two in a [`Histogram`] (so the relative
/// bucket width is at most `1/HIST_SUB` = 12.5%).
pub const HIST_SUB: u64 = 8;
const SUB_BITS: u32 = 3;
/// Largest representable most-significant-bit position; values at or
/// above `2^(HIST_MAX_MSB + 1)` saturate into the last bucket.
const HIST_MAX_MSB: u32 = 39;
/// Total bucket slots of one histogram (the last slot is the dedicated
/// overflow bucket for values at or above `2^(HIST_MAX_MSB + 1)`).
pub const HIST_SLOTS: usize =
    HIST_SUB as usize + (HIST_MAX_MSB - SUB_BITS + 1) as usize * HIST_SUB as usize + 1;

/// The bucket slot of value `v`.
fn bucket_index(v: u64) -> usize {
    if v < HIST_SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    if msb > HIST_MAX_MSB {
        return HIST_SLOTS - 1;
    }
    let sub = ((v >> (msb - SUB_BITS)) - HIST_SUB) as usize;
    HIST_SUB as usize + (msb - SUB_BITS) as usize * HIST_SUB as usize + sub
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i < HIST_SUB as usize {
        i as u64
    } else if i == HIST_SLOTS - 1 {
        1u64 << (HIST_MAX_MSB + 1)
    } else {
        let octave = (i - HIST_SUB as usize) / HIST_SUB as usize;
        let sub = ((i - HIST_SUB as usize) % HIST_SUB as usize) as u64;
        (HIST_SUB + sub) << octave
    }
}

/// Inclusive upper bound of bucket `i` (the last bucket is unbounded).
fn bucket_hi(i: usize) -> u64 {
    if i + 1 >= HIST_SLOTS {
        u64::MAX
    } else {
        bucket_lo(i + 1) - 1
    }
}

/// A monotonically increasing counter. Clones share one cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (occupancy, capacity, …).
/// Clones share one cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCore {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

/// A concurrent log-linear histogram of non-negative integer samples
/// (latencies in microseconds, sizes, …). Clones share one set of
/// buckets; recording is lock-free.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistCore {
            buckets: (0..HIST_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A fresh, empty histogram (not yet in any registry).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Snapshots the bucket counts into plain values. The snapshot's
    /// `count` is derived from the buckets read here, so it always equals
    /// the final cumulative bucket count even mid-write.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                buckets.push(HistBucket {
                    lo: bucket_lo(i),
                    hi: bucket_hi(i),
                    cum,
                });
            }
        }
        HistSnapshot {
            count: cum,
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// One occupied bucket of a [`HistSnapshot`]: its value range (inclusive
/// on both ends) and the cumulative sample count through it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistBucket {
    /// Smallest value the bucket holds.
    pub lo: u64,
    /// Largest value the bucket holds (`u64::MAX` for the overflow
    /// bucket).
    pub hi: u64,
    /// Samples at or below `hi` (cumulative, non-decreasing).
    pub cum: u64,
}

/// An immutable snapshot of one histogram: sparse occupied buckets with
/// cumulative counts, plus the total count and sum.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total samples (equals the last bucket's `cum`).
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Occupied buckets in increasing value order.
    pub buckets: Vec<HistBucket>,
}

impl HistSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket bounds `(lo, hi)` bracketing the `q`-quantile
    /// (nearest-rank: the value of the `ceil(q·count)`-th smallest
    /// sample lies in `lo..=hi` exactly). Returns `(0, 0)` when empty.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        for b in &self.buckets {
            if b.cum >= rank {
                return (b.lo, b.hi);
            }
        }
        let last = self.buckets.last().expect("count > 0 implies a bucket");
        (last.lo, last.hi)
    }

    /// The `q`-quantile as a single number: the upper edge of the bucket
    /// containing the nearest-rank sample (a guaranteed overestimate by
    /// at most the 12.5% bucket width).
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).1
    }
}

/// The identity of one series: metric name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesId {
    /// Metric name (`snake_case`, e.g. `dhpf_serve_requests_total`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl SeriesId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesId {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders `name{k="v",…}` (bare `name` when unlabeled), the exact
    /// spelling the Prometheus exposition and the JSON snapshot use.
    pub fn render(&self) -> String {
        let mut out = self.name.clone();
        if !self.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(v);
                out.push('"');
            }
            out.push('}');
        }
        out
    }
}

/// One sampled scalar series in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample<T> {
    /// The series identity.
    pub id: SeriesId,
    /// The sampled value.
    pub value: T,
}

/// A point-in-time view of a whole [`Registry`], sorted by series id.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<Sample<u64>>,
    /// All gauges.
    pub gauges: Vec<Sample<i64>>,
    /// All histograms.
    pub histograms: Vec<(SeriesId, HistSnapshot)>,
}

impl MetricsSnapshot {
    /// The value of the counter rendered as `key` (see
    /// [`SeriesId::render`]), if present.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|s| s.id.render() == key)
            .map(|s| s.value)
    }

    /// The histogram rendered as `key`, if present.
    pub fn histogram(&self, key: &str) -> Option<&HistSnapshot> {
        self.histograms
            .iter()
            .find(|(id, _)| id.render() == key)
            .map(|(_, h)| h)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<SeriesId, Counter>,
    gauges: BTreeMap<SeriesId, Gauge>,
    histograms: BTreeMap<SeriesId, Histogram>,
}

/// A registry of named metric series. Cheap to share (`Arc` it);
/// registration and snapshotting lock, recording through the returned
/// handles does not.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter `name{labels}`, created at zero on first request.
    /// Subsequent calls with the same identity return a handle to the
    /// same cell regardless of label order.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.inner
            .lock()
            .unwrap()
            .counters
            .entry(SeriesId::new(name, labels))
            .or_default()
            .clone()
    }

    /// The gauge `name{labels}`, created at zero on first request.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.inner
            .lock()
            .unwrap()
            .gauges
            .entry(SeriesId::new(name, labels))
            .or_default()
            .clone()
    }

    /// The histogram `name{labels}`, created empty on first request.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(SeriesId::new(name, labels))
            .or_default()
            .clone()
    }

    /// Snapshots every series, sorted by name then labels.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(id, c)| Sample {
                    id: id.clone(),
                    value: c.get(),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(id, g)| Sample {
                    id: id.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(id, h)| (id.clone(), h.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_agree() {
        for v in (0..4096u64).chain([1 << 20, (1 << 40) - 1, 1 << 40, u64::MAX]) {
            let i = bucket_index(v);
            assert!(bucket_lo(i) <= v || i == HIST_SLOTS - 1, "v={v} i={i}");
            assert!(v <= bucket_hi(i), "v={v} i={i}");
            if i + 1 < HIST_SLOTS {
                assert_eq!(bucket_hi(i) + 1, bucket_lo(i + 1));
            }
        }
        // Relative bucket width is bounded by 1/HIST_SUB above HIST_SUB.
        for i in HIST_SUB as usize..HIST_SLOTS - 1 {
            let (lo, hi) = (bucket_lo(i), bucket_hi(i));
            assert!((hi - lo + 1) * HIST_SUB <= lo, "i={i} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn registry_returns_shared_handles() {
        let reg = Registry::new();
        let a = reg.counter("x_total", &[("op", "c")]);
        let b = reg.counter("x_total", &[("op", "c")]);
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counter("x_total{op=\"c\"}"), Some(3));
        // Label order does not split the series.
        let c = reg.counter("y_total", &[("a", "1"), ("b", "2")]);
        let d = reg.counter("y_total", &[("b", "2"), ("a", "1")]);
        c.inc();
        d.inc();
        assert_eq!(reg.snapshot().counter("y_total{a=\"1\",b=\"2\"}"), Some(2));
    }

    #[test]
    fn gauge_sets_and_adjusts() {
        let reg = Registry::new();
        let g = reg.gauge("occupancy", &[]);
        g.set(10);
        g.add(-3);
        assert_eq!(reg.snapshot().gauges[0].value, 7);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        let samples = [3u64, 3, 5, 90, 90, 91, 1000, 5000, 100_000];
        for &s in &samples {
            h.observe(s);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, samples.len() as u64);
        assert_eq!(snap.sum, samples.iter().sum::<u64>());
        // Median (5th of 9 sorted samples) is 90.
        let (lo, hi) = snap.quantile_bounds(0.5);
        assert!(lo <= 90 && 90 <= hi, "median bracket ({lo},{hi})");
        // p99 rounds up to the maximum.
        let (lo, hi) = snap.quantile_bounds(0.99);
        assert!(lo <= 100_000 && 100_000 <= hi, "p99 bracket ({lo},{hi})");
        assert!(snap.quantile(0.5) <= snap.quantile(0.9));
        assert!(snap.quantile(0.9) <= snap.quantile(0.99));
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.quantile_bounds(0.5), (0, 0));
        assert_eq!(snap.quantile(0.99), 0);
        assert_eq!(snap.mean(), 0.0);
    }
}
