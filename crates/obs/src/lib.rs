//! # dhpf-obs — structured tracing and metrics for the dHPF pipeline
//!
//! A zero-dependency observability layer: a hierarchical **span tree**
//! (compile → phase → set-op) with per-span **operation counters**
//! (satisfiability, FME projection, negation, gist, simplify — counts,
//! durations, and constraint-size histograms) and free-form integer
//! **counters** (simulator messages, bytes, transfer kinds).
//!
//! The entry point is a [`Collector`]: an `Arc`-shared handle that is cheap
//! to clone and thread through the pipeline next to the Omega `Context`.
//! Spans nest via [`Collector::begin`]/[`Collector::end`] (or the RAII
//! [`Collector::guard`]); everything recorded while a span is open — child
//! spans, [`Collector::record_op`] calls, [`Collector::add_counter`] —
//! is attributed to it. [`Collector::trace`] snapshots the finished tree
//! as a [`Trace`], which the [`export`] module renders as a human-readable
//! tree, JSON lines, single-line span-tree JSON (for wire responses), or
//! Chrome `trace_event` JSON (loadable in `chrome://tracing` / Perfetto).
//!
//! Alongside the per-compilation span machinery, the [`metrics`] module
//! provides the *fleet-level* substrate: a lock-free [`metrics::Registry`]
//! of counters, gauges, and log-linear latency histograms with quantile
//! extraction, rendered by [`export::render_metrics_text`] in the
//! Prometheus text exposition format.
//!
//! Design constraints, per the reproduction's Table-1 requirements:
//!
//! - **Observation equivalence**: recording never feeds back into any
//!   computation; a compile with a collector attached must produce output
//!   bit-identical to one without.
//! - **Disabled-path cost**: producers gate on `Option<&Collector>` (or an
//!   atomic flag), so a pipeline without tracing pays at most one relaxed
//!   atomic load per candidate event.
//! - **Self-time vs cumulative time**: a span's duration includes its
//!   children (like the paper's Table 1, where indented rows refine their
//!   parents); [`Trace::self_ns`] subtracts the children explicitly so no
//!   exporter double-counts.
//!
//! ```
//! use dhpf_obs::Collector;
//! use std::time::Duration;
//!
//! let c = Collector::new();
//! let compile = c.begin("compile", "compile");
//! {
//!     let _phase = c.guard("communication generation", "phase");
//!     c.record_op("satisfiability", Duration::from_micros(3), 4);
//!     c.add_counter("comm events", 1);
//! }
//! c.end(compile);
//! let trace = c.trace();
//! assert_eq!(trace.nodes.len(), 2);
//! assert!(trace.self_ns(0) <= trace.nodes[0].dur_ns);
//! println!("{}", dhpf_obs::export::render_tree(&trace));
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod json;
pub mod metrics;

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

/// Number of buckets in a [`Hist`] size histogram.
pub const HIST_BUCKETS: usize = 8;

/// Upper bounds (inclusive) of the first `HIST_BUCKETS - 1` histogram
/// buckets; the last bucket is unbounded.
const HIST_BOUNDS: [u64; HIST_BUCKETS - 1] = [1, 2, 4, 8, 16, 32, 64];

/// A small power-of-two histogram of operand sizes (constraint counts of
/// the conjuncts fed to each Omega operation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Hist {
    /// Bucket counts; bucket `i` holds values `<=` [`Hist::labels`]`[i]`.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Hist {
    /// Records one observation of size `v`.
    pub fn record(&mut self, v: u64) {
        let i = HIST_BOUNDS
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(HIST_BUCKETS - 1);
        self.buckets[i] += 1;
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Accumulates another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Human-readable bucket labels, aligned with `buckets`.
    pub fn labels() -> [&'static str; HIST_BUCKETS] {
        ["<=1", "<=2", "<=4", "<=8", "<=16", "<=32", "<=64", ">64"]
    }
}

/// Aggregated statistics for one operation kind within one span.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpStat {
    /// Number of calls attributed to the span.
    pub calls: u64,
    /// Total wall-clock nanoseconds across those calls (includes time in
    /// nested cached sub-operations; see the module docs).
    pub total_ns: u64,
    /// Histogram of operand sizes (constraint counts).
    pub sizes: Hist,
}

impl OpStat {
    /// Accumulates another stat into this one.
    pub fn merge(&mut self, other: &OpStat) {
        self.calls += other.calls;
        self.total_ns += other.total_ns;
        self.sizes.merge(&other.sizes);
    }
}

/// One node of the span tree.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span name (phase name, benchmark label, ...).
    pub name: String,
    /// Category: `"compile"`, `"phase"`, `"bench"`, `"sim"`, ...
    pub cat: &'static str,
    /// Index of the parent node, or `None` for roots.
    pub parent: Option<usize>,
    /// Start offset from the collector's epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (cumulative: includes children). For spans
    /// still open when the trace was snapshotted, the time elapsed so far.
    pub dur_ns: u64,
    /// Child node indices, in start order.
    pub children: Vec<usize>,
    /// Per-operation statistics attributed to this span.
    pub ops: BTreeMap<&'static str, OpStat>,
    /// Free-form integer counters attributed to this span.
    pub counters: BTreeMap<String, i64>,
    /// True if the span was still open when snapshotted.
    pub open: bool,
    /// Dense tag of the thread that opened the span (0 = first thread seen
    /// by this collector, typically the main thread). Spans nest within
    /// their own thread's stack; the parallel driver stitches worker spans
    /// under the compile tree with [`Collector::begin_child_of`].
    pub thread: u64,
}

/// A snapshot of a collector's span tree.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All spans, in creation order; children always follow their parent.
    pub nodes: Vec<SpanNode>,
}

impl Trace {
    /// Indices of the root spans.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].parent.is_none())
            .collect()
    }

    /// Self time of a span: its duration minus its children's durations
    /// (saturating, so clock jitter can never produce underflow).
    pub fn self_ns(&self, i: usize) -> u64 {
        let n = &self.nodes[i];
        let children: u64 = n.children.iter().map(|&c| self.nodes[c].dur_ns).sum();
        n.dur_ns.saturating_sub(children)
    }

    /// Depth of a span (roots are depth 0).
    pub fn depth(&self, i: usize) -> usize {
        let mut d = 0;
        let mut cur = self.nodes[i].parent;
        while let Some(p) = cur {
            d += 1;
            cur = self.nodes[p].parent;
        }
        d
    }

    /// The first span with the given name, if any.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Operation statistics aggregated over the whole trace.
    pub fn total_ops(&self) -> BTreeMap<&'static str, OpStat> {
        let mut out: BTreeMap<&'static str, OpStat> = BTreeMap::new();
        for n in &self.nodes {
            for (&op, stat) in &n.ops {
                out.entry(op).or_default().merge(stat);
            }
        }
        out
    }

    /// Counters aggregated over the whole trace.
    pub fn total_counters(&self) -> BTreeMap<String, i64> {
        let mut out: BTreeMap<String, i64> = BTreeMap::new();
        for n in &self.nodes {
            for (k, v) in &n.counters {
                *out.entry(k.clone()).or_default() += v;
            }
        }
        out
    }
}

/// Identifier of an open span, returned by [`Collector::begin`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(usize);

#[derive(Default)]
struct State {
    nodes: Vec<SpanNode>,
    /// Per-thread stacks of currently open spans, outermost first. Worker
    /// threads nest their own spans without interleaving with (or
    /// corrupting) the main thread's open phases.
    stacks: HashMap<ThreadId, Vec<usize>>,
    /// Dense per-collector thread tags, in first-seen order.
    threads: HashMap<ThreadId, u64>,
}

impl State {
    /// The dense tag of `tid`, assigning the next one on first sight.
    fn thread_tag(&mut self, tid: ThreadId) -> u64 {
        let next = self.threads.len() as u64;
        *self.threads.entry(tid).or_insert(next)
    }

    /// The innermost open span of `tid`'s stack, if any.
    fn top(&self, tid: ThreadId) -> Option<usize> {
        self.stacks.get(&tid).and_then(|s| s.last().copied())
    }
}

struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// A shared handle to one span tree; clone freely (all clones record into
/// the same tree). See the [module documentation](self).
#[derive(Clone)]
pub struct Collector {
    inner: Arc<Inner>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.state.lock().unwrap();
        let open: usize = st.stacks.values().map(Vec::len).sum();
        f.debug_struct("Collector")
            .field("spans", &st.nodes.len())
            .field("open", &open)
            .finish()
    }
}

impl Collector {
    /// A fresh, empty collector; its epoch (time zero) is now.
    pub fn new() -> Self {
        Collector {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            }),
        }
    }

    fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// True if `self` and `other` record into one tree.
    pub fn same_as(&self, other: &Collector) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Opens a span as a child of the calling thread's innermost open span
    /// (or as a new root). Close it with [`Collector::end`]. Each thread
    /// keeps its own open-span stack, so concurrent producers nest
    /// independently; a worker's first span is a thread-local root unless
    /// opened with [`Collector::begin_child_of`].
    pub fn begin(&self, name: &str, cat: &'static str) -> SpanId {
        self.begin_impl(name, cat, None)
    }

    /// Opens a span under an explicit `parent` instead of the calling
    /// thread's innermost open span. The parallel driver uses this to
    /// stitch worker-thread span trees under the main thread's open
    /// `"compile"`/phase spans so traced parallel compilations still form
    /// one tree. The span goes onto the *calling* thread's stack: spans
    /// the worker opens next nest under it as usual.
    pub fn begin_child_of(&self, parent: SpanId, name: &str, cat: &'static str) -> SpanId {
        self.begin_impl(name, cat, Some(parent))
    }

    fn begin_impl(&self, name: &str, cat: &'static str, parent_override: Option<SpanId>) -> SpanId {
        let now = self.now_ns();
        let tid = std::thread::current().id();
        let mut st = self.inner.state.lock().unwrap();
        let thread = st.thread_tag(tid);
        let idx = st.nodes.len();
        let parent = match parent_override {
            Some(p) => st.nodes.get(p.0).map(|_| p.0),
            None => st.top(tid),
        };
        st.nodes.push(SpanNode {
            name: name.to_string(),
            cat,
            parent,
            start_ns: now,
            dur_ns: 0,
            children: Vec::new(),
            ops: BTreeMap::new(),
            counters: BTreeMap::new(),
            open: true,
            thread,
        });
        if let Some(p) = parent {
            st.nodes[p].children.push(idx);
        }
        st.stacks.entry(tid).or_default().push(idx);
        SpanId(idx)
    }

    /// Closes a span opened with [`Collector::begin`]. Any spans opened
    /// after it *on the same thread* that are still open are closed too
    /// (defensive: a missing `end` on an inner span cannot corrupt the
    /// tree). A span may be closed from a different thread than the one
    /// that opened it (e.g. a guard moved into a worker).
    pub fn end(&self, id: SpanId) {
        let now = self.now_ns();
        let tid = std::thread::current().id();
        let mut st = self.inner.state.lock().unwrap();
        // The overwhelmingly common case: the span is on the caller's own
        // stack. Otherwise scan the other threads' stacks (guard moved).
        let owner = if st.stacks.get(&tid).is_some_and(|s| s.contains(&id.0)) {
            tid
        } else {
            match st.stacks.iter().find(|(_, s)| s.contains(&id.0)) {
                Some((&t, _)) => t,
                None => return, // already closed (or foreign id): ignore
            }
        };
        let closed = {
            let stack = st.stacks.get_mut(&owner).expect("owner stack exists");
            let pos = stack
                .iter()
                .rposition(|&i| i == id.0)
                .expect("span on owner stack");
            stack.split_off(pos)
        };
        for i in closed {
            let n = &mut st.nodes[i];
            n.dur_ns = now.saturating_sub(n.start_ns);
            n.open = false;
        }
    }

    /// Opens a span and returns an RAII guard that closes it on drop.
    pub fn guard(&self, name: &str, cat: &'static str) -> SpanGuard {
        SpanGuard {
            collector: self.clone(),
            id: self.begin(name, cat),
        }
    }

    /// Runs `f` inside a span.
    pub fn span<T>(&self, name: &str, cat: &'static str, f: impl FnOnce() -> T) -> T {
        let id = self.begin(name, cat);
        let out = f();
        self.end(id);
        out
    }

    /// Records an already-measured interval as a *closed* child of the
    /// calling thread's innermost open span, ending now. Used by producers
    /// that time work themselves (e.g. `PhaseTimers::add`).
    pub fn record_span(&self, name: &str, cat: &'static str, dur: Duration) -> SpanId {
        let now = self.now_ns();
        let dur_ns = dur.as_nanos() as u64;
        let tid = std::thread::current().id();
        let mut st = self.inner.state.lock().unwrap();
        let thread = st.thread_tag(tid);
        let idx = st.nodes.len();
        let parent = st.top(tid);
        st.nodes.push(SpanNode {
            name: name.to_string(),
            cat,
            parent,
            start_ns: now.saturating_sub(dur_ns),
            dur_ns,
            children: Vec::new(),
            ops: BTreeMap::new(),
            counters: BTreeMap::new(),
            open: false,
            thread,
        });
        if let Some(p) = parent {
            st.nodes[p].children.push(idx);
        }
        SpanId(idx)
    }

    /// Records one call of operation `op` (duration `dur`, operand size
    /// `size`), attributed to the innermost open span. With no open span
    /// the call is attributed to an implicit `"(unattributed)"` root.
    pub fn record_op(&self, op: &'static str, dur: Duration, size: u64) {
        let tid = std::thread::current().id();
        let mut st = self.inner.state.lock().unwrap();
        let idx = Self::attribution_target(&mut st, tid);
        let stat = st.nodes[idx].ops.entry(op).or_default();
        stat.calls += 1;
        stat.total_ns += dur.as_nanos() as u64;
        stat.sizes.record(size);
    }

    /// Adds `delta` to the named counter of the innermost open span (with
    /// the same `"(unattributed)"` fallback as [`Collector::record_op`]).
    pub fn add_counter(&self, name: &str, delta: i64) {
        let tid = std::thread::current().id();
        let mut st = self.inner.state.lock().unwrap();
        let idx = Self::attribution_target(&mut st, tid);
        *st.nodes[idx].counters.entry(name.to_string()).or_default() += delta;
    }

    /// Adds `delta` to a counter of a specific (possibly closed) span.
    pub fn counter_on(&self, id: SpanId, name: &str, delta: i64) {
        let mut st = self.inner.state.lock().unwrap();
        if let Some(n) = st.nodes.get_mut(id.0) {
            *n.counters.entry(name.to_string()).or_default() += delta;
        }
    }

    fn attribution_target(st: &mut State, tid: ThreadId) -> usize {
        if let Some(top) = st.top(tid) {
            return top;
        }
        // No open span on this thread: attribute to a shared implicit root.
        if let Some(i) = st
            .nodes
            .iter()
            .position(|n| n.parent.is_none() && n.name == "(unattributed)")
        {
            return i;
        }
        let thread = st.thread_tag(tid);
        let idx = st.nodes.len();
        st.nodes.push(SpanNode {
            name: "(unattributed)".to_string(),
            cat: "misc",
            parent: None,
            start_ns: 0,
            dur_ns: 0,
            children: Vec::new(),
            ops: BTreeMap::new(),
            counters: BTreeMap::new(),
            open: false,
            thread,
        });
        idx
    }

    /// Snapshots the tree. Spans still open report the time elapsed so far
    /// as their duration (and `open = true`).
    pub fn trace(&self) -> Trace {
        let now = self.now_ns();
        let st = self.inner.state.lock().unwrap();
        let mut nodes = st.nodes.clone();
        for n in &mut nodes {
            if n.open {
                n.dur_ns = now.saturating_sub(n.start_ns);
            }
        }
        Trace { nodes }
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().nodes.len()
    }

    /// True if no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// RAII guard returned by [`Collector::guard`]; closes its span on drop.
pub struct SpanGuard {
    collector: Collector,
    id: SpanId,
}

impl SpanGuard {
    /// The guarded span's id.
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.collector.end(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close() {
        let c = Collector::new();
        let a = c.begin("a", "phase");
        let b = c.begin("b", "phase");
        c.end(b);
        c.end(a);
        let t = c.trace();
        assert_eq!(t.roots(), vec![0]);
        assert_eq!(t.nodes[1].parent, Some(0));
        assert_eq!(t.nodes[0].children, vec![1]);
        assert!(t.nodes[0].dur_ns >= t.nodes[1].dur_ns);
        assert!(!t.nodes[0].open && !t.nodes[1].open);
    }

    #[test]
    fn end_closes_dangling_children() {
        let c = Collector::new();
        let a = c.begin("a", "phase");
        let _leaked = c.begin("b", "phase");
        c.end(a); // must also close b
        let t = c.trace();
        assert!(t.nodes.iter().all(|n| !n.open));
    }

    #[test]
    fn ops_attach_to_innermost_span() {
        let c = Collector::new();
        let a = c.begin("a", "phase");
        c.record_op("satisfiability", Duration::from_micros(1), 3);
        let b = c.begin("b", "phase");
        c.record_op("satisfiability", Duration::from_micros(1), 70);
        c.end(b);
        c.end(a);
        let t = c.trace();
        assert_eq!(t.nodes[0].ops["satisfiability"].calls, 1);
        assert_eq!(t.nodes[1].ops["satisfiability"].calls, 1);
        assert_eq!(
            t.nodes[1].ops["satisfiability"].sizes.buckets[HIST_BUCKETS - 1],
            1
        );
        assert_eq!(t.total_ops()["satisfiability"].calls, 2);
    }

    #[test]
    fn orphan_events_get_an_implicit_root() {
        let c = Collector::new();
        c.record_op("gist", Duration::from_nanos(10), 1);
        c.add_counter("messages", 2);
        c.add_counter("messages", 3);
        let t = c.trace();
        let i = t.find("(unattributed)").unwrap();
        assert_eq!(t.nodes[i].ops["gist"].calls, 1);
        assert_eq!(t.nodes[i].counters["messages"], 5);
    }

    #[test]
    fn worker_threads_get_independent_stacks() {
        let c = Collector::new();
        let a = c.begin("main-root", "phase");
        std::thread::scope(|s| {
            s.spawn(|| {
                let w = c.begin("worker-root", "phase");
                c.record_op("gist", Duration::from_nanos(5), 1);
                c.end(w);
            });
        });
        c.end(a);
        let t = c.trace();
        let w = t.find("worker-root").unwrap();
        // A plain begin() on a worker thread is a thread-local root, not a
        // child of whatever the main thread happens to have open.
        assert_eq!(t.nodes[w].parent, None);
        assert_eq!(t.nodes[w].ops["gist"].calls, 1);
        assert_ne!(t.nodes[w].thread, t.nodes[0].thread);
        assert!(t.nodes.iter().all(|n| !n.open));
    }

    #[test]
    fn begin_child_of_stitches_worker_spans() {
        let c = Collector::new();
        let root = c.begin("compile", "compile");
        std::thread::scope(|s| {
            s.spawn(|| {
                let w = c.begin_child_of(root, "nest 0", "phase");
                let inner = c.begin("placement", "phase");
                c.end(inner);
                c.end(w);
            });
        });
        c.end(root);
        let t = c.trace();
        let w = t.find("nest 0").unwrap();
        let inner = t.find("placement").unwrap();
        assert_eq!(t.nodes[w].parent, Some(0));
        assert_eq!(t.nodes[inner].parent, Some(w));
        assert_eq!(t.nodes[w].thread, t.nodes[inner].thread);
        assert_ne!(t.nodes[w].thread, t.nodes[0].thread);
    }

    #[test]
    fn hist_buckets() {
        let mut h = Hist::default();
        for v in [0, 1, 2, 5, 64, 65, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.buckets[0], 2); // 0, 1
        assert_eq!(h.buckets[1], 1); // 2
        assert_eq!(h.buckets[3], 1); // 5
        assert_eq!(h.buckets[6], 1); // 64
        assert_eq!(h.buckets[7], 2); // 65, 1000
    }
}
