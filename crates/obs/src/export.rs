//! Exporters: human-readable tree dump, JSON lines, Chrome `trace_event`
//! JSON, single-line span trees for wire responses, and Prometheus-style
//! metrics exposition — plus schema validators used by `trace_lint` and CI.
//!
//! All emitters build their output by hand with a **fixed field order**, so
//! golden-file tests can compare bytes (after redacting wall-clock values
//! with [`chrome_trace_redacted`]).

use crate::json::{self, Arr, Obj, Value};
use crate::metrics::MetricsSnapshot;
use crate::{OpStat, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{ns} ns")
    }
}

/// Renders the span tree as an indented human-readable listing with
/// cumulative time, self time, per-op counters, and counters.
pub fn render_tree(trace: &Trace) -> String {
    let mut out = String::new();
    fn visit(trace: &Trace, i: usize, depth: usize, out: &mut String) {
        let n = &trace.nodes[i];
        let pad = "  ".repeat(depth);
        let self_ns = trace.self_ns(i);
        let _ = writeln!(
            out,
            "{pad}{name:<w$} {cum:>12}  (self {selft}){open}",
            name = n.name,
            w = 36usize.saturating_sub(pad.len()),
            cum = fmt_ns(n.dur_ns),
            selft = fmt_ns(self_ns),
            open = if n.open { "  [open]" } else { "" },
        );
        for (op, stat) in &n.ops {
            let _ = writeln!(
                out,
                "{pad}  · {op}: {calls} calls, {t}",
                calls = stat.calls,
                t = fmt_ns(stat.total_ns),
            );
        }
        for (k, v) in &n.counters {
            let _ = writeln!(out, "{pad}  · {k} = {v}");
        }
        for &c in &n.children {
            visit(trace, c, depth + 1, out);
        }
    }
    for r in trace.roots() {
        visit(trace, r, 0, &mut out);
    }
    out
}

fn push_op_obj(out: &mut String, stat: &OpStat, redact: bool) {
    let ns = if redact { 0 } else { stat.total_ns };
    let _ = write!(out, "{{\"calls\":{},\"ns\":{},\"hist\":[", stat.calls, ns);
    for (k, b) in stat.sizes.buckets.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(out, "{b}");
    }
    out.push_str("]}");
}

/// Serializes the trace as JSON lines: one object per span, then one per
/// (span, op) pair, then one per (span, counter) pair. Field order is
/// fixed; see the module docs.
pub fn to_json_lines(trace: &Trace) -> String {
    let mut out = String::new();
    for (i, n) in trace.nodes.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"type\":\"span\",\"id\":{i},\"parent\":{parent},\"name\":{name},\"cat\":{cat},\"start_ns\":{start},\"dur_ns\":{dur},\"self_ns\":{selfns}}}",
            parent = n
                .parent
                .map(|p| p.to_string())
                .unwrap_or_else(|| "null".to_string()),
            name = json::escape(&n.name),
            cat = json::escape(n.cat),
            start = n.start_ns,
            dur = n.dur_ns,
            selfns = trace.self_ns(i),
        );
        out.push('\n');
    }
    for (i, n) in trace.nodes.iter().enumerate() {
        for (op, stat) in &n.ops {
            let _ = write!(
                out,
                "{{\"type\":\"op\",\"span\":{i},\"op\":{op},\"stat\":",
                op = json::escape(op),
            );
            push_op_obj(&mut out, stat, false);
            out.push_str("}\n");
        }
        for (k, v) in &n.counters {
            let _ = write!(
                out,
                "{{\"type\":\"counter\",\"span\":{i},\"name\":{k},\"value\":{v}}}",
                k = json::escape(k),
            );
            out.push('\n');
        }
    }
    out
}

/// Serializes the trace in Chrome `trace_event` format (the JSON object
/// form), loadable in `chrome://tracing` and Perfetto. One complete
/// (`"ph":"X"`) event per span, with self time, op stats, and counters in
/// `args`.
pub fn to_chrome_trace(trace: &Trace) -> String {
    chrome_trace_inner(trace, false)
}

/// [`to_chrome_trace`] with every wall-clock-derived value (`ts`, `dur`,
/// `args.self_ns`, per-op `ns`) forced to zero, for byte-stable golden
/// tests. Structure, names, call counts, histograms, and counters are
/// preserved.
pub fn chrome_trace_redacted(trace: &Trace) -> String {
    chrome_trace_inner(trace, true)
}

fn chrome_trace_inner(trace: &Trace, redact: bool) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[\n");
    for (i, n) in trace.nodes.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let (ts, dur, self_ns) = if redact {
            (0.0, 0.0, 0)
        } else {
            (
                n.start_ns as f64 / 1e3,
                n.dur_ns as f64 / 1e3,
                trace.self_ns(i),
            )
        };
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"name\":{name},\"cat\":{cat},\"pid\":1,\"tid\":{tid},\"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{{\"id\":{i},\"parent\":{parent},\"self_ns\":{self_ns}",
            tid = n.thread + 1,
            name = json::escape(&n.name),
            cat = json::escape(n.cat),
            parent = n
                .parent
                .map(|p| p.to_string())
                .unwrap_or_else(|| "null".to_string()),
        );
        if !n.ops.is_empty() {
            out.push_str(",\"ops\":{");
            for (k, (op, stat)) in n.ops.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:", json::escape(op));
                push_op_obj(&mut out, stat, redact);
            }
            out.push('}');
        }
        if !n.counters.is_empty() {
            out.push_str(",\"counters\":{");
            for (k, (name, v)) in n.counters.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{v}", json::escape(name));
            }
            out.push('}');
        }
        out.push_str("}}");
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"dhpf-obs\"}}\n");
    out
}

/// Summary returned by the validators: event counts by category, plus the
/// total set-op call count seen in `args.ops`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total number of events.
    pub events: u64,
    /// Events per category.
    pub by_cat: BTreeMap<String, u64>,
    /// Total `calls` summed over every `args.ops` entry.
    pub op_calls: u64,
    /// Sum of every counter named in `args.counters`.
    pub counters: BTreeMap<String, i64>,
}

fn expect_num(v: &Value, what: &str) -> Result<f64, String> {
    v.as_f64().ok_or_else(|| format!("{what} must be a number"))
}

fn validate_event_args(args: &Value, sum: &mut TraceSummary) -> Result<(), String> {
    let obj = args.as_obj().ok_or("args must be an object")?;
    for (k, v) in obj {
        match k.as_str() {
            "self_ns" | "id" => {
                expect_num(v, "args.self_ns/id")?;
            }
            "parent" => {
                if !matches!(v, Value::Null) {
                    expect_num(v, "args.parent")?;
                }
            }
            "ops" => {
                let ops = v.as_obj().ok_or("args.ops must be an object")?;
                for (op, stat) in ops {
                    let s = stat
                        .as_obj()
                        .ok_or_else(|| format!("args.ops.{op} must be an object"))?;
                    let mut saw_calls = false;
                    for (fk, fv) in s {
                        match fk.as_str() {
                            "calls" => {
                                sum.op_calls += expect_num(fv, "ops calls")? as u64;
                                saw_calls = true;
                            }
                            "ns" => {
                                expect_num(fv, "ops ns")?;
                            }
                            "hist" => {
                                let arr = fv.as_arr().ok_or("ops hist must be an array")?;
                                if arr.len() != crate::HIST_BUCKETS {
                                    return Err(format!(
                                        "ops hist must have {} buckets, got {}",
                                        crate::HIST_BUCKETS,
                                        arr.len()
                                    ));
                                }
                            }
                            other => return Err(format!("unknown ops field '{other}'")),
                        }
                    }
                    if !saw_calls {
                        return Err(format!("args.ops.{op} missing 'calls'"));
                    }
                }
            }
            "counters" => {
                let cs = v.as_obj().ok_or("args.counters must be an object")?;
                for (name, cv) in cs {
                    let n = expect_num(cv, "counter value")? as i64;
                    *sum.counters.entry(name.clone()).or_default() += n;
                }
            }
            other => return Err(format!("unknown args field '{other}'")),
        }
    }
    Ok(())
}

/// Validates Chrome-trace JSON produced by [`to_chrome_trace`] (schema:
/// `traceEvents` array of complete events with `ph`/`name`/`cat`/`pid`/
/// `tid`/`ts`/`dur`/`args`). Returns a [`TraceSummary`] on success and a
/// message naming the first malformed event otherwise.
///
/// # Errors
///
/// Returns a description of the first schema violation found.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let root = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .ok_or("missing 'traceEvents'")?
        .as_arr()
        .ok_or("'traceEvents' must be an array")?;
    let mut sum = TraceSummary::default();
    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: String| format!("event {i}: {msg}");
        let obj = ev.as_obj().ok_or_else(|| fail("not an object".into()))?;
        let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        for required in ["ph", "name", "cat", "pid", "tid", "ts", "dur", "args"] {
            if !keys.contains(&required) {
                return Err(fail(format!("missing field '{required}'")));
            }
        }
        let ph = ev
            .get("ph")
            .unwrap()
            .as_str()
            .ok_or_else(|| fail("'ph' must be a string".into()))?;
        if ph != "X" {
            return Err(fail(format!("unsupported phase '{ph}' (expected \"X\")")));
        }
        ev.get("name")
            .unwrap()
            .as_str()
            .ok_or_else(|| fail("'name' must be a string".into()))?;
        let cat = ev
            .get("cat")
            .unwrap()
            .as_str()
            .ok_or_else(|| fail("'cat' must be a string".into()))?;
        for f in ["pid", "tid", "ts", "dur"] {
            let v = expect_num(ev.get(f).unwrap(), f).map_err(&fail)?;
            if v < 0.0 {
                return Err(fail(format!("'{f}' must be non-negative")));
            }
        }
        validate_event_args(ev.get("args").unwrap(), &mut sum).map_err(&fail)?;
        sum.events += 1;
        *sum.by_cat.entry(cat.to_string()).or_default() += 1;
    }
    Ok(sum)
}

/// Validates JSONL output from [`to_json_lines`]: every line must be an
/// object with a `type` of `span`, `op`, or `counter` and the fields that
/// type requires.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate_json_lines(text: &str) -> Result<TraceSummary, String> {
    let mut sum = TraceSummary::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |msg: String| format!("line {}: {msg}", lineno + 1);
        let v = json::parse(line).map_err(|e| fail(format!("invalid JSON: {e}")))?;
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| fail("missing 'type'".into()))?;
        match ty {
            "span" => {
                for f in ["id", "start_ns", "dur_ns", "self_ns"] {
                    expect_num(v.get(f).ok_or_else(|| fail(format!("missing '{f}'")))?, f)
                        .map_err(&fail)?;
                }
                let cat = v
                    .get("cat")
                    .and_then(Value::as_str)
                    .ok_or_else(|| fail("missing 'cat'".into()))?;
                v.get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| fail("missing 'name'".into()))?;
                sum.events += 1;
                *sum.by_cat.entry(cat.to_string()).or_default() += 1;
            }
            "op" => {
                let stat = v.get("stat").ok_or_else(|| fail("missing 'stat'".into()))?;
                let calls = stat
                    .get("calls")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| fail("missing 'stat.calls'".into()))?;
                sum.op_calls += calls as u64;
            }
            "counter" => {
                let name = v
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| fail("missing 'name'".into()))?;
                let val = v
                    .get("value")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| fail("missing 'value'".into()))?;
                *sum.counters.entry(name.to_string()).or_default() += val as i64;
            }
            other => return Err(fail(format!("unknown type '{other}'"))),
        }
    }
    Ok(sum)
}

/// Serializes a span tree as one **single-line** JSON object, embeddable
/// as a value inside a line-framed wire response:
/// `{"spans":[{"id":…,"parent":…,"name":…,"cat":…,"start_ns":…,
/// "dur_ns":…,"thread":…,"ops":{…},"counters":{…}},…]}`. Children always
/// follow their parent (creation order), which [`validate_span_tree`]
/// checks.
pub fn span_tree_json(trace: &Trace) -> String {
    let mut spans = Arr::new();
    for (i, n) in trace.nodes.iter().enumerate() {
        let mut o = Obj::new()
            .u64("id", i as u64)
            .raw(
                "parent",
                &n.parent
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "null".to_string()),
            )
            .str("name", &n.name)
            .str("cat", n.cat)
            .u64("start_ns", n.start_ns)
            .u64("dur_ns", n.dur_ns)
            .u64("self_ns", trace.self_ns(i))
            .u64("thread", n.thread);
        if !n.ops.is_empty() {
            let mut ops = Obj::new();
            for (op, stat) in &n.ops {
                let mut body = String::new();
                push_op_obj(&mut body, stat, false);
                ops = ops.raw(op, &body);
            }
            o = o.obj("ops", ops);
        }
        if !n.counters.is_empty() {
            let mut cs = Obj::new();
            for (k, v) in &n.counters {
                cs = cs.i64(k, *v);
            }
            o = o.obj("counters", cs);
        }
        spans = spans.obj(o);
    }
    Obj::new().arr("spans", spans).finish()
}

/// Validates a span tree produced by [`span_tree_json`] that was already
/// parsed as a [`Value`] (e.g. extracted from a response line). Returns
/// the number of spans.
///
/// # Errors
///
/// Returns a description of the first schema violation: missing fields,
/// a parent index that does not precede its child, or negative numbers.
pub fn validate_span_tree_value(v: &Value) -> Result<u64, String> {
    let spans = v
        .get("spans")
        .ok_or("missing 'spans'")?
        .as_arr()
        .ok_or("'spans' must be an array")?;
    if spans.is_empty() {
        return Err("span tree has no spans".to_string());
    }
    for (i, s) in spans.iter().enumerate() {
        let fail = |msg: String| format!("span {i}: {msg}");
        s.as_obj().ok_or_else(|| fail("not an object".into()))?;
        let id = expect_num(
            s.get("id").ok_or_else(|| fail("missing 'id'".into()))?,
            "id",
        )
        .map_err(&fail)?;
        if id as usize != i {
            return Err(fail(format!("id {id} out of order (expected {i})")));
        }
        for f in ["start_ns", "dur_ns", "self_ns", "thread"] {
            let n = expect_num(s.get(f).ok_or_else(|| fail(format!("missing '{f}'")))?, f)
                .map_err(&fail)?;
            if n < 0.0 {
                return Err(fail(format!("'{f}' must be non-negative")));
            }
        }
        for f in ["name", "cat"] {
            s.get(f)
                .and_then(Value::as_str)
                .ok_or_else(|| fail(format!("missing string '{f}'")))?;
        }
        match s.get("parent") {
            Some(Value::Null) => {}
            Some(p) => {
                let p = expect_num(p, "parent").map_err(&fail)?;
                if p as usize >= i {
                    return Err(fail(format!("parent {p} does not precede span {i}")));
                }
            }
            None => return Err(fail("missing 'parent'".into())),
        }
        if let Some(ops) = s.get("ops") {
            let mut sum = TraceSummary::default();
            validate_event_args(
                &Value::Obj(vec![("ops".to_string(), ops.clone())]),
                &mut sum,
            )
            .map_err(&fail)?;
        }
    }
    Ok(spans.len() as u64)
}

/// Validates span-tree JSON text (see [`validate_span_tree_value`]).
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_span_tree(text: &str) -> Result<u64, String> {
    let v = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    validate_span_tree_value(&v)
}

/// Renders a [`MetricsSnapshot`] in the Prometheus text exposition
/// format: `# TYPE` comments, `name{labels} value` samples, histograms as
/// cumulative `_bucket{le="…"}` series plus `_sum` and `_count`. Bucket
/// `le` bounds are the histogram's **inclusive upper bucket edges**;
/// series appear sorted by name then labels.
pub fn render_metrics_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_type: Option<String> = None;
    let mut type_line = |out: &mut String, name: &str, kind: &'static str| {
        if last_type.as_deref() != Some(name) {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_type = Some(name.to_string());
        }
    };
    for s in &snap.counters {
        type_line(&mut out, &s.id.name, "counter");
        let _ = writeln!(out, "{} {}", s.id.render(), s.value);
    }
    for s in &snap.gauges {
        type_line(&mut out, &s.id.name, "gauge");
        let _ = writeln!(out, "{} {}", s.id.render(), s.value);
    }
    for (id, h) in &snap.histograms {
        type_line(&mut out, &id.name, "histogram");
        let with_label = |extra: &str| -> String {
            let mut labels = String::new();
            for (k, v) in &id.labels {
                let _ = write!(labels, "{k}=\"{v}\",");
            }
            format!("{}_bucket{{{labels}{extra}}}", id.name)
        };
        for b in &h.buckets {
            let _ = writeln!(out, "{} {}", with_label(&format!("le=\"{}\"", b.hi)), b.cum);
        }
        let _ = writeln!(out, "{} {}", with_label("le=\"+Inf\""), h.count);
        let suffix = |s: &str| {
            let mut id2 = id.clone();
            id2.name.push_str(s);
            id2.render()
        };
        let _ = writeln!(out, "{} {}", suffix("_sum"), h.sum);
        let _ = writeln!(out, "{} {}", suffix("_count"), h.count);
    }
    out
}

/// What [`validate_metrics_text`] extracted: scalar samples keyed by
/// their rendered series (`name{labels}`), histogram counts keyed the
/// same way, and the total number of sample lines.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSummary {
    /// Counter samples by rendered series id.
    pub counters: BTreeMap<String, f64>,
    /// Gauge samples by rendered series id.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram total counts (`+Inf` bucket) by rendered series id.
    pub hist_counts: BTreeMap<String, u64>,
    /// Total sample lines seen.
    pub samples: u64,
}

/// Splits a `name{k="v",…}` sample key into the metric name and label
/// pairs. Used by lint tools to inspect label values (e.g. asserting
/// every `code` label is a known `E_*` error code).
pub fn parse_series_key(key: &str) -> (String, Vec<(String, String)>) {
    match key.split_once('{') {
        None => (key.to_string(), Vec::new()),
        Some((name, rest)) => {
            let rest = rest.trim_end_matches('}');
            let mut labels = Vec::new();
            for pair in rest.split(',').filter(|p| !p.is_empty()) {
                if let Some((k, v)) = pair.split_once('=') {
                    labels.push((k.to_string(), v.trim_matches('"').to_string()));
                }
            }
            (name.to_string(), labels)
        }
    }
}

fn parse_sample_line(line: &str) -> Result<(String, f64), String> {
    let (key, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("malformed sample line {line:?}"))?;
    let value: f64 = value
        .parse()
        .map_err(|_| format!("bad sample value in {line:?}"))?;
    Ok((key.to_string(), value))
}

/// Validates a Prometheus text exposition produced by
/// [`render_metrics_text`]: every sample's metric must be declared in a
/// `# TYPE` comment; counter and histogram samples must be non-negative
/// and finite; each histogram series' bucket `le` bounds must be
/// strictly increasing with non-decreasing cumulative counts, ending in
/// `+Inf` whose count equals the series' `_count` sample.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_metrics_text(text: &str) -> Result<MetricsSummary, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut sum = MetricsSummary::default();
    // Per histogram series (name + labels sans `le`): buckets seen, in
    // order, plus the `_count` sample for reconciliation.
    let mut hist_buckets: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    let mut hist_count_samples: BTreeMap<String, f64> = BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let fail = |msg: String| format!("line {}: {msg}", lineno + 1);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            if parts.next() == Some("TYPE") {
                let name = parts
                    .next()
                    .ok_or_else(|| fail("TYPE comment missing metric name".into()))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| fail("TYPE comment missing kind".into()))?;
                if !matches!(kind, "counter" | "gauge" | "histogram") {
                    return Err(fail(format!("unknown metric kind {kind:?}")));
                }
                types.insert(name.to_string(), kind.to_string());
            }
            continue;
        }
        let (key, value) = parse_sample_line(line).map_err(&fail)?;
        if !value.is_finite() {
            return Err(fail(format!("non-finite sample value in {line:?}")));
        }
        sum.samples += 1;
        let (name, labels) = parse_series_key(&key);
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| types.get(*b).map(String::as_str) == Some("histogram"));
        let declared = base.unwrap_or(&name);
        let kind = types
            .get(declared)
            .ok_or_else(|| fail(format!("sample {key:?} has no preceding TYPE comment")))?
            .clone();
        match kind.as_str() {
            "counter" => {
                if value < 0.0 {
                    return Err(fail(format!("counter {key:?} is negative ({value})")));
                }
                sum.counters.insert(key, value);
            }
            "gauge" => {
                sum.gauges.insert(key, value);
            }
            "histogram" => {
                if value < 0.0 {
                    return Err(fail(format!("histogram sample {key:?} is negative")));
                }
                let series_labels: Vec<String> = labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}=\"{v}\""))
                    .collect();
                let series = format!("{declared}{{{}}}", series_labels.join(","));
                if name.ends_with("_bucket") {
                    let le = labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .map(|(_, v)| v.as_str())
                        .ok_or_else(|| fail(format!("bucket {key:?} missing 'le' label")))?;
                    let le = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse()
                            .map_err(|_| fail(format!("bad le bound {le:?}")))?
                    };
                    hist_buckets.entry(series).or_default().push((le, value));
                } else if name.ends_with("_count") {
                    hist_count_samples.insert(series, value);
                }
            }
            other => return Err(fail(format!("unknown kind {other:?}"))),
        }
    }

    for (series, buckets) in &hist_buckets {
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_cum = -1.0;
        for &(le, cum) in buckets {
            if le <= prev_le {
                return Err(format!(
                    "histogram {series}: bucket bounds not strictly increasing at le={le}"
                ));
            }
            if cum < prev_cum {
                return Err(format!(
                    "histogram {series}: cumulative counts decrease at le={le}"
                ));
            }
            prev_le = le;
            prev_cum = cum;
        }
        let (last_le, last_cum) = *buckets.last().expect("non-empty by construction");
        if last_le != f64::INFINITY {
            return Err(format!("histogram {series}: missing le=\"+Inf\" bucket"));
        }
        match hist_count_samples.get(series) {
            Some(&count) if count == last_cum => {
                sum.hist_counts.insert(series.clone(), count as u64);
            }
            Some(&count) => {
                return Err(format!(
                    "histogram {series}: _count {count} != +Inf bucket {last_cum}"
                ));
            }
            None => return Err(format!("histogram {series}: missing _count sample")),
        }
    }
    Ok(sum)
}

/// What [`validate_access_log`] extracted from a structured access log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessLogSummary {
    /// Total records.
    pub lines: u64,
    /// Records per outcome (`"ok"` or an `E_*` code).
    pub by_outcome: BTreeMap<String, u64>,
    /// Records per op.
    pub by_op: BTreeMap<String, u64>,
    /// Records carrying an embedded (schema-valid) span tree.
    pub traces: u64,
}

/// Validates a JSON-lines access log: every line must be an object with
/// `ts_ms`, `id`, `op`, `outcome` (`"ok"` or `E_*`), and a non-negative
/// `duration_us`; `warm`/`coalesced` must be booleans when present; an
/// embedded `trace` must satisfy [`validate_span_tree_value`].
///
/// # Errors
///
/// Returns a description of the first malformed record.
pub fn validate_access_log(text: &str) -> Result<AccessLogSummary, String> {
    let mut sum = AccessLogSummary::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |msg: String| format!("line {}: {msg}", lineno + 1);
        let v = json::parse(line).map_err(|e| fail(format!("invalid JSON: {e}")))?;
        v.as_obj().ok_or_else(|| fail("not an object".into()))?;
        for f in ["ts_ms", "duration_us"] {
            let n = expect_num(v.get(f).ok_or_else(|| fail(format!("missing '{f}'")))?, f)
                .map_err(&fail)?;
            if n < 0.0 {
                return Err(fail(format!("'{f}' must be non-negative")));
            }
        }
        v.get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| fail("missing string 'id'".into()))?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| fail("missing string 'op'".into()))?;
        let outcome = v
            .get("outcome")
            .and_then(Value::as_str)
            .ok_or_else(|| fail("missing string 'outcome'".into()))?;
        if outcome != "ok" && !outcome.starts_with("E_") {
            return Err(fail(format!(
                "outcome must be \"ok\" or an E_* code, got {outcome:?}"
            )));
        }
        for f in ["warm", "coalesced"] {
            if let Some(b) = v.get(f) {
                if !matches!(b, Value::Bool(_)) {
                    return Err(fail(format!("'{f}' must be a boolean")));
                }
            }
        }
        if let Some(trace) = v.get("trace") {
            validate_span_tree_value(trace).map_err(|e| fail(format!("embedded trace: {e}")))?;
            sum.traces += 1;
        }
        sum.lines += 1;
        *sum.by_outcome.entry(outcome.to_string()).or_default() += 1;
        *sum.by_op.entry(op.to_string()).or_default() += 1;
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;
    use std::time::Duration;

    fn sample() -> Trace {
        let c = Collector::new();
        let a = c.begin("compile", "compile");
        {
            let _g = c.guard("communication generation", "phase");
            c.record_op("satisfiability", Duration::from_micros(5), 3);
            c.record_op("fme projection", Duration::from_micros(9), 12);
            c.add_counter("comm events", 2);
        }
        c.record_span("opt of generated code", "phase", Duration::from_micros(1));
        c.end(a);
        c.trace()
    }

    #[test]
    fn chrome_trace_round_trips_through_validator() {
        let t = sample();
        let text = to_chrome_trace(&t);
        let sum = validate_chrome_trace(&text).expect("valid");
        assert_eq!(sum.events, 3);
        assert_eq!(sum.by_cat["phase"], 2);
        assert_eq!(sum.op_calls, 2);
        assert_eq!(sum.counters["comm events"], 2);
    }

    #[test]
    fn json_lines_round_trip_through_validator() {
        let t = sample();
        let text = to_json_lines(&t);
        let sum = validate_json_lines(&text).expect("valid");
        assert_eq!(sum.events, 3);
        assert_eq!(sum.op_calls, 2);
        assert_eq!(sum.counters["comm events"], 2);
    }

    #[test]
    fn tree_dump_mentions_self_time_and_ops() {
        let t = sample();
        let txt = render_tree(&t);
        assert!(txt.contains("compile"));
        assert!(txt.contains("self"));
        assert!(txt.contains("satisfiability"));
        assert!(txt.contains("comm events = 2"));
    }

    #[test]
    fn span_tree_json_is_single_line_and_validates() {
        let t = sample();
        let text = span_tree_json(&t);
        assert!(!text.contains('\n'), "span tree must be one line");
        assert_eq!(validate_span_tree(&text), Ok(3));
        // Embedded as a value inside a larger document too.
        let doc = format!("{{\"trace\":{text}}}");
        let v = json::parse(&doc).unwrap();
        assert_eq!(validate_span_tree_value(v.get("trace").unwrap()), Ok(3));
        assert!(validate_span_tree("{\"spans\":[]}").is_err());
        assert!(validate_span_tree("{\"spans\":[{\"id\":0}]}").is_err());
        // A parent pointing forward is structurally invalid.
        let bad = "{\"spans\":[{\"id\":0,\"parent\":1,\"name\":\"a\",\"cat\":\"x\",\
                   \"start_ns\":0,\"dur_ns\":0,\"self_ns\":0,\"thread\":0}]}";
        assert!(validate_span_tree(bad).is_err());
    }

    #[test]
    fn metrics_exposition_round_trips_through_validator() {
        let reg = crate::metrics::Registry::new();
        reg.counter("dhpf_requests_total", &[("op", "compile")])
            .add(5);
        reg.counter("dhpf_errors_total", &[("code", "E_BUDGET")])
            .inc();
        reg.gauge("dhpf_memo_entries", &[("table", "sat")]).set(123);
        let h = reg.histogram("dhpf_duration_us", &[("kind", "warm")]);
        for v in [10u64, 20, 500, 9000] {
            h.observe(v);
        }
        let text = render_metrics_text(&reg.snapshot());
        let sum = validate_metrics_text(&text).expect("valid exposition");
        assert_eq!(sum.counters["dhpf_requests_total{op=\"compile\"}"], 5.0);
        assert_eq!(sum.counters["dhpf_errors_total{code=\"E_BUDGET\"}"], 1.0);
        assert_eq!(sum.gauges["dhpf_memo_entries{table=\"sat\"}"], 123.0);
        assert_eq!(sum.hist_counts["dhpf_duration_us{kind=\"warm\"}"], 4);
        let (name, labels) = parse_series_key("dhpf_errors_total{code=\"E_BUDGET\"}");
        assert_eq!(name, "dhpf_errors_total");
        assert_eq!(labels, vec![("code".to_string(), "E_BUDGET".to_string())]);
    }

    #[test]
    fn metrics_validator_rejects_violations() {
        // Sample without a TYPE comment.
        assert!(validate_metrics_text("x_total 1\n").is_err());
        // Negative counter.
        assert!(validate_metrics_text("# TYPE x_total counter\nx_total -1\n").is_err());
        // Decreasing cumulative bucket counts.
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
                   h_sum 9\nh_count 5\n";
        assert!(validate_metrics_text(bad).unwrap_err().contains("decrease"));
        // Non-increasing le bounds.
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"2\"} 1\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 2\n\
                   h_sum 4\nh_count 2\n";
        assert!(validate_metrics_text(bad).is_err());
        // _count disagreeing with the +Inf bucket.
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"+Inf\"} 2\nh_sum 4\nh_count 3\n";
        assert!(validate_metrics_text(bad).is_err());
        // Missing +Inf bucket.
        let bad = "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_sum 2\nh_count 1\n";
        assert!(validate_metrics_text(bad).is_err());
    }

    #[test]
    fn access_log_validator_checks_schema() {
        let good = concat!(
            "{\"ts_ms\":1,\"id\":\"r1\",\"op\":\"compile\",\"outcome\":\"ok\",",
            "\"duration_us\":1500,\"warm\":false,\"coalesced\":false}\n",
            "{\"ts_ms\":2,\"id\":\"r2\",\"op\":\"compile\",\"outcome\":\"E_BUDGET\",",
            "\"duration_us\":3}\n",
            "{\"ts_ms\":3,\"id\":\"p\",\"op\":\"ping\",\"outcome\":\"ok\",\"duration_us\":1}\n",
        );
        let sum = validate_access_log(good).expect("valid log");
        assert_eq!(sum.lines, 3);
        assert_eq!(sum.by_outcome["ok"], 2);
        assert_eq!(sum.by_outcome["E_BUDGET"], 1);
        assert_eq!(sum.by_op["compile"], 2);
        assert_eq!(sum.traces, 0);

        // Embedded trace must be schema-valid.
        let t = sample();
        let with_trace = format!(
            "{{\"ts_ms\":1,\"id\":\"r\",\"op\":\"compile\",\"outcome\":\"ok\",\
             \"duration_us\":9,\"trace\":{}}}\n",
            span_tree_json(&t)
        );
        assert_eq!(validate_access_log(&with_trace).unwrap().traces, 1);

        assert!(validate_access_log("{\"id\":\"x\"}\n").is_err());
        assert!(validate_access_log(
            "{\"ts_ms\":1,\"id\":\"x\",\"op\":\"compile\",\"outcome\":\"weird\",\"duration_us\":1}\n"
        )
        .is_err());
        assert!(validate_access_log(
            "{\"ts_ms\":1,\"id\":\"x\",\"op\":\"c\",\"outcome\":\"ok\",\"duration_us\":1,\"warm\":1}\n"
        )
        .is_err());
    }

    #[test]
    fn validator_rejects_malformed_events() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
        let ok = validate_chrome_trace(
            "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\",\"cat\":\"phase\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":1,\"args\":{\"self_ns\":1}}]}",
        );
        assert!(ok.is_ok());
    }
}
