//! Exporters: human-readable tree dump, JSON lines, and Chrome
//! `trace_event` JSON — plus schema validators used by `trace_lint` and CI.
//!
//! All emitters build their output by hand with a **fixed field order**, so
//! golden-file tests can compare bytes (after redacting wall-clock values
//! with [`chrome_trace_redacted`]).

use crate::json::{self, Value};
use crate::{OpStat, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{ns} ns")
    }
}

/// Renders the span tree as an indented human-readable listing with
/// cumulative time, self time, per-op counters, and counters.
pub fn render_tree(trace: &Trace) -> String {
    let mut out = String::new();
    fn visit(trace: &Trace, i: usize, depth: usize, out: &mut String) {
        let n = &trace.nodes[i];
        let pad = "  ".repeat(depth);
        let self_ns = trace.self_ns(i);
        let _ = writeln!(
            out,
            "{pad}{name:<w$} {cum:>12}  (self {selft}){open}",
            name = n.name,
            w = 36usize.saturating_sub(pad.len()),
            cum = fmt_ns(n.dur_ns),
            selft = fmt_ns(self_ns),
            open = if n.open { "  [open]" } else { "" },
        );
        for (op, stat) in &n.ops {
            let _ = writeln!(
                out,
                "{pad}  · {op}: {calls} calls, {t}",
                calls = stat.calls,
                t = fmt_ns(stat.total_ns),
            );
        }
        for (k, v) in &n.counters {
            let _ = writeln!(out, "{pad}  · {k} = {v}");
        }
        for &c in &n.children {
            visit(trace, c, depth + 1, out);
        }
    }
    for r in trace.roots() {
        visit(trace, r, 0, &mut out);
    }
    out
}

fn push_op_obj(out: &mut String, stat: &OpStat, redact: bool) {
    let ns = if redact { 0 } else { stat.total_ns };
    let _ = write!(out, "{{\"calls\":{},\"ns\":{},\"hist\":[", stat.calls, ns);
    for (k, b) in stat.sizes.buckets.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(out, "{b}");
    }
    out.push_str("]}");
}

/// Serializes the trace as JSON lines: one object per span, then one per
/// (span, op) pair, then one per (span, counter) pair. Field order is
/// fixed; see the module docs.
pub fn to_json_lines(trace: &Trace) -> String {
    let mut out = String::new();
    for (i, n) in trace.nodes.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"type\":\"span\",\"id\":{i},\"parent\":{parent},\"name\":{name},\"cat\":{cat},\"start_ns\":{start},\"dur_ns\":{dur},\"self_ns\":{selfns}}}",
            parent = n
                .parent
                .map(|p| p.to_string())
                .unwrap_or_else(|| "null".to_string()),
            name = json::escape(&n.name),
            cat = json::escape(n.cat),
            start = n.start_ns,
            dur = n.dur_ns,
            selfns = trace.self_ns(i),
        );
        out.push('\n');
    }
    for (i, n) in trace.nodes.iter().enumerate() {
        for (op, stat) in &n.ops {
            let _ = write!(
                out,
                "{{\"type\":\"op\",\"span\":{i},\"op\":{op},\"stat\":",
                op = json::escape(op),
            );
            push_op_obj(&mut out, stat, false);
            out.push_str("}\n");
        }
        for (k, v) in &n.counters {
            let _ = write!(
                out,
                "{{\"type\":\"counter\",\"span\":{i},\"name\":{k},\"value\":{v}}}",
                k = json::escape(k),
            );
            out.push('\n');
        }
    }
    out
}

/// Serializes the trace in Chrome `trace_event` format (the JSON object
/// form), loadable in `chrome://tracing` and Perfetto. One complete
/// (`"ph":"X"`) event per span, with self time, op stats, and counters in
/// `args`.
pub fn to_chrome_trace(trace: &Trace) -> String {
    chrome_trace_inner(trace, false)
}

/// [`to_chrome_trace`] with every wall-clock-derived value (`ts`, `dur`,
/// `args.self_ns`, per-op `ns`) forced to zero, for byte-stable golden
/// tests. Structure, names, call counts, histograms, and counters are
/// preserved.
pub fn chrome_trace_redacted(trace: &Trace) -> String {
    chrome_trace_inner(trace, true)
}

fn chrome_trace_inner(trace: &Trace, redact: bool) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[\n");
    for (i, n) in trace.nodes.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let (ts, dur, self_ns) = if redact {
            (0.0, 0.0, 0)
        } else {
            (
                n.start_ns as f64 / 1e3,
                n.dur_ns as f64 / 1e3,
                trace.self_ns(i),
            )
        };
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"name\":{name},\"cat\":{cat},\"pid\":1,\"tid\":{tid},\"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{{\"id\":{i},\"parent\":{parent},\"self_ns\":{self_ns}",
            tid = n.thread + 1,
            name = json::escape(&n.name),
            cat = json::escape(n.cat),
            parent = n
                .parent
                .map(|p| p.to_string())
                .unwrap_or_else(|| "null".to_string()),
        );
        if !n.ops.is_empty() {
            out.push_str(",\"ops\":{");
            for (k, (op, stat)) in n.ops.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:", json::escape(op));
                push_op_obj(&mut out, stat, redact);
            }
            out.push('}');
        }
        if !n.counters.is_empty() {
            out.push_str(",\"counters\":{");
            for (k, (name, v)) in n.counters.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{v}", json::escape(name));
            }
            out.push('}');
        }
        out.push_str("}}");
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"dhpf-obs\"}}\n");
    out
}

/// Summary returned by the validators: event counts by category, plus the
/// total set-op call count seen in `args.ops`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total number of events.
    pub events: u64,
    /// Events per category.
    pub by_cat: BTreeMap<String, u64>,
    /// Total `calls` summed over every `args.ops` entry.
    pub op_calls: u64,
    /// Sum of every counter named in `args.counters`.
    pub counters: BTreeMap<String, i64>,
}

fn expect_num(v: &Value, what: &str) -> Result<f64, String> {
    v.as_f64().ok_or_else(|| format!("{what} must be a number"))
}

fn validate_event_args(args: &Value, sum: &mut TraceSummary) -> Result<(), String> {
    let obj = args.as_obj().ok_or("args must be an object")?;
    for (k, v) in obj {
        match k.as_str() {
            "self_ns" | "id" => {
                expect_num(v, "args.self_ns/id")?;
            }
            "parent" => {
                if !matches!(v, Value::Null) {
                    expect_num(v, "args.parent")?;
                }
            }
            "ops" => {
                let ops = v.as_obj().ok_or("args.ops must be an object")?;
                for (op, stat) in ops {
                    let s = stat
                        .as_obj()
                        .ok_or_else(|| format!("args.ops.{op} must be an object"))?;
                    let mut saw_calls = false;
                    for (fk, fv) in s {
                        match fk.as_str() {
                            "calls" => {
                                sum.op_calls += expect_num(fv, "ops calls")? as u64;
                                saw_calls = true;
                            }
                            "ns" => {
                                expect_num(fv, "ops ns")?;
                            }
                            "hist" => {
                                let arr = fv.as_arr().ok_or("ops hist must be an array")?;
                                if arr.len() != crate::HIST_BUCKETS {
                                    return Err(format!(
                                        "ops hist must have {} buckets, got {}",
                                        crate::HIST_BUCKETS,
                                        arr.len()
                                    ));
                                }
                            }
                            other => return Err(format!("unknown ops field '{other}'")),
                        }
                    }
                    if !saw_calls {
                        return Err(format!("args.ops.{op} missing 'calls'"));
                    }
                }
            }
            "counters" => {
                let cs = v.as_obj().ok_or("args.counters must be an object")?;
                for (name, cv) in cs {
                    let n = expect_num(cv, "counter value")? as i64;
                    *sum.counters.entry(name.clone()).or_default() += n;
                }
            }
            other => return Err(format!("unknown args field '{other}'")),
        }
    }
    Ok(())
}

/// Validates Chrome-trace JSON produced by [`to_chrome_trace`] (schema:
/// `traceEvents` array of complete events with `ph`/`name`/`cat`/`pid`/
/// `tid`/`ts`/`dur`/`args`). Returns a [`TraceSummary`] on success and a
/// message naming the first malformed event otherwise.
///
/// # Errors
///
/// Returns a description of the first schema violation found.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let root = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .ok_or("missing 'traceEvents'")?
        .as_arr()
        .ok_or("'traceEvents' must be an array")?;
    let mut sum = TraceSummary::default();
    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: String| format!("event {i}: {msg}");
        let obj = ev.as_obj().ok_or_else(|| fail("not an object".into()))?;
        let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        for required in ["ph", "name", "cat", "pid", "tid", "ts", "dur", "args"] {
            if !keys.contains(&required) {
                return Err(fail(format!("missing field '{required}'")));
            }
        }
        let ph = ev
            .get("ph")
            .unwrap()
            .as_str()
            .ok_or_else(|| fail("'ph' must be a string".into()))?;
        if ph != "X" {
            return Err(fail(format!("unsupported phase '{ph}' (expected \"X\")")));
        }
        ev.get("name")
            .unwrap()
            .as_str()
            .ok_or_else(|| fail("'name' must be a string".into()))?;
        let cat = ev
            .get("cat")
            .unwrap()
            .as_str()
            .ok_or_else(|| fail("'cat' must be a string".into()))?;
        for f in ["pid", "tid", "ts", "dur"] {
            let v = expect_num(ev.get(f).unwrap(), f).map_err(&fail)?;
            if v < 0.0 {
                return Err(fail(format!("'{f}' must be non-negative")));
            }
        }
        validate_event_args(ev.get("args").unwrap(), &mut sum).map_err(&fail)?;
        sum.events += 1;
        *sum.by_cat.entry(cat.to_string()).or_default() += 1;
    }
    Ok(sum)
}

/// Validates JSONL output from [`to_json_lines`]: every line must be an
/// object with a `type` of `span`, `op`, or `counter` and the fields that
/// type requires.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate_json_lines(text: &str) -> Result<TraceSummary, String> {
    let mut sum = TraceSummary::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |msg: String| format!("line {}: {msg}", lineno + 1);
        let v = json::parse(line).map_err(|e| fail(format!("invalid JSON: {e}")))?;
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| fail("missing 'type'".into()))?;
        match ty {
            "span" => {
                for f in ["id", "start_ns", "dur_ns", "self_ns"] {
                    expect_num(v.get(f).ok_or_else(|| fail(format!("missing '{f}'")))?, f)
                        .map_err(&fail)?;
                }
                let cat = v
                    .get("cat")
                    .and_then(Value::as_str)
                    .ok_or_else(|| fail("missing 'cat'".into()))?;
                v.get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| fail("missing 'name'".into()))?;
                sum.events += 1;
                *sum.by_cat.entry(cat.to_string()).or_default() += 1;
            }
            "op" => {
                let stat = v.get("stat").ok_or_else(|| fail("missing 'stat'".into()))?;
                let calls = stat
                    .get("calls")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| fail("missing 'stat.calls'".into()))?;
                sum.op_calls += calls as u64;
            }
            "counter" => {
                let name = v
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| fail("missing 'name'".into()))?;
                let val = v
                    .get("value")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| fail("missing 'value'".into()))?;
                *sum.counters.entry(name.to_string()).or_default() += val as i64;
            }
            other => return Err(fail(format!("unknown type '{other}'"))),
        }
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;
    use std::time::Duration;

    fn sample() -> Trace {
        let c = Collector::new();
        let a = c.begin("compile", "compile");
        {
            let _g = c.guard("communication generation", "phase");
            c.record_op("satisfiability", Duration::from_micros(5), 3);
            c.record_op("fme projection", Duration::from_micros(9), 12);
            c.add_counter("comm events", 2);
        }
        c.record_span("opt of generated code", "phase", Duration::from_micros(1));
        c.end(a);
        c.trace()
    }

    #[test]
    fn chrome_trace_round_trips_through_validator() {
        let t = sample();
        let text = to_chrome_trace(&t);
        let sum = validate_chrome_trace(&text).expect("valid");
        assert_eq!(sum.events, 3);
        assert_eq!(sum.by_cat["phase"], 2);
        assert_eq!(sum.op_calls, 2);
        assert_eq!(sum.counters["comm events"], 2);
    }

    #[test]
    fn json_lines_round_trip_through_validator() {
        let t = sample();
        let text = to_json_lines(&t);
        let sum = validate_json_lines(&text).expect("valid");
        assert_eq!(sum.events, 3);
        assert_eq!(sum.op_calls, 2);
        assert_eq!(sum.counters["comm events"], 2);
    }

    #[test]
    fn tree_dump_mentions_self_time_and_ops() {
        let t = sample();
        let txt = render_tree(&t);
        assert!(txt.contains("compile"));
        assert!(txt.contains("self"));
        assert!(txt.contains("satisfiability"));
        assert!(txt.contains("comm events = 2"));
    }

    #[test]
    fn validator_rejects_malformed_events() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
        let ok = validate_chrome_trace(
            "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\",\"cat\":\"phase\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":1,\"args\":{\"self_ns\":1}}]}",
        );
        assert!(ok.is_ok());
    }
}
