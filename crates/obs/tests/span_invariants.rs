//! Span-tree invariants: nesting, self-time accounting, and attribution.

use dhpf_obs::Collector;
use std::time::Duration;

/// Sum of children durations never exceeds the parent's cumulative
/// duration (self time is the non-negative remainder).
#[test]
fn children_sum_bounded_by_parent() {
    let c = Collector::new();
    let outer = c.begin("outer", "phase");
    for k in 0..4 {
        let inner = c.begin(&format!("inner{k}"), "phase");
        std::hint::black_box((0..1000).sum::<u64>());
        c.end(inner);
    }
    c.end(outer);
    let t = c.trace();
    let o = t.find("outer").unwrap();
    let children: u64 = t.nodes[o].children.iter().map(|&i| t.nodes[i].dur_ns).sum();
    assert!(
        children <= t.nodes[o].dur_ns,
        "children {children} > parent {}",
        t.nodes[o].dur_ns
    );
    assert_eq!(t.self_ns(o), t.nodes[o].dur_ns - children);
}

/// Cumulative time includes children; self time excludes them.
#[test]
fn self_time_excludes_children() {
    let c = Collector::new();
    let outer = c.begin("outer", "phase");
    let inner = c.begin("inner", "phase");
    std::thread::sleep(Duration::from_millis(3));
    c.end(inner);
    c.end(outer);
    let t = c.trace();
    let o = t.find("outer").unwrap();
    let i = t.find("inner").unwrap();
    assert!(t.nodes[o].dur_ns >= t.nodes[i].dur_ns);
    assert!(t.self_ns(o) <= t.nodes[o].dur_ns - t.nodes[i].dur_ns);
    assert_eq!(t.self_ns(i), t.nodes[i].dur_ns, "leaf self == cumulative");
}

/// Sibling spans of one parent are recorded in start order and depth is
/// derived from the parent chain.
#[test]
fn depth_and_order() {
    let c = Collector::new();
    let a = c.begin("a", "compile");
    let b = c.begin("b", "phase");
    c.end(b);
    let d = c.begin("d", "phase");
    let e = c.begin("e", "setop");
    c.end(e);
    c.end(d);
    c.end(a);
    let t = c.trace();
    assert_eq!(t.depth(t.find("a").unwrap()), 0);
    assert_eq!(t.depth(t.find("b").unwrap()), 1);
    assert_eq!(t.depth(t.find("e").unwrap()), 2);
    assert_eq!(t.nodes[t.find("a").unwrap()].children.len(), 2);
}

/// record_span attaches an already-measured closed child to the innermost
/// open span, and its duration participates in self-time accounting.
#[test]
fn record_span_is_a_closed_child() {
    let c = Collector::new();
    let outer = c.begin("outer", "phase");
    c.record_span("measured", "phase", Duration::from_micros(500));
    c.end(outer);
    let t = c.trace();
    let m = t.find("measured").unwrap();
    assert!(!t.nodes[m].open);
    assert_eq!(t.nodes[m].parent, t.find("outer"));
    assert_eq!(t.nodes[m].dur_ns, 500_000);
}

/// Snapshotting with open spans reports elapsed-so-far durations and does
/// not disturb the live tree.
#[test]
fn snapshot_of_open_spans() {
    let c = Collector::new();
    let _a = c.begin("a", "phase");
    let t1 = c.trace();
    assert!(t1.nodes[0].open);
    assert!(t1.nodes[0].dur_ns > 0);
    std::thread::sleep(Duration::from_millis(1));
    let t2 = c.trace();
    assert!(t2.nodes[0].dur_ns >= t1.nodes[0].dur_ns);
}

/// Multiple roots (e.g. two compilations under one collector) coexist.
#[test]
fn multiple_roots() {
    let c = Collector::new();
    let a = c.begin("compile", "compile");
    c.end(a);
    let b = c.begin("compile", "compile");
    c.end(b);
    let t = c.trace();
    assert_eq!(t.roots().len(), 2);
}
