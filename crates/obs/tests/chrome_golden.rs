//! Golden-file test for the Chrome `trace_event` exporter.
//!
//! The synthetic trace below is fully deterministic except for wall-clock
//! offsets/durations, which [`dhpf_obs::export::chrome_trace_redacted`]
//! forces to zero; the redacted output must match the checked-in golden
//! byte-for-byte (stable field ordering, stable escaping). Regenerate with
//! `BLESS=1 cargo test -p dhpf-obs --test chrome_golden` after an
//! intentional format change.

use dhpf_obs::export::{chrome_trace_redacted, validate_chrome_trace};
use dhpf_obs::json;
use dhpf_obs::Collector;
use std::time::Duration;

fn sample_trace() -> dhpf_obs::Trace {
    let c = Collector::new();
    let compile = c.begin("compile", "compile");
    {
        let _phase = c.guard("communication \"gen\"", "phase");
        c.record_op("satisfiability", Duration::from_micros(5), 3);
        c.record_op("satisfiability", Duration::from_micros(7), 70);
        c.record_op("fme projection", Duration::from_micros(9), 12);
        c.add_counter("comm events", 2);
    }
    c.record_span("opt of generated code", "phase", Duration::from_micros(10));
    c.end(compile);
    c.add_counter("messages", 42); // orphan: lands on "(unattributed)"
    c.trace()
}

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/chrome_trace.json"
);

#[test]
fn chrome_trace_matches_golden() {
    let got = chrome_trace_redacted(&sample_trace());
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
    }
    let want = std::fs::read_to_string(GOLDEN_PATH).expect("golden file present");
    assert_eq!(
        got, want,
        "redacted Chrome trace drifted from the golden; \
         rerun with BLESS=1 if the change is intentional"
    );
}

/// Beyond byte equality: assert the structural properties the golden
/// encodes, so a blessed regression is still caught by review.
#[test]
fn golden_structure() {
    let text = chrome_trace_redacted(&sample_trace());
    let sum = validate_chrome_trace(&text).expect("schema-valid");
    assert_eq!(sum.events, 4); // compile, phase, opt, (unattributed)
    assert_eq!(sum.op_calls, 3);
    assert_eq!(sum.counters["comm events"], 2);
    assert_eq!(sum.counters["messages"], 42);

    // Field order of every event is fixed: ph, name, cat, pid, tid, ts,
    // dur, args — the contract chrome://tracing's streaming parser and our
    // golden rely on.
    let root = json::parse(&text).unwrap();
    for ev in root.get("traceEvents").unwrap().as_arr().unwrap() {
        let keys: Vec<&str> = ev
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(
            keys,
            ["ph", "name", "cat", "pid", "tid", "ts", "dur", "args"]
        );
    }

    // No timestamps leak into the redacted form.
    for ev in root.get("traceEvents").unwrap().as_arr().unwrap() {
        assert_eq!(ev.get("ts").unwrap().as_f64(), Some(0.0));
        assert_eq!(ev.get("dur").unwrap().as_f64(), Some(0.0));
    }
}
