//! Property tests for the metrics layer: histogram quantiles against
//! exact sorted-sample quantiles under randomized workloads, and
//! concurrent-writer exactness for counters and histograms.

use dhpf_obs::metrics::{Histogram, Registry, HIST_SUB};

/// The workspace's in-tree xorshift PRNG (the same generator as
/// `dhpf_omega::testing::Rng`, reproduced locally because `dhpf-obs` sits
/// below `dhpf-omega` in the dependency order).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Exact nearest-rank quantile of a sorted sample vector.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn histogram_quantiles_bracket_exact_sample_quantiles() {
    let mut rng = Rng::new(0x5eed);
    for trial in 0..50 {
        let h = Histogram::new();
        let n = 1 + rng.below(2000) as usize;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            // Log-uniform magnitudes: pick an exponent, then a mantissa,
            // so every octave of the bucket range gets exercised.
            let exp = rng.below(40);
            let v = if exp == 0 {
                rng.below(8)
            } else {
                (1u64 << exp) + rng.below(1u64 << exp)
            };
            h.observe(v);
            samples.push(v);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count, n as u64, "trial {trial}");
        assert_eq!(snap.sum, samples.iter().sum::<u64>(), "trial {trial}");
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&samples, q);
            let (lo, hi) = snap.quantile_bounds(q);
            assert!(
                lo <= exact && exact <= hi,
                "trial {trial} q={q}: exact {exact} outside bucket [{lo}, {hi}]"
            );
            // The reported value overestimates by at most the bucket
            // width: 1/HIST_SUB relative above HIST_SUB, 0 below.
            let reported = snap.quantile(q);
            if exact >= HIST_SUB {
                assert!(
                    (reported - exact) as f64 <= exact as f64 / HIST_SUB as f64,
                    "trial {trial} q={q}: reported {reported} too far above exact {exact}"
                );
            } else {
                assert_eq!(reported, exact, "unit-width buckets are exact");
            }
        }
    }
}

#[test]
fn histogram_cumulative_counts_are_monotone_and_reconcile() {
    let mut rng = Rng::new(7);
    let h = Histogram::new();
    for _ in 0..5000 {
        h.observe(rng.below(1 << 30));
    }
    let snap = h.snapshot();
    let mut prev = 0;
    for b in &snap.buckets {
        assert!(
            b.cum > prev,
            "cumulative counts must strictly increase over occupied buckets"
        );
        assert!(b.lo <= b.hi);
        prev = b.cum;
    }
    assert_eq!(prev, snap.count, "+Inf count must equal total");
}

#[test]
fn concurrent_counter_increments_are_exact() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let reg = Registry::new();
    let c = reg.counter("hits_total", &[]);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    assert_eq!(
        reg.snapshot().counter("hits_total"),
        Some(THREADS as u64 * PER_THREAD)
    );
}

#[test]
fn concurrent_histogram_observations_are_exact() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let h = Histogram::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = h.clone();
            s.spawn(move || {
                let mut rng = Rng::new(t + 1);
                for _ in 0..PER_THREAD {
                    h.observe(rng.below(1 << 20));
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(
        snap.buckets.last().map(|b| b.cum),
        Some(THREADS * PER_THREAD)
    );
}

#[test]
fn randomized_registry_exposition_always_validates() {
    let mut rng = Rng::new(42);
    for _ in 0..20 {
        let reg = Registry::new();
        for i in 0..rng.below(8) {
            reg.counter("c_total", &[("i", &i.to_string())])
                .add(rng.below(1000));
        }
        for i in 0..rng.below(4) {
            reg.gauge("g", &[("i", &i.to_string())])
                .set(rng.below(1000) as i64 - 500);
        }
        for i in 0..rng.below(4) {
            let h = reg.histogram("h_us", &[("i", &i.to_string())]);
            for _ in 0..rng.below(200) {
                h.observe(rng.below(1 << 34));
            }
        }
        let text = dhpf_obs::export::render_metrics_text(&reg.snapshot());
        dhpf_obs::export::validate_metrics_text(&text)
            .unwrap_or_else(|e| panic!("exposition failed validation: {e}\n{text}"));
    }
}
