//! The SPMD executor: runs a compiled program on `P` simulated ranks with
//! logical-clock message timing.
//!
//! Each rank is a thread with a full-size copy of every array (only the
//! owned region plus received halo elements are meaningful), connected by
//! FIFO channels. Simulated time uses an α/β model: a receive completes at
//! `max(t_local, t_send + α + bytes·β)`.

use crate::interp::{allocate, eval_affine, eval_int, exec_stmt, SimError};
use crate::machine::MachineModel;
use crate::store::{Array, Store};
use dhpf_codegen::Env;
use dhpf_core::driver::Compiled;
use dhpf_core::ir::ReduceOp;
use dhpf_core::spmd::{CommEvent, NestOp, SpmdItem, SpmdProgram};
use dhpf_core::ProcCoord;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// A message between ranks: event tag, send timestamp, payload.
#[derive(Clone, Debug)]
struct Message {
    tag: usize,
    t_send: f64,
    values: Vec<f64>,
}

/// Per-rank communication activity: message/byte counts split by
/// direction, and the in-place vs buffered transfer mix (contiguous
/// messages skip the pack/unpack copy — the paper's §5 in-place receives).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankComm {
    /// Messages this rank sent.
    pub sent_messages: u64,
    /// Messages this rank received.
    pub recv_messages: u64,
    /// Payload bytes this rank sent.
    pub sent_bytes: u64,
    /// Payload bytes this rank received.
    pub recv_bytes: u64,
    /// Sends of contiguous regions (no pack copy).
    pub inplace_sends: u64,
    /// Sends that packed a strided region into a buffer.
    pub buffered_sends: u64,
    /// Receives landing directly in place (contiguous target).
    pub inplace_recvs: u64,
    /// Receives unpacked element-by-element from a buffer.
    pub buffered_recvs: u64,
}

/// Result of a simulated run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Maximum logical completion time over all ranks (seconds).
    pub time: f64,
    /// Per-rank completion times.
    pub rank_times: Vec<f64>,
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Per-rank communication activity (indexed by rank).
    pub comm: Vec<RankComm>,
    /// Final scalar values (identical on all ranks; taken from rank 0).
    pub floats: HashMap<String, f64>,
    /// Final integer scalars from rank 0.
    pub ints: HashMap<String, i64>,
    /// Global arrays gathered from each rank's owned region.
    pub arrays: HashMap<String, Array>,
}

/// Runs `compiled` on a processor grid with `counts[d]` processors in
/// dimension `d`.
///
/// # Errors
///
/// Returns [`SimError`] for unsupported grid kinds (fully cyclic virtual
/// processors), missing inputs, or internal communication mismatches.
///
/// # Panics
///
/// Panics if `counts.len()` does not match the program's processor rank, or
/// if a fixed dimension's count disagrees with the program.
pub fn simulate(
    compiled: &Compiled,
    counts: &[i64],
    inputs: &HashMap<String, i64>,
    machine: &MachineModel,
) -> Result<SimResult, SimError> {
    simulate_with(compiled, counts, inputs, machine, None)
}

/// [`simulate`], optionally recording a `"simulate"` span with aggregate
/// and per-rank communication counters on `trace`. Rank threads never
/// touch the collector: counters are aggregated from the per-rank results
/// on the calling thread, so tracing cannot perturb message timing.
///
/// # Errors
///
/// Same as [`simulate`].
///
/// # Panics
///
/// Same as [`simulate`].
pub fn simulate_with(
    compiled: &Compiled,
    counts: &[i64],
    inputs: &HashMap<String, i64>,
    machine: &MachineModel,
    trace: Option<&dhpf_obs::Collector>,
) -> Result<SimResult, SimError> {
    let span = trace.map(|c| c.begin("simulate", "simulate"));
    let out = simulate_inner(compiled, counts, inputs, machine);
    if let (Some(c), Some(id)) = (trace, span) {
        if let Ok(r) = &out {
            c.counter_on(id, "messages", r.messages as i64);
            c.counter_on(id, "payload bytes", r.bytes as i64);
            let inplace: u64 = r.comm.iter().map(|rc| rc.inplace_sends).sum();
            let buffered: u64 = r.comm.iter().map(|rc| rc.buffered_sends).sum();
            c.counter_on(id, "inplace transfers", inplace as i64);
            c.counter_on(id, "buffered transfers", buffered as i64);
            for (k, rc) in r.comm.iter().enumerate() {
                c.counter_on(id, &format!("rank{k} sent msgs"), rc.sent_messages as i64);
                c.counter_on(id, &format!("rank{k} sent bytes"), rc.sent_bytes as i64);
            }
        }
        c.end(id);
    }
    out
}

fn simulate_inner(
    compiled: &Compiled,
    counts: &[i64],
    inputs: &HashMap<String, i64>,
    machine: &MachineModel,
) -> Result<SimResult, SimError> {
    let program = &compiled.program;
    assert_eq!(
        counts.len(),
        program.proc_dims.len(),
        "processor grid rank mismatch"
    );
    for (d, spec) in program.proc_dims.iter().enumerate() {
        if let ProcCoord::Physical { count } = &spec.coord {
            assert_eq!(
                *count, counts[d],
                "dimension {d} is fixed at {count} processors"
            );
        }
        if matches!(
            spec.coord,
            ProcCoord::CyclicVp { .. } | ProcCoord::CyclicKVp { .. }
        ) {
            return Err(SimError::Unsupported(
                "executor does not run cyclic virtual-processor grids".into(),
            ));
        }
    }
    let nranks: usize = counts.iter().product::<i64>() as usize;
    // Mailboxes: one FIFO channel per (src, dst) pair; sends[src][dst],
    // receivers[dst][src].
    let mut sends: Vec<Vec<Sender<Message>>> = (0..nranks).map(|_| Vec::new()).collect();
    let mut receivers: Vec<Vec<Option<Receiver<Message>>>> = (0..nranks)
        .map(|_| (0..nranks).map(|_| None).collect())
        .collect();
    for src in 0..nranks {
        for dst_row in receivers.iter_mut() {
            let (s, r) = channel::<Message>();
            sends[src].push(s);
            dst_row[src] = Some(r);
        }
    }

    let program = Arc::new(program.clone());
    let analysis = Arc::new(compiled.analysis.clone());
    let machine = *machine;
    let inputs = Arc::new(inputs.clone());
    let counts_v = counts.to_vec();
    let mut handles = Vec::new();
    for rank in 0..nranks {
        let program = Arc::clone(&program);
        let analysis = Arc::clone(&analysis);
        let inputs = Arc::clone(&inputs);
        let counts = counts_v.clone();
        let to_others: Vec<Sender<Message>> = sends[rank].clone();
        let from_others: Vec<Receiver<Message>> = receivers[rank]
            .iter_mut()
            .map(|r| r.take().expect("receiver"))
            .collect();
        handles.push(std::thread::spawn(move || {
            run_rank(
                rank,
                &counts,
                &program,
                &analysis,
                &inputs,
                &machine,
                &to_others,
                &from_others,
            )
        }));
    }
    let mut rank_times = vec![0.0; nranks];
    let mut comm = vec![RankComm::default(); nranks];
    let mut floats = HashMap::new();
    let mut ints = HashMap::new();
    let mut arrays: HashMap<String, Array> = HashMap::new();
    // Join all ranks first: a rank failing early closes its channels and
    // makes peers fail with secondary "closed channel" errors; report the
    // most informative (non-secondary) error.
    let results: Vec<Result<RankOut, SimError>> = handles
        .into_iter()
        .enumerate()
        .map(|(rank, h)| {
            h.join().unwrap_or_else(|_| {
                Err(SimError::Unsupported(format!(
                    "rank {rank} panicked during simulation"
                )))
            })
        })
        .collect();
    if results.iter().any(Result::is_err) {
        let mut errs: Vec<SimError> = results.into_iter().filter_map(Result::err).collect();
        errs.sort_by_key(|e| match e {
            SimError::CommMismatch(m) if m.contains("closed channel") => 1,
            _ => 0,
        });
        return Err(errs.remove(0));
    }
    for (rank, out) in results.into_iter().map(Result::unwrap).enumerate() {
        rank_times[rank] = out.time;
        comm[rank] = out.comm;
        if rank == 0 {
            floats = out.store.floats.clone();
            ints = out.store.ints.clone();
            for (name, arr) in &out.store.arrays {
                arrays.insert(name.clone(), arr.clone());
            }
        }
        // Overlay each rank's owned elements into the global arrays.
        for (name, owned) in out.owned {
            let garr = arrays
                .entry(name.clone())
                .or_insert_with(|| out.store.arrays[&name].clone());
            for (idx, v) in owned {
                garr.set(&idx, v);
            }
        }
    }
    let time = rank_times.iter().cloned().fold(0.0, f64::max);
    Ok(SimResult {
        time,
        rank_times,
        messages: comm.iter().map(|c| c.sent_messages).sum(),
        bytes: comm.iter().map(|c| c.sent_bytes).sum(),
        comm,
        floats,
        ints,
        arrays,
    })
}

/// Elements of one distributed array owned by a rank: `(index tuple, value)`.
type OwnedElems = Vec<(Vec<i64>, f64)>;

/// Communication partners for one event: `(partner rank, data index tuples)`.
type PartnerTuples = Vec<(usize, Vec<Vec<i64>>)>;

struct RankOut {
    time: f64,
    comm: RankComm,
    store: Store,
    owned: Vec<(String, OwnedElems)>,
}

struct Rank<'a> {
    rank: usize,
    nranks: usize,
    program: &'a SpmdProgram,
    machine: &'a MachineModel,
    to: &'a [Sender<Message>],
    from: &'a [Receiver<Message>],
    store: Store,
    env: Env,
    clock: f64,
    comm: RankComm,
    counts: Vec<i64>,
}

#[allow(clippy::too_many_arguments)]
fn run_rank(
    rank: usize,
    counts: &[i64],
    program: &SpmdProgram,
    analysis: &dhpf_hpf::Analysis,
    inputs: &HashMap<String, i64>,
    machine: &MachineModel,
    to: &[Sender<Message>],
    from: &[Receiver<Message>],
) -> Result<RankOut, SimError> {
    let nranks: usize = counts.iter().product::<i64>() as usize;
    let mut store = allocate(analysis, inputs)?;
    store
        .ints
        .insert("number_of_processors".into(), nranks as i64);
    // Bind grid parameters: coordinates (row-major, last dim fastest).
    let mut env: Env = inputs.iter().map(|(k, v)| (k.clone(), *v)).collect();
    // Declared `parameter` constants always win over (stale) inputs: the
    // compiler folded them into the generated sets, so the runtime
    // environment must agree.
    for (name, s) in &analysis.scalars {
        if let dhpf_hpf::ScalarKind::Constant(v) = s.kind {
            env.insert(name.clone(), v);
        }
    }
    env.insert("number_of_processors".into(), nranks as i64);
    let mut rem = rank as i64;
    let mut coords = vec![0i64; counts.len()];
    for d in (0..counts.len()).rev() {
        coords[d] = rem % counts[d];
        rem /= counts[d];
    }
    for (d, spec) in program.proc_dims.iter().enumerate() {
        env.insert(format!("np{}", d + 1), counts[d]);
        match &spec.coord {
            ProcCoord::Physical { .. } => {
                env.insert(format!("m{}", d + 1), coords[d]);
            }
            ProcCoord::BlockVp { bsize, nproc } => {
                let extent = spec
                    .extent
                    .as_ref()
                    .ok_or_else(|| SimError::Unbound("template extent".into()))?;
                let n = eval_affine(extent, &store)?;
                let bs = (n + counts[d] - 1) / counts[d];
                env.insert(bsize.clone(), bs);
                env.insert(nproc.clone(), counts[d]);
                env.insert(format!("m{}", d + 1), bs * coords[d] + 1);
            }
            _ => unreachable!("rejected before spawn"),
        }
    }
    let mut r = Rank {
        rank,
        nranks,
        program,
        machine,
        to,
        from,
        store,
        env,
        clock: 0.0,
        comm: RankComm::default(),
        counts: counts.to_vec(),
    };
    r.run_items(&program.items)?;
    // Gather owned regions.
    let mut owned = Vec::new();
    for (name, spec) in &program.arrays {
        if let Some(code) = &spec.owned_code {
            let arr = &r.store.arrays[name];
            let rank_v = arr.dims.len();
            let mut items = Vec::new();
            let mut env = r.env.clone();
            code.execute(&mut env, &mut |_, e| {
                let idx: Vec<i64> = (0..rank_v).map(|d| e[&format!("d{}", d + 1)]).collect();
                items.push((idx.clone(), arr.get(&idx)));
            })
            .map_err(|e| SimError::Unbound(e.0))?;
            owned.push((name.clone(), items));
        }
    }
    Ok(RankOut {
        time: r.clock,
        comm: r.comm,
        store: r.store,
        owned,
    })
}

impl Rank<'_> {
    fn run_items(&mut self, items: &[SpmdItem]) -> Result<(), SimError> {
        for item in items {
            match item {
                SpmdItem::Serial(stmt) => {
                    let mut flops = 0u64;
                    self.sync_env_into_store();
                    exec_stmt(stmt, &mut self.store, &mut flops)?;
                    self.sync_store_into_env();
                    self.clock += flops as f64 * self.machine.flop;
                }
                SpmdItem::SerialLoop { var, lo, hi, body } => {
                    self.sync_env_into_store();
                    let lo = eval_int(lo, &self.store)?;
                    let hi = eval_int(hi, &self.store)?;
                    for x in lo..=hi {
                        self.env.insert(var.clone(), x);
                        self.store.ints.insert(var.clone(), x);
                        self.run_items(body)?;
                    }
                }
                SpmdItem::Nest(nest) => {
                    // Snapshot reduction accumulators.
                    let snaps: Vec<(String, f64)> = nest
                        .reductions
                        .iter()
                        .map(|r| {
                            (
                                r.scalar.clone(),
                                self.store.floats.get(&r.scalar).copied().unwrap_or(0.0),
                            )
                        })
                        .collect();
                    let mut env = self.env.clone();
                    // Interpret the nest code; errors inside the callback are
                    // latched and re-raised.
                    let mut pending_err: Option<SimError> = None;
                    let code = nest.code.clone();
                    let ops = nest.ops.clone();
                    let this = &mut *self;
                    code.execute(&mut env, &mut |id, e| {
                        if pending_err.is_some() {
                            return;
                        }
                        if let Err(err) = this.run_op(&ops[id.0], e) {
                            pending_err = Some(err);
                        }
                    })
                    .map_err(|e| SimError::Unbound(e.0))?;
                    if let Some(err) = pending_err {
                        return Err(err);
                    }
                    // Combine reductions.
                    for (red, (name, baseline)) in nest.reductions.iter().zip(snaps) {
                        let mine = self.store.floats.get(&name).copied().unwrap_or(0.0);
                        let combined = self.allreduce(red.op, mine, baseline)?;
                        self.store.floats.insert(name, combined);
                    }
                }
            }
        }
        Ok(())
    }

    /// Executes one nest operation with the loop environment `e`.
    fn run_op(&mut self, op: &NestOp, e: &Env) -> Result<(), SimError> {
        match op {
            NestOp::Assign(cs) => {
                // The loop environment overlays the store; no per-instance
                // copying.
                for g in &cs.guards {
                    if !crate::interp::eval_bool_in(g, &self.store, Some(e))? {
                        return Ok(());
                    }
                }
                let v = crate::interp::eval_f64_in(&cs.rhs, &self.store, Some(e))?;
                self.clock += cs.cost as f64 * self.machine.flop;
                if self.store.arrays.contains_key(&cs.lhs) {
                    let idx = cs
                        .subs
                        .iter()
                        .map(|s| crate::interp::eval_int_in(s, &self.store, Some(e)))
                        .collect::<Result<Vec<_>, _>>()?;
                    self.store
                        .arrays
                        .get_mut(&cs.lhs)
                        .expect("array")
                        .set(&idx, v);
                } else if self.store.ints.contains_key(&cs.lhs)
                    || (!self.store.floats.contains_key(&cs.lhs)
                        && Store::implicitly_integer(&cs.lhs))
                {
                    self.store.ints.insert(cs.lhs.clone(), v as i64);
                } else {
                    self.store.floats.insert(cs.lhs.clone(), v);
                }
                Ok(())
            }
            NestOp::CommSend(ev) => self.comm_send(&self.program.events[*ev].clone(), e),
            NestOp::CommRecv(ev) => self.comm_recv(&self.program.events[*ev].clone(), e),
        }
    }

    /// Enumerates a comm map's code, returning per-partner index lists.
    ///
    /// Partner (`q*`) loops over virtual-processor dimensions are stepped
    /// so that only *real* VPs (`v = B*c + 1`) are visited — the runtime
    /// loop rewrite of the paper's §4.2/Figure 6. A safety filter still
    /// skips any fictitious VP that would slip through.
    fn enumerate_comm(
        &self,
        code: &dhpf_codegen::Code,
        proc_rank: u32,
        data_rank: u32,
        outer: &Env,
    ) -> Result<PartnerTuples, SimError> {
        let mut env = self.env.clone();
        for (k, v) in outer {
            env.insert(k.clone(), *v);
        }
        let mut per_partner: HashMap<usize, Vec<Vec<i64>>> = HashMap::new();
        {
            let counts = &self.counts;
            let program = self.program;
            let base_env = &self.env;
            let mut on_leaf = |e: &Env| {
                let mut partner = 0i64;
                for d in 0..proc_rank as usize {
                    let q = e[&format!("q{}", d + 1)];
                    let c = match &program.proc_dims[d].coord {
                        ProcCoord::Physical { .. } => q,
                        ProcCoord::BlockVp { bsize, .. } => {
                            let bs = base_env[bsize.as_str()];
                            if (q - 1).rem_euclid(bs) != 0 {
                                return; // fictitious VP
                            }
                            (q - 1) / bs
                        }
                        _ => unreachable!(),
                    };
                    if c < 0 || c >= counts[d] {
                        return; // outside the physical grid
                    }
                    partner = partner * counts[d] + c;
                }
                let idx: Vec<i64> = (0..data_rank as usize)
                    .map(|d| e[&format!("d{}", d + 1)])
                    .collect();
                per_partner.entry(partner as usize).or_default().push(idx);
            };
            self.walk_comm(code, &mut env, &mut on_leaf)?;
        }
        let mut out: Vec<(usize, Vec<Vec<i64>>)> = per_partner.into_iter().collect();
        out.sort_by_key(|(p, _)| *p);
        Ok(out)
    }

    /// Executes comm-map code with VP-aware partner-loop stepping.
    fn walk_comm(
        &self,
        code: &dhpf_codegen::Code,
        env: &mut Env,
        on_leaf: &mut impl FnMut(&Env),
    ) -> Result<(), SimError> {
        use dhpf_codegen::Code;
        match code {
            Code::Seq(cs) => {
                for c in cs {
                    self.walk_comm(c, env, on_leaf)?;
                }
            }
            Code::If { cond, body } => {
                if cond.eval(env).map_err(|e| SimError::Unbound(e.0))? {
                    self.walk_comm(body, env, on_leaf)?;
                }
            }
            Code::Loop {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let mut lo = lo.eval(env).map_err(|e| SimError::Unbound(e.0))?;
                let hi = hi.eval(env).map_err(|e| SimError::Unbound(e.0))?;
                let mut step = *step;
                // Partner loop over a virtual-processor dimension: step by
                // the block size, starting at the first real VP >= lo.
                if let Some(d) = var.strip_prefix('q').and_then(|s| s.parse::<usize>().ok()) {
                    if let Some(spec) = self.program.proc_dims.get(d - 1) {
                        if let ProcCoord::BlockVp { bsize, .. } = &spec.coord {
                            let bs = self.env[bsize.as_str()];
                            if step == 1 && bs > 1 {
                                lo += (1 - lo).rem_euclid(bs);
                                step = bs;
                            }
                        }
                    }
                }
                let saved = env.get(var).copied();
                let mut x = lo;
                while x <= hi {
                    env.insert(var.clone(), x);
                    self.walk_comm(body, env, on_leaf)?;
                    x += step;
                }
                match saved {
                    Some(v) => {
                        env.insert(var.clone(), v);
                    }
                    None => {
                        env.remove(var);
                    }
                }
            }
            Code::Stmt(_) => on_leaf(env),
            Code::Comment(_) => {}
        }
        Ok(())
    }

    fn comm_send(&mut self, ev: &CommEvent, outer: &Env) -> Result<(), SimError> {
        let plan = self.enumerate_comm(&ev.send_code, ev.proc_rank, ev.data_rank, outer)?;
        for (partner, idxs) in plan {
            if partner == self.rank {
                continue;
            }
            let arr = &self.store.arrays[&ev.array];
            let values: Vec<f64> = idxs.iter().map(|i| arr.get(i)).collect();
            let nbytes = (values.len() * 8) as u64;
            if ev.contiguous {
                self.comm.inplace_sends += 1;
            } else {
                self.clock += values.len() as f64 * self.machine.copy;
                self.comm.buffered_sends += 1;
            }
            self.clock += self.machine.overhead;
            self.comm.sent_messages += 1;
            self.comm.sent_bytes += nbytes;
            self.to[partner]
                .send(Message {
                    tag: ev.id,
                    t_send: self.clock,
                    values,
                })
                .map_err(|_| SimError::CommMismatch("send on closed channel".into()))?;
        }
        Ok(())
    }

    fn comm_recv(&mut self, ev: &CommEvent, outer: &Env) -> Result<(), SimError> {
        let plan = self.enumerate_comm(&ev.recv_code, ev.proc_rank, ev.data_rank, outer)?;
        for (partner, idxs) in plan {
            if partner == self.rank {
                continue;
            }
            let msg = self.from[partner]
                .recv()
                .map_err(|_| SimError::CommMismatch("recv on closed channel".into()))?;
            if msg.tag != ev.id || msg.values.len() != idxs.len() {
                return Err(SimError::CommMismatch(format!(
                    "rank {} expected event {} ({} elems) from {}, got event {} ({} elems)",
                    self.rank,
                    ev.id,
                    idxs.len(),
                    partner,
                    msg.tag,
                    msg.values.len()
                )));
            }
            let nbytes = (msg.values.len() * 8) as u64;
            self.clock = self
                .clock
                .max(msg.t_send + self.machine.transfer_time(nbytes));
            if ev.contiguous {
                self.comm.inplace_recvs += 1;
            } else {
                self.clock += msg.values.len() as f64 * self.machine.copy;
                self.comm.buffered_recvs += 1;
            }
            self.comm.recv_messages += 1;
            self.comm.recv_bytes += nbytes;
            let arr = self
                .store
                .arrays
                .get_mut(&ev.array)
                .expect("comm array exists");
            for (idx, v) in idxs.iter().zip(&msg.values) {
                arr.set(idx, *v);
            }
        }
        Ok(())
    }

    /// Combines a reduction across all ranks (star topology via rank 0).
    fn allreduce(&mut self, op: ReduceOp, mine: f64, baseline: f64) -> Result<f64, SimError> {
        const REDUCE_TAG: usize = usize::MAX;
        let contribution = match op {
            ReduceOp::Add => mine - baseline,
            _ => mine,
        };
        if self.rank == 0 {
            let mut acc = contribution;
            let mut t = self.clock;
            for p in 1..self.nranks {
                let m = self.from[p]
                    .recv()
                    .map_err(|_| SimError::CommMismatch("reduce recv".into()))?;
                debug_assert_eq!(m.tag, REDUCE_TAG);
                t = t.max(m.t_send);
                acc = match op {
                    ReduceOp::Add => acc + m.values[0],
                    ReduceOp::Max => acc.max(m.values[0]),
                    ReduceOp::Min => acc.min(m.values[0]),
                };
            }
            let total = match op {
                ReduceOp::Add => baseline + acc,
                _ => acc,
            };
            let log_p = (self.nranks as f64).log2().ceil().max(1.0);
            t += 2.0 * self.machine.alpha * log_p;
            self.clock = t;
            for p in 1..self.nranks {
                self.to[p]
                    .send(Message {
                        tag: REDUCE_TAG,
                        t_send: t,
                        values: vec![total],
                    })
                    .map_err(|_| SimError::CommMismatch("reduce bcast".into()))?;
            }
            Ok(total)
        } else {
            self.to[0]
                .send(Message {
                    tag: REDUCE_TAG,
                    t_send: self.clock,
                    values: vec![contribution],
                })
                .map_err(|_| SimError::CommMismatch("reduce send".into()))?;
            let m = self.from[0]
                .recv()
                .map_err(|_| SimError::CommMismatch("reduce final".into()))?;
            self.clock = self.clock.max(m.t_send);
            Ok(m.values[0])
        }
    }

    fn sync_env_into_store(&mut self) {
        for (k, v) in &self.env {
            self.store.ints.insert(k.clone(), *v);
        }
    }

    fn sync_store_into_env(&mut self) {
        // Integer scalars updated by serial statements must be visible as
        // loop-bound parameters.
        for (k, v) in &self.store.ints {
            self.env.insert(k.clone(), *v);
        }
    }
}
