//! Expression evaluation and the serial reference interpreter.
//!
//! The serial interpreter executes the original (unpartitioned) program
//! directly from its AST; the SPMD executor's results are validated against
//! it in the integration tests.

use crate::store::{Array, Store};
use dhpf_hpf::{Analysis, BinOp, Expr, ScalarKind, Stmt, StmtKind, TypeName, UnOp};
use std::collections::HashMap;
use std::fmt;

/// Runtime errors of the interpreters.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum SimError {
    /// An unbound scalar or missing runtime input.
    Unbound(String),
    /// An unsupported construct or intrinsic reached execution.
    Unsupported(String),
    /// Communication mismatch between ranks (an internal invariant).
    CommMismatch(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Unbound(n) => write!(f, "unbound variable '{n}'"),
            SimError::Unsupported(m) => write!(f, "unsupported at runtime: {m}"),
            SimError::CommMismatch(m) => write!(f, "communication mismatch: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Evaluates an expression to `f64` against a store, with an optional
/// overlay of integer loop-variable bindings (checked first).
pub fn eval_f64_in(
    e: &Expr,
    store: &Store,
    env: Option<&HashMap<String, i64>>,
) -> Result<f64, SimError> {
    Ok(match e {
        Expr::Int(v) => *v as f64,
        Expr::Real(v) => *v,
        Expr::Var(name) => {
            if let Some(v) = env.and_then(|e| e.get(name)) {
                *v as f64
            } else if let Some(v) = store.floats.get(name) {
                *v
            } else if let Some(v) = store.ints.get(name) {
                *v as f64
            } else {
                return Err(SimError::Unbound(name.clone()));
            }
        }
        Expr::Ref(name, args) => {
            if let Some(arr) = store.arrays.get(name) {
                let idx = args
                    .iter()
                    .map(|a| eval_int_in(a, store, env))
                    .collect::<Result<Vec<_>, _>>()?;
                arr.get(&idx)
            } else {
                eval_intrinsic(name, args, store, env)?
            }
        }
        Expr::Bin(op, a, b) => {
            let (x, y) = (eval_f64_in(a, store, env)?, eval_f64_in(b, store, env)?);
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Pow => x.powf(y),
                BinOp::Lt => bool_val(x < y),
                BinOp::Le => bool_val(x <= y),
                BinOp::Gt => bool_val(x > y),
                BinOp::Ge => bool_val(x >= y),
                BinOp::Eq => bool_val(x == y),
                BinOp::Ne => bool_val(x != y),
                BinOp::And => bool_val(x != 0.0 && y != 0.0),
                BinOp::Or => bool_val(x != 0.0 || y != 0.0),
            }
        }
        Expr::Un(UnOp::Neg, a) => -eval_f64_in(a, store, env)?,
        Expr::Un(UnOp::Not, a) => bool_val(eval_f64_in(a, store, env)? == 0.0),
    })
}

/// Evaluates an expression to `f64` against a store.
pub fn eval_f64(e: &Expr, store: &Store) -> Result<f64, SimError> {
    eval_f64_in(e, store, None)
}

fn bool_val(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

/// Evaluates an expression to `i64`, with an optional integer overlay.
pub fn eval_int_in(
    e: &Expr,
    store: &Store,
    env: Option<&HashMap<String, i64>>,
) -> Result<i64, SimError> {
    Ok(match e {
        Expr::Int(v) => *v,
        Expr::Real(v) => *v as i64,
        Expr::Var(name) => {
            if let Some(v) = env.and_then(|e| e.get(name)) {
                *v
            } else if let Some(v) = store.ints.get(name) {
                *v
            } else if let Some(v) = store.floats.get(name) {
                *v as i64
            } else {
                return Err(SimError::Unbound(name.clone()));
            }
        }
        Expr::Bin(op, a, b) => {
            let (x, y) = (eval_int_in(a, store, env)?, eval_int_in(b, store, env)?);
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => {
                    if y == 0 {
                        return Err(SimError::Unsupported("division by zero".into()));
                    }
                    x / y
                }
                _ => return Ok(eval_f64_in(e, store, env)? as i64),
            }
        }
        Expr::Un(UnOp::Neg, a) => -eval_int_in(a, store, env)?,
        _ => eval_f64_in(e, store, env)? as i64,
    })
}

/// Evaluates an expression to `i64` (used for subscripts and loop bounds).
pub fn eval_int(e: &Expr, store: &Store) -> Result<i64, SimError> {
    eval_int_in(e, store, None)
}

/// Evaluates a condition (nonzero = true).
pub fn eval_bool(e: &Expr, store: &Store) -> Result<bool, SimError> {
    Ok(eval_f64(e, store)? != 0.0)
}

/// Evaluates a condition with an integer overlay (nonzero = true).
pub fn eval_bool_in(
    e: &Expr,
    store: &Store,
    env: Option<&HashMap<String, i64>>,
) -> Result<bool, SimError> {
    Ok(eval_f64_in(e, store, env)? != 0.0)
}

fn eval_intrinsic(
    name: &str,
    args: &[Expr],
    store: &Store,
    env: Option<&HashMap<String, i64>>,
) -> Result<f64, SimError> {
    let vals: Vec<f64> = args
        .iter()
        .map(|a| eval_f64_in(a, store, env))
        .collect::<Result<_, _>>()?;
    Ok(match (name, vals.as_slice()) {
        ("abs", [x]) => x.abs(),
        ("sqrt", [x]) => x.sqrt(),
        ("exp", [x]) => x.exp(),
        ("log", [x]) => x.ln(),
        ("max", xs) if !xs.is_empty() => xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        ("min", xs) if !xs.is_empty() => xs.iter().cloned().fold(f64::INFINITY, f64::min),
        ("mod", [x, y]) => x - (x / y).floor() * y,
        ("sign", [x, y]) => x.abs() * y.signum(),
        ("float" | "dble" | "real", [x]) => *x,
        ("int", [x]) => x.trunc(),
        ("number_of_processors", []) => *store
            .ints
            .get("number_of_processors")
            .ok_or_else(|| SimError::Unbound("number_of_processors".into()))?
            as f64,
        _ => {
            return Err(SimError::Unsupported(format!(
                "intrinsic '{name}' with {} arguments",
                vals.len()
            )))
        }
    })
}

/// Allocates the unit's declared arrays and scalars into a store.
pub fn allocate(analysis: &Analysis, inputs: &HashMap<String, i64>) -> Result<Store, SimError> {
    let mut store = Store::new();
    for (k, v) in inputs {
        store.ints.insert(k.clone(), *v);
    }
    for (name, s) in &analysis.scalars {
        match s.kind {
            ScalarKind::Constant(v) => {
                store.ints.insert(name.clone(), v);
            }
            // Runtime inputs must come from `inputs`; leaving them unbound
            // makes a missing input a loud error at its first use.
            ScalarKind::Symbolic => {}
            ScalarKind::Local => match s.ty {
                TypeName::Integer => {
                    store.ints.entry(name.clone()).or_insert(0);
                }
                TypeName::Real => {
                    store.floats.entry(name.clone()).or_insert(0.0);
                }
            },
        }
    }
    for (name, info) in &analysis.arrays {
        let dims = info
            .dims
            .iter()
            .map(|(lo, hi)| -> Result<(i64, i64), SimError> {
                Ok((eval_affine(lo, &store)?, eval_affine(hi, &store)?))
            })
            .collect::<Result<Vec<_>, _>>()?;
        store.arrays.insert(name.clone(), Array::new(dims));
    }
    Ok(store)
}

/// Evaluates a frontend affine expression against a store's integers.
pub fn eval_affine(a: &dhpf_hpf::Affine, store: &Store) -> Result<i64, SimError> {
    let mut acc = a.constant;
    for (name, c) in &a.terms {
        let v = store
            .ints
            .get(name)
            .ok_or_else(|| SimError::Unbound(name.clone()))?;
        acc += c * v;
    }
    Ok(acc)
}

/// Runs the original program serially (the validation oracle), returning
/// the final store and the executed floating-point operation count.
///
/// # Errors
///
/// Returns [`SimError`] for unbound inputs or unsupported constructs.
pub fn run_serial(
    analysis: &Analysis,
    inputs: &HashMap<String, i64>,
) -> Result<(Store, u64), SimError> {
    let mut store = allocate(analysis, inputs)?;
    let mut flops = 0u64;
    exec_block(&analysis.unit.body, &mut store, &mut flops)?;
    Ok((store, flops))
}

fn exec_block(body: &[Stmt], store: &mut Store, flops: &mut u64) -> Result<(), SimError> {
    for s in body {
        exec_stmt(s, store, flops)?;
    }
    Ok(())
}

/// Executes one statement against a store (used by both interpreters for
/// replicated statements).
pub fn exec_stmt(s: &Stmt, store: &mut Store, flops: &mut u64) -> Result<(), SimError> {
    match &s.kind {
        StmtKind::Assign {
            name, subs, rhs, ..
        } => {
            let v = eval_f64(rhs, store)?;
            *flops += cost_of(rhs);
            if store.arrays.contains_key(name) {
                let idx = subs
                    .iter()
                    .map(|e| eval_int(e, store))
                    .collect::<Result<Vec<_>, _>>()?;
                store
                    .arrays
                    .get_mut(name)
                    .expect("checked above")
                    .set(&idx, v);
            } else if store.ints.contains_key(name)
                || (!store.floats.contains_key(name) && Store::implicitly_integer(name))
            {
                store.ints.insert(name.clone(), v as i64);
            } else {
                store.floats.insert(name.clone(), v);
            }
        }
        StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            let lo = eval_int(lo, store)?;
            let hi = eval_int(hi, store)?;
            let step = match step {
                Some(e) => eval_int(e, store)?,
                None => 1,
            };
            let mut x = lo;
            while (step > 0 && x <= hi) || (step < 0 && x >= hi) {
                store.ints.insert(var.clone(), x);
                exec_block(body, store, flops)?;
                x += step;
            }
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            if eval_bool(cond, store)? {
                exec_block(then_body, store, flops)?;
            } else {
                exec_block(else_body, store, flops)?;
            }
        }
        StmtKind::Read { vars } => {
            for v in vars {
                if !store.ints.contains_key(v) && !store.floats.contains_key(v) {
                    return Err(SimError::Unbound(format!("runtime input '{v}'")));
                }
            }
        }
        StmtKind::Print { .. } => {}
        StmtKind::Call { name, .. } => {
            return Err(SimError::Unsupported(format!("call '{name}'")));
        }
    }
    Ok(())
}

/// Floating-point operation count of an expression (the cost model).
pub fn cost_of(e: &Expr) -> u64 {
    match e {
        Expr::Bin(_, a, b) => 1 + cost_of(a) + cost_of(b),
        Expr::Un(_, a) => cost_of(a),
        Expr::Ref(_, args) => args.iter().map(cost_of).sum::<u64>() + 1,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhpf_hpf::{analyze, parse};

    #[test]
    fn serial_jacobi_smoke() {
        let src = "
program j
real a(8,8), b(8,8)
do i = 1, 8
  do j = 1, 8
    b(i,j) = i + 10*j
  enddo
enddo
do i = 2, 7
  do j = 2, 7
    a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
  enddo
enddo
end
";
        let prog = parse(src).unwrap();
        let analysis = analyze(&prog.units[0]).unwrap();
        let (store, flops) = run_serial(&analysis, &HashMap::new()).unwrap();
        let a = &store.arrays["a"];
        let b = |i: i64, j: i64| (i + 10 * j) as f64;
        let want = 0.25 * (b(2, 4) + b(4, 4) + b(3, 3) + b(3, 5));
        assert!((a.get(&[3, 4]) - want).abs() < 1e-12);
        assert!(flops > 0);
    }

    #[test]
    fn reductions_and_ifs() {
        let src = "
program r
real a(10)
real s, mx
do i = 1, 10
  a(i) = i * 1.0
enddo
s = 0.0
mx = -1.0e30
do i = 1, 10
  s = s + a(i)
  mx = max(mx, a(i))
enddo
if (s > 50.0) then
  s = s + 1000.0
endif
end
";
        let prog = parse(src).unwrap();
        let analysis = analyze(&prog.units[0]).unwrap();
        let (store, _) = run_serial(&analysis, &HashMap::new()).unwrap();
        assert_eq!(store.floats["s"], 1055.0);
        assert_eq!(store.floats["mx"], 10.0);
    }

    #[test]
    fn runtime_inputs() {
        let src = "
program r
integer n
real a(100)
read *, n
do i = 1, n
  a(i) = 2.0
enddo
end
";
        let prog = parse(src).unwrap();
        let analysis = analyze(&prog.units[0]).unwrap();
        let inputs: HashMap<String, i64> = [("n".to_string(), 7i64)].into_iter().collect();
        let (store, _) = run_serial(&analysis, &inputs).unwrap();
        assert_eq!(store.arrays["a"].get(&[7]), 2.0);
        assert_eq!(store.arrays["a"].get(&[8]), 0.0);
        // Missing input is a positioned runtime error.
        assert!(run_serial(&analysis, &HashMap::new()).is_err());
    }
}
