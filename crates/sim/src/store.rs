//! Array storage for the interpreters (column-major, Fortran-style).

use std::collections::HashMap;

/// One allocated array with inclusive per-dimension bounds.
#[derive(Clone, Debug, PartialEq)]
pub struct Array {
    /// `(lower, upper)` inclusive bounds per dimension.
    pub dims: Vec<(i64, i64)>,
    /// Column-major element storage.
    pub data: Vec<f64>,
}

impl Array {
    /// Allocates a zero-filled array.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is empty (`lb > ub`).
    pub fn new(dims: Vec<(i64, i64)>) -> Self {
        let mut len = 1usize;
        for &(lb, ub) in &dims {
            assert!(lb <= ub, "empty array dimension {lb}:{ub}");
            len *= (ub - lb + 1) as usize;
        }
        Array {
            dims,
            data: vec![0.0; len],
        }
    }

    /// Column-major linear offset of `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds or has the wrong rank.
    pub fn offset(&self, idx: &[i64]) -> usize {
        assert_eq!(idx.len(), self.dims.len(), "rank mismatch");
        let mut off = 0usize;
        let mut stride = 1usize;
        for (d, &(lb, ub)) in self.dims.iter().enumerate() {
            let x = idx[d];
            assert!(
                x >= lb && x <= ub,
                "index {x} out of bounds {lb}:{ub} in dim {d}"
            );
            off += (x - lb) as usize * stride;
            stride *= (ub - lb + 1) as usize;
        }
        off
    }

    /// Reads the element at `idx`.
    pub fn get(&self, idx: &[i64]) -> f64 {
        self.data[self.offset(idx)]
    }

    /// Writes the element at `idx`.
    pub fn set(&mut self, idx: &[i64], v: f64) {
        let off = self.offset(idx);
        self.data[off] = v;
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array has no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Named arrays plus integer and floating-point scalars.
#[derive(Clone, Debug, Default)]
pub struct Store {
    /// Arrays by name.
    pub arrays: HashMap<String, Array>,
    /// Integer scalars (incl. loop variables).
    pub ints: HashMap<String, i64>,
    /// Floating-point scalars.
    pub floats: HashMap<String, f64>,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Fortran implicit typing: names starting with `i`..`n` are integers.
    pub fn implicitly_integer(name: &str) -> bool {
        matches!(name.chars().next(), Some('i'..='n'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_major_layout() {
        let mut a = Array::new(vec![(1, 3), (1, 2)]);
        // (1,1)(2,1)(3,1)(1,2)(2,2)(3,2)
        a.set(&[2, 1], 5.0);
        assert_eq!(a.offset(&[2, 1]), 1);
        a.set(&[1, 2], 7.0);
        assert_eq!(a.offset(&[1, 2]), 3);
        assert_eq!(a.get(&[2, 1]), 5.0);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn nonunit_lower_bounds() {
        let a = Array::new(vec![(0, 99), (1, 100)]);
        assert_eq!(a.offset(&[0, 1]), 0);
        assert_eq!(a.offset(&[99, 1]), 99);
        assert_eq!(a.offset(&[0, 2]), 100);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let a = Array::new(vec![(1, 3)]);
        a.get(&[4]);
    }

    #[test]
    fn implicit_typing() {
        assert!(Store::implicitly_integer("iter"));
        assert!(Store::implicitly_integer("n"));
        assert!(!Store::implicitly_integer("err"));
        assert!(!Store::implicitly_integer("x"));
    }
}
