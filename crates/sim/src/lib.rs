//! # dhpf-sim — an SPMD message-passing machine simulator
//!
//! The execution substrate of the dHPF reproduction (standing in for the
//! paper's IBM SP-2 + MPI): compiled [`SpmdProgram`](dhpf_core::SpmdProgram)s
//! run on `P` simulated ranks (threads with FIFO mailboxes), with simulated
//! time from an α/β communication model and a per-flop compute model.
//!
//! The crate also provides the *serial reference interpreter*
//! ([`run_serial`]) used as the correctness oracle: the gathered distributed
//! arrays and reduction scalars of a simulated run must match it exactly.

#![warn(missing_docs)]

pub mod exec;
pub mod interp;
pub mod machine;
pub mod store;

pub use exec::{simulate, simulate_with, RankComm, SimResult};
pub use interp::{run_serial, SimError};
pub use machine::MachineModel;
pub use store::{Array, Store};
