//! The machine performance model (an α/β model of a message-passing
//! multicomputer, standing in for the paper's IBM SP-2).

/// Cost parameters of the simulated machine, in seconds.
///
/// Simulated time advances as:
/// - each floating-point operation costs [`flop`](MachineModel::flop);
/// - a message of `b` bytes costs the sender
///   [`overhead`](MachineModel::overhead) and arrives at
///   `t_send + alpha + b * beta`;
/// - packing/unpacking a non-contiguous message costs
///   [`copy`](MachineModel::copy) per element on each side (in-place
///   communication skips this);
/// - an allreduce costs `2 * alpha * ceil(log2 P)` beyond synchronization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineModel {
    /// Seconds per floating-point operation.
    pub flop: f64,
    /// Message latency (seconds).
    pub alpha: f64,
    /// Seconds per byte of message payload.
    pub beta: f64,
    /// Sender-side per-message overhead (seconds).
    pub overhead: f64,
    /// Seconds per element copied when packing/unpacking buffers.
    pub copy: f64,
}

impl MachineModel {
    /// Parameters loosely modeled on a mid-1990s IBM SP-2 with the
    /// user-space MPI layer: ~40 us latency, ~35 MB/s bandwidth,
    /// ~50 Mflop/s per node.
    pub fn sp2() -> Self {
        MachineModel {
            flop: 20e-9,
            alpha: 40e-6,
            beta: 1.0 / 35e6,
            overhead: 10e-6,
            copy: 30e-9,
        }
    }

    /// Time for a message of `bytes` to traverse the network.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.alpha + bytes as f64 * self.beta
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        MachineModel::sp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sp2_transfer_time_scales_with_bytes() {
        let m = MachineModel::sp2();
        let small = m.transfer_time(8);
        let big = m.transfer_time(8_000_000);
        assert!(small < 50e-6, "small message dominated by latency");
        assert!(big > 0.2, "large message dominated by bandwidth");
    }
}
