//! Pseudo-Fortran emission of generated code, for inspection and examples.

use crate::ast::{Code, StmtId};
use std::fmt::Write as _;

/// Renders `code` as indented pseudo-Fortran.
///
/// `stmt_text` maps each [`StmtId`] to its source text.
///
/// # Examples
///
/// ```
/// use dhpf_codegen::{codegen_set, CodegenOptions, StmtId, emit_fortran};
/// use dhpf_omega::Set;
///
/// let s: Set = "{[i] : 1 <= i <= N}".parse().unwrap();
/// let code = codegen_set(&s, StmtId(0), &["i"], &CodegenOptions::default()).unwrap();
/// let text = emit_fortran(&code, &|_| "A(i) = 0".to_string());
/// assert!(text.contains("do i = 1, N"));
/// ```
pub fn emit_fortran(code: &Code, stmt_text: &dyn Fn(StmtId) -> String) -> String {
    let mut out = String::new();
    emit(code, stmt_text, 0, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn emit(code: &Code, stmt_text: &dyn Fn(StmtId) -> String, depth: usize, out: &mut String) {
    match code {
        Code::Seq(cs) => {
            for c in cs {
                emit(c, stmt_text, depth, out);
            }
        }
        Code::Loop {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            indent(out, depth);
            if *step == 1 {
                let _ = writeln!(out, "do {var} = {lo}, {hi}");
            } else {
                let _ = writeln!(out, "do {var} = {lo}, {hi}, {step}");
            }
            emit(body, stmt_text, depth + 1, out);
            indent(out, depth);
            out.push_str("end do\n");
        }
        Code::If { cond, body } => {
            indent(out, depth);
            let _ = writeln!(out, "if ({cond}) then");
            emit(body, stmt_text, depth + 1, out);
            indent(out, depth);
            out.push_str("end if\n");
        }
        Code::Stmt(id) => {
            indent(out, depth);
            let _ = writeln!(out, "{}", stmt_text(*id));
        }
        Code::Comment(c) => {
            indent(out, depth);
            let _ = writeln!(out, "! {c}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Code, StmtId};
    use crate::expr::{Cond, Expr};

    #[test]
    fn emits_nested_structure() {
        let code = Code::Loop {
            var: "i".into(),
            lo: Expr::Const(1),
            hi: Expr::Var("N".into()),
            step: 2,
            body: Box::new(Code::If {
                cond: Cond::Geq(Expr::Var("i".into()), Expr::Const(3)),
                body: Box::new(Code::Seq(vec![
                    Code::Comment("pack".into()),
                    Code::Stmt(StmtId(1)),
                ])),
            }),
        };
        let txt = emit_fortran(&code, &|id| format!("call work({})", id.0));
        let expect =
            "do i = 1, N, 2\n  if (i >= 3) then\n    ! pack\n    call work(1)\n  end if\nend do\n";
        assert_eq!(txt, expect);
    }
}
