//! The loop-nest AST produced by code generation.

use crate::expr::{Cond, Env, Expr, UnboundVar};
use std::fmt;

/// Opaque handle identifying a statement to the code-generation client.
///
/// The generator enumerates iteration tuples; what a statement *does* is the
/// client's business (printing, SPMD interpretation, packing a buffer, ...).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct StmtId(pub usize);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Generated code: loop nests, guards, and statement instances.
#[derive(Clone, Debug, PartialEq)]
pub enum Code {
    /// Sequential composition.
    Seq(Vec<Code>),
    /// `do var = lo, hi, step { body }` (inclusive bounds; `step >= 1`).
    Loop {
        /// Loop index name, bound in the body.
        var: String,
        /// Lower bound (inclusive).
        lo: Expr,
        /// Upper bound (inclusive).
        hi: Expr,
        /// Stride (positive).
        step: i64,
        /// Loop body.
        body: Box<Code>,
    },
    /// `if cond { body }`.
    If {
        /// Guard condition.
        cond: Cond,
        /// Guarded code.
        body: Box<Code>,
    },
    /// One statement instance at the current loop indices.
    Stmt(StmtId),
    /// A comment for readable emission; no runtime effect.
    Comment(String),
}

impl Code {
    /// The empty program.
    pub fn empty() -> Code {
        Code::Seq(Vec::new())
    }

    /// True if no statement can execute.
    pub fn is_empty(&self) -> bool {
        match self {
            Code::Seq(cs) => cs.iter().all(Code::is_empty),
            Code::Loop { body, .. } | Code::If { body, .. } => body.is_empty(),
            Code::Stmt(_) => false,
            Code::Comment(_) => true,
        }
    }

    /// Walks the code, invoking `on_stmt` for every executed statement
    /// instance with the current environment.
    ///
    /// # Errors
    ///
    /// Returns [`UnboundVar`] if a bound or guard mentions a variable that is
    /// neither a parameter in `env` nor an enclosing loop index.
    pub fn execute<F: FnMut(StmtId, &Env)>(
        &self,
        env: &mut Env,
        on_stmt: &mut F,
    ) -> Result<(), UnboundVar> {
        match self {
            Code::Seq(cs) => {
                for c in cs {
                    c.execute(env, on_stmt)?;
                }
            }
            Code::Loop {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let lo = lo.eval(env)?;
                let hi = hi.eval(env)?;
                let saved = env.get(var).copied();
                let mut x = lo;
                while x <= hi {
                    env.insert(var.clone(), x);
                    body.execute(env, on_stmt)?;
                    x += *step;
                }
                match saved {
                    Some(v) => {
                        env.insert(var.clone(), v);
                    }
                    None => {
                        env.remove(var);
                    }
                }
            }
            Code::If { cond, body } => {
                if cond.eval(env)? {
                    body.execute(env, on_stmt)?;
                }
            }
            Code::Stmt(id) => on_stmt(*id, env),
            Code::Comment(_) => {}
        }
        Ok(())
    }

    /// Simplifies bounds/conditions and drops dead branches.
    pub fn simplified(&self) -> Code {
        match self {
            Code::Seq(cs) => {
                let mut out = Vec::new();
                for c in cs {
                    match c.simplified() {
                        Code::Seq(inner) => out.extend(inner),
                        x => out.push(x),
                    }
                }
                if out.len() == 1 {
                    out.pop().unwrap()
                } else {
                    Code::Seq(out)
                }
            }
            Code::Loop {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let body = body.simplified();
                if body.is_empty() {
                    return Code::empty();
                }
                let lo = lo.simplified();
                let hi = hi.simplified();
                if let (Expr::Const(a), Expr::Const(b)) = (&lo, &hi) {
                    if a > b {
                        return Code::empty();
                    }
                }
                Code::Loop {
                    var: var.clone(),
                    lo,
                    hi,
                    step: *step,
                    body: Box::new(body),
                }
            }
            Code::If { cond, body } => {
                let body = body.simplified();
                if body.is_empty() {
                    return Code::empty();
                }
                match cond.simplified() {
                    Cond::Bool(true) => body,
                    Cond::Bool(false) => Code::empty(),
                    c => Code::If {
                        cond: c,
                        body: Box::new(body),
                    },
                }
            }
            Code::Stmt(id) => Code::Stmt(*id),
            Code::Comment(c) => Code::Comment(c.clone()),
        }
    }

    /// Hoists guards that do not mention the surrounding loop variable out
    /// of that loop, up to `levels` times (the paper's guard lifting).
    pub fn lift_guards(&self, levels: u32) -> Code {
        if levels == 0 {
            return self.clone();
        }
        let mut code = self.clone();
        for _ in 0..levels {
            code = lift_once(&code);
        }
        code.simplified()
    }

    /// Counts statement instances syntactically (not dynamically).
    pub fn count_stmts(&self) -> usize {
        match self {
            Code::Seq(cs) => cs.iter().map(Code::count_stmts).sum(),
            Code::Loop { body, .. } | Code::If { body, .. } => body.count_stmts(),
            Code::Stmt(_) => 1,
            Code::Comment(_) => 0,
        }
    }
}

/// One pass of guard hoisting.
fn lift_once(code: &Code) -> Code {
    match code {
        Code::Seq(cs) => Code::Seq(cs.iter().map(lift_once).collect()),
        Code::Loop {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            let body = lift_once(body);
            // If the loop body is a single If whose condition does not
            // mention the loop variable, swap them.
            if let Code::If { cond, body: inner } = &body {
                if !cond.mentions(var) {
                    return Code::If {
                        cond: cond.clone(),
                        body: Box::new(Code::Loop {
                            var: var.clone(),
                            lo: lo.clone(),
                            hi: hi.clone(),
                            step: *step,
                            body: inner.clone(),
                        }),
                    };
                }
                // Split a conjunction into invariant and variant parts.
                if let Cond::And(cs) = cond {
                    let (inv, var_part): (Vec<_>, Vec<_>) =
                        cs.iter().cloned().partition(|c| !c.mentions(var));
                    if !inv.is_empty() && !var_part.is_empty() {
                        return Code::If {
                            cond: Cond::And(inv).simplified(),
                            body: Box::new(Code::Loop {
                                var: var.clone(),
                                lo: lo.clone(),
                                hi: hi.clone(),
                                step: *step,
                                body: Box::new(Code::If {
                                    cond: Cond::And(var_part).simplified(),
                                    body: inner.clone(),
                                }),
                            }),
                        };
                    }
                }
            }
            Code::Loop {
                var: var.clone(),
                lo: lo.clone(),
                hi: hi.clone(),
                step: *step,
                body: Box::new(body),
            }
        }
        Code::If { cond, body } => Code::If {
            cond: cond.clone(),
            body: Box::new(lift_once(body)),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Cond, Expr};

    fn v(name: &str) -> Expr {
        Expr::Var(name.into())
    }

    #[test]
    fn execute_collects_tuples() {
        // do i = 1,3 { do j = i,3 { S0 } }
        let code = Code::Loop {
            var: "i".into(),
            lo: Expr::Const(1),
            hi: Expr::Const(3),
            step: 1,
            body: Box::new(Code::Loop {
                var: "j".into(),
                lo: v("i"),
                hi: Expr::Const(3),
                step: 1,
                body: Box::new(Code::Stmt(StmtId(0))),
            }),
        };
        let mut env = Env::new();
        let mut got = Vec::new();
        code.execute(&mut env, &mut |_, e| {
            got.push((e["i"], e["j"]));
        })
        .unwrap();
        assert_eq!(got, vec![(1, 1), (1, 2), (1, 3), (2, 2), (2, 3), (3, 3)]);
        assert!(env.is_empty(), "loop vars must be unbound after the loop");
    }

    #[test]
    fn execute_respects_step_and_guard() {
        let code = Code::Loop {
            var: "i".into(),
            lo: Expr::Const(0),
            hi: Expr::Const(10),
            step: 3,
            body: Box::new(Code::If {
                cond: Cond::Geq(v("i"), Expr::Const(4)),
                body: Box::new(Code::Stmt(StmtId(7))),
            }),
        };
        let mut got = Vec::new();
        code.execute(&mut Env::new(), &mut |id, e| got.push((id, e["i"])))
            .unwrap();
        assert_eq!(got, vec![(StmtId(7), 6), (StmtId(7), 9)]);
    }

    #[test]
    fn simplify_drops_empty_loop() {
        let code = Code::Loop {
            var: "i".into(),
            lo: Expr::Const(5),
            hi: Expr::Const(1),
            step: 1,
            body: Box::new(Code::Stmt(StmtId(0))),
        };
        assert!(code.simplified().is_empty());
    }

    #[test]
    fn lift_guard_out_of_loop() {
        // do i { if (n >= 1 && i >= 2) S } => if (n >= 1) do i { if (i >= 2) S }
        let code = Code::Loop {
            var: "i".into(),
            lo: Expr::Const(1),
            hi: v("n"),
            step: 1,
            body: Box::new(Code::If {
                cond: Cond::And(vec![
                    Cond::Geq(v("n"), Expr::Const(1)),
                    Cond::Geq(v("i"), Expr::Const(2)),
                ]),
                body: Box::new(Code::Stmt(StmtId(0))),
            }),
        };
        let lifted = code.lift_guards(1);
        match &lifted {
            Code::If { cond, body } => {
                assert!(!cond.mentions("i"));
                assert!(matches!(**body, Code::Loop { .. }));
            }
            other => panic!("expected hoisted guard, got {other:?}"),
        }
        // Semantics preserved.
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut env: Env = [("n".to_string(), 5i64)].into_iter().collect();
        code.execute(&mut env.clone(), &mut |_, e| a.push(e["i"]))
            .unwrap();
        lifted
            .execute(&mut env, &mut |_, e| b.push(e["i"]))
            .unwrap();
        assert_eq!(a, b);
    }
}
