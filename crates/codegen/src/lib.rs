//! # dhpf-codegen — loop-nest synthesis from integer sets
//!
//! The multiple-mappings code-generation substrate of the dHPF reproduction
//! (Kelly, Pugh & Rosser's `Codegen(S1..Sv | Known)` interface from the
//! paper's Appendix B): given one iteration space per statement, produce a
//! single loop nest that enumerates all tuples in lexicographic order, with
//! identical tuples of different statements ordered by statement index.
//!
//! The generated [`Code`] can be pretty-printed as pseudo-Fortran with
//! [`emit_fortran`] or executed directly (the SPMD simulator interprets it)
//! via [`Code::execute`].
//!
//! ```
//! use dhpf_codegen::{codegen_set, CodegenOptions, StmtId};
//! use dhpf_omega::Set;
//!
//! let space: Set = "{[i,j] : 1 <= i <= N && i <= j <= N}".parse().unwrap();
//! let code = codegen_set(&space, StmtId(0), &["i", "j"], &CodegenOptions::default()).unwrap();
//! let mut tuples = Vec::new();
//! let mut env = [("N".to_string(), 3i64)].into_iter().collect();
//! code.execute(&mut env, &mut |_, e| tuples.push((e["i"], e["j"]))).unwrap();
//! assert_eq!(tuples, vec![(1,1), (1,2), (1,3), (2,2), (2,3), (3,3)]);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod build;
pub mod emit;
pub mod expr;

pub use ast::{Code, StmtId};
pub use build::{codegen, codegen_set, CodegenError, CodegenOptions, Mapping};
pub use emit::emit_fortran;
pub use expr::{Cond, Env, Expr, UnboundVar};
