//! Loop-nest synthesis from integer sets (the Kelly–Pugh–Rosser
//! multiple-mappings code generation interface of the paper's Appendix B).
//!
//! `codegen(S1..Sv | Known)` produces code that enumerates the tuples of the
//! given iteration spaces in lexicographic order, with the same tuple of
//! different statements ordered by statement index. Each statement's space
//! is first made *disjoint* (so no instance executes twice), reduced to
//! stride form (congruence-only existentials), and then a single shared
//! loop nest per level is emitted whose bounds are the union hull; piece
//! membership is enforced by guards, which a lifting pass hoists out of
//! loops they do not depend on.

use crate::ast::{Code, StmtId};
use crate::expr::{Cond, Expr};
use dhpf_omega::{to_stride_form_in, Conjunct, Context, LinExpr, Set, Var};
use std::fmt;

/// One statement and its iteration space.
#[derive(Clone, Debug)]
pub struct Mapping {
    /// The statement to execute for each tuple.
    pub stmt: StmtId,
    /// Its iteration space.
    pub space: Set,
}

/// Options controlling code generation.
#[derive(Clone, Debug)]
pub struct CodegenOptions {
    /// Constraints guaranteed by the enclosing scope; guards implied by
    /// them are not emitted (the paper's `Known` parameter).
    pub known: Option<Set>,
    /// How many loop levels guards may be hoisted out of (the paper lifts
    /// one level by default).
    pub lift_levels: u32,
    /// Emit one independent loop nest per disjoint piece instead of a
    /// single shared nest with membership guards. Tuples are then visited
    /// piece-by-piece, *not* in global lexicographic order — only valid
    /// when the caller knows iterations may be reordered (e.g. the
    /// loop-splitting sections of Figure 4). Per-iteration guard cost
    /// drops from O(pieces) to O(1).
    pub sequential_pieces: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            known: None,
            lift_levels: 1,
            sequential_pieces: false,
        }
    }
}

/// Errors reported by loop synthesis.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodegenError {
    /// A loop level has no constant or symbolic lower/upper bound.
    Unbounded {
        /// The 0-based loop level without a bound.
        level: u32,
    },
    /// A conjunct's existential system could not be reduced to strides.
    Inexact,
    /// The mappings disagree on arity.
    ArityMismatch,
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Unbounded { level } => {
                write!(f, "loop level {level} has no finite bound")
            }
            CodegenError::Inexact => write!(f, "existential system not reducible to strides"),
            CodegenError::ArityMismatch => write!(f, "iteration spaces have different arities"),
        }
    }
}

impl std::error::Error for CodegenError {}

/// Generates a loop nest enumerating `space`, executing `stmt` per tuple.
///
/// # Errors
///
/// See [`codegen`].
pub fn codegen_set(
    space: &Set,
    stmt: StmtId,
    names: &[&str],
    opts: &CodegenOptions,
) -> Result<Code, CodegenError> {
    codegen(
        &[Mapping {
            stmt,
            space: space.clone(),
        }],
        names,
        opts,
    )
}

/// Generates code enumerating every mapping's space in lexicographic order
/// (the paper's `Codegen(S1...Sv | Known)`).
///
/// `names[d]` is the loop variable name for level `d`; parameter names come
/// from the sets themselves.
///
/// # Errors
///
/// - [`CodegenError::ArityMismatch`] if spaces disagree on arity or `names`
///   is shorter than the arity.
/// - [`CodegenError::Unbounded`] if some loop level has no bound.
/// - [`CodegenError::Inexact`] if stride-form reduction fails.
pub fn codegen(
    mappings: &[Mapping],
    names: &[&str],
    opts: &CodegenOptions,
) -> Result<Code, CodegenError> {
    if mappings.is_empty() {
        return Ok(Code::empty());
    }
    let arity = mappings[0].space.arity();
    if mappings.iter().any(|m| m.space.arity() != arity) || names.len() < arity as usize {
        return Err(CodegenError::ArityMismatch);
    }
    let known_conj = opts.known.as_ref().and_then(|k| {
        if k.as_relation().conjuncts().len() == 1 {
            Some((
                k.as_relation().conjuncts()[0].clone(),
                k.as_relation().params().to_vec(),
            ))
        } else {
            None
        }
    });
    let mut pieces: Vec<Piece> = Vec::new();
    for (seq, m) in mappings.iter().enumerate() {
        let ctx = m.space.context().cloned();
        let mut space = m.space.clone();
        space.simplify_deep();
        // Disjoint disjunctive form. Every multi-piece producer in the set
        // algebra may return *overlapping* pieces — the conjuncts of the
        // input set itself, stride-form splitting, and the dark-shadow ∨
        // splinters of exact elimination — so each candidate stride-form
        // piece is subtracted against the union of everything emitted
        // before it. Subtracting a single conjunct yields pairwise-disjoint
        // pieces (the complement is built prefix-disjoint), which makes the
        // accumulated list disjoint by induction: the property the shared
        // loop nest needs to enumerate every tuple exactly once.
        let rel = space.as_relation();
        let params = rel.params().to_vec();
        let conjs = rel.conjuncts().to_vec();
        let mut disjoint: Vec<Conjunct> = Vec::new();
        let mut emitted = Set::empty(arity).into_relation();
        emitted.set_context(ctx.as_ref());
        for name in &params {
            emitted.ensure_param(name);
        }
        for c in conjs {
            for sf in to_stride_form_in(c, ctx.as_ref()).map_err(|_| CodegenError::Inexact)? {
                let mut cur = Set::empty(arity).into_relation();
                cur.set_context(ctx.as_ref());
                for name in &params {
                    cur.ensure_param(name);
                }
                cur.add_conjunct(sf.clone());
                let diff = Set::from_relation(cur)
                    .try_subtract(&Set::from_relation(emitted.clone()))
                    .map_err(|_| CodegenError::Inexact)?;
                disjoint.extend(diff.as_relation().conjuncts().iter().cloned());
                emitted.add_conjunct(sf);
            }
        }
        for conj in disjoint {
            pieces.push(Piece {
                stmt: m.stmt,
                seq,
                conj,
                params: params.clone(),
                pending: Vec::new(),
                ctx: ctx.clone(),
            });
        }
    }
    // Pre-pass: parameter-only constraints become pending guards.
    for p in &mut pieces {
        let namer = Namer {
            names,
            params: &p.params,
        };
        for e in p.conj.eqs() {
            if deepest_level(e).is_none() && !has_exist(e) {
                p.pending.push(Cond::Eq(namer.expr(e, 1), Expr::Const(0)));
            }
            if deepest_level(e).is_none() && has_exist(e) {
                if let Some((g, f)) = congruence_parts(e) {
                    if g > 1 {
                        p.pending.push(Cond::Stride {
                            expr: namer.expr(&f, 1),
                            modulus: g,
                            residue: 0,
                        });
                    }
                }
            }
        }
        for e in p.conj.geqs() {
            if deepest_level(e).is_none() {
                p.pending.push(Cond::Geq(namer.expr(e, 1), Expr::Const(0)));
            }
        }
        if let Some((kc, _)) = &known_conj {
            p.prune_pending(kc);
        }
    }
    let code = if opts.sequential_pieces {
        let mut seq = Vec::new();
        for p in &pieces {
            let mut single = vec![p.clone()];
            seq.push(gen_level(&mut single, 0, arity, names)?);
        }
        Code::Seq(seq)
    } else {
        gen_level(&mut pieces, 0, arity, names)?
    };
    Ok(code.simplified().lift_guards(opts.lift_levels + arity))
}

/// A statement piece: one disjoint stride-form conjunct plus accumulated
/// guards that will be emitted at its leaf.
#[derive(Clone, Debug)]
struct Piece {
    stmt: StmtId,
    seq: usize,
    conj: Conjunct,
    params: Vec<String>,
    pending: Vec<Cond>,
    ctx: Option<Context>,
}

impl Piece {
    /// Drops pending guards implied by the known-context conjunct.
    fn prune_pending(&mut self, _known: &Conjunct) {
        // Guard pruning against Known is handled structurally: constraints
        // identical to a Known constraint were already removed by gist-like
        // simplification inside Set::simplify. Further semantic pruning
        // would need a Cond -> LinExpr back-translation; the lifting pass
        // keeps any residual guards cheap (evaluated once per scope).
    }
}

/// Deepest input-variable level mentioned by the expression, if any.
fn deepest_level(e: &LinExpr) -> Option<u32> {
    e.vars()
        .filter_map(|v| match v {
            Var::In(i) => Some(i),
            _ => None,
        })
        .max()
}

fn has_exist(e: &LinExpr) -> bool {
    e.vars().any(|v| v.is_exist())
}

/// For an equality with existential witnesses `Σ k_j·α_j + f = 0`, returns
/// `(g, f)` with `g = gcd(k_j)`: the constraint is `f ≡ 0 (mod g)`.
fn congruence_parts(e: &LinExpr) -> Option<(i64, LinExpr)> {
    let mut g: i64 = 0;
    let mut f = LinExpr::constant(e.constant_term());
    let mut any = false;
    for (v, c) in e.terms() {
        if v.is_exist() {
            any = true;
            g = dhpf_omega::num::gcd(g, c);
        } else {
            f.add_term(v, c);
        }
    }
    if any {
        Some((g.abs(), f))
    } else {
        None
    }
}

struct Namer<'a> {
    names: &'a [&'a str],
    params: &'a [String],
}

impl Namer<'_> {
    /// Translates `scale * e` into an [`Expr`] over loop/parameter names.
    ///
    /// # Panics
    ///
    /// Panics on output or existential variables (never present here).
    fn expr(&self, e: &LinExpr, scale: i64) -> Expr {
        let mut terms = Vec::new();
        for (v, c) in e.terms() {
            let name = match v {
                Var::In(i) => self.names[i as usize].to_string(),
                Var::Param(i) => self.params[i as usize].clone(),
                other => panic!("cannot name variable {other:?} in generated code"),
            };
            let k = c * scale;
            if k == 1 {
                terms.push(Expr::Var(name));
            } else {
                terms.push(Expr::Mul(k, Box::new(Expr::Var(name))));
            }
        }
        let konst = e.constant_term() * scale;
        if konst != 0 || terms.is_empty() {
            terms.push(Expr::Const(konst));
        }
        if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            Expr::Add(terms)
        }
    }
}

/// Bounds information for one piece at one loop level.
struct LevelInfo {
    lowers: Vec<Expr>,
    uppers: Vec<Expr>,
    /// Congruences on this level's variable: `(a*v + f) ≡ 0 (mod g)` kept as
    /// `(residue_expr, modulus)` when solvable for `v`, else raw guard.
    stride: Option<(Expr, i64)>,
    guards: Vec<Cond>,
}

/// Recovers hull bounds for level `d` by exactly projecting away the deeper
/// dimensions. Needed when redundancy elimination removed a direct bound
/// (e.g. `i <= N` implied by `i <= j && j <= N`); an over-approximate hull
/// bound is sound here because the deeper loops become empty outside the
/// true range.
fn recovered_bounds(
    piece: &Piece,
    d: u32,
    arity: u32,
    names: &[&str],
) -> (Option<Expr>, Option<Expr>) {
    let namer = Namer {
        names,
        params: &piece.params,
    };
    let cx = piece.ctx.as_ref();
    let mut work = vec![piece.conj.clone()];
    for deeper in (d + 1)..arity {
        let mut next = Vec::new();
        for c in work {
            // A failed projection (overflow, budget) means no bound can
            // be recovered; the caller turns that into `Unbounded`, which
            // the driver's degradation ladder handles.
            match c.try_eliminate_exact_in(Var::In(deeper), cx) {
                Ok(parts) => next.extend(parts),
                Err(_) => return (None, None),
            }
        }
        work = next;
    }
    // Normalize pieces to stride form so inequalities are witness-free,
    // and drop unsatisfiable residue (dark-shadow/splinter artifacts):
    // either would otherwise veto bound recovery.
    let mut normalized = Vec::new();
    for c in work {
        match to_stride_form_in(c, cx) {
            Ok(parts) => normalized.extend(parts),
            Err(_) => return (None, None),
        }
    }
    let work = normalized;
    // Pruning must be exact: a conservatively-retained empty piece would
    // widen the recovered hull bounds into iterations the exact set never
    // contains (emitted bound code has no inner guard to mask them), and
    // a conservatively-dropped piece would lose real iterations.
    let mut pruned = Vec::with_capacity(work.len());
    for c in work {
        match c.try_is_satisfiable_in(cx) {
            Ok(true) => pruned.push(c),
            Ok(false) => {}
            Err(_) => return (None, None),
        }
    }
    let work = pruned;
    let v = Var::In(d);
    let mut los: Vec<Expr> = Vec::new();
    let mut his: Vec<Expr> = Vec::new();
    for c in &work {
        let mut clo: Vec<Expr> = Vec::new();
        let mut chi: Vec<Expr> = Vec::new();
        for e in c.geqs() {
            let a = e.coeff(v);
            if a == 0 || e.vars().any(|w| matches!(w, Var::In(i) if i != d)) {
                continue;
            }
            if has_exist(e) {
                continue;
            }
            let mut rest = e.clone();
            rest.remove_term(v);
            if a > 0 {
                let b = namer.expr(&rest, -1);
                clo.push(if a == 1 {
                    b
                } else {
                    Expr::CeilDiv(Box::new(b), a)
                });
            } else {
                let b = namer.expr(&rest, 1);
                chi.push(if a == -1 {
                    b
                } else {
                    Expr::FloorDiv(Box::new(b), -a)
                });
            }
        }
        for e in c.eqs() {
            let a = e.coeff(v);
            if a == 0 || has_exist(e) {
                continue;
            }
            if e.vars().any(|w| matches!(w, Var::In(i) if i != d)) {
                continue;
            }
            let mut rest = e.clone();
            rest.remove_term(v);
            if a.abs() == 1 {
                let val = namer.expr(&rest, -a);
                clo.push(val.clone());
                chi.push(val);
            } else {
                // a*v = -rest: v is between ceil and floor of the exact
                // quotient; divisibility is enforced by the residual
                // constraint at its own level.
                let sign = if a > 0 { -1 } else { 1 };
                let q = namer.expr(&rest, sign);
                clo.push(Expr::CeilDiv(Box::new(q.clone()), a.abs()));
                chi.push(Expr::FloorDiv(Box::new(q), a.abs()));
            }
        }
        if !clo.is_empty() {
            los.push(Expr::Max(clo).simplified());
        }
        if !chi.is_empty() {
            his.push(Expr::Min(chi).simplified());
        }
    }
    let lo = if los.len() == work.len() && !los.is_empty() {
        Some(Expr::Min(los).simplified())
    } else {
        None
    };
    let hi = if his.len() == work.len() && !his.is_empty() {
        Some(Expr::Max(his).simplified())
    } else {
        None
    };
    (lo, hi)
}

/// Extracts bounds/strides/guards of `conj` for level `d`.
fn analyze_level(piece: &Piece, d: u32, names: &[&str]) -> LevelInfo {
    let namer = Namer {
        names,
        params: &piece.params,
    };
    let v = Var::In(d);
    let mut info = LevelInfo {
        lowers: Vec::new(),
        uppers: Vec::new(),
        stride: None,
        guards: Vec::new(),
    };
    for e in piece.conj.geqs() {
        if deepest_level(e) != Some(d) {
            continue;
        }
        let a = e.coeff(v);
        let mut rest = e.clone();
        rest.remove_term(v);
        if a > 0 {
            // a*v + rest >= 0  =>  v >= ceil(-rest / a)
            let bound = namer.expr(&rest, -1);
            info.lowers.push(if a == 1 {
                bound
            } else {
                Expr::CeilDiv(Box::new(bound), a)
            });
        } else if a < 0 {
            // -b*v + rest >= 0  =>  v <= floor(rest / b)
            let b = -a;
            let bound = namer.expr(&rest, 1);
            info.uppers.push(if b == 1 {
                bound
            } else {
                Expr::FloorDiv(Box::new(bound), b)
            });
        } else {
            unreachable!("deepest_level said {d} but coeff is zero");
        }
    }
    for e in piece.conj.eqs() {
        if deepest_level(e) != Some(d) {
            continue;
        }
        let a = e.coeff(v);
        debug_assert_ne!(a, 0);
        match congruence_parts(e) {
            None => {
                // a*v + rest = 0.
                let mut rest = e.clone();
                rest.remove_term(v);
                if a.abs() == 1 {
                    let val = namer.expr(&rest, -a); // v = -rest/a
                    info.lowers.push(val.clone());
                    info.uppers.push(val);
                } else {
                    // v = -rest/a with divisibility guard.
                    let sign = if a > 0 { -1 } else { 1 };
                    let val = Expr::FloorDiv(Box::new(namer.expr(&rest, sign)), a.abs());
                    info.guards.push(Cond::Stride {
                        expr: namer.expr(&rest, 1),
                        modulus: a.abs(),
                        residue: 0,
                    });
                    info.lowers.push(val.clone());
                    info.uppers.push(val);
                }
            }
            Some((g, f)) => {
                // (a*v + f_rest) ≡ 0 (mod g) where f = a*v + f_rest.
                if g <= 1 {
                    continue;
                }
                let a = f.coeff(v);
                let mut rest = f.clone();
                rest.remove_term(v);
                if a.abs() == 1 && info.stride.is_none() {
                    // v ≡ -a*rest (mod g): usable as a loop step.
                    let residue = Expr::Mod(Box::new(namer.expr(&rest, -a)), g);
                    info.stride = Some((residue, g));
                } else {
                    info.guards.push(Cond::Stride {
                        expr: namer.expr(&f, 1),
                        modulus: g,
                        residue: 0,
                    });
                }
            }
        }
    }
    info
}

fn gen_level(
    pieces: &mut Vec<Piece>,
    d: u32,
    arity: u32,
    names: &[&str],
) -> Result<Code, CodegenError> {
    if pieces.is_empty() {
        return Ok(Code::empty());
    }
    if d == arity {
        // Leaf: emit statements in source order, wrapped in their guards.
        let mut order: Vec<usize> = (0..pieces.len()).collect();
        order.sort_by_key(|&i| (pieces[i].seq, i));
        let mut out = Vec::new();
        for i in order {
            let p = &pieces[i];
            let cond = Cond::And(p.pending.clone()).simplified();
            let stmt = Code::Stmt(p.stmt);
            out.push(match cond {
                Cond::Bool(true) => stmt,
                c => Code::If {
                    cond: c,
                    body: Box::new(stmt),
                },
            });
        }
        return Ok(Code::Seq(out));
    }
    let mut infos: Vec<LevelInfo> = pieces.iter().map(|p| analyze_level(p, d, names)).collect();
    // Every piece needs both bounds at a loop level; recover missing ones by
    // projecting away the deeper dimensions.
    for (info, piece) in infos.iter_mut().zip(pieces.iter()) {
        if info.lowers.is_empty() || info.uppers.is_empty() {
            let (lo, hi) = recovered_bounds(piece, d, arity, names);
            if info.lowers.is_empty() {
                match lo {
                    Some(e) => info.lowers.push(e),
                    None => {
                        if std::env::var("DHPF_CODEGEN_DEBUG").is_ok() {
                            eprintln!("unbounded LOW level {d}: {:?}", piece.conj);
                        }
                        return Err(CodegenError::Unbounded { level: d });
                    }
                }
            }
            if info.uppers.is_empty() {
                match hi {
                    Some(e) => info.uppers.push(e),
                    None => {
                        if std::env::var("DHPF_CODEGEN_DEBUG").is_ok() {
                            eprintln!("unbounded HIGH level {d}: {:?}", piece.conj);
                        }
                        return Err(CodegenError::Unbounded { level: d });
                    }
                }
            }
        }
    }
    let piece_lo: Vec<Expr> = infos
        .iter()
        .map(|i| Expr::Max(i.lowers.clone()).simplified())
        .collect();
    let piece_hi: Vec<Expr> = infos
        .iter()
        .map(|i| Expr::Min(i.uppers.clone()).simplified())
        .collect();
    let shared_lo = piece_lo.iter().all(|e| *e == piece_lo[0]);
    let shared_hi = piece_hi.iter().all(|e| *e == piece_hi[0]);
    let mut lo = if shared_lo {
        piece_lo[0].clone()
    } else {
        Expr::Min(piece_lo.clone()).simplified()
    };
    let hi = if shared_hi {
        piece_hi[0].clone()
    } else {
        Expr::Max(piece_hi.clone()).simplified()
    };
    // Stride: use a stepped loop only when every piece shares one stride.
    let mut step = 1i64;
    let strides: Vec<&Option<(Expr, i64)>> = infos.iter().map(|i| &i.stride).collect();
    if let Some((r0, m0)) = strides[0] {
        if strides
            .iter()
            .all(|s| matches!(s, Some((r, m)) if r == r0 && m == m0))
        {
            step = *m0;
            // Align the lower bound upward to the residue class:
            // lo' = lo + mod(r - lo, m).
            lo = Expr::Add(vec![
                lo.clone(),
                Expr::Mod(
                    Box::new(Expr::Add(vec![r0.clone(), Expr::Mul(-1, Box::new(lo))])),
                    *m0,
                ),
            ])
            .simplified();
        }
    }
    let var = names[d as usize].to_string();
    let vexpr = Expr::Var(var.clone());
    // Attach per-piece guards for this level.
    for (i, p) in pieces.iter_mut().enumerate() {
        if !shared_lo {
            p.pending
                .push(Cond::Geq(vexpr.clone(), piece_lo[i].clone()));
        }
        if !shared_hi {
            p.pending
                .push(Cond::Geq(piece_hi[i].clone(), vexpr.clone()));
        }
        if step == 1 {
            if let Some((r, m)) = &infos[i].stride {
                p.pending.push(Cond::Stride {
                    expr: Expr::Add(vec![vexpr.clone(), Expr::Mul(-1, Box::new(r.clone()))]),
                    modulus: *m,
                    residue: 0,
                });
            }
        }
        p.pending.extend(infos[i].guards.clone());
    }
    let body = gen_level(pieces, d + 1, arity, names)?;
    Ok(Code::Loop {
        var,
        lo,
        hi,
        step,
        body: Box::new(body),
    })
}
