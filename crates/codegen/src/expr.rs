//! Scalar integer expressions and conditions appearing in generated code.
//!
//! Generated loop bounds are `max`/`min` combinations of affine expressions
//! with exact integer division (`ceil`/`floor`); guards are conjunctions of
//! comparisons and congruence (`mod`) tests. Both evaluate against an
//! [`Env`] of named integer bindings.

use std::collections::HashMap;
use std::fmt;

/// An integer-valued expression in generated code.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Named variable: a loop index or a symbolic parameter.
    Var(String),
    /// Sum of the operands.
    Add(Vec<Expr>),
    /// `k * e`.
    Mul(i64, Box<Expr>),
    /// `floor(e / k)`, `k > 0`.
    FloorDiv(Box<Expr>, i64),
    /// `ceil(e / k)`, `k > 0`.
    CeilDiv(Box<Expr>, i64),
    /// `e mod k` (mathematical: result in `0..k`), `k > 0`.
    Mod(Box<Expr>, i64),
    /// Maximum of the operands (at least one).
    Max(Vec<Expr>),
    /// Minimum of the operands (at least one).
    Min(Vec<Expr>),
}

/// A boolean condition in generated code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Cond {
    /// `a >= b`.
    Geq(Expr, Expr),
    /// `a = b`.
    Eq(Expr, Expr),
    /// `e ≡ r (mod m)`.
    Stride {
        /// Expression whose residue is tested.
        expr: Expr,
        /// Modulus (`> 0`).
        modulus: i64,
        /// Expected residue in `0..modulus`.
        residue: i64,
    },
    /// Conjunction.
    And(Vec<Cond>),
    /// Disjunction.
    Or(Vec<Cond>),
    /// Constant truth.
    Bool(bool),
}

/// Variable bindings for evaluating generated code.
pub type Env = HashMap<String, i64>;

/// Error produced when evaluating an expression with an unbound variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnboundVar(pub String);

impl fmt::Display for UnboundVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unbound variable '{}'", self.0)
    }
}

impl std::error::Error for UnboundVar {}

fn floor_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

impl Expr {
    /// Evaluates under `env`.
    ///
    /// # Errors
    ///
    /// Returns [`UnboundVar`] if a variable is missing from `env`.
    pub fn eval(&self, env: &Env) -> Result<i64, UnboundVar> {
        Ok(match self {
            Expr::Const(c) => *c,
            Expr::Var(name) => *env.get(name).ok_or_else(|| UnboundVar(name.clone()))?,
            Expr::Add(es) => {
                let mut acc = 0i64;
                for e in es {
                    acc += e.eval(env)?;
                }
                acc
            }
            Expr::Mul(k, e) => k * e.eval(env)?,
            Expr::FloorDiv(e, k) => floor_div(e.eval(env)?, *k),
            Expr::CeilDiv(e, k) => -floor_div(-e.eval(env)?, *k),
            Expr::Mod(e, k) => e.eval(env)?.rem_euclid(*k),
            Expr::Max(es) => {
                let mut it = es.iter();
                let mut acc = it.next().expect("Max of nothing").eval(env)?;
                for e in it {
                    acc = acc.max(e.eval(env)?);
                }
                acc
            }
            Expr::Min(es) => {
                let mut it = es.iter();
                let mut acc = it.next().expect("Min of nothing").eval(env)?;
                for e in it {
                    acc = acc.min(e.eval(env)?);
                }
                acc
            }
        })
    }

    /// Structural simplification: folds constants, flattens nested
    /// `Add`/`Max`/`Min`, and removes trivial wrappers.
    pub fn simplified(&self) -> Expr {
        match self {
            Expr::Const(_) | Expr::Var(_) => self.clone(),
            Expr::Add(es) => {
                let mut flat = Vec::new();
                let mut konst = 0i64;
                for e in es {
                    match e.simplified() {
                        Expr::Const(c) => konst += c,
                        Expr::Add(inner) => {
                            for x in inner {
                                if let Expr::Const(c) = x {
                                    konst += c;
                                } else {
                                    flat.push(x);
                                }
                            }
                        }
                        x => flat.push(x),
                    }
                }
                if konst != 0 || flat.is_empty() {
                    flat.push(Expr::Const(konst));
                }
                if flat.len() == 1 {
                    flat.pop().unwrap()
                } else {
                    Expr::Add(flat)
                }
            }
            Expr::Mul(k, e) => match (k, e.simplified()) {
                (0, _) => Expr::Const(0),
                (1, x) => x,
                (k, Expr::Const(c)) => Expr::Const(k * c),
                (k, x) => Expr::Mul(*k, Box::new(x)),
            },
            Expr::FloorDiv(e, k) => match (e.simplified(), k) {
                (x, 1) => x,
                (Expr::Const(c), k) => Expr::Const(floor_div(c, *k)),
                (x, k) => Expr::FloorDiv(Box::new(x), *k),
            },
            Expr::CeilDiv(e, k) => match (e.simplified(), k) {
                (x, 1) => x,
                (Expr::Const(c), k) => Expr::Const(-floor_div(-c, *k)),
                (x, k) => Expr::CeilDiv(Box::new(x), *k),
            },
            Expr::Mod(e, k) => match (e.simplified(), k) {
                (_, 1) => Expr::Const(0),
                (Expr::Const(c), k) => Expr::Const(c.rem_euclid(*k)),
                (x, k) => Expr::Mod(Box::new(x), *k),
            },
            Expr::Max(es) | Expr::Min(es) => {
                let is_max = matches!(self, Expr::Max(_));
                let mut flat = Vec::new();
                let mut konst: Option<i64> = None;
                for e in es {
                    match e.simplified() {
                        Expr::Const(c) => {
                            konst = Some(match konst {
                                None => c,
                                Some(k) if is_max => k.max(c),
                                Some(k) => k.min(c),
                            })
                        }
                        Expr::Max(inner) if is_max => flat.extend(inner),
                        Expr::Min(inner) if !is_max => flat.extend(inner),
                        x => flat.push(x),
                    }
                }
                flat.dedup();
                if let Some(k) = konst {
                    flat.push(Expr::Const(k));
                }
                if flat.len() == 1 {
                    flat.pop().unwrap()
                } else if is_max {
                    Expr::Max(flat)
                } else {
                    Expr::Min(flat)
                }
            }
        }
    }

    /// True if the expression mentions variable `name`.
    pub fn mentions(&self, name: &str) -> bool {
        match self {
            Expr::Const(_) => false,
            Expr::Var(v) => v == name,
            Expr::Add(es) | Expr::Max(es) | Expr::Min(es) => es.iter().any(|e| e.mentions(name)),
            Expr::Mul(_, e) | Expr::FloorDiv(e, _) | Expr::CeilDiv(e, _) | Expr::Mod(e, _) => {
                e.mentions(name)
            }
        }
    }
}

impl Cond {
    /// Evaluates under `env`.
    ///
    /// # Errors
    ///
    /// Returns [`UnboundVar`] if a variable is missing from `env`.
    pub fn eval(&self, env: &Env) -> Result<bool, UnboundVar> {
        Ok(match self {
            Cond::Geq(a, b) => a.eval(env)? >= b.eval(env)?,
            Cond::Eq(a, b) => a.eval(env)? == b.eval(env)?,
            Cond::Stride {
                expr,
                modulus,
                residue,
            } => expr.eval(env)?.rem_euclid(*modulus) == *residue,
            Cond::And(cs) => {
                for c in cs {
                    if !c.eval(env)? {
                        return Ok(false);
                    }
                }
                true
            }
            Cond::Or(cs) => {
                for c in cs {
                    if c.eval(env)? {
                        return Ok(true);
                    }
                }
                false
            }
            Cond::Bool(b) => *b,
        })
    }

    /// Structural simplification of the condition.
    pub fn simplified(&self) -> Cond {
        match self {
            Cond::Geq(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
                    return Cond::Bool(x >= y);
                }
                Cond::Geq(a, b)
            }
            Cond::Eq(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
                    return Cond::Bool(x == y);
                }
                Cond::Eq(a, b)
            }
            Cond::Stride {
                expr,
                modulus,
                residue,
            } => {
                let e = expr.simplified();
                if let Expr::Const(c) = e {
                    return Cond::Bool(c.rem_euclid(*modulus) == *residue);
                }
                Cond::Stride {
                    expr: e,
                    modulus: *modulus,
                    residue: *residue,
                }
            }
            Cond::And(cs) => {
                let mut flat = Vec::new();
                for c in cs {
                    match c.simplified() {
                        Cond::Bool(true) => {}
                        Cond::Bool(false) => return Cond::Bool(false),
                        Cond::And(inner) => flat.extend(inner),
                        x => flat.push(x),
                    }
                }
                flat.dedup();
                match flat.len() {
                    0 => Cond::Bool(true),
                    1 => flat.pop().unwrap(),
                    _ => Cond::And(flat),
                }
            }
            Cond::Or(cs) => {
                let mut flat = Vec::new();
                for c in cs {
                    match c.simplified() {
                        Cond::Bool(false) => {}
                        Cond::Bool(true) => return Cond::Bool(true),
                        Cond::Or(inner) => flat.extend(inner),
                        x => flat.push(x),
                    }
                }
                flat.dedup();
                match flat.len() {
                    0 => Cond::Bool(false),
                    1 => flat.pop().unwrap(),
                    _ => Cond::Or(flat),
                }
            }
            Cond::Bool(b) => Cond::Bool(*b),
        }
    }

    /// True if the condition mentions variable `name`.
    pub fn mentions(&self, name: &str) -> bool {
        match self {
            Cond::Geq(a, b) | Cond::Eq(a, b) => a.mentions(name) || b.mentions(name),
            Cond::Stride { expr, .. } => expr.mentions(name),
            Cond::And(cs) | Cond::Or(cs) => cs.iter().any(|c| c.mentions(name)),
            Cond::Bool(_) => false,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Add(es) => {
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        if let Expr::Const(c) = e {
                            if *c < 0 {
                                write!(f, " - {}", -c)?;
                                continue;
                            }
                        }
                        if let Expr::Mul(k, inner) = e {
                            if *k < 0 {
                                if *k == -1 {
                                    write!(f, " - {inner}")?;
                                } else {
                                    write!(f, " - {}*{inner}", -k)?;
                                }
                                continue;
                            }
                        }
                        write!(f, " + {e}")?;
                    } else {
                        write!(f, "{e}")?;
                    }
                }
                Ok(())
            }
            Expr::Mul(k, e) => {
                if matches!(**e, Expr::Var(_) | Expr::Const(_)) {
                    write!(f, "{k}*{e}")
                } else {
                    write!(f, "{k}*({e})")
                }
            }
            Expr::FloorDiv(e, k) => write!(f, "floor({e}, {k})"),
            Expr::CeilDiv(e, k) => write!(f, "ceil({e}, {k})"),
            Expr::Mod(e, k) => write!(f, "mod({e}, {k})"),
            Expr::Max(es) => {
                write!(f, "max(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Min(es) => {
                write!(f, "min(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Geq(a, b) => write!(f, "{a} >= {b}"),
            Cond::Eq(a, b) => write!(f, "{a} == {b}"),
            Cond::Stride {
                expr,
                modulus,
                residue,
            } => write!(f, "mod({expr}, {modulus}) == {residue}"),
            Cond::And(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " .and. ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
            Cond::Or(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " .or. ")?;
                    }
                    write!(f, "({c})")?;
                }
                Ok(())
            }
            Cond::Bool(b) => write!(f, "{}", if *b { ".true." } else { ".false." }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, i64)]) -> Env {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn eval_arithmetic() {
        let e = Expr::Add(vec![
            Expr::Mul(2, Box::new(Expr::Var("i".into()))),
            Expr::Const(3),
        ]);
        assert_eq!(e.eval(&env(&[("i", 5)])).unwrap(), 13);
        assert!(e.eval(&env(&[])).is_err());
    }

    #[test]
    fn eval_divisions() {
        let e = Expr::FloorDiv(Box::new(Expr::Var("x".into())), 4);
        assert_eq!(e.eval(&env(&[("x", -1)])).unwrap(), -1);
        assert_eq!(e.eval(&env(&[("x", 7)])).unwrap(), 1);
        let c = Expr::CeilDiv(Box::new(Expr::Var("x".into())), 4);
        assert_eq!(c.eval(&env(&[("x", 7)])).unwrap(), 2);
        assert_eq!(c.eval(&env(&[("x", -1)])).unwrap(), 0);
    }

    #[test]
    fn simplify_folds_constants() {
        let e = Expr::Add(vec![
            Expr::Const(2),
            Expr::Mul(3, Box::new(Expr::Const(4))),
            Expr::Var("n".into()),
        ]);
        let s = e.simplified();
        assert_eq!(s, Expr::Add(vec![Expr::Var("n".into()), Expr::Const(14)]));
        let m = Expr::Max(vec![Expr::Const(3), Expr::Const(7)]).simplified();
        assert_eq!(m, Expr::Const(7));
    }

    #[test]
    fn simplify_conditions() {
        let c = Cond::And(vec![
            Cond::Bool(true),
            Cond::Geq(Expr::Const(3), Expr::Const(2)),
            Cond::Eq(Expr::Var("i".into()), Expr::Const(1)),
        ]);
        assert_eq!(
            c.simplified(),
            Cond::Eq(Expr::Var("i".into()), Expr::Const(1))
        );
        let f = Cond::And(vec![Cond::Bool(false), Cond::Bool(true)]);
        assert_eq!(f.simplified(), Cond::Bool(false));
    }

    #[test]
    fn stride_condition() {
        let c = Cond::Stride {
            expr: Expr::Var("i".into()),
            modulus: 3,
            residue: 2,
        };
        assert!(c.eval(&env(&[("i", 5)])).unwrap());
        assert!(!c.eval(&env(&[("i", 6)])).unwrap());
        assert!(c.eval(&env(&[("i", -1)])).unwrap());
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::Max(vec![
            Expr::Var("lb".into()),
            Expr::Add(vec![
                Expr::Mul(25, Box::new(Expr::Var("p".into()))),
                Expr::Const(1),
            ]),
        ]);
        assert_eq!(e.to_string(), "max(lb, 25*p + 1)");
    }
}
