//! Generated loop nests must enumerate exactly the tuples of the input
//! sets, in lexicographic order, with same-tuple statements in source order.

use dhpf_codegen::{codegen, codegen_set, CodegenOptions, Env, Mapping, StmtId};
use dhpf_omega::Set;
use proptest::prelude::*;

fn run(code: &dhpf_codegen::Code, params: &[(&str, i64)]) -> Vec<(usize, Vec<i64>)> {
    run_named(code, params, &["i", "j"])
}

fn run_named(
    code: &dhpf_codegen::Code,
    params: &[(&str, i64)],
    names: &[&str],
) -> Vec<(usize, Vec<i64>)> {
    let mut env: Env = params
        .iter()
        .map(|&(k, v)| (k.to_string(), v))
        .collect();
    let mut out = Vec::new();
    code.execute(&mut env, &mut |id, e| {
        let tuple: Vec<i64> = names
            .iter()
            .filter(|n| e.contains_key(**n))
            .map(|n| e[*n])
            .collect();
        out.push((id.0, tuple));
    })
    .unwrap();
    out
}

fn expect_set(src: &str, params: &[(&str, i64)], names: &[&str]) {
    let s: Set = src.parse().unwrap();
    let code = codegen_set(&s, StmtId(0), names, &CodegenOptions::default()).unwrap();
    let got: Vec<Vec<i64>> = run_named(&code, params, names)
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    let mut want = s.enumerate(params).unwrap();
    want.sort();
    assert_eq!(got, want, "set {src} params {params:?}");
}

#[test]
fn triangular_space() {
    expect_set("{[i,j] : 1 <= i <= N && i <= j <= N}", &[("N", 5)], &["i", "j"]);
}

#[test]
fn union_of_disjoint_boxes() {
    expect_set(
        "{[i] : 1 <= i <= 3 || 7 <= i <= 9}",
        &[],
        &["i"],
    );
}

#[test]
fn overlapping_union_not_double_counted() {
    expect_set("{[i] : 1 <= i <= 6 || 4 <= i <= 9}", &[], &["i"]);
}

#[test]
fn strided_space_uses_step_or_guard() {
    expect_set(
        "{[i] : 1 <= i <= 20 && exists(a : i = 3a + 2)}",
        &[],
        &["i"],
    );
}

#[test]
fn block_distribution_space() {
    // Iterations owned by processor p of a BLOCK(25) distribution.
    expect_set(
        "{[i] : 25p + 1 <= i <= 25p + 25 && 1 <= i <= N}",
        &[("p", 2), ("N", 60)],
        &["i"],
    );
}

#[test]
fn cyclic_distribution_space() {
    // i ≡ p (mod 4), symbolic in nothing else.
    expect_set(
        "{[i] : 0 <= i <= 30 && exists(a : i = 4a + p)}",
        &[("p", 3)],
        &["i"],
    );
}

#[test]
fn equality_defined_dimension() {
    expect_set(
        "{[i,j] : 1 <= i <= 8 && j = 2i + 1}",
        &[],
        &["i", "j"],
    );
}

#[test]
fn empty_space_generates_no_statements() {
    let s: Set = "{[i] : 1 <= i && i <= 0}".parse().unwrap();
    let code = codegen_set(&s, StmtId(0), &["i"], &CodegenOptions::default()).unwrap();
    assert!(run(&code, &[]).is_empty());
}

#[test]
fn multi_statement_lexicographic_interleaving() {
    // S0 over [2,5], S1 over [4,8]: within the shared range, S0 precedes S1
    // at each tuple; overall order is lexicographic on the tuple.
    let a: Set = "{[i] : 2 <= i <= 5}".parse().unwrap();
    let b: Set = "{[i] : 4 <= i <= 8}".parse().unwrap();
    let code = codegen(
        &[
            Mapping { stmt: StmtId(0), space: a },
            Mapping { stmt: StmtId(1), space: b },
        ],
        &["i"],
        &CodegenOptions::default(),
    )
    .unwrap();
    let got = run(&code, &[]);
    let mut want = Vec::new();
    for i in 2..=8i64 {
        if (2..=5).contains(&i) {
            want.push((0usize, vec![i]));
        }
        if (4..=8).contains(&i) {
            want.push((1usize, vec![i]));
        }
    }
    assert_eq!(got, want);
}

#[test]
fn multi_statement_2d() {
    let a: Set = "{[i,j] : 1 <= i <= 3 && 1 <= j <= 2}".parse().unwrap();
    let b: Set = "{[i,j] : 2 <= i <= 4 && 2 <= j <= 3}".parse().unwrap();
    let code = codegen(
        &[
            Mapping { stmt: StmtId(0), space: a.clone() },
            Mapping { stmt: StmtId(1), space: b.clone() },
        ],
        &["i", "j"],
        &CodegenOptions::default(),
    )
    .unwrap();
    let got = run(&code, &[]);
    // Build the expected lexicographic interleaving.
    let mut want = Vec::new();
    for i in 1..=4i64 {
        for j in 1..=3i64 {
            if a.contains(&[i, j], &[]) {
                want.push((0usize, vec![i, j]));
            }
            if b.contains(&[i, j], &[]) {
                want.push((1usize, vec![i, j]));
            }
        }
    }
    assert_eq!(got, want);
}

#[test]
fn symbolic_bounds_emit_min_max() {
    let s: Set = "{[i] : 1 <= i <= N && i <= M}".parse().unwrap();
    let code = codegen_set(&s, StmtId(0), &["i"], &CodegenOptions::default()).unwrap();
    for n in 0..6i64 {
        for m in 0..6i64 {
            let got: Vec<i64> = run(&code, &[("N", n), ("M", m)])
                .into_iter()
                .map(|(_, t)| t[0])
                .collect();
            let want: Vec<i64> = (1..=n.min(m)).collect();
            assert_eq!(got, want, "N={n} M={m}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_1d_unions_enumerate_exactly(
        ranges in proptest::collection::vec((0..12i64, 0..12i64), 1..4),
        strided in proptest::bool::ANY,
        m in 2..4i64,
        r in 0..2i64,
    ) {
        let mut parts: Vec<String> = ranges
            .iter()
            .map(|&(a, b)| format!("{} <= i <= {}", a.min(b), a.max(b)))
            .collect();
        if strided {
            parts[0] = format!("{} && exists(q : i = {}q + {})", parts[0], m, r % m);
        }
        let src = format!("{{[i] : {}}}", parts.join(" || "));
        let s: Set = src.parse().unwrap();
        let code = codegen_set(&s, StmtId(0), &["i"], &CodegenOptions::default()).unwrap();
        let got: Vec<Vec<i64>> = run(&code, &[]).into_iter().map(|(_, t)| t).collect();
        let mut want = s.enumerate(&[]).unwrap();
        want.sort();
        prop_assert_eq!(got, want, "source {}", src);
    }

    #[test]
    fn random_2d_spaces_enumerate_exactly(
        ib in (0..8i64, 0..8i64),
        jb in (0..8i64, 0..8i64),
        coupled in proptest::bool::ANY,
    ) {
        let mut src = format!(
            "{{[i,j] : {} <= i <= {} && {} <= j <= {}",
            ib.0.min(ib.1), ib.0.max(ib.1), jb.0.min(jb.1), jb.0.max(jb.1)
        );
        if coupled {
            src.push_str(" && i <= j");
        }
        src.push('}');
        let s: Set = src.parse().unwrap();
        let code = codegen_set(&s, StmtId(0), &["i", "j"], &CodegenOptions::default()).unwrap();
        let got: Vec<Vec<i64>> = run(&code, &[]).into_iter().map(|(_, t)| t).collect();
        let mut want = s.enumerate(&[]).unwrap();
        want.sort();
        prop_assert_eq!(got, want, "source {}", src);
    }
}
