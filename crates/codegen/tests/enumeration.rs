//! Generated loop nests must enumerate exactly the tuples of the input
//! sets, in lexicographic order, with same-tuple statements in source order.

use dhpf_codegen::{codegen, codegen_set, CodegenOptions, Env, Mapping, StmtId};
use dhpf_omega::testing::Rng;
use dhpf_omega::Set;

fn run(code: &dhpf_codegen::Code, params: &[(&str, i64)]) -> Vec<(usize, Vec<i64>)> {
    run_named(code, params, &["i", "j"])
}

fn run_named(
    code: &dhpf_codegen::Code,
    params: &[(&str, i64)],
    names: &[&str],
) -> Vec<(usize, Vec<i64>)> {
    let mut env: Env = params.iter().map(|&(k, v)| (k.to_string(), v)).collect();
    let mut out = Vec::new();
    code.execute(&mut env, &mut |id, e| {
        let tuple: Vec<i64> = names
            .iter()
            .filter(|n| e.contains_key(**n))
            .map(|n| e[*n])
            .collect();
        out.push((id.0, tuple));
    })
    .unwrap();
    out
}

fn expect_set(src: &str, params: &[(&str, i64)], names: &[&str]) {
    let s: Set = src.parse().unwrap();
    let code = codegen_set(&s, StmtId(0), names, &CodegenOptions::default()).unwrap();
    let got: Vec<Vec<i64>> = run_named(&code, params, names)
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    let mut want = s.enumerate(params).unwrap();
    want.sort();
    assert_eq!(got, want, "set {src} params {params:?}");
}

#[test]
fn triangular_space() {
    expect_set(
        "{[i,j] : 1 <= i <= N && i <= j <= N}",
        &[("N", 5)],
        &["i", "j"],
    );
}

#[test]
fn union_of_disjoint_boxes() {
    expect_set("{[i] : 1 <= i <= 3 || 7 <= i <= 9}", &[], &["i"]);
}

#[test]
fn overlapping_union_not_double_counted() {
    expect_set("{[i] : 1 <= i <= 6 || 4 <= i <= 9}", &[], &["i"]);
}

#[test]
fn strided_space_uses_step_or_guard() {
    expect_set(
        "{[i] : 1 <= i <= 20 && exists(a : i = 3a + 2)}",
        &[],
        &["i"],
    );
}

#[test]
fn block_distribution_space() {
    // Iterations owned by processor p of a BLOCK(25) distribution.
    expect_set(
        "{[i] : 25p + 1 <= i <= 25p + 25 && 1 <= i <= N}",
        &[("p", 2), ("N", 60)],
        &["i"],
    );
}

#[test]
fn cyclic_distribution_space() {
    // i ≡ p (mod 4), symbolic in nothing else.
    expect_set(
        "{[i] : 0 <= i <= 30 && exists(a : i = 4a + p)}",
        &[("p", 3)],
        &["i"],
    );
}

#[test]
fn equality_defined_dimension() {
    expect_set("{[i,j] : 1 <= i <= 8 && j = 2i + 1}", &[], &["i", "j"]);
}

#[test]
fn empty_space_generates_no_statements() {
    let s: Set = "{[i] : 1 <= i && i <= 0}".parse().unwrap();
    let code = codegen_set(&s, StmtId(0), &["i"], &CodegenOptions::default()).unwrap();
    assert!(run(&code, &[]).is_empty());
}

#[test]
fn multi_statement_lexicographic_interleaving() {
    // S0 over [2,5], S1 over [4,8]: within the shared range, S0 precedes S1
    // at each tuple; overall order is lexicographic on the tuple.
    let a: Set = "{[i] : 2 <= i <= 5}".parse().unwrap();
    let b: Set = "{[i] : 4 <= i <= 8}".parse().unwrap();
    let code = codegen(
        &[
            Mapping {
                stmt: StmtId(0),
                space: a,
            },
            Mapping {
                stmt: StmtId(1),
                space: b,
            },
        ],
        &["i"],
        &CodegenOptions::default(),
    )
    .unwrap();
    let got = run(&code, &[]);
    let mut want = Vec::new();
    for i in 2..=8i64 {
        if (2..=5).contains(&i) {
            want.push((0usize, vec![i]));
        }
        if (4..=8).contains(&i) {
            want.push((1usize, vec![i]));
        }
    }
    assert_eq!(got, want);
}

#[test]
fn multi_statement_2d() {
    let a: Set = "{[i,j] : 1 <= i <= 3 && 1 <= j <= 2}".parse().unwrap();
    let b: Set = "{[i,j] : 2 <= i <= 4 && 2 <= j <= 3}".parse().unwrap();
    let code = codegen(
        &[
            Mapping {
                stmt: StmtId(0),
                space: a.clone(),
            },
            Mapping {
                stmt: StmtId(1),
                space: b.clone(),
            },
        ],
        &["i", "j"],
        &CodegenOptions::default(),
    )
    .unwrap();
    let got = run(&code, &[]);
    // Build the expected lexicographic interleaving.
    let mut want = Vec::new();
    for i in 1..=4i64 {
        for j in 1..=3i64 {
            if a.contains(&[i, j], &[]) {
                want.push((0usize, vec![i, j]));
            }
            if b.contains(&[i, j], &[]) {
                want.push((1usize, vec![i, j]));
            }
        }
    }
    assert_eq!(got, want);
}

#[test]
fn symbolic_bounds_emit_min_max() {
    let s: Set = "{[i] : 1 <= i <= N && i <= M}".parse().unwrap();
    let code = codegen_set(&s, StmtId(0), &["i"], &CodegenOptions::default()).unwrap();
    for n in 0..6i64 {
        for m in 0..6i64 {
            let got: Vec<i64> = run(&code, &[("N", n), ("M", m)])
                .into_iter()
                .map(|(_, t)| t[0])
                .collect();
            let want: Vec<i64> = (1..=n.min(m)).collect();
            assert_eq!(got, want, "N={n} M={m}");
        }
    }
}

#[test]
fn random_1d_unions_enumerate_exactly() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let n_ranges = rng.range(1, 3) as usize;
        let mut parts: Vec<String> = (0..n_ranges)
            .map(|_| {
                let a = rng.range(0, 11);
                let b = rng.range(0, 11);
                format!("{} <= i <= {}", a.min(b), a.max(b))
            })
            .collect();
        if rng.chance(1, 2) {
            let m = rng.range(2, 3);
            let r = rng.range(0, 1) % m;
            parts[0] = format!("{} && exists(q : i = {}q + {})", parts[0], m, r);
        }
        let src = format!("{{[i] : {}}}", parts.join(" || "));
        let s: Set = src.parse().unwrap();
        let code = codegen_set(&s, StmtId(0), &["i"], &CodegenOptions::default()).unwrap();
        let got: Vec<Vec<i64>> = run(&code, &[]).into_iter().map(|(_, t)| t).collect();
        let mut want = s.enumerate(&[]).unwrap();
        want.sort();
        assert_eq!(got, want, "seed {seed} source {src}");
    }
}

#[test]
fn random_2d_spaces_enumerate_exactly() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let (i0, i1) = (rng.range(0, 7), rng.range(0, 7));
        let (j0, j1) = (rng.range(0, 7), rng.range(0, 7));
        let mut src = format!(
            "{{[i,j] : {} <= i <= {} && {} <= j <= {}",
            i0.min(i1),
            i0.max(i1),
            j0.min(j1),
            j0.max(j1)
        );
        if rng.chance(1, 2) {
            src.push_str(" && i <= j");
        }
        src.push('}');
        let s: Set = src.parse().unwrap();
        let code = codegen_set(&s, StmtId(0), &["i", "j"], &CodegenOptions::default()).unwrap();
        let got: Vec<Vec<i64>> = run(&code, &[]).into_iter().map(|(_, t)| t).collect();
        let mut want = s.enumerate(&[]).unwrap();
        want.sort();
        assert_eq!(got, want, "seed {seed} source {src}");
    }
}
