//! Microbenchmarks of the integer-set substrate: the operations that
//! dominate the compiler's analysis time (intersection, difference,
//! satisfiability, composition) on representative HPF constraint systems.
//!
//! Run with `cargo bench -p dhpf-bench --bench omega_ops`.

use dhpf_bench::timing::bench;
use dhpf_omega::{Relation, Set};
use std::hint::black_box;

fn block_layout() -> Relation {
    "{[p] -> [a] : 25p + 1 <= a <= 25p + 25 && 1 <= a <= 100 && 0 <= p <= 3}"
        .parse()
        .unwrap()
}

fn vp_layout() -> Relation {
    "{[v] -> [a] : v <= a <= v + bs - 1 && 1 <= a <= n && 1 <= v <= n}"
        .parse()
        .unwrap()
}

fn main() {
    let iter: Set = "{[i] : 1 <= i <= n}".parse().unwrap();
    let refmap: Relation = "{[i] -> [a] : a = i + 1}".parse().unwrap();
    let me: Set = "{[p] : p = m}".parse().unwrap();

    {
        let layout = block_layout();
        bench("compose refmap with block layout", 200, || {
            black_box(refmap.then(&layout.inverse()))
        });
    }

    {
        let layout = block_layout();
        let cp = layout.restrict_range(&refmap.restrict_domain(&iter).range());
        bench("apply + subtract (nl data set, fixed P)", 100, || {
            let accessed = cp.apply(&me);
            let owned = layout.apply(&me);
            black_box(accessed.subtract(&owned))
        });
    }

    {
        let layout = vp_layout();
        let cp = layout.restrict_range(&refmap.restrict_domain(&iter).range());
        bench("apply + subtract (nl data set, symbolic P)", 100, || {
            let accessed = cp.apply(&me);
            let owned = layout.apply(&me);
            black_box(accessed.subtract(&owned))
        });
    }

    {
        let s: Set = "{[i] : 1 <= i <= 1000 && exists(a : i = 7a + 3) && exists(b : i = 5b + 2)}"
            .parse()
            .unwrap();
        bench("satisfiability with strides", 200, || {
            black_box(s.as_relation().is_satisfiable())
        });
    }

    {
        let a: Set = "{[i] : 1 <= i <= n && exists(q : i = 4q + 1)}"
            .parse()
            .unwrap();
        let bs: Set = "{[i] : 1 <= i <= n}".parse().unwrap();
        bench("emptiness of aligned difference", 200, || {
            black_box(a.subtract(&bs).is_empty())
        });
    }
}
