//! Microbenchmarks of the integer-set substrate: the operations that
//! dominate the compiler's analysis time (intersection, difference,
//! satisfiability, composition) on representative HPF constraint systems.

use criterion::{criterion_group, criterion_main, Criterion};
use dhpf_omega::{Relation, Set};
use std::hint::black_box;

fn block_layout() -> Relation {
    "{[p] -> [a] : 25p + 1 <= a <= 25p + 25 && 1 <= a <= 100 && 0 <= p <= 3}"
        .parse()
        .unwrap()
}

fn vp_layout() -> Relation {
    "{[v] -> [a] : v <= a <= v + bs - 1 && 1 <= a <= n && 1 <= v <= n}"
        .parse()
        .unwrap()
}

fn bench_ops(c: &mut Criterion) {
    let iter: Set = "{[i] : 1 <= i <= n}".parse().unwrap();
    let refmap: Relation = "{[i] -> [a] : a = i + 1}".parse().unwrap();
    let me: Set = "{[p] : p = m}".parse().unwrap();

    c.bench_function("compose refmap with block layout", |b| {
        let layout = block_layout();
        b.iter(|| black_box(refmap.then(&layout.inverse())));
    });

    c.bench_function("apply + subtract (nl data set, fixed P)", |b| {
        let layout = block_layout();
        let cp = layout.restrict_range(
            &refmap
                .restrict_domain(&iter)
                .range(),
        );
        b.iter(|| {
            let accessed = cp.apply(&me);
            let owned = layout.apply(&me);
            black_box(accessed.subtract(&owned))
        });
    });

    c.bench_function("apply + subtract (nl data set, symbolic P)", |b| {
        let layout = vp_layout();
        let cp = layout.restrict_range(&refmap.restrict_domain(&iter).range());
        b.iter(|| {
            let accessed = cp.apply(&me);
            let owned = layout.apply(&me);
            black_box(accessed.subtract(&owned))
        });
    });

    c.bench_function("satisfiability with strides", |b| {
        let s: Set = "{[i] : 1 <= i <= 1000 && exists(a : i = 7a + 3) && exists(b : i = 5b + 2)}"
            .parse()
            .unwrap();
        b.iter(|| black_box(s.as_relation().is_satisfiable()));
    });

    c.bench_function("emptiness of aligned difference", |b| {
        let a: Set = "{[i] : 1 <= i <= n && exists(q : i = 4q + 1)}".parse().unwrap();
        let bs: Set = "{[i] : 1 <= i <= n}".parse().unwrap();
        b.iter(|| black_box(a.subtract(&bs).is_empty()));
    });
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
