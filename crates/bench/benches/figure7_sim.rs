//! Figure 7 as a micro-benchmark: one small simulated configuration per
//! application, tracking end-to-end compile+simulate time. The `figure7`
//! binary prints the full speedup curves.
//!
//! Run with `cargo bench -p dhpf-bench --bench figure7_sim`.

use dhpf_bench::timing::bench;
use dhpf_core::{compile, CompileOptions};
use dhpf_sim::{simulate, MachineModel};
use std::collections::HashMap;
use std::hint::black_box;

fn inputs(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
    pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
}

fn main() {
    let jacobi = compile(dhpf_bench::sources::JACOBI, &CompileOptions::default()).unwrap();
    let jin = inputs(&[("niter", 2)]);
    bench("simulate JACOBI 128x128 P=4", 10, || {
        black_box(simulate(&jacobi, &[2, 2], &jin, &MachineModel::sp2()).unwrap())
    });

    let tom = compile(dhpf_bench::sources::TOMCATV, &CompileOptions::default()).unwrap();
    let tin = inputs(&[("niter", 2)]);
    bench("simulate TOMCATV 257x257 P=4", 10, || {
        black_box(simulate(&tom, &[4], &tin, &MachineModel::sp2()).unwrap())
    });

    let erl = compile(dhpf_bench::sources::ERLEBACHER, &CompileOptions::default()).unwrap();
    let ein = inputs(&[]);
    bench("simulate ERLEBACHER 32^3 P=4", 10, || {
        black_box(simulate(&erl, &[4], &ein, &MachineModel::sp2()).unwrap())
    });
}
