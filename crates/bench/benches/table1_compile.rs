//! Table 1 as a micro-benchmark: compile-time of the benchmark
//! applications, fixed vs symbolic processor counts. The `table1` binary
//! prints the full phase breakdown; this bench tracks the totals.
//!
//! Run with `cargo bench -p dhpf-bench --bench table1_compile`.

use dhpf_bench::timing::bench;
use dhpf_core::{compile, CompileOptions};
use std::hint::black_box;

fn main() {
    bench("compile TOMCATV-sym", 10, || {
        black_box(compile(
            dhpf_bench::sources::TOMCATV,
            &CompileOptions::default(),
        ))
    });
    bench("compile JACOBI", 10, || {
        black_box(compile(
            dhpf_bench::sources::JACOBI,
            &CompileOptions::default(),
        ))
    });
    bench("compile ERLEBACHER", 10, || {
        black_box(compile(
            dhpf_bench::sources::ERLEBACHER,
            &CompileOptions::default(),
        ))
    });
}
