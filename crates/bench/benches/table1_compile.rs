//! Table 1 as a Criterion benchmark: compile-time of the benchmark
//! applications, fixed vs symbolic processor counts. The `table1` binary
//! prints the full phase breakdown; this bench tracks the totals.

use criterion::{criterion_group, criterion_main, Criterion};
use dhpf_core::{compile, CompileOptions};
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("compile TOMCATV-sym", |b| {
        b.iter(|| black_box(compile(dhpf_bench::sources::TOMCATV, &CompileOptions::default())))
    });
    g.bench_function("compile JACOBI", |b| {
        b.iter(|| black_box(compile(dhpf_bench::sources::JACOBI, &CompileOptions::default())))
    });
    g.bench_function("compile ERLEBACHER", |b| {
        b.iter(|| {
            black_box(compile(
                dhpf_bench::sources::ERLEBACHER,
                &CompileOptions::default(),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
