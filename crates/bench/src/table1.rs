//! Table 1: breakdown of dHPF compilation time.
//!
//! Compiles SP-4 (fixed 2x2 processors), SP-sym (symbolic count), and
//! TOMCATV-sym (symbolic count), and prints the same rows the paper
//! reports: total wall-clock time and the percentage of time in each
//! analysis/code-generation phase, including the share spent in
//! multiple-mappings code generation (the integer-set framework's cost).

use dhpf_core::{compile, CompileOptions, Compiled, PhaseRow};
use dhpf_obs::Collector;
use std::time::Duration;

/// One column of Table 1.
#[derive(Debug)]
pub struct Column {
    /// Application variant name (e.g. "SP-4").
    pub name: String,
    /// Total compilation wall-clock time.
    pub total: Duration,
    /// `(phase, time, percent-of-total)` rows.
    pub rows: Vec<(String, Duration, f64)>,
    /// The same rows with nesting depth and self time (child rows are the
    /// ones rendered indented, as in the paper's table).
    pub nested: Vec<PhaseRow>,
    /// The compiled artifact (for stats).
    pub compiled: Compiled,
}

/// Compiles one variant and captures its phase breakdown.
///
/// # Panics
///
/// Panics if the variant fails to compile (the harness inputs are fixed).
pub fn column(name: &str, src: &str) -> Column {
    column_with(name, src, true)
}

/// [`column`] with explicit control over the shared Omega context cache
/// (`use_cache = false` reproduces the uncached, pre-`Context` behaviour).
///
/// Each variant is compiled twice and the faster trial is reported: each
/// compilation builds its own `Context`, so trials are independent (no
/// warm cache crosses trials) and the minimum suppresses scheduler noise.
///
/// # Panics
///
/// Panics if the variant fails to compile (the harness inputs are fixed).
pub fn column_with(name: &str, src: &str, use_cache: bool) -> Column {
    column_opts(name, src, &CompileOptions::new().cache(use_cache))
}

/// [`column_with`] with fully explicit [`CompileOptions`] (thread count,
/// cache, loop splitting): two trials, the faster one reported.
///
/// # Panics
///
/// Panics if the variant fails to compile (the harness inputs are fixed).
pub fn column_opts(name: &str, src: &str, opts: &CompileOptions) -> Column {
    let mut compiled =
        compile(src, opts).unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
    let second = compile(src, opts).unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
    if second.report.timers.total() < compiled.report.timers.total() {
        compiled = second;
    }
    finish_column(name, compiled)
}

/// [`column_with`] recording the compilation on `trace`. Tracing runs one
/// trial only, so the exported trace reconciles 1:1 with the printed rows
/// (the min-of-two-trials noise suppression would leave orphan spans from
/// the discarded trial).
///
/// # Panics
///
/// Panics if the variant fails to compile (the harness inputs are fixed).
pub fn column_traced(name: &str, src: &str, use_cache: bool, trace: &Collector) -> Column {
    let opts = CompileOptions::new().cache(use_cache).trace(trace.clone());
    column_traced_opts(name, src, &opts)
}

/// [`column_traced`] with fully explicit [`CompileOptions`]: one trial,
/// recorded on whatever collector the options carry.
///
/// # Panics
///
/// Panics if the variant fails to compile (the harness inputs are fixed).
pub fn column_traced_opts(name: &str, src: &str, opts: &CompileOptions) -> Column {
    let compiled = compile(src, opts).unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
    finish_column(name, compiled)
}

fn finish_column(name: &str, compiled: Compiled) -> Column {
    Column {
        name: name.to_string(),
        total: compiled.report.timers.total(),
        rows: compiled.report.timers.rows(),
        nested: compiled.report.timers.rows_nested(),
        compiled,
    }
}

/// The phase rows printed, mirroring the paper's table.
pub const PHASES: &[&str] = &[
    "interprocedural analysis",
    "module compilation",
    "partitioning computation",
    "loop splitting",
    "loop bounds reduction",
    "communication generation",
    "loops over comm partners",
    "check if msg is contiguous",
    "opt of generated code",
    "mult mappings code generation",
];

/// Runs the full Table 1 and renders it as text.
pub fn run() -> String {
    run_with(true)
}

/// Runs Table 1 with the Omega context cache on or off (`--no-cache`).
pub fn run_with(use_cache: bool) -> String {
    run_threads(use_cache, 1)
}

/// Runs Table 1 on the parallel driver (`--threads N`); `threads = 1` is
/// the serial pipeline.
pub fn run_threads(use_cache: bool, threads: usize) -> String {
    run_opts(&CompileOptions::new().cache(use_cache).threads(threads))
}

/// Runs Table 1 with fully explicit [`CompileOptions`] — e.g. a compile
/// deadline (`--deadline-ms`), whose trip shows up as degradations in the
/// rendered stats instead of a crash.
pub fn run_opts(opts: &CompileOptions) -> String {
    let sp4 = column_opts("SP-4", dhpf_bench_sources_sp(), opts);
    let spsym_src = crate::sources::sp_symbolic();
    let spsym = column_opts("SP-sym", &spsym_src, opts);
    let tsym = column_opts("T-sym", crate::sources::TOMCATV, opts);
    render(&[sp4, spsym, tsym])
}

/// Runs Table 1 recording every compilation on `trace` (one trial per
/// variant, see [`column_traced`]).
pub fn run_traced(use_cache: bool, trace: &Collector) -> String {
    run_traced_threads(use_cache, trace, 1)
}

/// [`run_traced`] compiling on the parallel driver (`--threads N`);
/// `threads = 1` is the serial pipeline.
pub fn run_traced_threads(use_cache: bool, trace: &Collector, threads: usize) -> String {
    let opts = CompileOptions::new()
        .cache(use_cache)
        .trace(trace.clone())
        .threads(threads);
    let sp4 = column_traced_opts("SP-4", dhpf_bench_sources_sp(), &opts);
    let spsym_src = crate::sources::sp_symbolic();
    let spsym = column_traced_opts("SP-sym", &spsym_src, &opts);
    let tsym = column_traced_opts("T-sym", crate::sources::TOMCATV, &opts);
    render(&[sp4, spsym, tsym])
}

fn dhpf_bench_sources_sp() -> &'static str {
    crate::sources::SP
}

/// Renders columns into the paper's table shape.
pub fn render(cols: &[Column]) -> String {
    let mut out = String::new();
    out.push_str("Table 1: Breakdown of dHPF compilation time\n");
    out.push_str(&format!("{:<34}", "application"));
    for c in cols {
        out.push_str(&format!("{:>12}", c.name));
    }
    out.push('\n');
    out.push_str(&format!("{:<34}", "total compilation wall-clock time"));
    for c in cols {
        out.push_str(&format!("{:>11.2}s", c.total.as_secs_f64()));
    }
    out.push('\n');
    for phase in PHASES {
        // Child phases (nonzero nesting depth in any column) render
        // indented, mirroring the paper's sub-rows of "module compilation".
        let depth = cols
            .iter()
            .flat_map(|c| c.nested.iter())
            .filter(|r| r.name == *phase)
            .map(|r| r.depth)
            .max()
            .unwrap_or(0);
        let label = format!("{}{}", "  ".repeat(depth), phase);
        out.push_str(&format!("{label:<34}"));
        for c in cols {
            let pct = c
                .rows
                .iter()
                .find(|(n, _, _)| n == phase)
                .map(|(_, _, p)| *p)
                .unwrap_or(0.0);
            out.push_str(&format!("{:>11.1}%", pct));
        }
        out.push('\n');
    }
    out.push('\n');
    out.push_str("synthesis statistics:\n");
    for c in cols {
        let s = &c.compiled.report.stats;
        out.push_str(&format!(
            "  {:<8} comm events {:>3}, vectorized {:>3}, coalesced groups {:>2}, contiguous {:>3}, split nests {:>2}\n",
            c.name, s.comm_events, s.fully_vectorized, s.coalesced_groups, s.contiguous_events, s.split_nests
        ));
    }
    out.push('\n');
    out.push_str("omega context cache:\n");
    for c in cols {
        let cache = &c.compiled.report.cache;
        out.push_str(&format!(
            "  {:<8} hits {:>6}, misses {:>6}, hit rate {:>5.1}%, evictions {:>2}, interned {:>5} conjuncts / {:>5} exprs\n",
            c.name,
            cache.total_hits(),
            cache.total_misses(),
            100.0 * cache.hit_rate(),
            cache.total_evictions(),
            cache.interned_conjuncts,
            cache.interned_exprs,
        ));
        for (op, counts) in cache.rows() {
            if counts.hits + counts.misses > 0 {
                let total = (counts.hits + counts.misses) as f64;
                out.push_str(&format!(
                    "    {:<14} hits {:>6}, misses {:>6}, hit rate {:>5.1}%, evictions {:>2}\n",
                    op,
                    counts.hits,
                    counts.misses,
                    100.0 * counts.hits as f64 / total,
                    counts.evictions,
                ));
            }
        }
    }
    // Graceful degradations (only under a --deadline-ms style budget or
    // fault injection; an exact compile prints nothing here).
    if cols
        .iter()
        .any(|c| !c.compiled.report.degradations().is_empty())
    {
        out.push('\n');
        out.push_str("graceful degradations:\n");
        for c in cols {
            let ds = c.compiled.report.degradations();
            if ds.is_empty() {
                continue;
            }
            let tripped = c.compiled.report.governor.tripped.unwrap_or("none");
            out.push_str(&format!(
                "  {:<8} {:>3} degradations (budget trip: {tripped})\n",
                c.name,
                ds.len()
            ));
            for d in ds {
                out.push_str(&format!("    {d}\n"));
            }
        }
    }
    out
}
