//! Minimal wall-clock micro-benchmark harness (no external deps).
//!
//! The `benches/` entry points use this instead of a framework so the
//! workspace builds in fully offline environments. Each benchmark runs a
//! warm-up pass, then a fixed number of timed iterations, and reports the
//! median and mean per-iteration time.

use std::time::Instant;

/// Runs `f` for `iters` timed iterations (after one warm-up) and prints
/// `name: median ... mean ...` in adaptive units.
pub fn bench<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<48} median {:>12}  mean {:>12}  ({} iters)",
        fmt_time(median),
        fmt_time(mean),
        samples.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}
