//! # dhpf-bench — harnesses that regenerate the paper's tables and figures
//!
//! - [`table1`]: the compile-time breakdown of Table 1 (SP-4, SP-sym,
//!   TOMCATV-sym).
//! - [`figure7`]: the speedup curves of Figure 7 (TOMCATV, ERLEBACHER,
//!   JACOBI) on the simulated message-passing machine.
//!
//! Run them as binaries: `cargo run --release -p dhpf-bench --bin table1`
//! and `cargo run --release -p dhpf-bench --bin figure7`.

#![warn(missing_docs)]

pub mod args;
pub mod figure7;
pub mod table1;
pub mod timing;
pub mod traceopt;

/// Parses `--threads N` from CLI args (compilation driver thread count).
/// Absent, malformed, or zero values fall back to 1 (the serial pipeline).
#[deprecated(note = "use args::common / args::u64_value")]
#[must_use]
pub fn threads_from_args(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}

/// The benchmark HPF sources, embedded so the harness runs anywhere.
pub mod sources {
    /// JACOBI: 4-point stencil, (BLOCK, BLOCK) on a 2 x (P/2) grid.
    pub const JACOBI: &str = include_str!("../../../benchmarks/jacobi.hpf");
    /// TOMCATV-like mesh generation, (BLOCK, *).
    pub const TOMCATV: &str = include_str!("../../../benchmarks/tomcatv.hpf");
    /// ERLEBACHER-like 3-D compact differencing, (*, *, BLOCK).
    pub const ERLEBACHER: &str = include_str!("../../../benchmarks/erlebacher.hpf");
    /// SP-like ADI solver, (*, BLOCK, BLOCK).
    pub const SP: &str = include_str!("../../../benchmarks/sp.hpf");

    /// The SP source with a symbolic processor count (SP-sym).
    pub fn sp_symbolic() -> String {
        SP.replace(
            "!HPF$ processors p(2, 2)",
            "!HPF$ processors p(2, number_of_processors())",
        )
    }
}
