//! Shared `--trace-out` plumbing for the benchmark binaries.
//!
//! Every harness accepts `--trace-out <path>` (or the `DHPF_TRACE`
//! environment variable) to dump the structured compile/simulate trace on
//! exit. The extension picks the format: `.jsonl` writes JSON lines,
//! anything else writes Chrome `trace_event` JSON (load it in
//! `chrome://tracing` or Perfetto).

use dhpf_obs::export::{to_chrome_trace, to_json_lines};
use dhpf_obs::Collector;
use std::path::{Path, PathBuf};

/// A requested trace dump: the destination path plus the live collector
/// the harness threads through compilation and simulation.
#[derive(Clone, Debug)]
pub struct TraceOut {
    /// Destination file.
    pub path: PathBuf,
    /// The collector to pass to `CompileOptions::trace` / `simulate_with`.
    pub collector: Collector,
}

impl TraceOut {
    /// Serializes the collected trace to [`TraceOut::path`] (format from
    /// the extension) and returns the rendered tree for printing.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be written.
    pub fn write(&self) -> std::io::Result<String> {
        let trace = self.collector.trace();
        let text = if self.path.extension().is_some_and(|e| e == "jsonl") {
            to_json_lines(&trace)
        } else {
            to_chrome_trace(&trace)
        };
        std::fs::write(&self.path, text)?;
        Ok(dhpf_obs::export::render_tree(&trace))
    }
}

/// Parses `--trace-out <path>` from `args` (falling back to the
/// `DHPF_TRACE` environment variable). Returns `None` when tracing was not
/// requested.
pub fn from_args_env(args: &[String]) -> Option<TraceOut> {
    let path = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--trace-out=").map(str::to_string))
        })
        .or_else(|| std::env::var("DHPF_TRACE").ok().filter(|s| !s.is_empty()))?;
    Some(TraceOut {
        path: Path::new(&path).to_path_buf(),
        collector: Collector::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_trace_out_flag() {
        let t = from_args_env(&argv(&["table1", "--trace-out", "t.json"])).unwrap();
        assert_eq!(t.path, Path::new("t.json"));
        let t = from_args_env(&argv(&["table1", "--trace-out=t.jsonl"])).unwrap();
        assert_eq!(t.path, Path::new("t.jsonl"));
        assert!(
            from_args_env(&argv(&["table1", "--no-cache"])).is_none()
                || std::env::var("DHPF_TRACE").is_ok()
        );
    }
}
