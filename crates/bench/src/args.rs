//! Shared CLI flag parsing for the benchmark binaries.
//!
//! Every harness (`table1`, `figure7`, `oracle_fuzz`, `chaos`,
//! `serve_bench`, …) accepts the same core flags with the same spelling
//! and semantics, parsed by [`common`]:
//!
//! - `--threads N` — compile on the parallel driver (default 1, the
//!   serial pipeline; output is bit-identical either way).
//! - `--deadline-ms N` — wall-clock compile budget; trips degrade
//!   gracefully instead of crashing.
//! - `--trace-out PATH` (or `DHPF_TRACE`) — dump the structured trace;
//!   `.jsonl` for JSON lines, anything else for Chrome `trace_event`.
//!
//! Both `--flag value` and `--flag=value` spellings are accepted. The
//! harness-specific flags stay in their binaries but should use
//! [`value`] / [`u64_value`] / [`present`] so the spellings stay uniform.

use crate::traceopt::TraceOut;
use dhpf_core::CompileOptions;

/// Returns the value of `--name v` or `--name=v`, if present.
#[must_use]
pub fn value(args: &[String], name: &str) -> Option<String> {
    let eq = format!("{name}=");
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(&eq).map(str::to_string))
        })
}

/// Returns the integer value of `--name`, exiting with a clear message on
/// a malformed value (benchmarks should fail loudly, not guess).
#[must_use]
pub fn u64_value(args: &[String], name: &str) -> Option<u64> {
    value(args, name).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{name} needs an integer, got {v:?}");
            std::process::exit(2);
        })
    })
}

/// Whether the bare flag `--name` appears.
#[must_use]
pub fn present(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// The flags every benchmark binary shares.
#[derive(Debug, Default)]
pub struct Common {
    /// `--threads N` (default 1).
    pub threads: usize,
    /// `--deadline-ms N` (default none: unlimited).
    pub deadline_ms: Option<u64>,
    /// `--trace-out PATH` / `DHPF_TRACE` (default none).
    pub trace: Option<TraceOut>,
}

/// Parses the shared flags from `args`.
#[must_use]
pub fn common(args: &[String]) -> Common {
    Common {
        threads: u64_value(args, "--threads").map_or(1, |n| (n.max(1)) as usize),
        deadline_ms: u64_value(args, "--deadline-ms"),
        trace: crate::traceopt::from_args_env(args),
    }
}

impl Common {
    /// Applies the shared flags to a set of compile options: thread
    /// count, deadline, and the trace collector when tracing.
    #[must_use]
    pub fn apply(&self, mut opts: CompileOptions) -> CompileOptions {
        opts = opts.threads(self.threads);
        if let Some(ms) = self.deadline_ms {
            opts = opts.deadline_ms(ms);
        }
        if let Some(t) = &self.trace {
            opts = opts.trace(t.collector.clone());
        }
        opts
    }

    /// Prints the banner lines for non-default shared flags, so every
    /// harness reports its configuration the same way.
    pub fn banner(&self) {
        if self.threads > 1 {
            println!("(parallel driver: --threads {})\n", self.threads);
        }
        if let Some(ms) = self.deadline_ms {
            println!("(compile deadline: --deadline-ms {ms})\n");
        }
    }

    /// Writes the collected trace (if `--trace-out` was given), printing
    /// the destination or exiting on I/O failure.
    pub fn finish_trace(&self, print_tree: bool) {
        if let Some(t) = &self.trace {
            match t.write() {
                Ok(tree) => {
                    if print_tree {
                        println!("{tree}");
                    }
                    println!("trace written to {}", t.path.display());
                }
                Err(e) => {
                    eprintln!("failed to write trace {}: {e}", t.path.display());
                    std::process::exit(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn both_flag_spellings_parse() {
        let a = argv(&["bench", "--threads", "4", "--deadline-ms=250"]);
        let c = common(&a);
        assert_eq!(c.threads, 4);
        assert_eq!(c.deadline_ms, Some(250));
        assert_eq!(value(&a, "--threads").as_deref(), Some("4"));
        assert_eq!(u64_value(&a, "--deadline-ms"), Some(250));
    }

    #[test]
    fn defaults_are_serial_and_unlimited() {
        let c = common(&argv(&["bench"]));
        assert_eq!(c.threads, 1);
        assert_eq!(c.deadline_ms, None);
        assert!(c.trace.is_none());
    }

    #[test]
    fn zero_threads_clamps_to_serial() {
        assert_eq!(common(&argv(&["bench", "--threads", "0"])).threads, 1);
    }
}
