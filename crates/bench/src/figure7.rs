//! Figure 7: speedups for TOMCATV, ERLEBACHER, and JACOBI on the simulated
//! message-passing machine, for two problem sizes each, relative to the
//! one-processor run (T(1)/T(P)).

use dhpf_core::{compile, CompileOptions, Compiled};
use dhpf_obs::Collector;
use dhpf_sim::{simulate_with, MachineModel, RankComm};
use std::collections::HashMap;

/// One speedup curve: a benchmark at one problem size.
#[derive(Debug)]
pub struct Curve {
    /// Benchmark name.
    pub bench: String,
    /// Problem-size label (e.g. "257x257").
    pub size: String,
    /// `(processors, simulated time seconds, speedup)` points.
    pub points: Vec<(i64, f64, f64)>,
    /// Message/byte counts at the largest P (communication profile).
    pub messages: u64,
    /// Total payload bytes at the largest P.
    pub bytes: u64,
    /// Per-rank communication activity at the largest P.
    pub comm: Vec<RankComm>,
}

/// Grid shapes per benchmark: maps total P to per-dimension counts.
fn grid_for(bench: &str, p: i64) -> Vec<i64> {
    match bench {
        // Paper: JACOBI on a 2D (2, P/2) grid; 1D otherwise. The first
        // grid dimension is fixed at 2 processors, so the smallest
        // configuration is 2 ranks.
        "JACOBI" => vec![2, (p / 2).max(1)],
        _ => vec![p],
    }
}

/// Runs one curve. `size` rewrites the source's `parameter` line so the
/// array extents match the problem size.
///
/// # Panics
///
/// Panics if compilation or simulation fails (harness inputs are fixed).
pub fn curve(
    bench: &str,
    src: &str,
    size_label: &str,
    size: Option<(&str, &str)>,
    inputs: &[(&str, i64)],
    procs: &[i64],
) -> Curve {
    curve_with(bench, src, size_label, size, inputs, procs, None, 1)
}

/// [`curve`] with an optional trace collector: the compilation and every
/// simulated configuration record spans (with message/byte counters) on
/// it, grouped under one `"<bench> (<size>)"` span.
///
/// # Panics
///
/// Panics if compilation or simulation fails (harness inputs are fixed).
#[allow(clippy::too_many_arguments)]
pub fn curve_with(
    bench: &str,
    src: &str,
    size_label: &str,
    size: Option<(&str, &str)>,
    inputs: &[(&str, i64)],
    procs: &[i64],
    trace: Option<&Collector>,
    threads: usize,
) -> Curve {
    let base = CompileOptions::new().threads(threads);
    curve_opts(bench, src, size_label, size, inputs, procs, trace, &base)
}

/// [`curve_with`] with fully explicit base [`CompileOptions`] (threads,
/// deadline, …); the trace collector is still attached here so compile
/// and simulate spans share one collector.
///
/// # Panics
///
/// Panics if compilation or simulation fails (harness inputs are fixed).
#[allow(clippy::too_many_arguments)]
pub fn curve_opts(
    bench: &str,
    src: &str,
    size_label: &str,
    size: Option<(&str, &str)>,
    inputs: &[(&str, i64)],
    procs: &[i64],
    trace: Option<&Collector>,
    base: &CompileOptions,
) -> Curve {
    let src = match size {
        Some((from, to)) => src.replace(from, to),
        None => src.to_string(),
    };
    let span = trace.map(|c| (c, c.begin(&format!("{bench} ({size_label})"), "figure7")));
    let mut opts = base.clone();
    if let Some(c) = trace {
        opts = opts.trace(c.clone());
    }
    let compiled: Compiled = compile(&src, &opts).unwrap_or_else(|e| panic!("{bench}: {e}"));
    let inputs: HashMap<String, i64> = inputs.iter().map(|&(k, v)| (k.to_string(), v)).collect();
    let machine = MachineModel::sp2();
    let mut points = Vec::new();
    // Speedup is p0 * T(p0) / T(p): for a 1-D grid p0 = 1 (plain speedup);
    // JACOBI's fixed 2 x (P/2) grid starts at p0 = 2, matching the paper's
    // treatment of configurations whose smallest run is parallel
    // ("speedups ... are computed relative to the 4-processor speedup").
    let mut base: Option<(i64, f64)> = None;
    let mut last = (0u64, 0u64);
    let mut comm = Vec::new();
    for &p in procs {
        let grid = grid_for(bench, p);
        let total: i64 = grid.iter().product();
        let r = simulate_with(&compiled, &grid, &inputs, &machine, trace)
            .unwrap_or_else(|e| panic!("{bench} P={p}: {e}"));
        let t = r.time;
        let (p0, t0) = *base.get_or_insert((total, t));
        if points.last().map(|&(p, _, _)| p) != Some(total) {
            points.push((total, t, p0 as f64 * t0 / t));
        }
        last = (r.messages, r.bytes);
        comm = r.comm;
    }
    if let Some((c, id)) = span {
        c.end(id);
    }
    Curve {
        bench: bench.to_string(),
        size: size_label.to_string(),
        points,
        messages: last.0,
        bytes: last.1,
        comm,
    }
}

/// All Figure 7 curves at harness scale.
///
/// Simulated sizes are scaled down from the paper's (which ran minutes on a
/// real SP-2); the *shape* of each curve is the reproduction target.
pub fn run(procs: &[i64]) -> Vec<Curve> {
    run_traced(procs, None)
}

/// [`run`] with an optional trace collector threaded through every
/// compilation and simulation.
pub fn run_traced(procs: &[i64], trace: Option<&Collector>) -> Vec<Curve> {
    run_traced_threads(procs, trace, 1)
}

/// [`run_traced`] compiling on the parallel driver (`--threads N`);
/// `threads = 1` is the serial pipeline. Simulation is unaffected.
pub fn run_traced_threads(procs: &[i64], trace: Option<&Collector>, threads: usize) -> Vec<Curve> {
    run_opts(procs, trace, &CompileOptions::new().threads(threads))
}

/// [`run_traced_threads`] with fully explicit base [`CompileOptions`] —
/// e.g. a compile deadline (`--deadline-ms`), whose trips degrade the
/// compilation gracefully without changing the simulated curves' shape.
pub fn run_opts(procs: &[i64], trace: Option<&Collector>, base: &CompileOptions) -> Vec<Curve> {
    vec![
        curve_opts(
            "TOMCATV",
            crate::sources::TOMCATV,
            "129x129",
            Some(("parameter (n = 257)", "parameter (n = 129)")),
            &[("niter", 3)],
            procs,
            trace,
            base,
        ),
        curve_opts(
            "TOMCATV",
            crate::sources::TOMCATV,
            "257x257",
            None,
            &[("niter", 3)],
            procs,
            trace,
            base,
        ),
        curve_opts(
            "ERLEBACHER",
            crate::sources::ERLEBACHER,
            "32^3",
            None,
            &[],
            procs,
            trace,
            base,
        ),
        curve_opts(
            "ERLEBACHER",
            crate::sources::ERLEBACHER,
            "64^3",
            Some(("parameter (n = 32, nz = 32)", "parameter (n = 64, nz = 64)")),
            &[],
            procs,
            trace,
            base,
        ),
        curve_opts(
            "JACOBI",
            crate::sources::JACOBI,
            "128x128",
            None,
            &[("niter", 3)],
            procs,
            trace,
            base,
        ),
        curve_opts(
            "JACOBI",
            crate::sources::JACOBI,
            "256x256",
            Some(("parameter (n = 128)", "parameter (n = 256)")),
            &[("niter", 3)],
            procs,
            trace,
            base,
        ),
    ]
}

/// Renders curves as an ASCII table.
pub fn render(curves: &[Curve]) -> String {
    let mut out = String::new();
    out.push_str("Figure 7: speedups on the simulated message-passing machine\n");
    for c in curves {
        out.push_str(&format!("\n{} ({}):\n", c.bench, c.size));
        out.push_str("  P     time(s)   speedup\n");
        for (p, t, s) in &c.points {
            out.push_str(&format!("  {:<4} {:>9.4} {:>9.2}\n", p, t, s));
        }
        let inplace: u64 = c.comm.iter().map(|rc| rc.inplace_sends).sum();
        let buffered: u64 = c.comm.iter().map(|rc| rc.buffered_sends).sum();
        out.push_str(&format!(
            "  [largest P: {} messages, {} payload bytes; {} in-place / {} buffered sends]\n",
            c.messages, c.bytes, inplace, buffered
        ));
        // Per-VP activity: how evenly the communication volume spreads.
        if c.comm.len() > 1 {
            let busiest = c
                .comm
                .iter()
                .enumerate()
                .max_by_key(|(_, rc)| rc.sent_bytes)
                .map(|(k, rc)| (k, rc.sent_messages, rc.sent_bytes))
                .unwrap_or((0, 0, 0));
            let idle = c.comm.iter().filter(|rc| rc.sent_messages == 0).count();
            out.push_str(&format!(
                "  [busiest rank {}: {} msgs / {} bytes sent; {} silent rank(s)]\n",
                busiest.0, busiest.1, busiest.2, idle
            ));
        }
    }
    out
}
