//! Prints the Figure 7 reproduction.
fn main() {
    let procs: Vec<i64> = std::env::args()
        .nth(1)
        .map(|s| {
            s.split(',')
                .map(|x| x.parse().expect("processor count"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16]);
    let curves = dhpf_bench::figure7::run(&procs);
    println!("{}", dhpf_bench::figure7::render(&curves));
}
