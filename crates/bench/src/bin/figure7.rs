//! Prints the Figure 7 reproduction.
//!
//! Pass `--trace-out <path>` (or set `DHPF_TRACE`) to dump compile +
//! simulate spans with per-run message/byte counters.
//! Pass `--threads N` to compile on the parallel driver (default 1,
//! the serial pipeline; simulated speedups are unaffected).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace = dhpf_bench::traceopt::from_args_env(&args);
    let threads = dhpf_bench::threads_from_args(&args);
    let procs: Vec<i64> = args
        .get(1)
        .filter(|s| !s.starts_with("--"))
        .map(|s| {
            s.split(',')
                .map(|x| x.parse().expect("processor count"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16]);
    let curves = dhpf_bench::figure7::run_traced_threads(
        &procs,
        trace.as_ref().map(|t| &t.collector),
        threads,
    );
    println!("{}", dhpf_bench::figure7::render(&curves));
    if let Some(t) = &trace {
        match t.write() {
            Ok(_) => println!("trace written to {}", t.path.display()),
            Err(e) => {
                eprintln!("failed to write trace {}: {e}", t.path.display());
                std::process::exit(1);
            }
        }
    }
}
