//! Prints the Figure 7 reproduction.
//!
//! Accepts the shared harness flags (`--threads N`, `--deadline-ms N`,
//! `--trace-out PATH`; see `dhpf_bench::args`). A positional argument
//! like `1,2,4,8` overrides the simulated processor counts. The trace
//! records compile + simulate spans with per-run message/byte counters;
//! a deadline degrades the compilation gracefully without changing the
//! simulated curves' shape.

use dhpf_bench::args;

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let common = args::common(&argv);
    common.banner();
    let procs: Vec<i64> = argv
        .get(1)
        .filter(|s| !s.starts_with("--"))
        .map(|s| {
            s.split(',')
                .map(|x| x.parse().expect("processor count"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16]);
    let base = common.apply(dhpf_core::CompileOptions::new());
    let curves =
        dhpf_bench::figure7::run_opts(&procs, common.trace.as_ref().map(|t| &t.collector), &base);
    println!("{}", dhpf_bench::figure7::render(&curves));
    common.finish_trace(false);
}
