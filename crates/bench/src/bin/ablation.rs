//! Ablation: the effect of Figure-4 loop splitting (communication/
//! computation overlap) on simulated execution time, per the paper's §7
//! observation that splitting let TOMCATV reference receive buffers
//! directly and overlap boundary exchange with interior computation.

use dhpf_core::{compile, CompileOptions};
use dhpf_sim::{simulate_with, MachineModel};
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let use_cache = !args.iter().any(|a| a == "--no-cache");
    let trace = dhpf_bench::traceopt::from_args_env(&args);
    let inputs: HashMap<String, i64> = [("niter".to_string(), 3i64)].into_iter().collect();
    println!("Ablation: Figure-4 loop splitting (TOMCATV 257x257)");
    if !use_cache {
        println!("(omega context cache disabled via --no-cache)");
    }
    println!();
    println!("  P    t(no split)   t(split)    gain");
    for p in [2i64, 4, 8, 16] {
        let mut times = Vec::new();
        for split in [false, true] {
            let mut opts = CompileOptions::new().loop_splitting(split).cache(use_cache);
            if let Some(t) = &trace {
                opts = opts.trace(t.collector.clone());
            }
            let compiled = compile(dhpf_bench::sources::TOMCATV, &opts).expect("compile tomcatv");
            let r = simulate_with(
                &compiled,
                &[p],
                &inputs,
                &MachineModel::sp2(),
                trace.as_ref().map(|t| &t.collector),
            )
            .expect("simulate tomcatv");
            times.push(r.time);
        }
        println!(
            "  {:<4} {:>11.5} {:>10.5} {:>6.1}%",
            p,
            times[0],
            times[1],
            100.0 * (times[0] - times[1]) / times[0]
        );
    }
    if let Some(t) = &trace {
        match t.write() {
            Ok(_) => println!("\ntrace written to {}", t.path.display()),
            Err(e) => {
                eprintln!("failed to write trace {}: {e}", t.path.display());
                std::process::exit(1);
            }
        }
    }
}
