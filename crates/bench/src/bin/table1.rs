//! Prints the Table 1 reproduction.
//!
//! Pass `--no-cache` to disable the shared Omega context (hash-consing +
//! memoized simplification) and reproduce the uncached compile times.
//! Pass `--trace-out <path>` (or set `DHPF_TRACE`) to dump the structured
//! compile trace: `.jsonl` for JSON lines, anything else for Chrome
//! `trace_event` JSON.
//! Pass `--threads N` to compile on the parallel driver (default 1,
//! the serial pipeline; output is bit-identical either way).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let use_cache = !args.iter().any(|a| a == "--no-cache");
    let threads = dhpf_bench::threads_from_args(&args);
    let trace = dhpf_bench::traceopt::from_args_env(&args);
    if !use_cache {
        println!("(omega context cache disabled via --no-cache)\n");
    }
    if threads > 1 {
        println!("(parallel driver: --threads {threads})\n");
    }
    let table = match &trace {
        Some(t) => dhpf_bench::table1::run_traced_threads(use_cache, &t.collector, threads),
        None => dhpf_bench::table1::run_threads(use_cache, threads),
    };
    println!("{table}");
    if let Some(t) = &trace {
        match t.write() {
            Ok(tree) => {
                println!("{tree}");
                println!("trace written to {}", t.path.display());
            }
            Err(e) => {
                eprintln!("failed to write trace {}: {e}", t.path.display());
                std::process::exit(1);
            }
        }
    }
}
