//! Prints the Table 1 reproduction.
//!
//! Pass `--no-cache` to disable the shared Omega context (hash-consing +
//! memoized simplification) and reproduce the uncached compile times.
//! Pass `--trace-out <path>` (or set `DHPF_TRACE`) to dump the structured
//! compile trace: `.jsonl` for JSON lines, anything else for Chrome
//! `trace_event` JSON.
//! Pass `--threads N` to compile on the parallel driver (default 1,
//! the serial pipeline; output is bit-identical either way).
//! Pass `--deadline-ms N` to compile under a wall-clock budget: when the
//! deadline trips, affected nests degrade to conservative (but correct)
//! communication instead of crashing, and the table gains a "graceful
//! degradations" section listing what was given up and why.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let use_cache = !args.iter().any(|a| a == "--no-cache");
    let threads = dhpf_bench::threads_from_args(&args);
    let deadline_ms: Option<u64> = args
        .iter()
        .position(|a| a == "--deadline-ms")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--deadline-ms takes milliseconds"));
    let trace = dhpf_bench::traceopt::from_args_env(&args);
    if !use_cache {
        println!("(omega context cache disabled via --no-cache)\n");
    }
    if threads > 1 {
        println!("(parallel driver: --threads {threads})\n");
    }
    if let Some(ms) = deadline_ms {
        println!("(compile deadline: --deadline-ms {ms})\n");
    }
    let table = match (&trace, deadline_ms) {
        (Some(t), None) => dhpf_bench::table1::run_traced_threads(use_cache, &t.collector, threads),
        (trace, deadline) => {
            let mut opts = dhpf_core::CompileOptions::new()
                .cache(use_cache)
                .threads(threads);
            if let Some(ms) = deadline {
                opts = opts.deadline_ms(ms);
            }
            if let Some(t) = trace {
                opts = opts.trace(t.collector.clone());
            }
            dhpf_bench::table1::run_opts(&opts)
        }
    };
    println!("{table}");
    if let Some(t) = &trace {
        match t.write() {
            Ok(tree) => {
                println!("{tree}");
                println!("trace written to {}", t.path.display());
            }
            Err(e) => {
                eprintln!("failed to write trace {}: {e}", t.path.display());
                std::process::exit(1);
            }
        }
    }
}
