//! Prints the Table 1 reproduction.
fn main() {
    println!("{}", dhpf_bench::table1::run());
}
