//! Prints the Table 1 reproduction.
//!
//! Pass `--no-cache` to disable the shared Omega context (hash-consing +
//! memoized simplification) and reproduce the uncached compile times.
fn main() {
    let use_cache = !std::env::args().any(|a| a == "--no-cache");
    if !use_cache {
        println!("(omega context cache disabled via --no-cache)\n");
    }
    println!("{}", dhpf_bench::table1::run_with(use_cache));
}
