//! Prints the Table 1 reproduction.
//!
//! Accepts the shared harness flags (`--threads N`, `--deadline-ms N`,
//! `--trace-out PATH`; see `dhpf_bench::args`) plus `--no-cache` to
//! disable the shared Omega context (hash-consing + memoized
//! simplification) and reproduce the uncached compile times. When the
//! deadline trips, affected nests degrade to conservative (but correct)
//! communication instead of crashing, and the table gains a "graceful
//! degradations" section listing what was given up and why.

use dhpf_bench::args;

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let common = args::common(&argv);
    let use_cache = !args::present(&argv, "--no-cache");
    if !use_cache {
        println!("(omega context cache disabled via --no-cache)\n");
    }
    common.banner();
    // The traced run without a deadline keeps the multi-trial timing path
    // (`run_traced_threads` records one trial per variant).
    let table = match (&common.trace, common.deadline_ms) {
        (Some(t), None) => {
            dhpf_bench::table1::run_traced_threads(use_cache, &t.collector, common.threads)
        }
        _ => {
            let opts = common.apply(dhpf_core::CompileOptions::new().cache(use_cache));
            dhpf_bench::table1::run_opts(&opts)
        }
    };
    println!("{table}");
    common.finish_trace(true);
}
