//! CI gate for the observability pipeline. Three modes:
//!
//! - **Trace** (default): compiles an HPF source with tracing enabled,
//!   writes the trace in the format the extension implies, re-reads the
//!   file, and validates it against the schema.
//! - **Metrics** (`--metrics FILE`): validates a Prometheus text
//!   exposition (as scraped from `dhpf-serve`'s `metrics` op) — TYPE
//!   declarations, counter non-negativity, bucket monotonicity — and
//!   additionally asserts every `code` label on an error-counter family
//!   is a known `E_*` spelling and every `op` label is in the serve
//!   vocabulary.
//! - **Access log** (`--access-log FILE`): validates a JSON-lines access
//!   log written by `dhpf-serve --access-log`, including any embedded
//!   span trees.
//!
//! Usage: `trace_lint [<file.hpf>] [--trace-out <path>]
//!                    [--metrics <file>] [--access-log <file>]`
//!
//! Defaults to `benchmarks/jacobi.hpf` (falling back to the embedded copy
//! when run outside the repo) and a `trace_lint.json` file in the system
//! temp directory. Exits nonzero on any schema violation, on a trace with
//! no satisfiability samples, or when the span totals fail to reconcile
//! with the compiler's own Table-1 rows.

use dhpf_bench::traceopt::TraceOut;
use dhpf_core::{compile, CompileOptions};
use dhpf_obs::export::{
    parse_series_key, validate_access_log, validate_chrome_trace, validate_json_lines,
    validate_metrics_text,
};
use dhpf_omega::ErrorCode;

fn fail(msg: &str) -> ! {
    eprintln!("trace_lint: FAIL: {msg}");
    std::process::exit(1);
}

/// `--flag VALUE` lookup.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The `--metrics` mode: schema validation plus label-vocabulary checks
/// the generic validator cannot know about.
fn lint_metrics(path: &str) -> ! {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let sum = validate_metrics_text(&text).unwrap_or_else(|e| fail(&format!("metrics: {e}")));
    if sum.samples == 0 {
        fail("metrics exposition has no samples");
    }
    for key in sum.counters.keys() {
        let (name, labels) = parse_series_key(key);
        for (k, v) in &labels {
            if k == "code" && ErrorCode::parse(v).is_none() {
                fail(&format!("{key}: unknown error code label {v:?}"));
            }
            if name == "dhpf_serve_requests_total"
                && k == "op"
                && !dhpf_serve::metrics::OPS.contains(&v.as_str())
            {
                fail(&format!("{key}: unknown op label {v:?}"));
            }
        }
    }
    // The full error vocabulary must be present (pre-registered at zero),
    // so a dashboard can alert on any code without waiting for it.
    for &code in ErrorCode::ALL {
        let key = format!("dhpf_serve_errors_total{{code=\"{code}\"}}");
        if !sum.counters.contains_key(&key) {
            fail(&format!("error counter family missing {key}"));
        }
    }
    println!(
        "trace_lint: OK: metrics exposition valid ({} samples, {} counters, {} histograms)",
        sum.samples,
        sum.counters.len(),
        sum.hist_counts.len()
    );
    std::process::exit(0);
}

/// The `--access-log` mode.
fn lint_access_log(path: &str) -> ! {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let sum = validate_access_log(&text).unwrap_or_else(|e| fail(&format!("access log: {e}")));
    if sum.lines == 0 {
        fail("access log is empty");
    }
    for outcome in sum.by_outcome.keys() {
        if outcome != "ok" && ErrorCode::parse(outcome).is_none() {
            fail(&format!("unknown outcome code {outcome:?}"));
        }
    }
    println!(
        "trace_lint: OK: access log valid ({} records, {} ops, {} embedded traces)",
        sum.lines,
        sum.by_op.len(),
        sum.traces
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = flag_value(&args, "--metrics") {
        lint_metrics(&path);
    }
    if let Some(path) = flag_value(&args, "--access-log") {
        lint_access_log(&path);
    }
    let src_path = args.get(1).filter(|a| !a.starts_with("--")).cloned();
    let src = match &src_path {
        Some(p) => {
            std::fs::read_to_string(p).unwrap_or_else(|e| fail(&format!("cannot read {p}: {e}")))
        }
        None => dhpf_bench::sources::JACOBI.to_string(),
    };
    let out = dhpf_bench::traceopt::from_args_env(&args).unwrap_or_else(|| TraceOut {
        path: std::env::temp_dir().join("trace_lint.json"),
        collector: dhpf_obs::Collector::new(),
    });

    let opts = CompileOptions::new().trace(out.collector.clone());
    let compiled = compile(&src, &opts).unwrap_or_else(|e| fail(&format!("compile: {e}")));

    out.write()
        .unwrap_or_else(|e| fail(&format!("write {}: {e}", out.path.display())));
    let text = std::fs::read_to_string(&out.path)
        .unwrap_or_else(|e| fail(&format!("re-read {}: {e}", out.path.display())));

    let summary = if out.path.extension().is_some_and(|e| e == "jsonl") {
        validate_json_lines(&text)
    } else {
        validate_chrome_trace(&text)
    }
    .unwrap_or_else(|e| fail(&format!("schema: {e}")));

    if summary.events == 0 {
        fail("trace has no events");
    }
    let sat = summary.op_calls;
    if sat == 0 {
        fail("trace has no set-operation samples (satisfiability etc.)");
    }
    let trace = out.collector.trace();
    let ops = trace.total_ops();
    if ops.get("satisfiability").map_or(0, |o| o.calls) == 0 {
        fail("no satisfiability calls recorded");
    }

    // Reconcile: the root compile span's cumulative time must bracket the
    // compiler's own total within 5% (they time the same interval from the
    // same thread; divergence means spans are being mis-closed).
    let roots = trace.roots();
    let compile_root = roots
        .iter()
        .copied()
        .find(|&i| trace.nodes[i].name == "compile")
        .unwrap_or_else(|| fail("no compile root span"));
    let span_s = trace.nodes[compile_root].dur_ns as f64 / 1e9;
    let rows_s = compiled.report.timers.total().as_secs_f64();
    let rel = (span_s - rows_s).abs() / rows_s.max(1e-9);
    if rel > 0.05 {
        fail(&format!(
            "compile span ({span_s:.6}s) and Table-1 total ({rows_s:.6}s) diverge by {:.1}%",
            100.0 * rel
        ));
    }

    println!(
        "trace_lint: OK: {} events, {} op samples, compile span within {:.2}% of timer total ({})",
        summary.events,
        sat,
        100.0 * rel,
        out.path.display()
    );
}
