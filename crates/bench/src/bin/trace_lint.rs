//! CI gate for the structured trace pipeline: compiles an HPF source with
//! tracing enabled, writes the trace in the format the extension implies,
//! re-reads the file, and validates it against the schema.
//!
//! Usage: `trace_lint [<file.hpf>] [--trace-out <path>]`
//!
//! Defaults to `benchmarks/jacobi.hpf` (falling back to the embedded copy
//! when run outside the repo) and a `trace_lint.json` file in the system
//! temp directory. Exits nonzero on any schema violation, on a trace with
//! no satisfiability samples, or when the span totals fail to reconcile
//! with the compiler's own Table-1 rows.

use dhpf_bench::traceopt::TraceOut;
use dhpf_core::{compile, CompileOptions};
use dhpf_obs::export::{validate_chrome_trace, validate_json_lines};

fn fail(msg: &str) -> ! {
    eprintln!("trace_lint: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let src_path = args.get(1).filter(|a| !a.starts_with("--")).cloned();
    let src = match &src_path {
        Some(p) => {
            std::fs::read_to_string(p).unwrap_or_else(|e| fail(&format!("cannot read {p}: {e}")))
        }
        None => dhpf_bench::sources::JACOBI.to_string(),
    };
    let out = dhpf_bench::traceopt::from_args_env(&args).unwrap_or_else(|| TraceOut {
        path: std::env::temp_dir().join("trace_lint.json"),
        collector: dhpf_obs::Collector::new(),
    });

    let opts = CompileOptions::new().trace(out.collector.clone());
    let compiled = compile(&src, &opts).unwrap_or_else(|e| fail(&format!("compile: {e}")));

    out.write()
        .unwrap_or_else(|e| fail(&format!("write {}: {e}", out.path.display())));
    let text = std::fs::read_to_string(&out.path)
        .unwrap_or_else(|e| fail(&format!("re-read {}: {e}", out.path.display())));

    let summary = if out.path.extension().is_some_and(|e| e == "jsonl") {
        validate_json_lines(&text)
    } else {
        validate_chrome_trace(&text)
    }
    .unwrap_or_else(|e| fail(&format!("schema: {e}")));

    if summary.events == 0 {
        fail("trace has no events");
    }
    let sat = summary.op_calls;
    if sat == 0 {
        fail("trace has no set-operation samples (satisfiability etc.)");
    }
    let trace = out.collector.trace();
    let ops = trace.total_ops();
    if ops.get("satisfiability").map_or(0, |o| o.calls) == 0 {
        fail("no satisfiability calls recorded");
    }

    // Reconcile: the root compile span's cumulative time must bracket the
    // compiler's own total within 5% (they time the same interval from the
    // same thread; divergence means spans are being mis-closed).
    let roots = trace.roots();
    let compile_root = roots
        .iter()
        .copied()
        .find(|&i| trace.nodes[i].name == "compile")
        .unwrap_or_else(|| fail("no compile root span"));
    let span_s = trace.nodes[compile_root].dur_ns as f64 / 1e9;
    let rows_s = compiled.report.timers.total().as_secs_f64();
    let rel = (span_s - rows_s).abs() / rows_s.max(1e-9);
    if rel > 0.05 {
        fail(&format!(
            "compile span ({span_s:.6}s) and Table-1 total ({rows_s:.6}s) diverge by {:.1}%",
            100.0 * rel
        ));
    }

    println!(
        "trace_lint: OK: {} events, {} op samples, compile span within {:.2}% of timer total ({})",
        summary.events,
        sat,
        100.0 * rel,
        out.path.display()
    );
}
