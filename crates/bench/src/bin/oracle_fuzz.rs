//! Differential oracle fuzz campaign driver.
//!
//! Runs the `dhpf_omega::oracle` law checkers on randomly generated bounded
//! sets/relations and prints minimized counterexamples for any violation.
//!
//! ```text
//! oracle_fuzz [--seed N] [--iters N] [--time-budget SECONDS]
//!             [--deadline-ms N] [--max-failures N] [--threads N]
//!             [--verbose] [--replay CASE_SEED]
//! ```
//!
//! Accepts the shared harness flags (see `dhpf_bench::args`): `--threads`
//! fans the campaign across worker threads, and `--deadline-ms` is the
//! millisecond spelling of the campaign wall-clock budget (wins over
//! `--time-budget` when both are given). Exit status is non-zero when any
//! law was violated, so CI can run this directly as a smoke job
//! (`--seed 5 --iters 2000`).

use dhpf_bench::args::{self, u64_value};
use dhpf_omega::oracle::{self, OracleConfig, Verdict};
use std::time::Duration;

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let common = args::common(&argv);
    let seed = u64_value(&argv, "--seed").unwrap_or(5);
    let iters = u64_value(&argv, "--iters").unwrap_or(2000);
    let budget = common
        .deadline_ms
        .map(Duration::from_millis)
        .or_else(|| u64_value(&argv, "--time-budget").map(Duration::from_secs));
    let max_failures = u64_value(&argv, "--max-failures").unwrap_or(5) as usize;
    let verbose = args::present(&argv, "--verbose");
    let threads = common.threads;
    let cfg = OracleConfig::default();

    if let Some(case_seed) = u64_value(&argv, "--replay") {
        let (case, verdict) = oracle::run_seed(case_seed, &cfg);
        println!("law: {}", case.law);
        for (i, f) in case.inputs.iter().enumerate() {
            println!("input[{i}]: {}", f.source());
        }
        match verdict {
            Verdict::Pass => println!("PASS"),
            Verdict::Skip(why) => println!("SKIP ({why})"),
            Verdict::Fail(detail) => {
                println!("FAIL: {detail}");
                let small = oracle::shrink(&case, &cfg);
                println!("shrunk:");
                for (i, f) in small.inputs.iter().enumerate() {
                    println!("  input[{i}]: {}", f.source());
                }
                std::process::exit(1);
            }
        }
        return;
    }

    if verbose {
        // Per-case trace for debugging hangs: print the law + case seed
        // before checking, so the offending case is identifiable.
        use dhpf_omega::testing::Rng;
        let mut master = Rng::new(seed);
        let mut failures = 0u64;
        for i in 0..iters {
            let case_seed = master.next_u64();
            {
                let mut rng = Rng::new(case_seed);
                let case = oracle::gen_case(&mut rng, &cfg);
                eprintln!("[{i}] starting {} seed={case_seed}", case.law);
                for (k, f) in case.inputs.iter().enumerate() {
                    eprintln!("      input[{k}]: {}", f.source());
                }
            }
            let (case, verdict) = oracle::run_seed(case_seed, &cfg);
            eprintln!(
                "[{i}] {} seed={case_seed} -> {}",
                case.law,
                match &verdict {
                    Verdict::Pass => "pass".to_string(),
                    Verdict::Skip(w) => format!("skip ({w})"),
                    Verdict::Fail(d) => {
                        failures += 1;
                        format!("FAIL: {d}")
                    }
                }
            );
        }
        std::process::exit(if failures > 0 { 1 } else { 0 });
    }

    let out = oracle::fuzz_threads(seed, iters, budget, &cfg, max_failures, threads);
    println!(
        "oracle_fuzz: seed {seed}, {} iterations on {threads} thread(s) in {:.2?} \
         ({} skipped at exactness limits)",
        out.iterations, out.elapsed, out.skips
    );
    println!("{:<20} {:>8} {:>8} {:>8}", "law", "runs", "skips", "fails");
    for (law, t) in &out.per_law {
        println!("{:<20} {:>8} {:>8} {:>8}", law, t.runs, t.skips, t.fails);
    }
    if !out.ok() {
        println!();
        for f in &out.failures {
            println!("{f}\n");
        }
        eprintln!("{} law violation(s)", out.failures.len());
        std::process::exit(1);
    }
    println!("all laws held");
}
