//! Differential oracle fuzz campaign driver.
//!
//! Runs the `dhpf_omega::oracle` law checkers on randomly generated bounded
//! sets/relations and prints minimized counterexamples for any violation.
//!
//! ```text
//! oracle_fuzz [--seed N] [--iters N] [--time-budget SECONDS]
//!             [--max-failures N] [--threads N] [--verbose]
//!             [--replay CASE_SEED]
//! ```
//!
//! Exit status is non-zero when any law was violated, so CI can run this
//! directly as a smoke job (`--seed 5 --iters 2000`).

use dhpf_omega::oracle::{self, OracleConfig, Verdict};
use std::time::Duration;

fn parse_flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = parse_flag(&args, "--seed").unwrap_or(5);
    let iters = parse_flag(&args, "--iters").unwrap_or(2000);
    let budget = parse_flag(&args, "--time-budget").map(Duration::from_secs);
    let max_failures = parse_flag(&args, "--max-failures").unwrap_or(5) as usize;
    let verbose = args.iter().any(|a| a == "--verbose");
    let threads = dhpf_bench::threads_from_args(&args);
    let cfg = OracleConfig::default();

    if let Some(case_seed) = parse_flag(&args, "--replay") {
        let (case, verdict) = oracle::run_seed(case_seed, &cfg);
        println!("law: {}", case.law);
        for (i, f) in case.inputs.iter().enumerate() {
            println!("input[{i}]: {}", f.source());
        }
        match verdict {
            Verdict::Pass => println!("PASS"),
            Verdict::Skip(why) => println!("SKIP ({why})"),
            Verdict::Fail(detail) => {
                println!("FAIL: {detail}");
                let small = oracle::shrink(&case, &cfg);
                println!("shrunk:");
                for (i, f) in small.inputs.iter().enumerate() {
                    println!("  input[{i}]: {}", f.source());
                }
                std::process::exit(1);
            }
        }
        return;
    }

    if verbose {
        // Per-case trace for debugging hangs: print the law + case seed
        // before checking, so the offending case is identifiable.
        use dhpf_omega::testing::Rng;
        let mut master = Rng::new(seed);
        let mut failures = 0u64;
        for i in 0..iters {
            let case_seed = master.next_u64();
            {
                let mut rng = Rng::new(case_seed);
                let case = oracle::gen_case(&mut rng, &cfg);
                eprintln!("[{i}] starting {} seed={case_seed}", case.law);
                for (k, f) in case.inputs.iter().enumerate() {
                    eprintln!("      input[{k}]: {}", f.source());
                }
            }
            let (case, verdict) = oracle::run_seed(case_seed, &cfg);
            eprintln!(
                "[{i}] {} seed={case_seed} -> {}",
                case.law,
                match &verdict {
                    Verdict::Pass => "pass".to_string(),
                    Verdict::Skip(w) => format!("skip ({w})"),
                    Verdict::Fail(d) => {
                        failures += 1;
                        format!("FAIL: {d}")
                    }
                }
            );
        }
        std::process::exit(if failures > 0 { 1 } else { 0 });
    }

    let out = oracle::fuzz_threads(seed, iters, budget, &cfg, max_failures, threads);
    println!(
        "oracle_fuzz: seed {seed}, {} iterations on {threads} thread(s) in {:.2?} \
         ({} skipped at exactness limits)",
        out.iterations, out.elapsed, out.skips
    );
    println!("{:<20} {:>8} {:>8} {:>8}", "law", "runs", "skips", "fails");
    for (law, t) in &out.per_law {
        println!("{:<20} {:>8} {:>8} {:>8}", law, t.runs, t.skips, t.fails);
    }
    if !out.ok() {
        println!();
        for f in &out.failures {
            println!("{f}\n");
        }
        eprintln!("{} law violation(s)", out.failures.len());
        std::process::exit(1);
    }
    println!("all laws held");
}
