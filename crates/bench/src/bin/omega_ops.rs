//! Set-operation-layer microbenchmarks (`BENCH_omega_ops.json`).
//!
//! Measures the substrate operations the oracle campaign identified as
//! hot (ROADMAP item 3): conjunct negation, `semantic_subsume` via
//! `Relation::simplify`, exact FME elimination, gist, satisfiability,
//! and the cached-probe path that pays for canonicalization on every
//! memo lookup. The workload is a deterministic corpus of
//! oracle-generated forms so numbers are comparable PR-over-PR.
//!
//! Flags:
//! - `--iters N`    passes over the corpus per benchmark (default 120)
//! - `--corpus N`   generated forms (default 48)
//! - `--seed S`     corpus PRNG seed (default 3735928559)
//! - `--json-out P` snapshot path (default `BENCH_omega_ops.json`)
//! - `--smoke`      reduced iteration count for CI
//! - `--no-json`    print results without writing a snapshot

use dhpf_bench::args;
use dhpf_obs::json::{Arr, Obj};
use dhpf_omega::oracle::{gen_set, OracleConfig};
use dhpf_omega::testing::Rng;
use dhpf_omega::{ops, Conjunct, Context, Relation, Var};
use std::hint::black_box;
use std::time::Instant;

/// One measured benchmark: median and mean wall time per pass.
struct Sample {
    name: &'static str,
    median_ns: u128,
    mean_ns: u128,
    iters: usize,
}

/// Times `f` for `iters` passes (after 3 warmup passes) and records the
/// per-pass median/mean.
fn measure<R>(name: &'static str, iters: usize, mut f: impl FnMut() -> R) -> Sample {
    for _ in 0..3.min(iters) {
        black_box(f());
    }
    let mut times: Vec<u128> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        times.push(t0.elapsed().as_nanos());
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<u128>() / times.len() as u128;
    println!("{name:<28} median {median:>12} ns   mean {mean:>12} ns   ({iters} iters)");
    Sample {
        name,
        median_ns: median,
        mean_ns: mean,
        iters,
    }
}

/// Deterministic corpus: conjuncts and multi-conjunct relations drawn
/// from the oracle generator, so the mix (strides, unions, projections)
/// matches what the differential campaign actually stresses.
fn build_corpus(seed: u64, n_forms: usize) -> (Vec<Conjunct>, Vec<Relation>) {
    let cfg = OracleConfig::default();
    let mut rng = Rng::new(seed);
    let mut conjuncts = Vec::new();
    let mut relations = Vec::new();
    while relations.len() < n_forms {
        let arity = 1 + rng.index(3) as u32;
        let form = gen_set(&mut rng, &cfg, arity);
        let Ok(set) = form.to_set() else { continue };
        let rel = set.into_relation();
        if rel.conjuncts().is_empty() {
            continue;
        }
        conjuncts.extend(rel.conjuncts().iter().cloned());
        relations.push(rel);
    }
    (conjuncts, relations)
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = args::present(&argv, "--smoke");
    let iters = args::u64_value(&argv, "--iters").unwrap_or(if smoke { 10 } else { 120 }) as usize;
    let n_forms =
        args::u64_value(&argv, "--corpus").unwrap_or(if smoke { 16 } else { 48 }) as usize;
    let seed = args::u64_value(&argv, "--seed").unwrap_or(0xDEAD_BEEF);
    let json_out =
        args::value(&argv, "--json-out").unwrap_or_else(|| "BENCH_omega_ops.json".to_string());
    let no_json = args::present(&argv, "--no-json");

    let (conjuncts, relations) = build_corpus(seed, n_forms);
    println!(
        "omega_ops: corpus seed {seed}: {} conjuncts, {} relations, {iters} iters\n",
        conjuncts.len(),
        relations.len()
    );

    // Pairs for subsume/gist: consecutive same-arity relations unioned.
    let unions: Vec<Relation> = relations
        .windows(2)
        .filter(|w| w[0].n_in() == w[1].n_in())
        .map(|w| w[0].union(&w[1]))
        .collect();

    let mut samples = Vec::new();

    samples.push(measure("negate", iters, || {
        let mut n = 0usize;
        for c in &conjuncts {
            if let Ok(pieces) = ops::negate_conjunct_in(c, None) {
                n += pieces.len();
            }
        }
        n
    }));

    samples.push(measure("sat", iters, || {
        conjuncts.iter().filter(|c| c.is_satisfiable()).count()
    }));

    samples.push(measure("fme_eliminate", iters, || {
        let mut n = 0usize;
        for c in &conjuncts {
            if c.mentions(Var::In(0)) {
                n += c.eliminate_exact(Var::In(0)).len();
            }
        }
        n
    }));

    samples.push(measure("gist", iters, || {
        let mut n = 0usize;
        for pair in conjuncts.chunks_exact(2) {
            let g = pair[0].gist_given(&pair[1]);
            n += g.eqs().len() + g.geqs().len();
        }
        n
    }));

    samples.push(measure("semantic_subsume", iters, || {
        let mut n = 0usize;
        for u in &unions {
            let mut r = u.clone();
            r.simplify();
            n += r.conjuncts().len();
        }
        n
    }));

    samples.push(measure("simplify_cheap", iters, || {
        let mut n = 0usize;
        for u in &unions {
            let mut r = u.clone();
            r.simplify_cheap();
            n += r.conjuncts().len();
        }
        n
    }));

    // Cached-probe paths: cold pays canonicalize+intern+compute per
    // conjunct, warm pays canonicalize+lookup only. Both are dominated
    // by the per-probe canonical key cost this PR targets.
    samples.push(measure("sat_cached_cold", iters, || {
        let ctx = Context::new();
        conjuncts
            .iter()
            .filter(|c| c.is_satisfiable_in(Some(&ctx)))
            .count()
    }));

    let warm = Context::new();
    for c in &conjuncts {
        c.is_satisfiable_in(Some(&warm));
    }
    samples.push(measure("sat_cached_warm", iters, || {
        conjuncts
            .iter()
            .filter(|c| c.is_satisfiable_in(Some(&warm)))
            .count()
    }));

    if no_json {
        return;
    }
    let mut arr = Arr::new();
    for s in &samples {
        arr = arr.obj(
            Obj::new()
                .str("name", s.name)
                .u64("median_ns", s.median_ns as u64)
                .u64("mean_ns", s.mean_ns as u64)
                .u64("iters", s.iters as u64),
        );
    }
    let json = Obj::new()
        .str("schema", "dhpf-bench-omega-ops-v1")
        .u64("seed", seed)
        .u64("corpus_conjuncts", conjuncts.len() as u64)
        .u64("corpus_relations", relations.len() as u64)
        .arr("benches", arr)
        .finish();
    std::fs::write(&json_out, format!("{json}\n")).expect("write snapshot");
    println!("\nsnapshot written to {json_out}");
}
