//! SP-sym compile-time scaling across parallel-driver thread counts.
//!
//! Compiles the SP-sym variant (symbolic processor count — the paper's
//! hardest Table 1 column) at `--threads 1,2,4,8`, verifies every run
//! produces the bit-identical serial program, and writes a machine-readable
//! `BENCH_parallel.json` snapshot for tracking the curve across commits.
//!
//! ```text
//! parallel_scaling [--trials N] [--threads-list 1,2,4,8] [--json-out PATH]
//! ```

use dhpf_core::{compile, CompileOptions};
use std::time::Instant;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: usize = flag(&args, "--trials")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let threads_list: Vec<usize> = flag(&args, "--threads-list")
        .map(|v| {
            v.split(',')
                .map(|x| x.parse().expect("thread count"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let json_out = flag(&args, "--json-out").unwrap_or_else(|| "BENCH_parallel.json".to_string());

    let src = dhpf_bench::sources::sp_symbolic();
    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!("SP-sym compile scaling ({trials} trials per point, min reported)");
    println!("host hardware threads: {host_threads}\n");

    let mut golden: Option<String> = None;
    let mut points = Vec::new();
    let mut base_min = 0.0f64;
    for &threads in &threads_list {
        let opts = CompileOptions::new().threads(threads);
        let mut samples = Vec::with_capacity(trials);
        for _ in 0..trials.max(1) {
            let t0 = Instant::now();
            let c = compile(&src, &opts).expect("SP-sym compiles");
            samples.push(t0.elapsed().as_secs_f64());
            let text = format!("{:?}", c.program);
            match &golden {
                None => golden = Some(text),
                Some(g) => assert_eq!(g, &text, "threads={threads} diverged from serial output"),
            }
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        if threads == threads_list[0] {
            base_min = min;
        }
        let speedup = base_min / min;
        println!(
            "threads {threads:>2}: min {min:>7.3}s  mean {mean:>7.3}s  speedup {speedup:>5.2}x"
        );
        points.push(format!(
            "    {{\"threads\": {threads}, \"secs_min\": {min:.4}, \"secs_mean\": {mean:.4}, \
             \"speedup_vs_serial\": {speedup:.3}}}"
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"sp-sym-compile-scaling\",\n  \"source\": \"SP-sym \
         (benchmarks/sp.hpf with symbolic processor count)\",\n  \"trials\": {trials},\n  \
         \"host_hardware_threads\": {host_threads},\n  \"bit_identical_output\": true,\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        points.join(",\n")
    );
    std::fs::write(&json_out, json).expect("write snapshot");
    println!("\nsnapshot written to {json_out}");
}
