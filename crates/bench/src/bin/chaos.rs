//! Chaos campaign and governor-overhead measurement.
//!
//! Two experiments, one snapshot:
//!
//! 1. **Injected campaign** — compiles JACOBI under deterministic fault
//!    injection (every action, several densities) at `--threads 1..=8`,
//!    classifying every run into the trichotomy: exact, degraded, or
//!    typed error. Any hang or unwound panic aborts the campaign.
//! 2. **Governor overhead** — compiles the Table 1 workloads (SP-4,
//!    SP-sym, TOMCATV-sym) unarmed and armed with a generous budget
//!    (nothing trips), and reports the wall-clock overhead of the
//!    governor's fast-path checks. The budget gate is a relaxed atomic
//!    load per memoized operation, so this should be noise (< 2%).
//!
//! ```text
//! chaos [--trials N] [--threads-list 1,2,...,8] [--threads N]
//!       [--deadline-ms N] [--trace-out PATH] [--json-out PATH]
//! ```
//!
//! Accepts the shared harness flags (see `dhpf_bench::args`): `--threads N`
//! is shorthand for a single-point `--threads-list N`, `--deadline-ms`
//! adds a wall-clock budget to every campaign compilation (composing with
//! the injected faults), and `--trace-out` records the campaign's compile
//! spans. Writes a machine-readable `BENCH_robustness.json` snapshot.

use dhpf_bench::args::{self, value as flag_value};
use dhpf_core::{compile, CompileOptions};
use dhpf_omega::{Budget, FaultAction, InjectPlan};
use std::time::Instant;

/// Minimum wall-clock seconds over `trials` compilations.
fn min_secs(src: &str, opts: &CompileOptions, trials: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials.max(1) {
        let t0 = Instant::now();
        match compile(src, opts) {
            Ok(_) => {}
            Err(e) => panic!("overhead workload failed to compile: {e}"),
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let common = args::common(&argv);
    let trials: usize = args::u64_value(&argv, "--trials").map_or(3, |n| n as usize);
    // `--threads N` (the shared spelling) pins a single campaign point;
    // `--threads-list` sweeps several.
    let threads_list: Vec<usize> = flag_value(&argv, "--threads-list")
        .map(|v| {
            v.split(',')
                .map(|x| x.parse().expect("thread count"))
                .collect()
        })
        .unwrap_or_else(|| {
            if common.threads > 1 {
                vec![common.threads]
            } else {
                (1..=8).collect()
            }
        });
    let json_out =
        flag_value(&argv, "--json-out").unwrap_or_else(|| "BENCH_robustness.json".to_string());

    // ---- Experiment 1: injected campaign across thread counts --------
    let campaign_src =
        dhpf_bench::sources::JACOBI.replace("parameter (n = 128)", "parameter (n = 16)");
    let actions = [
        ("error", FaultAction::Error),
        ("panic", FaultAction::Panic),
        ("exhaust-budget", FaultAction::ExhaustBudget),
    ];
    println!("chaos campaign: JACOBI (16x16), injected faults, trichotomy counts\n");
    let mut campaign_rows = Vec::new();
    for &threads in &threads_list {
        let (mut exact, mut degraded, mut error) = (0u64, 0u64, 0u64);
        for (ai, &(_, action)) in actions.iter().enumerate() {
            for (pi, &period) in [1u64, 5, 97].iter().enumerate() {
                let seed = 0xC4A0_5000 + (threads as u64) * 64 + (ai as u64) * 8 + pi as u64;
                let plan = InjectPlan::new(seed, period, action);
                // Shared deadline/trace flags compose with the injected
                // faults; the campaign's own thread sweep wins over
                // `--threads`.
                let opts = common
                    .apply(CompileOptions::new())
                    .threads(threads)
                    .inject(plan);
                match compile(&campaign_src, &opts) {
                    Ok(c) if c.report.degradations().is_empty() => exact += 1,
                    Ok(_) => degraded += 1,
                    Err(e) => {
                        assert!(!e.to_string().is_empty());
                        error += 1;
                    }
                }
            }
        }
        println!("threads {threads}: exact {exact}  degraded {degraded}  typed-error {error}");
        campaign_rows.push(format!(
            "    {{\"threads\": {threads}, \"exact\": {exact}, \"degraded\": {degraded}, \
             \"typed_error\": {error}}}"
        ));
    }

    // ---- Experiment 2: governor overhead on Table 1 workloads --------
    // The armed run uses a budget generous enough that nothing ever
    // trips: it measures the pure cost of the per-operation budget gate.
    let generous = Budget::new().deadline_ms(3_600_000).op_fuel(u64::MAX / 2);
    let spsym = dhpf_bench::sources::sp_symbolic();
    let workloads: [(&str, &str); 3] = [
        ("SP-4", dhpf_bench::sources::SP),
        ("SP-sym", &spsym),
        ("T-sym", dhpf_bench::sources::TOMCATV),
    ];
    println!("\ngovernor overhead ({trials} trials per point, min reported)\n");
    let mut overhead_rows = Vec::new();
    let mut worst = 0.0f64;
    for (name, src) in workloads {
        let unarmed = min_secs(src, &CompileOptions::new(), trials);
        let armed = min_secs(src, &CompileOptions::new().budget(generous.clone()), trials);
        let overhead = (armed / unarmed - 1.0) * 100.0;
        worst = worst.max(overhead);
        println!(
            "{name:<8} unarmed {unarmed:>7.3}s  armed {armed:>7.3}s  overhead {overhead:>+6.2}%"
        );
        overhead_rows.push(format!(
            "    {{\"workload\": \"{name}\", \"secs_unarmed\": {unarmed:.4}, \
             \"secs_armed\": {armed:.4}, \"overhead_pct\": {overhead:.3}}}"
        ));
    }
    println!("\nworst-case governor overhead: {worst:+.2}% (budget: <= 2%)");

    let json = format!(
        "{{\n  \"benchmark\": \"chaos-campaign-and-governor-overhead\",\n  \
         \"campaign_source\": \"JACOBI 16x16, 9 injection plans per thread count\",\n  \
         \"trials\": {trials},\n  \"campaign\": [\n{}\n  ],\n  \
         \"governor_overhead\": [\n{}\n  ],\n  \
         \"worst_overhead_pct\": {worst:.3}\n}}\n",
        campaign_rows.join(",\n"),
        overhead_rows.join(",\n"),
    );
    std::fs::write(&json_out, json).expect("write snapshot");
    println!("snapshot written to {json_out}");
    common.finish_trace(false);
}
