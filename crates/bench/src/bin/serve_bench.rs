//! Warm-vs-cold serving benchmark: quantifies what `dhpf-serve`'s
//! persistent context buys over one-shot compiler invocations.
//!
//! Two experiments, one snapshot (`BENCH_serve.json`):
//!
//! 1. **Warm vs cold** — each workload is compiled on a fresh context
//!    (the cold path every batch invocation pays) and on a long-lived
//!    context that already compiled it once (the daemon's steady state).
//!    Reports min wall-clock per mode, the warm/cold ratio, and the memo
//!    hits gained during the warm request.
//! 2. **Dedup under fan-in** — a real in-process daemon receives N
//!    simultaneous identical requests over TCP; reports how many
//!    coalesced onto the leader's compilation (reconciled against the
//!    daemon's own `metrics` scrape).
//! 3. **Metrics overhead** — the warm path timed with and without
//!    `ServeMetrics` recording, guarding the ≤2% observability budget.
//!
//! ```text
//! serve_bench [--trials N] [--clients N] [--threads N] [--deadline-ms N]
//!             [--json-out PATH]
//! ```

use dhpf_bench::args::{self, value as flag_value};
use dhpf_core::{process_request, CompileOptions, CompileRequest};
use dhpf_omega::Context;
use dhpf_serve::metrics::ServeMetrics;
use dhpf_serve::{send_lines, Server};
use std::fmt::Write as _;
use std::sync::{Arc, Barrier};
use std::time::Instant;

fn request(src: &str, opts: &CompileOptions) -> CompileRequest {
    CompileRequest::new(src).options(opts.clone())
}

/// Min wall-clock seconds over `trials` runs of `f`.
fn min_secs(trials: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Per-trial wall-clock seconds of `trials` runs of `f`, in run order.
fn sample_secs(trials: usize, mut f: impl FnMut()) -> Vec<f64> {
    (0..trials.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect()
}

/// Exact nearest-rank quantile of an unsorted sample vector.
fn quantile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let common = args::common(&argv);
    let trials: usize = args::u64_value(&argv, "--trials").map_or(5, |n| n as usize);
    let clients: usize = args::u64_value(&argv, "--clients").map_or(8, |n| n as usize);
    let json_out =
        flag_value(&argv, "--json-out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    common.banner();
    let opts = common.apply(CompileOptions::new());

    let spsym = dhpf_bench::sources::sp_symbolic();
    let workloads: [(&str, &str); 4] = [
        ("JACOBI", dhpf_bench::sources::JACOBI),
        ("TOMCATV", dhpf_bench::sources::TOMCATV),
        ("SP-4", dhpf_bench::sources::SP),
        ("SP-sym", &spsym),
    ];

    // ---- Experiment 1: warm vs cold ----------------------------------
    println!("warm vs cold ({trials} trials per point, min reported)\n");
    println!(
        "{:<10} {:>9} {:>9} {:>7} {:>12}",
        "workload", "cold(ms)", "warm(ms)", "ratio", "warm hits"
    );
    let mut rows = Vec::new();
    let mut worst_ratio = 0.0f64;
    for (name, src) in workloads {
        // Cold: a brand-new context per trial, exactly what a one-shot
        // compiler process pays.
        let cold = min_secs(trials, || {
            let ctx = Context::new();
            let resp = process_request(&ctx, &request(src, &opts));
            assert!(resp.error.is_none(), "{name}: {:?}", resp.error);
        });
        // Warm: the daemon's steady state — one long-lived context that
        // has already compiled this unit. Every per-request sample is
        // kept, so the snapshot reports the latency distribution a
        // serving fleet actually sees, not just the best case.
        let ctx = Context::new();
        let first = process_request(&ctx, &request(src, &opts));
        assert!(first.error.is_none(), "{name}: {:?}", first.error);
        let mut hits_delta = 0u64;
        let samples = sample_secs(trials, || {
            let resp = process_request(&ctx, &request(src, &opts));
            assert!(resp.error.is_none(), "{name}: {:?}", resp.error);
            hits_delta = hits_delta.max(resp.cache_hits_delta);
        });
        let warm = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let (p50, p95, p99) = (
            quantile(&samples, 0.50),
            quantile(&samples, 0.95),
            quantile(&samples, 0.99),
        );
        let ratio = warm / cold;
        worst_ratio = worst_ratio.max(ratio);
        println!(
            "{name:<10} {:>9.2} {:>9.2} {ratio:>7.3} {hits_delta:>12}   p50 {:.2} p95 {:.2} p99 {:.2}",
            cold * 1e3,
            warm * 1e3,
            p50 * 1e3,
            p95 * 1e3,
            p99 * 1e3,
        );
        let samples_ms: Vec<String> = samples.iter().map(|s| format!("{:.3}", s * 1e3)).collect();
        rows.push(format!(
            "    {{\"workload\": \"{name}\", \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \
             \"warm_over_cold\": {ratio:.4}, \"warm_hits_delta\": {hits_delta}, \
             \"warm_p50_ms\": {:.3}, \"warm_p95_ms\": {:.3}, \"warm_p99_ms\": {:.3}, \
             \"warm_samples_ms\": [{}]}}",
            cold * 1e3,
            warm * 1e3,
            p50 * 1e3,
            p95 * 1e3,
            p99 * 1e3,
            samples_ms.join(", ")
        ));
    }

    // ---- Experiment 3: metrics overhead on the warm path -------------
    // The observability acceptance budget: recording every serve-path
    // metric (request counter, latency histogram, coalesce role, error
    // scan, degradation walk) must cost ≤2% of a warm compile. Measured
    // on the hottest workload (JACOBI warm) with min-of-trials on both
    // sides to squeeze out scheduler noise.
    let (plain_ms, metered_ms, overhead_frac) = {
        let src = dhpf_bench::sources::JACOBI;
        let ctx = Context::new();
        let first = process_request(&ctx, &request(src, &opts));
        assert!(first.error.is_none(), "{:?}", first.error);
        let plain = min_secs(trials, || {
            let resp = process_request(&ctx, &request(src, &opts));
            assert!(resp.error.is_none());
        });
        let metrics = ServeMetrics::new();
        let metered = min_secs(trials, || {
            let t0 = Instant::now();
            let resp = process_request(&ctx, &request(src, &opts));
            assert!(resp.error.is_none());
            metrics.record_request("compile");
            metrics.record_compile(
                &resp,
                true,
                false,
                u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX),
            );
        });
        (plain * 1e3, metered * 1e3, (metered / plain - 1.0).max(0.0))
    };
    println!(
        "\nmetrics overhead (warm JACOBI): plain {plain_ms:.3} ms, metered {metered_ms:.3} ms \
         -> {:.2}% (budget 2%)",
        overhead_frac * 1e2
    );

    // ---- Experiment 2: dedup under fan-in ----------------------------
    let server = Server::bind("127.0.0.1:0", dhpf_omega::DEFAULT_CACHE_CAP).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let serve_thread = std::thread::spawn(move || server.serve());
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"op\":\"compile\",\"id\":\"fanin\",\"source\":{}}}",
        dhpf_obs::json::escape(dhpf_bench::sources::TOMCATV)
    );
    let barrier = Arc::new(Barrier::new(clients));
    let t0 = Instant::now();
    let fanin: Vec<_> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let line = line.clone();
            std::thread::spawn(move || {
                barrier.wait();
                send_lines(addr, &[line]).expect("send")
            })
        })
        .collect();
    let mut coalesced = 0u64;
    for t in fanin {
        let replies = t.join().expect("client");
        if replies[0].contains("\"coalesced\":true") {
            coalesced += 1;
        }
    }
    let fanin_secs = t0.elapsed().as_secs_f64();
    // Reconcile against the daemon's own registry: the follower counter
    // of the `metrics` scrape must equal the coalesced responses seen by
    // the clients.
    let scrape = send_lines(
        addr,
        &["{\"op\":\"metrics\",\"id\":\"scrape\"}".to_string()],
    )
    .expect("metrics scrape");
    let followers = dhpf_obs::json::parse(&scrape[0])
        .ok()
        .and_then(|v| {
            v.get("counters")?
                .get("dhpf_serve_coalesce_total{role=\"follower\"}")?
                .as_f64()
        })
        .map_or(0, |f| f as u64);
    assert_eq!(
        followers, coalesced,
        "daemon follower counter disagrees with client-side coalesced responses"
    );
    handle.shutdown();
    let _ = serve_thread.join();
    println!(
        "\nfan-in: {clients} simultaneous identical requests -> {coalesced} coalesced \
         ({} compilations) in {:.1} ms (daemon metrics agree: {followers} followers)",
        clients as u64 - coalesced,
        fanin_secs * 1e3
    );

    let json = format!(
        "{{\n  \"benchmark\": \"serve-warm-vs-cold\",\n  \"trials\": {trials},\n  \
         \"workloads\": [\n{}\n  ],\n  \"worst_warm_over_cold\": {worst_ratio:.4},\n  \
         \"metrics_overhead\": {{\"warm_plain_ms\": {plain_ms:.3}, \
         \"warm_metered_ms\": {metered_ms:.3}, \"overhead_frac\": {overhead_frac:.4}, \
         \"budget_frac\": 0.02}},\n  \
         \"fan_in\": {{\"clients\": {clients}, \"coalesced\": {coalesced}, \
         \"metrics_followers\": {followers}, \"wall_ms\": {:.3}}}\n}}\n",
        rows.join(",\n"),
        fanin_secs * 1e3
    );
    std::fs::write(&json_out, json).expect("write snapshot");
    println!("snapshot written to {json_out}");
    common.finish_trace(false);
}
