//! Warm-vs-cold serving benchmark: quantifies what `dhpf-serve`'s
//! persistent context buys over one-shot compiler invocations.
//!
//! Two experiments, one snapshot (`BENCH_serve.json`):
//!
//! 1. **Warm vs cold** — each workload is compiled on a fresh context
//!    (the cold path every batch invocation pays) and on a long-lived
//!    context that already compiled it once (the daemon's steady state).
//!    Reports min wall-clock per mode, the warm/cold ratio, and the memo
//!    hits gained during the warm request.
//! 2. **Dedup under fan-in** — a real in-process daemon receives N
//!    simultaneous identical requests over TCP; reports how many
//!    coalesced onto the leader's compilation.
//!
//! ```text
//! serve_bench [--trials N] [--clients N] [--threads N] [--deadline-ms N]
//!             [--json-out PATH]
//! ```

use dhpf_bench::args::{self, value as flag_value};
use dhpf_core::{process_request, CompileOptions, CompileRequest};
use dhpf_omega::Context;
use dhpf_serve::{send_lines, Server};
use std::fmt::Write as _;
use std::sync::{Arc, Barrier};
use std::time::Instant;

fn request(src: &str, opts: &CompileOptions) -> CompileRequest {
    CompileRequest::new(src).options(opts.clone())
}

/// Min wall-clock seconds over `trials` runs of `f`.
fn min_secs(trials: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let common = args::common(&argv);
    let trials: usize = args::u64_value(&argv, "--trials").map_or(5, |n| n as usize);
    let clients: usize = args::u64_value(&argv, "--clients").map_or(8, |n| n as usize);
    let json_out =
        flag_value(&argv, "--json-out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    common.banner();
    let opts = common.apply(CompileOptions::new());

    let spsym = dhpf_bench::sources::sp_symbolic();
    let workloads: [(&str, &str); 4] = [
        ("JACOBI", dhpf_bench::sources::JACOBI),
        ("TOMCATV", dhpf_bench::sources::TOMCATV),
        ("SP-4", dhpf_bench::sources::SP),
        ("SP-sym", &spsym),
    ];

    // ---- Experiment 1: warm vs cold ----------------------------------
    println!("warm vs cold ({trials} trials per point, min reported)\n");
    println!(
        "{:<10} {:>9} {:>9} {:>7} {:>12}",
        "workload", "cold(ms)", "warm(ms)", "ratio", "warm hits"
    );
    let mut rows = Vec::new();
    let mut worst_ratio = 0.0f64;
    for (name, src) in workloads {
        // Cold: a brand-new context per trial, exactly what a one-shot
        // compiler process pays.
        let cold = min_secs(trials, || {
            let ctx = Context::new();
            let resp = process_request(&ctx, &request(src, &opts));
            assert!(resp.error.is_none(), "{name}: {:?}", resp.error);
        });
        // Warm: the daemon's steady state — one long-lived context that
        // has already compiled this unit.
        let ctx = Context::new();
        let first = process_request(&ctx, &request(src, &opts));
        assert!(first.error.is_none(), "{name}: {:?}", first.error);
        let mut hits_delta = 0u64;
        let warm = min_secs(trials, || {
            let resp = process_request(&ctx, &request(src, &opts));
            assert!(resp.error.is_none(), "{name}: {:?}", resp.error);
            hits_delta = hits_delta.max(resp.cache_hits_delta);
        });
        let ratio = warm / cold;
        worst_ratio = worst_ratio.max(ratio);
        println!(
            "{name:<10} {:>9.2} {:>9.2} {ratio:>7.3} {hits_delta:>12}",
            cold * 1e3,
            warm * 1e3
        );
        rows.push(format!(
            "    {{\"workload\": \"{name}\", \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \
             \"warm_over_cold\": {ratio:.4}, \"warm_hits_delta\": {hits_delta}}}",
            cold * 1e3,
            warm * 1e3
        ));
    }

    // ---- Experiment 2: dedup under fan-in ----------------------------
    let server = Server::bind("127.0.0.1:0", dhpf_omega::DEFAULT_CACHE_CAP).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle().expect("handle");
    let serve_thread = std::thread::spawn(move || server.serve());
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"op\":\"compile\",\"id\":\"fanin\",\"source\":{}}}",
        dhpf_obs::json::escape(dhpf_bench::sources::TOMCATV)
    );
    let barrier = Arc::new(Barrier::new(clients));
    let t0 = Instant::now();
    let fanin: Vec<_> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let line = line.clone();
            std::thread::spawn(move || {
                barrier.wait();
                send_lines(addr, &[line]).expect("send")
            })
        })
        .collect();
    let mut coalesced = 0u64;
    for t in fanin {
        let replies = t.join().expect("client");
        if replies[0].contains("\"coalesced\":true") {
            coalesced += 1;
        }
    }
    let fanin_secs = t0.elapsed().as_secs_f64();
    handle.shutdown();
    let _ = serve_thread.join();
    println!(
        "\nfan-in: {clients} simultaneous identical requests -> {coalesced} coalesced \
         ({} compilations) in {:.1} ms",
        clients as u64 - coalesced,
        fanin_secs * 1e3
    );

    let json = format!(
        "{{\n  \"benchmark\": \"serve-warm-vs-cold\",\n  \"trials\": {trials},\n  \
         \"workloads\": [\n{}\n  ],\n  \"worst_warm_over_cold\": {worst_ratio:.4},\n  \
         \"fan_in\": {{\"clients\": {clients}, \"coalesced\": {coalesced}, \
         \"wall_ms\": {:.3}}}\n}}\n",
        rows.join(",\n"),
        fanin_secs * 1e3
    );
    std::fs::write(&json_out, json).expect("write snapshot");
    println!("snapshot written to {json_out}");
    common.finish_trace(false);
}
