//! The serving-tier cache contract: a long-lived context makes repeat
//! compilations strictly cheaper, and bounding it with cost-aware
//! eviction never changes what the compiler produces.

use dhpf_core::{compile_with, process_request, CompileOptions, CompileRequest};
use dhpf_omega::Context;

const JACOBI: &str = "
program jacobi
real a(64,64), b(64,64)
integer iter
!HPF$ processors p(4)
!HPF$ template t(64,64)
!HPF$ align a(i,j) with t(i,j)
!HPF$ align b(i,j) with t(i,j)
!HPF$ distribute t(block,*) onto p
do iter = 1, 3
  do i = 2, 63
    do j = 2, 63
      a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
    enddo
  enddo
enddo
end
";

#[test]
fn warm_repeat_strictly_improves_cumulative_counters() {
    let ctx = Context::new();
    let opts = CompileOptions::default();

    let cold = compile_with(&ctx, JACOBI, &opts).unwrap();
    let after_cold = ctx.stats();
    let cold_hits = after_cold.total_hits();
    let cold_misses = after_cold.total_misses();

    let warm = compile_with(&ctx, JACOBI, &opts).unwrap();
    let after_warm = ctx.stats();

    // Same program either way…
    assert_eq!(
        format!("{:?}", cold.program),
        format!("{:?}", warm.program),
        "warm repeat changed the compiled program"
    );
    // …but the warm pass runs on memoized set algebra: cumulative hits
    // strictly grow, and it contributes at most a handful of new misses
    // (identical keys re-resolve as hits).
    assert!(
        after_warm.total_hits() > cold_hits,
        "warm repeat gained no hits: {cold_hits} -> {}",
        after_warm.total_hits()
    );
    let warm_misses = after_warm.total_misses() - cold_misses;
    let warm_hits = after_warm.total_hits() - cold_hits;
    assert!(
        warm_hits > warm_misses,
        "warm repeat should be hit-dominated, got {warm_hits} hits / {warm_misses} misses"
    );
}

#[test]
fn warm_process_request_reports_the_delta() {
    let ctx = Context::new();
    let req = CompileRequest::new(JACOBI);

    let cold = process_request(&ctx, &req);
    assert!(cold.error.is_none(), "{:?}", cold.error);

    let warm = process_request(&ctx, &req);
    assert!(warm.error.is_none(), "{:?}", warm.error);
    assert!(
        warm.cache_hits_delta > 0,
        "warm request reported no per-request hit delta"
    );
    assert!(
        warm.cache_hits_delta <= warm.cache.total_hits(),
        "per-request delta exceeds the cumulative counter"
    );
}

/// A context squeezed to a tiny memo capacity must evict (a lot) and still
/// compile every workload to exactly the same program as an unbounded one:
/// eviction is a performance knob, never a correctness knob.
#[test]
fn tight_capacity_eviction_preserves_output() {
    let roomy = Context::new();
    let tight = Context::with_capacity(64); // 4 entries per shard, per table
    assert_eq!(tight.cache_capacity(), 64);
    let opts = CompileOptions::default();

    let a = compile_with(&roomy, JACOBI, &opts).unwrap();
    let b = compile_with(&tight, JACOBI, &opts).unwrap();
    assert_eq!(
        format!("{:?}", a.program),
        format!("{:?}", b.program),
        "bounded context compiled a different program"
    );
    assert_eq!(
        a.report.stats.degradations.len(),
        b.report.stats.degradations.len(),
        "bounded context degraded differently"
    );

    let stats = tight.stats();
    assert!(
        stats.total_evictions() > 0,
        "tight capacity never evicted (capacity knob inert?)"
    );
    // The bound actually holds: resident entries stay at/under the
    // per-table cap times the table count (5 op tables).
    assert!(
        tight.memo_entries() <= 5 * 64,
        "memo tables exceed their bound: {} entries",
        tight.memo_entries()
    );
}

/// Re-tightening a live context applies to subsequent inserts.
#[test]
fn capacity_knob_is_dynamic() {
    let ctx = Context::new();
    compile_with(&ctx, JACOBI, &CompileOptions::default()).unwrap();
    let before = ctx.memo_entries();
    assert!(before > 0);
    ctx.set_cache_capacity(16);
    assert_eq!(ctx.cache_capacity(), 16);
    // New inserts now evict down toward the tighter bound; a variant with
    // different extents produces fresh integer sets (a new RHS constant
    // would not — the set algebra never sees it) and so fresh memo keys.
    let variant = JACOBI.replace("64", "48").replace("63", "47");
    compile_with(&ctx, &variant, &CompileOptions::default()).unwrap();
    assert!(
        ctx.stats().total_evictions() > 0,
        "tightened capacity never evicted"
    );
}
