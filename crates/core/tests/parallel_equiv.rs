//! The parallel driver must be an implementation detail: `threads = N`
//! must produce bit-identical output to the serial pipeline, merged
//! reports must reconcile with the serial ones, and the paper-level
//! pipeline invariants (checked by `dhpf_core::probes`) must keep holding
//! when the analyses run on a shared sharded `Context` that the parallel
//! driver is exercising concurrently.

use dhpf_core::probes;
use dhpf_core::{
    build_layouts_in, collect_statements, comm_sets, compile, compile_with, cp_map, myid_set,
    split_sets, CommRef, CompileOptions,
};
use dhpf_hpf::{analyze, parse};
use dhpf_omega::Context;

/// Several independent top-level nests plus a serial time loop with two
/// nests inside — enough parallel structure for the nest/assembly DAG to
/// schedule out of order if it is ever going to.
const MULTI: &str = "
program multi
real a(64,64), b(64,64), c(64,64), d(64,64)
integer iter
!HPF$ processors p(4)
!HPF$ template t(64,64)
!HPF$ align a(i,j) with t(i,j)
!HPF$ align b(i,j) with t(i,j)
!HPF$ align c(i,j) with t(i,j)
!HPF$ align d(i,j) with t(i,j)
!HPF$ distribute t(block,*) onto p
do i = 1, 64
  do j = 1, 64
    b(i,j) = 0.01 * i + 0.002 * j
  enddo
enddo
do i = 2, 63
  do j = 2, 63
    c(i,j) = 0.5 * (b(i-1,j) + b(i+1,j))
  enddo
enddo
do i = 2, 63
  do j = 2, 63
    d(i,j) = 0.25 * (c(i-1,j) + c(i+1,j) + c(i,j-1) + c(i,j+1))
  enddo
enddo
do iter = 1, 3
  do i = 2, 63
    do j = 2, 63
      a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
    enddo
  enddo
  do i = 2, 63
    do j = 2, 63
      b(i,j) = a(i,j) + d(i,j)
    enddo
  enddo
enddo
end
";

/// `threads = 1..=8` all produce the serial program, bit for bit
/// (`Debug` covers every field of the `SpmdProgram`, including
/// communication event ids, nest ops, and guards).
#[test]
fn threads_1_to_8_produce_bit_identical_programs() {
    let serial = compile(MULTI, &CompileOptions::new()).unwrap();
    let golden = format!("{:?}", serial.program);
    assert!(serial.report.stats.comm_events > 1, "needs real comm");
    for threads in 1..=8 {
        let par = compile(MULTI, &CompileOptions::new().threads(threads)).unwrap();
        assert_eq!(
            golden,
            format!("{:?}", par.program),
            "threads = {threads} diverged from the serial pipeline"
        );
        assert_eq!(
            serial.report.stats, par.report.stats,
            "threads = {threads} changed the synthesis statistics"
        );
    }
}

/// The merged per-worker reports reconcile with the serial ones: every
/// serial phase row is present (workers re-parent their phases under the
/// driver's anchor), percentages stay sane, and the merged cache counters
/// account for real traffic.
#[test]
fn merged_reports_reconcile_with_serial() {
    let serial = compile(MULTI, &CompileOptions::new()).unwrap();
    let par = compile(MULTI, &CompileOptions::new().threads(4)).unwrap();

    let serial_names: Vec<String> = serial
        .report
        .timers
        .rows()
        .into_iter()
        .map(|(n, _, _)| n)
        .collect();
    let par_names: Vec<String> = par
        .report
        .timers
        .rows()
        .into_iter()
        .map(|(n, _, _)| n)
        .collect();
    for name in &serial_names {
        assert!(
            par_names.contains(name),
            "parallel report lost phase row {name:?}"
        );
    }
    // Merged worker rows report aggregate busy time across workers (the
    // profiler convention of user time vs real time), so a phase that ran
    // on all 4 workers concurrently may reach 4x the wall-clock total —
    // but never more.
    for (name, _, pct) in par.report.timers.rows() {
        assert!(
            (0.0..=4.0 * 100.5).contains(&pct),
            "merged phase {name} has {pct}% of total"
        );
    }
    // Worker phases re-anchor under "module compilation", preserving the
    // serial nesting (Table 1's indented sub-rows).
    let nested = par.report.timers.rows_nested();
    let depth_of = |n: &str| nested.iter().find(|r| r.name == n).map(|r| r.depth);
    assert_eq!(depth_of("module compilation"), Some(0));
    let comm = depth_of("communication generation").expect("comm phase present");
    assert!(comm >= 1, "worker phase not nested under the driver anchor");

    // Merged shard counters saw the compilation's set algebra.
    let cache = &par.report.cache;
    assert!(cache.total_hits() + cache.total_misses() > 0);
    assert!(cache.interned_conjuncts > 0);
}

/// The paper-level invariants of Figures 3–4 hold when the analysis runs
/// against a shared `Context` whose shards were concurrently warmed by
/// parallel compilations (`compile_with` on the same context).
#[test]
fn probes_hold_on_context_shared_with_parallel_driver() {
    let ctx = Context::new();
    // Warm the sharded context from four worker threads.
    let warm = compile_with(&ctx, MULTI, &CompileOptions::new().threads(4)).unwrap();
    assert!(warm.report.cache.total_misses() > 0);

    let (n, p, off) = (12i64, 3i64, 1i64);
    let src = format!(
        "
program probecase
real a({n}), b({n})
!HPF$ processors pr({p})
!HPF$ template t({n})
!HPF$ align a(i) with t(i)
!HPF$ align b(i) with t(i)
!HPF$ distribute t(block) onto pr
do i = 1, {}
  a(i) = b(i + {off}) + b(i)
enddo
end
",
        n - off
    );
    let prog = parse(&src).unwrap();
    let a = analyze(&prog.units[0]).unwrap();

    // Route one pipeline through the warmed shared context and one
    // through a fresh uncached route; both must satisfy the probes and
    // agree with each other.
    let layouts = build_layouts_in(&a, Some(&ctx));
    let layouts_fresh = build_layouts_in(&a, None);
    let stmts = collect_statements(&a);
    let stmt = &stmts[0];

    let cp = cp_map(stmt, &layouts);
    probes::cp_partition(&cp, &stmt.ctx.iteration_set(), p).unwrap();

    let refs: Vec<CommRef> = stmt
        .reads
        .iter()
        .map(|r| CommRef {
            cp_map: cp.clone(),
            ref_map: r.ref_map(&stmt.ctx),
        })
        .collect();
    let sets = comm_sets(&refs, &[], &layouts["b"]).unwrap();
    let data: Vec<Vec<i64>> = (1..=n).map(|v| vec![v]).collect();
    probes::comm_duality(&sets, p, &data).unwrap();

    let mine = cp.apply(&myid_set(1));
    let read_pairs: Vec<_> = refs.iter().map(|r| (r, &layouts["b"])).collect();
    let wref = CommRef {
        cp_map: cp.clone(),
        ref_map: stmt.lhs.as_ref().unwrap().ref_map(&stmt.ctx),
    };
    let write_pairs = [(&wref, &layouts["a"])];
    let splits = split_sets(&mine, &read_pairs, &write_pairs).unwrap();
    for m in 0..p {
        probes::split_partition(&splits, &mine, m).unwrap();
    }

    let cp_f = cp_map(stmt, &layouts_fresh);
    let refs_f: Vec<CommRef> = stmt
        .reads
        .iter()
        .map(|r| CommRef {
            cp_map: cp_f.clone(),
            ref_map: r.ref_map(&stmt.ctx),
        })
        .collect();
    let sets_f = comm_sets(&refs_f, &[], &layouts_fresh["b"]).unwrap();
    probes::comm_equiv(&sets, &sets_f).unwrap();
}
