//! Tracing must observe the compilation, never perturb it.
//!
//! Mirrors `cache_equiv.rs` one layer up: `compile()` with a trace
//! collector attached must produce an identical `SpmdProgram` to the
//! untraced run, the recorded span tree must reconcile with the Table-1
//! timer rows it feeds, and set-operation samples must land on the
//! analysis phases that issued them.

use dhpf_core::{compile, CompileOptions};
use dhpf_obs::Collector;

const STENCIL: &str = "
program stencil
real a(64,64), b(64,64)
integer iter
!HPF$ processors p(4)
!HPF$ template t(64,64)
!HPF$ align a(i,j) with t(i,j)
!HPF$ align b(i,j) with t(i,j)
!HPF$ distribute t(block,*) onto p
do iter = 1, 3
  do i = 2, 63
    do j = 2, 63
      a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
    enddo
  enddo
  do i = 2, 63
    do j = 2, 63
      b(i,j) = a(i,j)
    enddo
  enddo
enddo
end
";

/// The compiled program is bit-identical with tracing on and off, with
/// the cache both enabled and disabled.
#[test]
fn traced_compile_is_equivalent() {
    for use_cache in [true, false] {
        let plain = compile(STENCIL, &CompileOptions::new().cache(use_cache)).unwrap();
        let collector = Collector::new();
        let traced = compile(
            STENCIL,
            &CompileOptions::new()
                .cache(use_cache)
                .trace(collector.clone()),
        )
        .unwrap();
        assert_eq!(
            format!("{:?}", plain.program),
            format!("{:?}", traced.program),
            "tracing changed the compiled program (use_cache = {use_cache})"
        );
        assert_eq!(plain.report.stats, traced.report.stats);
        assert!(!collector.is_empty(), "collector captured no spans");
    }
}

/// The span tree reconciles with the PhaseTimers rows it instrumented:
/// one compile root, one span subtree per phase, with cumulative span
/// times close to the timer totals (same thread, same intervals).
#[test]
fn trace_reconciles_with_table1_rows() {
    let collector = Collector::new();
    let compiled = compile(STENCIL, &CompileOptions::new().trace(collector.clone())).unwrap();
    let trace = collector.trace();
    assert!(trace.nodes.iter().all(|n| !n.open), "dangling open span");

    let roots = trace.roots();
    assert_eq!(roots.len(), 1, "exactly one compile root");
    let root = roots[0];
    assert_eq!(trace.nodes[root].name, "compile");
    assert_eq!(trace.nodes[root].counters.get("units"), Some(&1));

    // Root span duration vs overall timer: same interval, same thread —
    // generous 25% bound only to absorb scheduler noise on loaded CI.
    let total_s = compiled.report.timers.total().as_secs_f64();
    let root_s = trace.nodes[root].dur_ns as f64 / 1e9;
    assert!(
        (root_s - total_s).abs() / total_s.max(1e-9) < 0.25,
        "compile span {root_s}s vs timer total {total_s}s"
    );

    // Every Table-1 phase row has a matching span set whose summed
    // duration equals the row's cumulative time within 5% — plus a small
    // absolute slack per span, since the timers and the collector take
    // separate clock readings and sub-microsecond phases are dominated by
    // the collector's own begin/end bookkeeping.
    for row in compiled.report.timers.rows_nested() {
        let spans: Vec<&dhpf_obs::SpanNode> =
            trace.nodes.iter().filter(|n| n.name == row.name).collect();
        assert!(!spans.is_empty(), "phase {} has no span", row.name);
        let span_ns: u64 = spans.iter().map(|n| n.dur_ns).sum();
        let row_ns = row.cumulative.as_nanos() as f64;
        let diff = (span_ns as f64 - row_ns).abs();
        let slack = 20_000.0 * spans.len() as f64; // 20us per span
        assert!(
            diff / row_ns.max(1.0) < 0.05 || diff < slack,
            "phase {}: spans {}ns vs rows {}ns (diff {}ns over {} spans)",
            row.name,
            span_ns,
            row_ns,
            diff,
            spans.len()
        );
    }
}

/// Omega set-operation samples are attributed to the analysis phases that
/// issued them, not to the root.
#[test]
fn set_ops_attributed_to_phases() {
    let collector = Collector::new();
    let _ = compile(STENCIL, &CompileOptions::new().trace(collector.clone())).unwrap();
    let trace = collector.trace();

    let totals = trace.total_ops();
    let sat = totals.get("satisfiability").map_or(0, |o| o.calls);
    assert!(sat > 0, "no satisfiability samples recorded");
    assert!(
        totals.get("fme projection").map_or(0, |o| o.calls) > 0,
        "no projection samples recorded"
    );

    // The bulk of the work happens inside analysis phases (spans with
    // cat "phase"), not on the compile root.
    let phase_sat: u64 = trace
        .nodes
        .iter()
        .filter(|n| n.cat == "phase")
        .filter_map(|n| n.ops.get("satisfiability"))
        .map(|o| o.calls)
        .sum();
    assert!(
        phase_sat * 10 >= sat * 9,
        "only {phase_sat}/{sat} sat calls landed on phase spans"
    );
    let comm = trace
        .find("communication generation")
        .expect("communication generation span");
    let subtree_ops = {
        // Ops on the span or any descendant.
        let mut total = 0u64;
        let mut stack = vec![comm];
        while let Some(i) = stack.pop() {
            total += trace.nodes[i].ops.values().map(|o| o.calls).sum::<u64>();
            stack.extend(trace.nodes[i].children.iter().copied());
        }
        total
    };
    assert!(
        subtree_ops > 0,
        "communication generation recorded no set ops"
    );
}
