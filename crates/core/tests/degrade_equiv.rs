//! Degraded compilation is still *correct* compilation.
//!
//! For each benchmark, compiles once exactly and once under forced fault
//! injection (a degradable error at every arrival of a named site), runs
//! both programs on the simulated message-passing machine, and asserts the
//! numeric results — every scalar and every distributed array on every
//! rank — are identical. Graceful degradation may change *how much* is
//! communicated (conservative full exchanges, replicated nests), never
//! *what* is computed.
//!
//! Also pins the reporting contract: `degradations()` is non-empty exactly
//! when a fault fired, and a clean compile reports neither.

use dhpf_core::{compile, CompileOptions, Compiled};
use dhpf_omega::{FaultAction, InjectPlan};
use dhpf_sim::{simulate, MachineModel, SimResult};
use std::collections::HashMap;

const JACOBI: &str = include_str!("../../../benchmarks/jacobi.hpf");
const TOMCATV: &str = include_str!("../../../benchmarks/tomcatv.hpf");
const ERLEBACHER: &str = include_str!("../../../benchmarks/erlebacher.hpf");

/// A scaled-down benchmark configuration: source rewrite, runtime inputs,
/// and the processor grid to simulate.
struct Config {
    name: &'static str,
    src: &'static str,
    resize: Option<(&'static str, &'static str)>,
    inputs: &'static [(&'static str, i64)],
    grid: &'static [i64],
}

const CONFIGS: &[Config] = &[
    Config {
        name: "JACOBI",
        src: JACOBI,
        resize: Some(("parameter (n = 128)", "parameter (n = 24)")),
        inputs: &[("niter", 2)],
        grid: &[2, 2],
    },
    Config {
        name: "TOMCATV",
        src: TOMCATV,
        resize: Some(("parameter (n = 257)", "parameter (n = 33)")),
        inputs: &[("niter", 2)],
        grid: &[4],
    },
    Config {
        name: "ERLEBACHER",
        src: ERLEBACHER,
        resize: Some(("parameter (n = 32, nz = 32)", "parameter (n = 12, nz = 12)")),
        inputs: &[],
        grid: &[4],
    },
];

fn run(cfg: &Config, compiled: &Compiled) -> SimResult {
    let inputs: HashMap<String, i64> = cfg
        .inputs
        .iter()
        .map(|&(k, v)| (k.to_string(), v))
        .collect();
    let grid: Vec<i64> = cfg.grid.to_vec();
    simulate(compiled, &grid, &inputs, &MachineModel::sp2())
        .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", cfg.name))
}

/// Asserts two simulated runs computed identical numbers. Message and
/// byte counts are deliberately *not* compared: degraded programs move
/// more data. All reductions in these benchmarks are max-reductions, so
/// exact float equality is the right bar (max is order-insensitive).
fn assert_same_numbers(name: &str, what: &str, exact: &SimResult, degraded: &SimResult) {
    assert_eq!(
        exact.ints, degraded.ints,
        "{name} [{what}]: integer scalars diverged"
    );
    let keys = |m: &HashMap<String, f64>| {
        let mut k: Vec<&String> = m.keys().collect();
        k.sort();
        k.into_iter().cloned().collect::<Vec<_>>()
    };
    assert_eq!(
        keys(&exact.floats),
        keys(&degraded.floats),
        "{name} [{what}]: float scalar sets diverged"
    );
    for (k, v) in &exact.floats {
        let d = degraded.floats[k];
        assert!(
            v.to_bits() == d.to_bits() || (v - d).abs() <= 1e-12 * v.abs().max(1.0),
            "{name} [{what}]: scalar {k} diverged: exact {v:e} vs degraded {d:e}"
        );
    }
    let mut names: Vec<&String> = exact.arrays.keys().collect();
    names.sort();
    assert_eq!(
        names.len(),
        degraded.arrays.len(),
        "{name} [{what}]: array sets diverged"
    );
    for arr in names {
        let a = &exact.arrays[arr];
        let b = degraded
            .arrays
            .get(arr)
            .unwrap_or_else(|| panic!("{name} [{what}]: array {arr} missing in degraded run"));
        assert_eq!(a.dims, b.dims, "{name} [{what}]: {arr} shape diverged");
        for (i, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{name} [{what}]: {arr}[linear {i}] diverged: exact {x:e} vs degraded {y:e}"
            );
        }
    }
}

#[test]
fn clean_compiles_report_no_degradations() {
    for cfg in CONFIGS {
        let src = match cfg.resize {
            Some((from, to)) => cfg.src.replace(from, to),
            None => cfg.src.to_string(),
        };
        let c = compile(&src, &CompileOptions::new()).expect(cfg.name);
        assert!(
            c.report.degradations().is_empty(),
            "{}: clean compile degraded: {:?}",
            cfg.name,
            c.report.degradations()
        );
        assert_eq!(c.report.injected_faults, 0, "{}: no plan armed", cfg.name);
        assert!(c.report.governor.tripped.is_none(), "{}", cfg.name);
    }
}

#[test]
fn forced_degradation_preserves_numerics() {
    // Fire a degradable error on *every* arrival at the site: "comm_sets"
    // exercises rung 1 (conservative full exchange) with rung-2 fallback
    // for non-degradable positions; "nest" forces rung 2 (replicated
    // nest with conservative refresh) for every nest in the program.
    for cfg in CONFIGS {
        let src = match cfg.resize {
            Some((from, to)) => cfg.src.replace(from, to),
            None => cfg.src.to_string(),
        };
        let exact = compile(&src, &CompileOptions::new()).expect(cfg.name);
        assert!(exact.report.degradations().is_empty());
        let baseline = run(cfg, &exact);

        for site in ["comm_sets", "nest"] {
            let plan = InjectPlan::new(0xD15A57E5, 1, FaultAction::Error).at_site(site);
            let opts = CompileOptions::new().inject(plan);
            let degraded = compile(&src, &opts)
                .unwrap_or_else(|e| panic!("{} [{site}]: injected compile failed: {e}", cfg.name));
            assert!(
                degraded.report.injected_faults > 0,
                "{} [{site}]: period-1 plan never fired",
                cfg.name
            );
            assert!(
                !degraded.report.degradations().is_empty(),
                "{} [{site}]: faults fired but nothing degraded",
                cfg.name
            );
            for d in degraded.report.degradations() {
                assert!(
                    !d.action.is_empty() && !d.site.is_empty(),
                    "{}: malformed degradation record {d:?}",
                    cfg.name
                );
            }
            let out = run(cfg, &degraded);
            assert_same_numbers(cfg.name, site, &baseline, &out);
        }
    }
}

#[test]
fn degradations_fire_exactly_when_faults_do() {
    // A sparse plan on a benchmark: whenever the report says a fault
    // fired, degradations must be non-empty, and vice versa — no silent
    // fallbacks, no phantom reports.
    let src = JACOBI.replace("parameter (n = 128)", "parameter (n = 24)");
    for seed in 0..6u64 {
        let plan = InjectPlan::new(seed, 7, FaultAction::Error).at_site("comm_sets");
        let opts = CompileOptions::new().inject(plan);
        match compile(&src, &opts) {
            Ok(c) => assert_eq!(
                c.report.injected_faults > 0,
                !c.report.degradations().is_empty(),
                "seed {seed}: fired={} degradations={:?}",
                c.report.injected_faults,
                c.report.degradations()
            ),
            Err(e) => panic!("seed {seed}: comm_sets faults must degrade, got {e}"),
        }
    }
}
