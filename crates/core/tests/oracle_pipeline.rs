//! Randomized end-to-end pipeline invariants (paper Figures 3 and 4).
//!
//! Generates small 1-D block-distributed HPF programs from a template,
//! runs the real analysis pipeline (layouts → CP maps → communication
//! sets → loop splitting), and checks paper-level invariants against
//! exhaustive enumeration via the probes in `dhpf_core::probes`:
//!
//! - CP maps partition the loop range across processors,
//! - Send/Recv communication maps are dual,
//! - the Figure 4 sections partition each processor's iterations,
//! - analyses with and without a shared memoizing `Context` agree.

use dhpf_core::probes;
use dhpf_core::{
    build_layouts, build_layouts_in, collect_statements, comm_sets, cp_map, myid_set, split_sets,
    CommRef,
};
use dhpf_hpf::{analyze, parse};
use dhpf_omega::testing::Rng;
use dhpf_omega::Context;

/// One random 1-D block-distributed program: `a(i) = b(i + off)` over a
/// loop range chosen so all accesses stay in bounds.
struct Case {
    n: i64,
    p: i64,
    lo: i64,
    hi: i64,
    off: i64,
}

impl Case {
    fn gen(rng: &mut Rng) -> Case {
        let p = rng.range(2, 4);
        let n = p * rng.range(3, 8); // evenly divisible block sizes
        let off = rng.range(-2, 2);
        let lo = 1 + off.min(0).abs() + rng.range(0, 1);
        let hi = (n - off.max(0)) - rng.range(0, 1);
        Case { n, p, lo, hi, off }
    }

    fn source(&self) -> String {
        let Case { n, p, lo, hi, off } = self;
        let sub = match off.signum() {
            0 => "i".to_string(),
            1 => format!("i + {off}"),
            _ => format!("i - {}", -off),
        };
        format!(
            "
program fuzzcase
real a({n}), b({n})
!HPF$ processors pr({p})
!HPF$ template t({n})
!HPF$ align a(i) with t(i)
!HPF$ align b(i) with t(i)
!HPF$ distribute t(block) onto pr
do i = {lo}, {hi}
  a(i) = b({sub}) + b(i)
enddo
end
"
        )
    }
}

fn check_case(case: &Case, seed: u64) {
    let src = case.source();
    let label = || format!("seed {seed}: {src}");
    if case.lo > case.hi {
        return; // degenerate empty loop
    }
    let prog = parse(&src).unwrap_or_else(|e| panic!("parse failed ({e}) for {}", label()));
    let a = analyze(&prog.units[0]).unwrap_or_else(|e| panic!("analyze failed ({e})"));
    let layouts = build_layouts(&a);
    let stmts = collect_statements(&a);
    let stmt = &stmts[0];
    let cp = cp_map(stmt, &layouts);

    // Invariant 1: the CP map partitions the loop range across processors.
    let iter_space = stmt.ctx.iteration_set();
    probes::cp_partition(&cp, &iter_space, case.p)
        .unwrap_or_else(|e| panic!("{e}\nin {}", label()));

    // Invariant 2: Send/Recv duality over the full array index window.
    let refs: Vec<CommRef> = stmt
        .reads
        .iter()
        .map(|r| CommRef {
            cp_map: cp.clone(),
            ref_map: r.ref_map(&stmt.ctx),
        })
        .collect();
    let sets = comm_sets(&refs, &[], &layouts["b"])
        .unwrap_or_else(|e| panic!("comm_sets failed ({e}) in {}", label()));
    let data: Vec<Vec<i64>> = (1..=case.n).map(|v| vec![v]).collect();
    probes::comm_duality(&sets, case.p, &data).unwrap_or_else(|e| panic!("{e}\nin {}", label()));

    // Invariant 3: the Figure 4 sections partition each processor's
    // iterations.
    let mine = cp.apply(&myid_set(1));
    let read_pairs: Vec<_> = refs.iter().map(|r| (r, &layouts["b"])).collect();
    let wref = CommRef {
        cp_map: cp.clone(),
        ref_map: stmt.lhs.as_ref().unwrap().ref_map(&stmt.ctx),
    };
    let write_pairs = [(&wref, &layouts["a"])];
    let splits = split_sets(&mine, &read_pairs, &write_pairs)
        .unwrap_or_else(|e| panic!("split_sets failed ({e}) in {}", label()));
    for m in 0..case.p {
        probes::split_partition(&splits, &mine, m)
            .unwrap_or_else(|e| panic!("{e}\nin {}", label()));
    }

    // Invariant 4: a shared memoizing Context changes nothing.
    let ctx = Context::new();
    let layouts_c = build_layouts_in(&a, Some(&ctx));
    let cp_c = cp_map(stmt, &layouts_c);
    let refs_c: Vec<CommRef> = stmt
        .reads
        .iter()
        .map(|r| CommRef {
            cp_map: cp_c.clone(),
            ref_map: r.ref_map(&stmt.ctx),
        })
        .collect();
    let sets_c = comm_sets(&refs_c, &[], &layouts_c["b"])
        .unwrap_or_else(|e| panic!("cached comm_sets failed ({e}) in {}", label()));
    probes::comm_equiv(&sets, &sets_c).unwrap_or_else(|e| panic!("{e}\nin {}", label()));
}

#[test]
fn randomized_block_pipeline_invariants() {
    let mut master = Rng::new(0xD1FF);
    for _ in 0..25 {
        let seed = master.next_u64();
        let mut rng = Rng::new(seed);
        let case = Case::gen(&mut rng);
        check_case(&case, seed);
    }
}

#[test]
fn uneven_block_sizes_hold_invariants() {
    // Non-divisible extents: the last processor's block is short.
    for (n, p, off) in [(10, 3, 1), (11, 4, -1), (13, 3, 2), (7, 2, -2)] {
        let case = Case {
            n,
            p,
            lo: 1 + (-off).max(0),
            hi: n - off.max(0),
            off,
        };
        check_case(&case, 0);
    }
}
