//! Chaos suite: the compile pipeline under deterministic fault injection.
//!
//! Every run in the matrix — programs x thread counts x fault actions x
//! injection densities — must land in exactly one arm of the trichotomy:
//!
//! 1. **exact**: `Ok` with no degradations (the plan happened not to fire
//!    on anything load-bearing),
//! 2. **degraded but correct**: `Ok` with degradations recorded, and the
//!    program still computes the exact numbers on the simulator,
//! 3. **typed error**: a `CompileError` variant naming what went wrong.
//!
//! Never a hang (the test harness would time out), never an unwound panic
//! (the `compile` call would abort the test process), never a poisoned
//! lock wedging sibling threads. The injection decision is a pure function
//! of `(seed, site, arrival count)`, so failures replay from their seed.

use dhpf_core::{compile, CompileError, CompileOptions, Compiled};
use dhpf_omega::{Budget, CancelToken, FaultAction, InjectPlan};
use dhpf_sim::{simulate, MachineModel, SimResult};
use std::collections::HashMap;

const JACOBI: &str = include_str!("../../../benchmarks/jacobi.hpf");
const ERLEBACHER: &str = include_str!("../../../benchmarks/erlebacher.hpf");

fn jacobi_small() -> String {
    JACOBI.replace("parameter (n = 128)", "parameter (n = 16)")
}

fn erlebacher_small() -> String {
    ERLEBACHER.replace("parameter (n = 32, nz = 32)", "parameter (n = 8, nz = 8)")
}

fn simulate_small(name: &str, c: &Compiled) -> SimResult {
    let (grid, inputs): (Vec<i64>, Vec<(&str, i64)>) = match name {
        "JACOBI" => (vec![2, 2], vec![("niter", 1)]),
        _ => (vec![4], vec![]),
    };
    let inputs: HashMap<String, i64> = inputs.iter().map(|&(k, v)| (k.to_string(), v)).collect();
    simulate(c, &grid, &inputs, &MachineModel::sp2())
        .unwrap_or_else(|e| panic!("{name}: degraded program failed to simulate: {e}"))
}

fn same_numbers(name: &str, tag: &str, a: &SimResult, b: &SimResult) {
    assert_eq!(a.ints, b.ints, "{name} [{tag}]: integer scalars diverged");
    for (k, v) in &a.floats {
        let d = b.floats.get(k).copied().unwrap_or(f64::NAN);
        assert!(
            v.to_bits() == d.to_bits(),
            "{name} [{tag}]: scalar {k}: {v:e} vs {d:e}"
        );
    }
    for (arr, x) in &a.arrays {
        let y = &b.arrays[arr];
        assert_eq!(x.dims, y.dims, "{name} [{tag}]: {arr} shape");
        assert!(
            x.data
                .iter()
                .zip(&y.data)
                .all(|(p, q)| p.to_bits() == q.to_bits()),
            "{name} [{tag}]: array {arr} diverged"
        );
    }
}

/// One chaos run. Returns which trichotomy arm it landed in (for the
/// coverage assertion) after validating that arm's invariants.
#[allow(clippy::too_many_arguments)]
fn run_one(
    name: &str,
    src: &str,
    baseline: &SimResult,
    threads: usize,
    action: FaultAction,
    seed: u64,
    period: u64,
    site: Option<&'static str>,
) -> &'static str {
    let mut plan = InjectPlan::new(seed, period, action);
    if let Some(site) = site {
        plan = plan.at_site(site);
    }
    let opts = CompileOptions::new().threads(threads).inject(plan);
    let tag =
        format!("{name} threads={threads} {action:?} seed={seed} period={period} site={site:?}");
    match compile(src, &opts) {
        Ok(c) => {
            if c.report.degradations().is_empty() {
                // Exact result: the program is byte-identical in behavior,
                // so the simulator must reproduce the baseline.
                same_numbers(
                    name,
                    &format!("{tag} exact"),
                    baseline,
                    &simulate_small(name, &c),
                );
                "exact"
            } else {
                assert!(
                    c.report.injected_faults > 0 || c.report.governor.tripped.is_some(),
                    "{tag}: degraded with no recorded cause"
                );
                same_numbers(
                    name,
                    &format!("{tag} degraded"),
                    baseline,
                    &simulate_small(name, &c),
                );
                "degraded"
            }
        }
        Err(e) => {
            // Every error is a typed variant with a Display message.
            assert!(!e.to_string().is_empty(), "{tag}: empty error message");
            "error"
        }
    }
}

/// Enumerates the per-rank, per-event, per-partner comm tuples of a
/// compiled program directly from its send/recv code — mirroring the
/// simulator's walker (virtual-processor loop stepping included) but with
/// no threads and no channels, so a corrupt plan can't hang the test.
/// Only level-0 events are covered (inner-level events see loop-dependent
/// environments).
/// One rank's communication plan: `(event index, is_send, partner rank)`
/// mapped to the data tuples moved, in enumeration order.
type RankPlan = HashMap<(usize, bool, usize), Vec<Vec<i64>>>;

fn comm_plans(c: &Compiled, counts: &[i64], inputs: &HashMap<String, i64>) -> Vec<RankPlan> {
    use dhpf_codegen::{Code, Env};
    use dhpf_core::ProcCoord;

    let nranks: usize = counts.iter().product::<i64>() as usize;
    let mut out = Vec::with_capacity(nranks);
    for rank in 0..nranks {
        let mut env: Env = inputs.clone();
        for (name, s) in &c.analysis.scalars {
            if let dhpf_hpf::ScalarKind::Constant(v) = s.kind {
                env.insert(name.clone(), v);
            }
        }
        env.insert("number_of_processors".into(), nranks as i64);
        let mut rem = rank as i64;
        let mut coords = vec![0i64; counts.len()];
        for d in (0..counts.len()).rev() {
            coords[d] = rem % counts[d];
            rem /= counts[d];
        }
        for (d, spec) in c.program.proc_dims.iter().enumerate() {
            env.insert(format!("np{}", d + 1), counts[d]);
            match &spec.coord {
                ProcCoord::Physical { .. } => {
                    env.insert(format!("m{}", d + 1), coords[d]);
                }
                ProcCoord::BlockVp { bsize, nproc } => {
                    let ext = spec.extent.as_ref().expect("extent");
                    let n = ext.terms.iter().map(|(k, c)| env[k] * c).sum::<i64>() + ext.constant;
                    let bs = (n + counts[d] - 1) / counts[d];
                    env.insert(bsize.clone(), bs);
                    env.insert(nproc.clone(), counts[d]);
                    env.insert(format!("m{}", d + 1), bs * coords[d] + 1);
                }
                _ => unimplemented!("cyclic grids not used in chaos programs"),
            }
        }
        #[allow(clippy::too_many_arguments)]
        fn walk(
            code: &Code,
            c: &Compiled,
            counts: &[i64],
            env: &mut Env,
            proc_rank: u32,
            data_rank: u32,
            leaves: &mut Vec<(usize, Vec<i64>)>,
        ) {
            match code {
                Code::Seq(cs) => {
                    for k in cs {
                        walk(k, c, counts, env, proc_rank, data_rank, leaves);
                    }
                }
                Code::If { cond, body } => {
                    if cond.eval(env).expect("eval cond") {
                        walk(body, c, counts, env, proc_rank, data_rank, leaves);
                    }
                }
                Code::Loop {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                } => {
                    let mut lo = lo.eval(env).expect("eval lo");
                    let hi = hi.eval(env).expect("eval hi");
                    let mut step = *step;
                    if let Some(d) = var.strip_prefix('q').and_then(|s| s.parse::<usize>().ok()) {
                        if let Some(dhpf_core::ProcCoord::BlockVp { bsize, .. }) =
                            c.program.proc_dims.get(d - 1).map(|s| &s.coord)
                        {
                            let bs = env[bsize.as_str()];
                            if step == 1 && bs > 1 {
                                lo += (1 - lo).rem_euclid(bs);
                                step = bs;
                            }
                        }
                    }
                    let saved = env.get(var).copied();
                    let mut x = lo;
                    while x <= hi {
                        env.insert(var.clone(), x);
                        walk(body, c, counts, env, proc_rank, data_rank, leaves);
                        x += step;
                    }
                    match saved {
                        Some(v) => env.insert(var.clone(), v),
                        None => env.remove(var),
                    };
                }
                Code::Stmt(_) => {
                    let mut partner = 0i64;
                    for d in 0..proc_rank as usize {
                        let q = env[&format!("q{}", d + 1)];
                        let coord = match &c.program.proc_dims[d].coord {
                            dhpf_core::ProcCoord::Physical { .. } => q,
                            dhpf_core::ProcCoord::BlockVp { bsize, .. } => {
                                let bs = env[bsize.as_str()];
                                if (q - 1).rem_euclid(bs) != 0 {
                                    return;
                                }
                                (q - 1) / bs
                            }
                            _ => unreachable!(),
                        };
                        if coord < 0 || coord >= counts[d] {
                            return;
                        }
                        partner = partner * counts[d] + coord;
                    }
                    let idx: Vec<i64> = (0..data_rank as usize)
                        .map(|d| env[&format!("d{}", d + 1)])
                        .collect();
                    leaves.push((partner as usize, idx));
                }
                Code::Comment(_) => {}
            }
        }
        let mut plans: HashMap<(usize, bool, usize), Vec<Vec<i64>>> = HashMap::new();
        for ev in &c.program.events {
            if ev.level != 0 {
                continue;
            }
            for (is_send, code) in [(true, &ev.send_code), (false, &ev.recv_code)] {
                let mut leaves = Vec::new();
                walk(
                    code,
                    c,
                    counts,
                    &mut env,
                    ev.proc_rank,
                    ev.data_rank,
                    &mut leaves,
                );
                for (p, idx) in leaves {
                    plans.entry((ev.id, is_send, p)).or_default().push(idx);
                }
            }
        }
        out.push(plans);
    }
    out
}

/// Asserts the send/recv duality the simulator's pairing depends on: for
/// every (event, src rank A, dst rank B), A's send tuples to B must equal
/// B's recv tuples from A — same tuples, same order. Returns a description
/// of the first violation instead of panicking so callers can attach
/// context.
fn pairing_violation(plans: &[RankPlan], events: usize) -> Option<String> {
    let nranks = plans.len();
    for ev in 0..events {
        for a in 0..nranks {
            for b in 0..nranks {
                if a == b {
                    continue;
                }
                let empty: Vec<Vec<i64>> = Vec::new();
                let send = plans[a].get(&(ev, true, b)).unwrap_or(&empty);
                let recv = plans[b].get(&(ev, false, a)).unwrap_or(&empty);
                if send != recv {
                    return Some(format!(
                        "event {ev}: rank {a} sends {} tuples to rank {b}, \
                         rank {b} expects {} from rank {a}\n  send: {send:?}\n  recv: {recv:?}",
                        send.len(),
                        recv.len()
                    ));
                }
            }
        }
    }
    None
}

/// Regression test for a silent-corruption bug the chaos harness found:
/// injected per-operation faults left communication maps unsimplified
/// (overlapping conjuncts), and code generation's disjoint-form pass
/// trusted set-difference pieces to be pairwise disjoint when the
/// complement construction actually returned overlapping pieces. The
/// generated send code then enumerated boundary tuples twice while the
/// receiver expected them once — a message-length mismatch that deadlocked
/// the simulator, with zero degradations recorded. Racy thread
/// interleavings reassign which operation each fault arrival hits, so the
/// loop resamples the same plan many times to cover many interleavings.
#[test]
fn injected_faults_never_corrupt_comm_pairing() {
    let src = jacobi_small();
    let inputs: HashMap<String, i64> = [("niter".to_string(), 1)].into();
    let clean = compile(&src, &CompileOptions::new()).expect("clean");
    let clean_plans = comm_plans(&clean, &[2, 2], &inputs);
    assert!(
        pairing_violation(&clean_plans, clean.program.events.len()).is_none(),
        "clean program violates pairing"
    );
    for round in 0..40 {
        let plan = InjectPlan::new(202, 251, FaultAction::Error);
        let opts = CompileOptions::new().threads(2).inject(plan);
        let c = match compile(&src, &opts) {
            Ok(c) => c,
            Err(_) => continue,
        };
        let degr = c.report.degradations();
        let plans = comm_plans(&c, &[2, 2], &inputs);
        if let Some(v) = pairing_violation(&plans, c.program.events.len()) {
            panic!("round {round} (degradations = {degr:?}): pairing violation:\n{v}");
        }
        // An exact compile must also communicate identically to the clean
        // one: same partners, same tuples, same order.
        assert!(
            !degr.is_empty() || plans == clean_plans,
            "round {round}: exact compile with a comm plan that differs from the clean compile"
        );
    }
}

#[test]
fn trichotomy_matrix() {
    let programs = [
        ("JACOBI", jacobi_small()),
        ("ERLEBACHER", erlebacher_small()),
    ];
    let actions = [
        FaultAction::Error,
        FaultAction::Panic,
        FaultAction::ExhaustBudget,
    ];
    for (name, src) in &programs {
        let exact = compile(src, &CompileOptions::new()).expect(name);
        let baseline = simulate_small(name, &exact);
        let mut arms: Vec<&str> = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            // Unrestricted plans across densities: period 3 saturates
            // (analysis sites fail -> typed errors), period 251 is
            // scattershot, and a ~2^40 period essentially never fires
            // (the exact arm). Sites in analysis have no fallback, so
            // dense unrestricted plans are expected to error.
            for (ai, &action) in actions.iter().enumerate() {
                for (pi, &period) in [3u64, 251, 1 << 40].iter().enumerate() {
                    let seed = 1 + (threads as u64) * 100 + (ai as u64) * 10 + pi as u64;
                    arms.push(run_one(
                        name, src, &baseline, threads, action, seed, period, None,
                    ));
                }
            }
            // Site-restricted probes at synthesis sites, where the
            // degradation ladder guarantees a conservative fallback.
            for site in ["comm_sets", "nest"] {
                arms.push(run_one(
                    name,
                    src,
                    &baseline,
                    threads,
                    FaultAction::Error,
                    threads as u64,
                    1,
                    Some(site),
                ));
            }
        }
        // The matrix is dense enough that sparse plans leave some runs
        // exact while dense ones force the other arms; all three arms of
        // the trichotomy must actually be exercised, or the suite is
        // vacuous.
        for arm in ["exact", "degraded", "error"] {
            assert!(
                arms.contains(&arm),
                "{name}: no run landed in the {arm:?} arm: {arms:?}"
            );
        }
    }
}

#[test]
fn saturation_sweep_threads_1_through_8() {
    // Period-1 plans fire on every arrival: the worst case. At every
    // thread count the pipeline must still terminate in a typed state.
    let src = jacobi_small();
    let exact = compile(&src, &CompileOptions::new()).expect("JACOBI");
    let baseline = simulate_small("JACOBI", &exact);
    for threads in 1..=8usize {
        for action in [
            FaultAction::Error,
            FaultAction::Panic,
            FaultAction::ExhaustBudget,
        ] {
            run_one(
                "JACOBI",
                &src,
                &baseline,
                threads,
                action,
                0xC4A05 + threads as u64,
                1,
                None,
            );
        }
    }
}

#[test]
fn injection_is_deterministic_per_seed() {
    // Same seed, same plan, different thread counts: the set of faults a
    // site sees is a pure function of arrival counts, so the *serial*
    // outcome replays exactly, and every outcome is simulatable.
    let src = jacobi_small();
    let plan = InjectPlan::new(42, 5, FaultAction::Error);
    let opts = CompileOptions::new().inject(plan);
    let a = compile(&src, &opts);
    let b = compile(&src, &opts);
    match (&a, &b) {
        (Ok(x), Ok(y)) => {
            assert_eq!(x.report.injected_faults, y.report.injected_faults);
            assert_eq!(x.report.degradations(), y.report.degradations());
            assert_eq!(format!("{:?}", x.program), format!("{:?}", y.program));
        }
        (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string()),
        _ => panic!("same seed diverged: {a:?} vs {b:?}"),
    }
}

#[test]
fn zero_deadline_terminates_with_typed_outcome() {
    // An already-expired deadline: the compile may degrade everything or
    // give up with a Budget error, but it must return promptly — the
    // first governed operation trips, and nothing retries in a loop.
    let src = jacobi_small();
    for threads in [1usize, 4] {
        let opts = CompileOptions::new().threads(threads).deadline_ms(0);
        match compile(&src, &opts) {
            Ok(c) => {
                assert!(
                    !c.report.degradations().is_empty(),
                    "threads={threads}: a zero deadline cannot compile exactly"
                );
                assert_eq!(c.report.governor.tripped, Some("deadline"));
            }
            Err(e) => assert!(
                matches!(e, CompileError::Budget(_) | CompileError::SetAlgebra(_)),
                "threads={threads}: unexpected error {e}"
            ),
        }
    }
}

#[test]
fn precancelled_token_is_refused_up_front() {
    let token = CancelToken::new();
    token.cancel();
    for threads in [1usize, 4] {
        let opts = CompileOptions::new()
            .threads(threads)
            .cancel_token(token.clone());
        match compile(&jacobi_small(), &opts) {
            Err(CompileError::Cancelled) => {}
            other => panic!("threads={threads}: expected Cancelled, got {other:?}"),
        }
    }
}

#[test]
fn cancellation_mid_flight_never_degrades() {
    // Cancel from another thread while the compile runs. Whatever the
    // race outcome, cancellation must never be *absorbed* by the
    // degradation ladder: the result is either a complete exact program
    // (compile won the race) or `Cancelled` — nothing in between.
    let src = jacobi_small();
    for delay_us in [0u64, 50, 200, 1000] {
        let token = CancelToken::new();
        let opts = CompileOptions::new().threads(4).cancel_token(token.clone());
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
                token.cancel();
            })
        };
        let out = compile(&src, &opts);
        canceller.join().unwrap();
        match out {
            Ok(c) => assert!(
                c.report.degradations().is_empty(),
                "delay={delay_us}us: cancellation leaked into the degradation ladder: {:?}",
                c.report.degradations()
            ),
            Err(CompileError::Cancelled) => {}
            Err(e) => panic!("delay={delay_us}us: unexpected error {e}"),
        }
    }
}

#[test]
fn op_fuel_starvation_degrades_or_errors_soundly() {
    let src = erlebacher_small();
    let exact = compile(&src, &CompileOptions::new()).expect("ERLEBACHER");
    let baseline = simulate_small("ERLEBACHER", &exact);
    // Sweep fuel from starvation to plenty; low fuel must degrade or
    // error, generous fuel must reproduce the exact program.
    for fuel in [0u64, 1, 10, 100, 1_000_000] {
        let opts = CompileOptions::new().budget(Budget::new().op_fuel(fuel));
        match compile(&src, &opts) {
            Ok(c) => {
                if c.report.governor.tripped.is_some() {
                    assert!(!c.report.degradations().is_empty(), "fuel={fuel}");
                } else {
                    assert!(c.report.degradations().is_empty(), "fuel={fuel}");
                }
                same_numbers(
                    "ERLEBACHER",
                    &format!("fuel={fuel}"),
                    &baseline,
                    &simulate_small("ERLEBACHER", &c),
                );
            }
            Err(e) => assert!(
                matches!(e, CompileError::Budget(_) | CompileError::SetAlgebra(_)),
                "fuel={fuel}: unexpected error {e}"
            ),
        }
    }
}
