//! Loop splitting (non-local index-set splitting), Figure 4.
//!
//! Splits the iterations of a partitioned loop nest into four sections:
//! those touching only local data (`local`), and those reading / writing /
//! both reading-and-writing non-local data (`nl_ro`, `nl_wo`, `nl_rw`),
//! enabling communication–computation overlap and check-free local buffer
//! access (paper §3.4).

use crate::comm::CommRef;
use crate::cp::myid_set;
use crate::layout::Layout;
use dhpf_omega::{OmegaError, Set};

/// The four iteration sections of Figure 4(a), over the loop tuple, with
/// `m1..mr` (myid) as symbolic parameters.
#[derive(Clone, Debug)]
pub struct SplitSets {
    /// Iterations accessing only local data.
    pub local: Set,
    /// Iterations that only *read* non-local data.
    pub nl_ro: Set,
    /// Iterations that only *write* non-local data.
    pub nl_wo: Set,
    /// Iterations that both read and write non-local data.
    pub nl_rw: Set,
}

impl SplitSets {
    /// The scheduling order of Figure 4(b): sections in the order they
    /// should execute to overlap read latency with local computation.
    pub fn schedule(&self) -> [(&'static str, &Set); 4] {
        [
            ("NLWOIters", &self.nl_wo),
            ("LocalIters", &self.local),
            ("NLROIters", &self.nl_ro),
            ("NLRWIters", &self.nl_rw),
        ]
    }
}

/// Computes the Figure 4(a) iteration sections for one statement group.
///
/// Each entry of `reads`/`writes` pairs a reference with its array's
/// layout; `cp_iter_set` is `CPMap({m})`, the group's partitioned
/// iteration set.
///
/// # Errors
///
/// Returns the underlying [`OmegaError`] when a set difference hits an
/// exactness limit (inexact negation or coefficient overflow).
///
/// # Panics
///
/// Panics if set arities are inconsistent (a compiler-internal error).
pub fn split_sets(
    cp_iter_set: &Set,
    reads: &[(&CommRef, &Layout)],
    writes: &[(&CommRef, &Layout)],
) -> Result<SplitSets, OmegaError> {
    // localIters_r = RefMap_r⁻¹(localDataAccessed_r); we intersect across
    // references first (the paper's reformulation to limit disjunctions).
    let local_iters = |refs: &[(&CommRef, &Layout)]| -> Result<Set, OmegaError> {
        let mut acc = cp_iter_set.clone();
        for (r, layout) in refs {
            let me = myid_set(layout.proc_rank());
            let owned = layout.rel.apply(&me);
            let data_accessed = r.ref_map.apply(cp_iter_set);
            let local_data = data_accessed.intersection(&owned);
            let mut li = r.ref_map.apply_inverse(&local_data);
            // Restrict to iterations whose *own* access is local:
            // iterations whose referenced element is non-local must go.
            let nl_data = data_accessed.try_subtract(&owned)?;
            let nl_iters = r.ref_map.apply_inverse(&nl_data);
            li = li.try_subtract(&nl_iters)?;
            acc = acc.intersection(&li);
        }
        Ok(acc.intersection(cp_iter_set))
    };
    let local_read = local_iters(reads)?;
    let local_write = local_iters(writes)?;
    let nl_read = cp_iter_set.try_subtract(&local_read)?;
    let nl_write = cp_iter_set.try_subtract(&local_write)?;
    let nl_rw = nl_read.intersection(&nl_write);
    let nl_ro = nl_read.try_subtract(&nl_write)?;
    let nl_wo = nl_write.try_subtract(&nl_read)?;
    let mut local = local_read.intersection(&local_write);
    local.simplify();
    Ok(SplitSets {
        local,
        nl_ro,
        nl_wo,
        nl_rw,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommRef;
    use crate::cp::cp_map;
    use crate::ir::collect_statements;
    use crate::layout::build_layouts;
    use dhpf_hpf::{analyze, parse};

    const SHIFT: &str = "
program shift
real a(100), b(100)
!HPF$ processors p(4)
!HPF$ template t(100)
!HPF$ align a(i) with t(i)
!HPF$ align b(i) with t(i)
!HPF$ distribute t(block) onto p
do i = 1, 99
  a(i) = b(i+1)
enddo
end
";

    #[test]
    fn shift_splits_off_last_local_iteration() {
        let prog = parse(SHIFT).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let layouts = build_layouts(&a);
        let stmts = collect_statements(&a);
        let cp = cp_map(&stmts[0], &layouts);
        let mine = cp.apply(&myid_set(1));
        let rref = CommRef {
            cp_map: cp.clone(),
            ref_map: stmts[0].reads[0].ref_map(&stmts[0].ctx),
        };
        let wref = CommRef {
            cp_map: cp.clone(),
            ref_map: stmts[0].lhs.as_ref().unwrap().ref_map(&stmts[0].ctx),
        };
        let s = split_sets(&mine, &[(&rref, &layouts["b"])], &[(&wref, &layouts["a"])]).unwrap();
        // m=0 computes i in [1,25]; i=25 reads b[26] (non-local, read-only);
        // writes a(i) always local.
        let m0 = [("m1", 0i64)];
        for i in 1..=24i64 {
            assert!(s.local.contains(&[i], &m0), "i = {i} should be local");
        }
        assert!(!s.local.contains(&[25], &m0));
        assert!(s.nl_ro.contains(&[25], &m0));
        assert!(!s.nl_ro.contains(&[24], &m0));
        assert!(s.nl_wo.as_relation().is_empty());
        assert!(s.nl_rw.as_relation().is_empty());
        // Last processor m=3 computes i in [76,99], all local.
        let m3 = [("m1", 3i64)];
        assert!(s.local.contains(&[99], &m3));
        assert!(!s.nl_ro.contains(&[99], &m3));
    }

    #[test]
    fn sections_partition_the_iteration_set() {
        let prog = parse(SHIFT).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let layouts = build_layouts(&a);
        let stmts = collect_statements(&a);
        let cp = cp_map(&stmts[0], &layouts);
        let mine = cp.apply(&myid_set(1));
        let rref = CommRef {
            cp_map: cp.clone(),
            ref_map: stmts[0].reads[0].ref_map(&stmts[0].ctx),
        };
        let s = split_sets(&mine, &[(&rref, &layouts["b"])], &[]).unwrap();
        // local ∪ nl_ro ∪ nl_wo ∪ nl_rw == cpIterSet, pairwise disjoint.
        let u = s.local.union(&s.nl_ro).union(&s.nl_wo).union(&s.nl_rw);
        assert!(u.equal(&mine));
        assert!(s.local.intersection(&s.nl_ro).as_relation().is_empty());
        assert!(s.local.intersection(&s.nl_rw).as_relation().is_empty());
        assert!(s.nl_ro.intersection(&s.nl_wo).as_relation().is_empty());
    }
}
