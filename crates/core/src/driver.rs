//! End-to-end compilation driver with phase instrumentation (Table 1).

use crate::layout::build_layouts_in;
use crate::phases::PhaseTimers;
use crate::spmd::{build_spmd, CompileError, SpmdOptions, SpmdProgram, SpmdStats};
use dhpf_hpf::{analyze, parse, Analysis};
use dhpf_obs::Collector;
use dhpf_omega::{CacheStats, Context};

/// Options controlling compilation.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// SPMD synthesis options.
    pub spmd: SpmdOptions,
    /// Share one Omega [`Context`] (hash-consing + memoization) across the
    /// whole compilation. Disabling it reproduces the uncached behaviour
    /// (the `--no-cache` ablation of the benchmarks).
    pub use_cache: bool,
    /// Structured trace collector. When set, the compilation records a
    /// span tree (one `"compile"` root, one span per phase) with per-span
    /// Omega set-operation samples; export it with `dhpf_obs::export`.
    /// Tracing observes the compilation without perturbing it: the
    /// produced [`SpmdProgram`] is identical with or without a collector.
    pub trace: Option<Collector>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            spmd: SpmdOptions::default(),
            use_cache: true,
            trace: None,
        }
    }
}

/// The result of compiling an HPF program.
#[derive(Debug)]
pub struct Compiled {
    /// The executable SPMD program for the main unit.
    pub program: SpmdProgram,
    /// The semantic analysis (needed by the serial reference interpreter).
    pub analysis: Analysis,
    /// Phase timing and synthesis statistics.
    pub report: CompileReport,
}

/// Compilation statistics: timing rows and synthesis counts.
#[derive(Debug)]
pub struct CompileReport {
    /// Phase timers (rows of Table 1).
    pub timers: PhaseTimers,
    /// Synthesis statistics.
    pub stats: SpmdStats,
    /// Number of program units compiled.
    pub units: usize,
    /// Omega-context cache counters for the whole compilation (all zeros
    /// when [`CompileOptions::use_cache`] is false).
    pub cache: CacheStats,
}

/// Compiles HPF source text into an SPMD program.
///
/// Multi-unit files are supported: every unit is analyzed (the paper's
/// "interprocedural analysis" phase collects layouts across units), and the
/// main program unit is synthesized.
///
/// # Errors
///
/// Returns [`CompileError`] for frontend, semantic, or synthesis failures.
pub fn compile(src: &str, opts: &CompileOptions) -> Result<Compiled, CompileError> {
    let mut timers = PhaseTimers::new();
    // One "compile" root span per compilation; phase spans opened by the
    // timers and the Omega op samples recorded by the context both nest
    // under it (ops land on whichever phase span is innermost when they
    // run, giving the per-phase set-op breakdown).
    let root = opts
        .trace
        .as_ref()
        .map(|c| (c.clone(), c.begin("compile", "compile")));
    if let Some(c) = &opts.trace {
        timers.attach_collector(c.clone());
    }
    // One shared hash-consing/memoization arena per compilation: attached
    // to the layout relations, it propagates to every derived set.
    let ctx = if opts.use_cache {
        Context::new()
    } else {
        Context::disabled()
    };
    ctx.set_collector(opts.trace.clone());
    let prog = timers.time("parsing", |_| parse(src))?;
    if prog.units.is_empty() {
        return Err(CompileError::Unsupported("no program units".to_string()));
    }
    // "Interprocedural analysis": analyze every unit; directives of the
    // main unit drive synthesis (dHPF propagates layouts across calls).
    let analyses = timers.time("interprocedural analysis", |_| {
        prog.units
            .iter()
            .map(analyze)
            .collect::<Result<Vec<_>, _>>()
    })?;
    let units = analyses.len();
    let main_idx = prog.units.iter().position(|u| u.is_program).unwrap_or(0);
    let mut compiled: Option<(SpmdProgram, SpmdStats)> = None;
    timers.time("module compilation", |t| -> Result<(), CompileError> {
        // Every unit goes through layout construction and (for units with
        // executable bodies) SPMD synthesis; only the main unit's program is
        // retained, matching how the paper reports whole-module times.
        for (k, analysis) in analyses.iter().enumerate() {
            let layouts = t.time("layout construction", |_| {
                build_layouts_in(analysis, Some(&ctx))
            });
            let result = build_spmd(analysis, &layouts, &opts.spmd, Some(t));
            match result {
                Ok(ps) => {
                    if k == main_idx {
                        compiled = Some(ps);
                    }
                }
                Err(e) if k == main_idx => return Err(e),
                Err(_) => {} // non-main unit with unsupported constructs
            }
        }
        Ok(())
    })?;
    let (program, stats) = compiled.ok_or_else(|| {
        CompileError::Unsupported("no compilable main unit in the program".to_string())
    })?;
    timers.time("opt of generated code", |_| {
        // Generated code is simplified during synthesis; this phase is kept
        // as a named row for Table 1 parity.
    });
    timers.finish();
    let cache = ctx.stats();
    timers.set_cache_stats(cache.clone());
    if let Some((c, id)) = root {
        c.counter_on(id, "units", units as i64);
        c.counter_on(id, "comm events", stats.comm_events as i64);
        c.end(id);
    }
    ctx.set_collector(None);
    Ok(Compiled {
        program,
        analysis: analyses
            .into_iter()
            .nth(main_idx)
            .ok_or_else(|| CompileError::Unsupported("main unit analysis missing".to_string()))?,
        report: CompileReport {
            timers,
            stats,
            units,
            cache,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const JACOBI: &str = "
program jacobi
real a(64,64), b(64,64)
integer iter
!HPF$ processors p(4)
!HPF$ template t(64,64)
!HPF$ align a(i,j) with t(i,j)
!HPF$ align b(i,j) with t(i,j)
!HPF$ distribute t(block,*) onto p
do iter = 1, 3
  do i = 2, 63
    do j = 2, 63
      a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
    enddo
  enddo
  do i = 2, 63
    do j = 2, 63
      b(i,j) = a(i,j)
    enddo
  enddo
enddo
end
";

    #[test]
    fn compiles_jacobi() {
        let c = compile(JACOBI, &CompileOptions::default()).unwrap();
        // Time loop is serial; two nests inside.
        assert_eq!(c.program.items.len(), 1);
        match &c.program.items[0] {
            crate::spmd::SpmdItem::SerialLoop { var, body, .. } => {
                assert_eq!(var, "iter");
                assert_eq!(body.len(), 2);
            }
            other => panic!("expected serial time loop, got {other:?}"),
        }
        // One communication event: the stencil read of b (a's copy-back
        // nest reads a, which is perfectly aligned: no event).
        assert_eq!(c.report.stats.comm_events, 1);
        assert!(c.report.timers.total().as_nanos() > 0);
    }

    #[test]
    fn phase_rows_present() {
        let c = compile(JACOBI, &CompileOptions::default()).unwrap();
        let rows = c.report.timers.rows();
        let names: Vec<&str> = rows.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(names.contains(&"module compilation"));
        assert!(names.contains(&"communication generation"));
        assert!(names.contains(&"mult mappings code generation"));
    }
}
