//! End-to-end compilation driver with phase instrumentation (Table 1),
//! in serial or parallel (`CompileOptions::threads`) form.
//!
//! The parallel pipeline keeps the serial path byte-identical at
//! `threads <= 1` and is gated by bit-identical output above it: program
//! units are analyzed concurrently, interprocedural layout collection runs
//! first (serially, sharing the Omega [`Context`]), and then a dependency
//! DAG of per-nest synthesis tasks — with one assembly task per unit
//! depending on that unit's nests — executes on a scoped worker pool.
//! Communication-event ids are renumbered during assembly to reproduce the
//! serial single-counter numbering exactly (see `spmd::assemble_spmd`).

use crate::layout::build_layouts_in;
use crate::phases::PhaseTimers;
use crate::spmd::{
    assemble_spmd, build_nest_standalone, build_spmd, plan_items, CompileError, NestOut,
    SpmdOptions, SpmdProgram, SpmdStats, UnitPlan,
};
use dhpf_hpf::{analyze, parse, Analysis};
use dhpf_obs::Collector;
use dhpf_omega::{
    Budget, CacheStats, CancelToken, Context, ErrorCode, GovernorStats, InjectPlan, RequestGovernor,
};
use std::sync::Mutex;
use std::time::Instant;

/// Options controlling compilation.
///
/// Construct with the fluent builder — the struct is `#[non_exhaustive]`,
/// so new knobs can be added without breaking callers:
///
/// ```
/// use dhpf_core::CompileOptions;
/// let opts = CompileOptions::new().threads(4).cache(true);
/// ```
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct CompileOptions {
    /// SPMD synthesis options.
    pub spmd: SpmdOptions,
    /// Share one Omega [`Context`] (hash-consing + memoization) across the
    /// whole compilation. Disabling it reproduces the uncached behaviour
    /// (the `--no-cache` ablation of the benchmarks).
    pub use_cache: bool,
    /// Structured trace collector. When set, the compilation records a
    /// span tree (one `"compile"` root, one span per phase) with per-span
    /// Omega set-operation samples; export it with `dhpf_obs::export`.
    /// Tracing observes the compilation without perturbing it: the
    /// produced [`SpmdProgram`] is identical with or without a collector.
    pub trace: Option<Collector>,
    /// Worker threads for the parallel pipeline. `1` (the default) runs
    /// the serial driver unchanged; larger values analyze units and
    /// synthesize independent loop nests concurrently on a scoped pool.
    /// The compiled program is bit-identical at every thread count.
    pub threads: usize,
    /// Resource budget for the compilation: wall-clock deadline, Omega-op
    /// fuel, and set-algebra piece caps. When a deadline or fuel limit
    /// trips mid-compile, the driver *degrades* per nest (conservative
    /// communication, replicated nests — see
    /// [`SpmdStats::degradations`](crate::SpmdStats)) instead of hanging
    /// or crashing; only constructs with no sound fallback surface
    /// [`CompileError::Budget`]. The default is unlimited.
    pub budget: Budget,
    /// Cooperative cancellation token. Once
    /// [cancelled](CancelToken::cancel), the compilation aborts at the
    /// next checkpoint with [`CompileError::Cancelled`] — cancellation is
    /// never degraded around.
    pub cancel: Option<CancelToken>,
    /// Deterministic fault-injection plan (test/chaos harnesses only):
    /// forces errors, panics, or budget exhaustion at named sites.
    pub inject: Option<InjectPlan>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            spmd: SpmdOptions::default(),
            use_cache: true,
            trace: None,
            threads: 1,
            budget: Budget::default(),
            cancel: None,
            inject: None,
        }
    }
}

impl CompileOptions {
    /// Default options: serial, cached, untraced, loop splitting on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Enables or disables the shared Omega memoization context.
    pub fn cache(mut self, on: bool) -> Self {
        self.use_cache = on;
        self
    }

    /// Attaches a structured trace collector.
    pub fn trace(mut self, c: Collector) -> Self {
        self.trace = Some(c);
        self
    }

    /// Enables or disables Figure-4 loop splitting.
    pub fn loop_splitting(mut self, on: bool) -> Self {
        self.spmd.loop_splitting = on;
        self
    }

    /// Sets the full resource [`Budget`].
    pub fn budget(mut self, b: Budget) -> Self {
        self.budget = b;
        self
    }

    /// Sets a wall-clock deadline in milliseconds (shorthand for
    /// `budget(Budget::new().deadline_ms(ms))` composed with the current
    /// budget).
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.budget.deadline_ms = Some(ms);
        self
    }

    /// Caps the number of governed Omega operations.
    pub fn op_fuel(mut self, ops: u64) -> Self {
        self.budget.op_fuel = Some(ops);
        self
    }

    /// Attaches a cooperative cancellation token.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Arms a deterministic fault-injection plan.
    pub fn inject(mut self, plan: InjectPlan) -> Self {
        self.inject = Some(plan);
        self
    }
}

/// The result of compiling an HPF program.
#[derive(Debug)]
pub struct Compiled {
    /// The executable SPMD program for the main unit.
    pub program: SpmdProgram,
    /// The semantic analysis (needed by the serial reference interpreter).
    pub analysis: Analysis,
    /// Phase timing and synthesis statistics.
    pub report: CompileReport,
}

/// Compilation statistics: timing rows and synthesis counts.
#[derive(Debug)]
pub struct CompileReport {
    /// Phase timers (rows of Table 1).
    pub timers: PhaseTimers,
    /// Synthesis statistics.
    pub stats: SpmdStats,
    /// Number of program units compiled.
    pub units: usize,
    /// Omega-context cache counters for the whole compilation (all zeros
    /// when [`CompileOptions::use_cache`] is false).
    pub cache: CacheStats,
    /// Governor counters: ops charged against the budget, ops answered
    /// conservatively after a trip, and the trip reason (if any). With
    /// [`compile_with`] these accumulate across calls, like `cache`.
    pub governor: GovernorStats,
    /// How many times the armed fault-injection plan fired (0 without a
    /// plan). `degradations()` is non-empty exactly when injected or
    /// organic failures forced a fallback.
    pub injected_faults: u64,
}

impl CompileReport {
    /// The graceful degradations taken during synthesis, in serial nest
    /// order. Empty means every nest compiled exactly; entries describe
    /// which conservative construct replaced what, and why.
    pub fn degradations(&self) -> &[crate::spmd::Degradation] {
        &self.stats.degradations
    }
}

/// Artifacts a [`CompileRequest`] wants back beyond the report: each flag
/// adds an optional field to the [`CompileResponse`], and nothing is
/// rendered unless asked for (a serving tier shouldn't pay to pretty-print
/// code the client will discard).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct Artifacts {
    /// Render the compiled SPMD program as a code listing
    /// ([`CompileResponse::code`]).
    pub code: bool,
    /// Include per-phase timing rows ([`CompileResponse::timing`]).
    pub timing: bool,
    /// Capture a span tree for this request and return it as single-line
    /// JSON ([`CompileResponse::trace`]). When [`CompileOptions::trace`]
    /// already carries a collector it is reused (and will contain
    /// whatever else the caller recorded into it); otherwise a fresh
    /// per-request collector is attached for the duration of the
    /// compilation.
    pub trace: bool,
}

/// One compilation request: the unit of work of the `dhpf-serve` protocol
/// and the value [`compile`] / [`compile_with`] are thin wrappers over.
///
/// ```
/// use dhpf_core::{process_request, CompileRequest};
/// use dhpf_omega::Context;
///
/// let ctx = Context::new();
/// let req = CompileRequest::new("program p\nreal a(8)\na(1) = 0.0\nend\n").code(true);
/// let resp = process_request(&ctx, &req);
/// assert!(resp.error.is_none());
/// assert!(resp.code.is_some());
/// ```
#[derive(Clone, Debug, Default)]
#[non_exhaustive]
pub struct CompileRequest {
    /// The HPF source text to compile.
    pub source: String,
    /// Compilation options (threads, budget, cancellation, tracing, …).
    pub options: CompileOptions,
    /// Which optional artifacts to materialize in the response.
    pub artifacts: Artifacts,
}

impl CompileRequest {
    /// A request with default options and no optional artifacts.
    pub fn new(source: impl Into<String>) -> Self {
        CompileRequest {
            source: source.into(),
            options: CompileOptions::default(),
            artifacts: Artifacts::default(),
        }
    }

    /// Replaces the compilation options.
    #[must_use]
    pub fn options(mut self, opts: CompileOptions) -> Self {
        self.options = opts;
        self
    }

    /// Requests (or drops) the rendered code listing.
    #[must_use]
    pub fn code(mut self, on: bool) -> Self {
        self.artifacts.code = on;
        self
    }

    /// Requests (or drops) the per-phase timing rows.
    #[must_use]
    pub fn timing(mut self, on: bool) -> Self {
        self.artifacts.timing = on;
        self
    }

    /// Requests (or drops) the per-request span tree.
    #[must_use]
    pub fn trace(mut self, on: bool) -> Self {
        self.artifacts.trace = on;
        self
    }
}

/// A typed, wire-serializable error: the stable [`ErrorCode`] plus the
/// human-readable message. What [`CompileResponse`] carries instead of a
/// `CompileError`, and what `dhpf-serve` puts on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// The stable machine-readable code (assert on this, not `message`).
    pub code: ErrorCode,
    /// Human-readable detail for logs and interactive clients.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// The flattened, wire-shaped result of one [`CompileRequest`]: everything
/// a serving client needs, with no internal compiler types that cannot
/// round-trip a protocol boundary. Produced by [`process_request`].
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct CompileResponse {
    /// `None` on success; the typed failure otherwise. All count fields
    /// are zero on error.
    pub error: Option<WireError>,
    /// Program units compiled.
    pub units: usize,
    /// Communication events synthesized for the main unit.
    pub comm_events: usize,
    /// Graceful degradations taken, in serial nest order (empty = exact).
    pub degradations: Vec<crate::spmd::Degradation>,
    /// *Cumulative* cache counters of the serving context after this
    /// request (a long-lived context accumulates across requests).
    pub cache: CacheStats,
    /// Memo-cache hits gained during this request alone — nonzero on a
    /// warm repeat even when the cumulative totals dwarf it.
    pub cache_hits_delta: u64,
    /// Governor counters observed by this request (zeros when ungoverned
    /// or failed before synthesis).
    pub governor: GovernorStats,
    /// Wall-clock time spent compiling, in milliseconds.
    pub compile_ms: u64,
    /// Rendered SPMD code listing ([`Artifacts::code`]).
    pub code: Option<String>,
    /// Per-phase rows as `(name, milliseconds)` ([`Artifacts::timing`]).
    pub timing: Option<Vec<(String, f64)>>,
    /// Single-line span-tree JSON ([`Artifacts::trace`]): the full
    /// structured trace of this compilation, schema-checked by
    /// `dhpf_obs::export::validate_span_tree`. Present on error responses
    /// too — a trace of a failed compilation is exactly what a latency
    /// investigation wants.
    pub trace: Option<String>,
}

/// Compiles one [`CompileRequest`] on a shared context, returning the full
/// [`Compiled`] value (program + analysis + report). This is the typed
/// core the thin wrappers delegate to; use [`process_request`] for the
/// wire-shaped response.
///
/// # Errors
///
/// Returns [`CompileError`] for frontend, semantic, or synthesis failures.
pub fn compile_request(ctx: &Context, req: &CompileRequest) -> Result<Compiled, CompileError> {
    compile_impl(ctx, &req.source, &req.options)
}

/// Runs one request end to end and flattens the outcome into a
/// [`CompileResponse`]: errors become [`WireError`]s (never `Err`), cache
/// deltas are measured around the compilation, and optional artifacts are
/// rendered only when requested.
pub fn process_request(ctx: &Context, req: &CompileRequest) -> CompileResponse {
    let before_hits = ctx.stats().total_hits();
    let t0 = Instant::now();
    // Trace capture: reuse the caller's collector when one is attached
    // (coalesced followers then share the leader's spans); otherwise
    // attach a fresh per-request collector for the duration of the call.
    let mut collector = None;
    let result = if req.artifacts.trace {
        match &req.options.trace {
            Some(c) => {
                collector = Some(c.clone());
                compile_request(ctx, req)
            }
            None => {
                let c = Collector::new();
                collector = Some(c.clone());
                let mut opts = req.options.clone();
                opts.trace = Some(c);
                compile_impl(ctx, &req.source, &opts)
            }
        }
    } else {
        compile_request(ctx, req)
    };
    let compile_ms = u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX);
    let cache = ctx.stats();
    let cache_hits_delta = cache.total_hits().saturating_sub(before_hits);
    let trace = collector.map(|c| dhpf_obs::export::span_tree_json(&c.trace()));
    match result {
        Ok(c) => CompileResponse {
            error: None,
            units: c.report.units,
            comm_events: c.report.stats.comm_events,
            degradations: c.report.stats.degradations.clone(),
            cache,
            cache_hits_delta,
            governor: c.report.governor,
            compile_ms,
            code: req
                .artifacts
                .code
                .then(|| crate::render::render_program(&c.program)),
            timing: req.artifacts.timing.then(|| {
                c.report
                    .timers
                    .rows()
                    .into_iter()
                    .map(|(name, d, _)| (name, d.as_secs_f64() * 1e3))
                    .collect()
            }),
            trace,
        },
        Err(e) => CompileResponse {
            error: Some(WireError {
                code: e.code(),
                message: e.to_string(),
            }),
            units: 0,
            comm_events: 0,
            degradations: Vec::new(),
            cache,
            cache_hits_delta,
            governor: GovernorStats::default(),
            compile_ms,
            code: None,
            timing: None,
            trace,
        },
    }
}

/// Compiles HPF source text into an SPMD program.
///
/// Multi-unit files are supported: every unit is analyzed (the paper's
/// "interprocedural analysis" phase collects layouts across units), and the
/// main program unit is synthesized.
///
/// # Errors
///
/// Returns [`CompileError`] for frontend, semantic, or synthesis failures.
pub fn compile(src: &str, opts: &CompileOptions) -> Result<Compiled, CompileError> {
    // One shared hash-consing/memoization arena per compilation: attached
    // to the layout relations, it propagates to every derived set.
    let ctx = if opts.use_cache {
        Context::new()
    } else {
        Context::disabled()
    };
    compile_request(&ctx, &CompileRequest::new(src).options(opts.clone()))
}

/// Compiles with a caller-provided Omega [`Context`], so one long-lived
/// sharded context (and its warm memo tables) can serve many compilations
/// — e.g. a compile server handling concurrent requests. The context's own
/// enabled/disabled state governs caching; [`CompileOptions::use_cache`]
/// is ignored on this path. Cache counters accumulate across calls:
/// [`CompileReport::cache`] reports the context's *cumulative* totals.
///
/// # Errors
///
/// Returns [`CompileError`] for frontend, semantic, or synthesis failures.
pub fn compile_with(
    ctx: &Context,
    src: &str,
    opts: &CompileOptions,
) -> Result<Compiled, CompileError> {
    compile_request(ctx, &CompileRequest::new(src).options(opts.clone()))
}

fn compile_impl(ctx: &Context, src: &str, opts: &CompileOptions) -> Result<Compiled, CompileError> {
    ctx.set_collector(opts.trace.clone());
    // Budget and cancellation are enforced by a *request-scoped* governor
    // armed on this thread (and re-armed on every worker thread), not by
    // arming the shared context: a long-lived serving context compiles
    // many concurrent requests, and a context-global deadline would let
    // one slow client trip every in-flight compilation. Fault injection
    // stays context-global — chaos harnesses own their context.
    let governed =
        opts.budget != Budget::default() || opts.cancel.is_some() || opts.inject.is_some();
    let scoped = if opts.budget != Budget::default() || opts.cancel.is_some() {
        Some(RequestGovernor::new(&opts.budget, opts.cancel.clone()))
    } else {
        None
    };
    let _armed = scoped.as_ref().map(RequestGovernor::arm_on_thread);
    if opts.inject.is_some() {
        ctx.set_inject(opts.inject.clone());
    }
    // The isolation boundary: a panic anywhere in the pipeline (organic or
    // injected) becomes a typed `CompileError::Internal` instead of
    // unwinding into the caller. Parallel nest tasks are additionally
    // caught per-task inside `run_dag`, so one bad nest cannot take down
    // siblings; this outer catch covers the serial path and the
    // orchestration code itself.
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        compile_inner(ctx, src, opts)
    }));
    // Read the governed abort state while the scoped governor is still
    // armed: a failure that unwound while cancellation was requested or
    // the budget was tripped is downstream of that abort, not an
    // independent compiler bug. Some infallible set-algebra entry points
    // (`domain`, `then`, projection) surface a governed abort by panicking
    // — the contained panic is translated back to its typed error here.
    let aborted = if governed {
        if opts
            .cancel
            .as_ref()
            .is_some_and(dhpf_omega::CancelToken::is_cancelled)
        {
            Some(CompileError::Cancelled)
        } else {
            ctx.governor_stats().tripped.map(CompileError::Budget)
        }
    } else {
        None
    };
    // Disarm: the scoped governor dies with its guard; injection is the
    // one context-global knob this function arms.
    if opts.inject.is_some() {
        ctx.set_inject(None);
    }
    ctx.set_collector(None);
    match out {
        Ok(Err(CompileError::Internal(m))) => Err(match aborted {
            Some(e) => e,
            None => CompileError::Internal(m),
        }),
        Ok(r) => r,
        Err(payload) => Err(match aborted {
            Some(e) => e,
            None => CompileError::Internal(crate::parallel::panic_message(payload)),
        }),
    }
}

fn compile_inner(
    ctx: &Context,
    src: &str,
    opts: &CompileOptions,
) -> Result<Compiled, CompileError> {
    let mut timers = PhaseTimers::new();
    // One "compile" root span per compilation; phase spans opened by the
    // timers and the Omega op samples recorded by the context both nest
    // under it (ops land on whichever phase span is innermost when they
    // run, giving the per-phase set-op breakdown).
    let root = opts
        .trace
        .as_ref()
        .map(|c| (c.clone(), c.begin("compile", "compile")));
    if let Some(c) = &opts.trace {
        timers.attach_collector(c.clone());
    }
    let threads = opts.threads.max(1);
    // Cancellation checkpoints between phases keep aborts prompt even when
    // the set operations in flight are the infallible ones; the per-nest
    // checkpoint in synthesis covers the long tail.
    ctx.check_cancelled()?;
    let prog = timers.time("parsing", |_| parse(src))?;
    if prog.units.is_empty() {
        return Err(CompileError::Unsupported("no program units".to_string()));
    }
    // "Interprocedural analysis": analyze every unit; directives of the
    // main unit drive synthesis (dHPF propagates layouts across calls).
    // Units are independent here, so the parallel path fans them out.
    let analyses = timers.time("interprocedural analysis", |_| {
        if threads <= 1 {
            prog.units
                .iter()
                .map(analyze)
                .collect::<Result<Vec<_>, _>>()
        } else {
            crate::parallel::ordered_map(threads, prog.units.len(), |i| analyze(&prog.units[i]))
                .into_iter()
                .collect::<Result<Vec<_>, _>>()
        }
    })?;
    let units = analyses.len();
    ctx.check_cancelled()?;
    let main_idx = prog.units.iter().position(|u| u.is_program).unwrap_or(0);
    let mut compiled: Option<(SpmdProgram, SpmdStats)> = None;
    timers.time("module compilation", |t| -> Result<(), CompileError> {
        if threads <= 1 {
            // Every unit goes through layout construction and (for units
            // with executable bodies) SPMD synthesis; only the main unit's
            // program is retained, matching how the paper reports
            // whole-module times.
            for (k, analysis) in analyses.iter().enumerate() {
                let layouts = t.time("layout construction", |_| {
                    build_layouts_in(analysis, Some(ctx))
                });
                let result = build_spmd(analysis, &layouts, &opts.spmd, Some(t));
                match result {
                    Ok(ps) => {
                        if k == main_idx {
                            compiled = Some(ps);
                        }
                    }
                    Err(e) if k == main_idx => return Err(e),
                    Err(_) => {} // non-main unit with unsupported constructs
                }
            }
            Ok(())
        } else {
            compile_units_parallel(ctx, &analyses, main_idx, opts, threads, t, &mut compiled)
        }
    })?;
    let (program, stats) = compiled.ok_or_else(|| {
        CompileError::Unsupported("no compilable main unit in the program".to_string())
    })?;
    timers.time("opt of generated code", |_| {
        // Generated code is simplified during synthesis; this phase is kept
        // as a named row for Table 1 parity.
    });
    timers.finish();
    let cache = ctx.stats();
    timers.set_cache_stats(cache.clone());
    // Read while still armed: `compile_impl` disarms after we return.
    let governor = ctx.governor_stats();
    let injected_faults = ctx.inject_fired();
    if let Some((c, id)) = root {
        c.counter_on(id, "units", units as i64);
        c.counter_on(id, "comm events", stats.comm_events as i64);
        c.counter_on(id, "degradations", stats.degradations.len() as i64);
        c.end(id);
    }
    Ok(Compiled {
        program,
        analysis: analyses
            .into_iter()
            .nth(main_idx)
            .ok_or_else(|| CompileError::Unsupported("main unit analysis missing".to_string()))?,
        report: CompileReport {
            timers,
            stats,
            units,
            cache,
            governor,
            injected_faults,
        },
    })
}

/// The parallel "module compilation" phase: serial layout collection and
/// nest planning per unit (sharing the open phase structure and `ctx`),
/// then a task DAG — nest-synthesis tasks plus one assembly task per unit,
/// each assembly depending on its unit's nests — on a scoped pool. Results
/// land in per-task slots; per-nest timers are merged into `t` in serial
/// traversal order afterwards, so phase rows reconcile deterministically.
#[allow(clippy::too_many_arguments)]
fn compile_units_parallel(
    ctx: &Context,
    analyses: &[Analysis],
    main_idx: usize,
    opts: &CompileOptions,
    threads: usize,
    t: &mut PhaseTimers,
    compiled: &mut Option<(SpmdProgram, SpmdStats)>,
) -> Result<(), CompileError> {
    // Interprocedural layout collection first: serial, in unit order.
    let mut unit_layouts = Vec::with_capacity(analyses.len());
    let mut unit_plans: Vec<Result<UnitPlan, CompileError>> = Vec::with_capacity(analyses.len());
    for (k, analysis) in analyses.iter().enumerate() {
        let layouts = t.time("layout construction", |_| {
            build_layouts_in(analysis, Some(ctx))
        });
        let plan = plan_items(analysis, &layouts, &analysis.unit.body);
        if k == main_idx {
            if let Err(e) = &plan {
                return Err(e.clone());
            }
        }
        unit_layouts.push(layouts);
        unit_plans.push(plan);
    }
    // Task ids: nests first (global, in (unit, nest) order), then one
    // assembly task per plannable unit.
    let mut nest_tasks: Vec<(usize, usize)> = Vec::new(); // (unit, nest)
    let mut unit_nest_tasks: Vec<Vec<usize>> = vec![Vec::new(); analyses.len()];
    for (k, plan) in unit_plans.iter().enumerate() {
        if let Ok(p) = plan {
            for j in 0..p.nests.len() {
                unit_nest_tasks[k].push(nest_tasks.len());
                nest_tasks.push((k, j));
            }
        }
    }
    let planned: Vec<usize> = unit_plans
        .iter()
        .enumerate()
        .filter(|(_, p)| p.is_ok())
        .map(|(k, _)| k)
        .collect();
    let n_nests = nest_tasks.len();
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n_nests];
    for &k in &planned {
        deps.push(unit_nest_tasks[k].clone());
    }
    // Stitch worker spans under the open "module compilation" phase span.
    let anchor = t.collector().cloned().zip(t.current_span());
    // Capture the caller's request governor so each pool task re-arms it:
    // worker threads then spend from the same fuel pool and observe the
    // same deadline/cancellation as the submitting thread.
    let governor = RequestGovernor::current();
    type UnitResult = Result<(SpmdProgram, SpmdStats), CompileError>;
    let nest_slots: Vec<Mutex<Option<Result<NestOut, CompileError>>>> =
        (0..n_nests).map(|_| Mutex::new(None)).collect();
    let unit_slots: Vec<Mutex<Option<UnitResult>>> =
        planned.iter().map(|_| Mutex::new(None)).collect();
    let unit_timers: Vec<Mutex<Vec<PhaseTimers>>> =
        planned.iter().map(|_| Mutex::new(Vec::new())).collect();
    let panics = crate::parallel::run_dag(threads, &deps, |task| {
        let _gov = governor.as_ref().map(RequestGovernor::arm_on_thread);
        if task < n_nests {
            let (unit, nest) = nest_tasks[task];
            let plan = unit_plans[unit].as_ref().expect("nest tasks are planned");
            let out = build_nest_standalone(
                &analyses[unit],
                &unit_layouts[unit],
                &opts.spmd,
                &plan.nests[nest],
                &format!("nest {unit}.{nest}"),
                anchor.clone(),
            );
            *nest_slots[task].lock().unwrap() = Some(out);
        } else {
            let pi = task - n_nests;
            let k = planned[pi];
            let plan = unit_plans[k].as_ref().expect("assembly is planned");
            let mut outs: Vec<NestOut> = Vec::new();
            let mut err: Option<CompileError> = None;
            let mut worker_timers: Vec<PhaseTimers> = Vec::new();
            for &ti in &unit_nest_tasks[k] {
                let slot = nest_slots[ti].lock().unwrap().take();
                match slot {
                    Some(Ok(out)) if err.is_none() => {
                        worker_timers.push(out.timers.clone());
                        outs.push(out);
                    }
                    Some(Ok(_)) => {}
                    // Lowest nest index wins: the error the serial pass
                    // would have hit first.
                    Some(Err(e)) if err.is_none() => err = Some(e),
                    Some(Err(_)) => {}
                    // The nest task panicked: `run_dag` contained it and
                    // released us anyway, leaving the slot empty. The
                    // placeholder is replaced with the captured panic
                    // message during reconciliation.
                    None if err.is_none() => {
                        err = Some(CompileError::Internal(
                            "nest synthesis panicked".to_string(),
                        ));
                    }
                    None => {}
                }
            }
            *unit_timers[pi].lock().unwrap() = worker_timers;
            let res = match err {
                Some(e) => Err(e),
                None => assemble_spmd(&analyses[k], &unit_layouts[k], &plan.skel, outs),
            };
            *unit_slots[pi].lock().unwrap() = Some(res);
        }
    });
    // Deterministic reconciliation: merge nest timers and pick results in
    // serial unit order. Panicking tasks left their slots empty; their
    // captured messages become typed `Internal` errors here (lowest nest
    // index wins, matching the serial pass's first-failure semantics).
    for (pi, &k) in planned.iter().enumerate() {
        for wt in unit_timers[pi].lock().unwrap().iter() {
            t.merge(wt);
        }
        let res = unit_slots[pi].lock().unwrap().take();
        let res = match res {
            Some(r) => r,
            // The assembly task itself panicked.
            None => Err(CompileError::Internal(
                panics
                    .get(n_nests + pi)
                    .and_then(Clone::clone)
                    .unwrap_or_else(|| "unit assembly panicked".to_string()),
            )),
        };
        // Substitute the precise per-nest panic message for the assembly
        // task's placeholder.
        let res = match res {
            Err(CompileError::Internal(placeholder)) => Err(CompileError::Internal(
                unit_nest_tasks[k]
                    .iter()
                    .find_map(|&ti| panics[ti].clone())
                    .unwrap_or(placeholder),
            )),
            r => r,
        };
        match res {
            Ok(ps) => {
                if k == main_idx {
                    *compiled = Some(ps);
                }
            }
            Err(e) if k == main_idx => return Err(e),
            Err(_) => {} // non-main unit with unsupported constructs
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const JACOBI: &str = "
program jacobi
real a(64,64), b(64,64)
integer iter
!HPF$ processors p(4)
!HPF$ template t(64,64)
!HPF$ align a(i,j) with t(i,j)
!HPF$ align b(i,j) with t(i,j)
!HPF$ distribute t(block,*) onto p
do iter = 1, 3
  do i = 2, 63
    do j = 2, 63
      a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
    enddo
  enddo
  do i = 2, 63
    do j = 2, 63
      b(i,j) = a(i,j)
    enddo
  enddo
enddo
end
";

    #[test]
    fn compiles_jacobi() {
        let c = compile(JACOBI, &CompileOptions::default()).unwrap();
        // Time loop is serial; two nests inside.
        assert_eq!(c.program.items.len(), 1);
        match &c.program.items[0] {
            crate::spmd::SpmdItem::SerialLoop { var, body, .. } => {
                assert_eq!(var, "iter");
                assert_eq!(body.len(), 2);
            }
            other => panic!("expected serial time loop, got {other:?}"),
        }
        // One communication event: the stencil read of b (a's copy-back
        // nest reads a, which is perfectly aligned: no event).
        assert_eq!(c.report.stats.comm_events, 1);
        assert!(c.report.timers.total().as_nanos() > 0);
    }

    #[test]
    fn phase_rows_present() {
        let c = compile(JACOBI, &CompileOptions::default()).unwrap();
        let rows = c.report.timers.rows();
        let names: Vec<&str> = rows.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(names.contains(&"module compilation"));
        assert!(names.contains(&"communication generation"));
        assert!(names.contains(&"mult mappings code generation"));
    }

    #[test]
    fn parallel_compile_matches_serial() {
        let serial = compile(JACOBI, &CompileOptions::new()).unwrap();
        let parallel = compile(JACOBI, &CompileOptions::new().threads(4)).unwrap();
        assert_eq!(
            format!("{:?}", serial.program),
            format!("{:?}", parallel.program)
        );
        assert_eq!(serial.report.stats, parallel.report.stats);
        // Phase rows reconcile: same names, same structure.
        for (name, _, _) in serial.report.timers.rows() {
            assert!(
                parallel.report.timers.phase(&name) > std::time::Duration::ZERO
                    || name == "opt of generated code"
            );
        }
    }

    #[test]
    fn compile_with_reuses_one_context() {
        let ctx = Context::new();
        let a = compile_with(&ctx, JACOBI, &CompileOptions::new()).unwrap();
        let b = compile_with(&ctx, JACOBI, &CompileOptions::new()).unwrap();
        assert_eq!(format!("{:?}", a.program), format!("{:?}", b.program));
        // The second compilation hits the warm memo tables.
        assert!(b.report.cache.total_hits() > a.report.cache.total_hits());
    }
}
