//! In-place communication recognition (paper §3.3).
//!
//! FORTRAN arrays are column-major, so a communication set `C` over an
//! `n`-dimensional array `A` is contiguous iff there is a `k` such that the
//! set spans the full array range in dimensions `1..k`, is convex in
//! dimension `k`, and is a singleton in dimensions `k+1..n`. Each test
//! reduces to a satisfiability question; whatever cannot be proven at
//! compile time is synthesized as a runtime predicate.

use dhpf_codegen::{Cond, Expr};
use dhpf_omega::Set;

/// Verdict of the contiguity analysis.
#[derive(Clone, Debug, PartialEq)]
pub enum Contiguity {
    /// Proven contiguous for all parameter values: data can be sent and
    /// received in place.
    Contiguous,
    /// Proven non-contiguous for all parameter values.
    NotContiguous,
    /// Undetermined at compile time: evaluate the synthesized predicate at
    /// runtime (the paper's combined compile-time/run-time scan).
    Runtime(RuntimeCheck),
}

/// A runtime contiguity check: at most `n + 2` predicates, per the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct RuntimeCheck {
    /// Human-readable description of what must hold.
    pub description: String,
    /// A conservative runtime condition (true ⇒ contiguous); the simulator
    /// evaluates it against actual message extents.
    pub cond: Cond,
}

/// Decides whether `comm` (a set over array index space) is a contiguous
/// column-major section of an array with local index set `local`.
///
/// Both sets must have the same arity. Per the paper's implementation note,
/// the compile-time test applies to single-conjunct communication sets;
/// multi-conjunct sets fall back to a runtime check.
///
/// # Panics
///
/// Panics if the arities differ.
pub fn contiguity(comm: &Set, local: &Set) -> Contiguity {
    assert_eq!(comm.arity(), local.arity(), "contiguity: arity mismatch");
    let n = comm.arity();
    if comm.is_empty() {
        return Contiguity::Contiguous;
    }
    if comm.as_relation().conjuncts().len() > 1 {
        return Contiguity::Runtime(RuntimeCheck {
            description: "multi-conjunct communication set".to_string(),
            cond: Cond::Bool(false),
        });
    }
    // Single scan, leftmost dimension first: find the first dimension k
    // where C<k> != A<k>; then C<k> must be convex and all later dimensions
    // singletons.
    let mut k = n;
    for d in 0..n {
        let cd = comm.project_onto(&[d]);
        let ad = local.project_onto(&[d]);
        match cd.try_equal(&ad) {
            Ok(true) => {}
            Ok(false) => {
                k = d;
                break;
            }
            // Comparison hit an exactness limit: undecidable at compile
            // time, so defer to a runtime scan rather than panic.
            Err(e) => {
                return Contiguity::Runtime(RuntimeCheck {
                    description: format!("dimension {d} span comparison inexact: {e}"),
                    cond: Cond::Bool(false),
                })
            }
        }
    }
    if k == n {
        // Spans the whole array: contiguous.
        return Contiguity::Contiguous;
    }
    let ck = comm.project_onto(&[k]);
    match ck.try_is_convex_1d() {
        Ok(true) => {}
        Ok(false) => {
            // A hole is *provable* (the hole formula is satisfiable); it may
            // still be parameter-dependent, so fall back to a runtime scan
            // when symbolic parameters are involved.
            if comm.as_relation().params().is_empty() {
                return Contiguity::NotContiguous;
            }
            return Contiguity::Runtime(RuntimeCheck {
                description: format!("dimension {k} convexity depends on parameters"),
                cond: Cond::Bool(false),
            });
        }
        // The compile-time test hit an exactness limit (inexact negation):
        // the paper's §3.3 runtime scan decides instead of aborting.
        Err(e) => {
            return Contiguity::Runtime(RuntimeCheck {
                description: format!("dimension {k} convexity undecidable at compile time: {e}"),
                cond: Cond::Bool(false),
            });
        }
    }
    for d in (k + 1)..n {
        let cd = comm.project_onto(&[d]);
        match cd.try_is_singleton_1d() {
            Ok(true) => {}
            Ok(false) => {
                if comm.as_relation().params().is_empty() {
                    return Contiguity::NotContiguous;
                }
                return Contiguity::Runtime(RuntimeCheck {
                    description: format!("dimension {d} singleton test depends on parameters"),
                    cond: runtime_singleton_cond(d),
                });
            }
            Err(e) => {
                return Contiguity::Runtime(RuntimeCheck {
                    description: format!(
                        "dimension {d} singleton test undecidable at compile time: {e}"
                    ),
                    cond: runtime_singleton_cond(d),
                });
            }
        }
    }
    Contiguity::Contiguous
}

/// Runtime predicate: the extent of dimension `d` must be 1.
fn runtime_singleton_cond(d: u32) -> Cond {
    Cond::Eq(Expr::Var(format!("extent{}", d + 1)), Expr::Const(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> Set {
        s.parse().unwrap()
    }

    #[test]
    fn full_column_is_contiguous() {
        // A is 10x10; C is all of column 4.
        let local = set("{[i,j] : 1 <= i <= 10 && 1 <= j <= 10}");
        let comm = set("{[i,j] : 1 <= i <= 10 && j = 4}");
        assert_eq!(contiguity(&comm, &local), Contiguity::Contiguous);
    }

    #[test]
    fn column_range_is_contiguous() {
        // Full columns 4..6: spans dim 1 fully, convex in dim 2.
        let local = set("{[i,j] : 1 <= i <= 10 && 1 <= j <= 10}");
        let comm = set("{[i,j] : 1 <= i <= 10 && 4 <= j <= 6}");
        assert_eq!(contiguity(&comm, &local), Contiguity::Contiguous);
    }

    #[test]
    fn partial_column_single_j_is_contiguous() {
        // Rows 3..7 of a single column: convex in dim 1, singleton dim 2.
        let local = set("{[i,j] : 1 <= i <= 10 && 1 <= j <= 10}");
        let comm = set("{[i,j] : 3 <= i <= 7 && j = 4}");
        assert_eq!(contiguity(&comm, &local), Contiguity::Contiguous);
    }

    #[test]
    fn row_slice_is_not_contiguous() {
        // One row across several columns: dim 1 is a singleton != A<1>,
        // then dim 2 spans 4..6 — not a singleton => not contiguous.
        let local = set("{[i,j] : 1 <= i <= 10 && 1 <= j <= 10}");
        let comm = set("{[i,j] : i = 2 && 4 <= j <= 6}");
        assert_eq!(contiguity(&comm, &local), Contiguity::NotContiguous);
    }

    #[test]
    fn partial_rows_over_multiple_columns_not_contiguous() {
        let local = set("{[i,j] : 1 <= i <= 10 && 1 <= j <= 10}");
        let comm = set("{[i,j] : 3 <= i <= 7 && 4 <= j <= 6}");
        assert_eq!(contiguity(&comm, &local), Contiguity::NotContiguous);
    }

    #[test]
    fn strided_dimension_not_contiguous() {
        let local = set("{[i] : 1 <= i <= 10}");
        let comm = set("{[i] : 1 <= i <= 9 && exists(a : i = 2a + 1)}");
        assert_eq!(contiguity(&comm, &local), Contiguity::NotContiguous);
    }

    #[test]
    fn whole_array_contiguous() {
        let local = set("{[i,j] : 1 <= i <= 10 && 1 <= j <= 10}");
        assert_eq!(contiguity(&local, &local), Contiguity::Contiguous);
    }

    #[test]
    fn empty_comm_contiguous() {
        let local = set("{[i] : 1 <= i <= 10}");
        let comm = Set::empty(1);
        assert_eq!(contiguity(&comm, &local), Contiguity::Contiguous);
    }

    #[test]
    fn symbolic_column_is_contiguous_for_all_params() {
        // Column j = c of an N x M array: provable for every N, M, c in range.
        let local = set("{[i,j] : 1 <= i <= N && 1 <= j <= M}");
        let comm = set("{[i,j] : 1 <= i <= N && j = c && 1 <= c <= M}");
        assert_eq!(contiguity(&comm, &local), Contiguity::Contiguous);
    }

    #[test]
    fn symbolic_undecided_goes_to_runtime() {
        // Rows 1..K of columns 4..6: contiguity depends on K = N.
        let local = set("{[i,j] : 1 <= i <= N && 1 <= j <= 10}");
        let comm = set("{[i,j] : 1 <= i <= K && 4 <= j <= 6 && 1 <= K <= N}");
        match contiguity(&comm, &local) {
            Contiguity::Runtime(_) => {}
            other => panic!("expected runtime check, got {other:?}"),
        }
    }

    #[test]
    fn multi_conjunct_falls_back_to_runtime() {
        let local = set("{[i] : 1 <= i <= 10}");
        let comm = set("{[i] : 1 <= i <= 3 || 5 <= i <= 7}");
        assert!(matches!(contiguity(&comm, &local), Contiguity::Runtime(_)));
    }
}
