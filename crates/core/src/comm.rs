//! Communication analysis: the Figure 3 equations.
//!
//! For each logical communication event (a coalesced set of references to
//! one array, vectorized to some loop level) this module computes, for the
//! representative processor `m = myid` (symbolic parameters `m1..mr`):
//!
//! - `DataAccessed_t` — all data accessed by each processor,
//! - `nlDataSet_t(m)` — the off-processor data `m` references,
//! - `NLCommMap_t(m)` / `LocalCommMap_t(m)`,
//! - `SendCommMap(m)` and `RecvCommMap(m)`.

use crate::cp::myid_set;
use crate::layout::Layout;
use dhpf_omega::{Conjunct, LinExpr, OmegaError, Relation, Set, Var};

/// One reference participating in a communication event: its `CPMap`
/// (proc → loop) and `RefMap` (loop → data), both at the event's level.
#[derive(Clone, Debug)]
pub struct CommRef {
    /// Computation partitioning of the referencing statement.
    pub cp_map: Relation,
    /// The reference mapping.
    pub ref_map: Relation,
}

/// The communication sets of one logical event (Figure 3 outputs).
#[derive(Clone, Debug)]
pub struct CommSets {
    /// Data that `m` accesses but does not own (`nlDataSet_read(m)`).
    pub nl_read_data: Set,
    /// Data that `m` writes but does not own.
    pub nl_write_data: Set,
    /// `SendCommMap(m)`: partner `p` → data `m` must send to `p`.
    pub send_map: Relation,
    /// `RecvCommMap(m)`: partner `p` → data `m` must receive from `p`.
    pub recv_map: Relation,
}

impl CommSets {
    /// True if no data moves at all.
    pub fn is_empty(&self) -> bool {
        self.send_map.is_empty() && self.recv_map.is_empty()
    }
}

/// Computes the Figure 3 communication sets for one coalesced event.
///
/// `reads`/`writes` are the potentially non-local references (their unions
/// implement message coalescing); `layout` is the referenced array's layout.
///
/// # Errors
///
/// Returns the underlying [`OmegaError`] when a set difference hits an
/// exactness limit (inexact negation or coefficient overflow); callers
/// surface it as a compile diagnostic instead of aborting.
///
/// # Panics
///
/// Panics if the references' processor/data arities disagree with the
/// layout's.
pub fn comm_sets(
    reads: &[CommRef],
    writes: &[CommRef],
    layout: &Layout,
) -> Result<CommSets, OmegaError> {
    if let Some(cx) = layout.rel.context() {
        cx.inject_check("comm_sets")?;
    }
    let proc_rank = layout.proc_rank();
    let mut me = myid_set(proc_rank);
    me.set_context(layout.rel.context());
    let owned_by_m = layout.rel.apply(&me);
    let others = Set::universe(proc_rank).try_subtract(&me)?;

    // Step 2: DataAccessed_t = ∪_r CPMap_r ∘ RefMap_r  (proc -> data).
    let accessed = |refs: &[CommRef]| -> Option<Relation> {
        let mut acc: Option<Relation> = None;
        for r in refs {
            let term = r.cp_map.then(&r.ref_map);
            acc = Some(match acc {
                None => term,
                Some(a) => a.union(&term),
            });
        }
        acc
    };
    let data_read = accessed(reads);
    let data_write = accessed(writes);

    // Step 3 (per §5): nlDataSet_t(m) = DataAccessed_t({m}) - Layout({m}).
    let nl_of = |d: &Option<Relation>| -> Result<Set, OmegaError> {
        match d {
            Some(rel) => rel.apply(&me).try_subtract(&owned_by_m),
            None => Ok(Set::empty(layout.rel.n_out())),
        }
    };
    let nl_read_data = nl_of(&data_read)?;
    let nl_write_data = nl_of(&data_write)?;

    // Steps 4-5. NLCommMap_t(m) = Layout ∩range nlDataSet_t(m):
    // the owner q of each non-local element m touches.
    let nl_comm = |nl: &Set| -> Relation { layout.rel.restrict_range(nl).restrict_domain(&others) };
    // LocalCommMap_t(m) = DataAccessed_t ∩range Layout({m}): the data owned
    // by m that each other processor p touches.
    let local_comm = |d: &Option<Relation>| -> Relation {
        match d {
            Some(rel) => rel.restrict_range(&owned_by_m).restrict_domain(&others),
            None => Relation::empty(proc_rank, layout.rel.n_out()),
        }
    };
    let nl_read = nl_comm(&nl_read_data);
    let nl_write = nl_comm(&nl_write_data);
    let local_read = local_comm(&data_read);
    let local_write = local_comm(&data_write);

    // Steps 6-7.
    let mut send_map = local_read.union(&nl_write);
    let mut recv_map = nl_read.union(&local_write);
    send_map.simplify();
    recv_map.simplify();
    Ok(CommSets {
        nl_read_data,
        nl_write_data,
        send_map,
        recv_map,
    })
}

/// The complement of [`myid_set`] within the layout's processor domain,
/// built syntactically — no set subtraction, so it stays constructible
/// after the compile budget has tripped. The pieces (coordinates agree
/// below dimension `d`, differ at `d`) are pairwise disjoint, which keeps
/// the disjoint-form pass in code generation from having to subtract them.
fn others_set(proc_rank: u32, layout: &Layout) -> Set {
    let mut rel =
        Relation::empty(proc_rank, 0).with_in_names((0..proc_rank).map(|d| format!("p{}", d + 1)));
    rel.set_context(layout.rel.context());
    let params: Vec<u32> = (0..proc_rank)
        .map(|d| rel.ensure_param(&format!("m{}", d + 1)))
        .collect();
    for d in 0..proc_rank as usize {
        for side in [-1i64, 1] {
            let mut c = Conjunct::new();
            for (e, &m) in params.iter().enumerate().take(d) {
                c.add_eq(LinExpr::var(Var::In(e as u32)) - LinExpr::var(Var::Param(m)));
            }
            // side = -1: p_d <= m_d - 1;  side = +1: p_d >= m_d + 1.
            let p = LinExpr::var(Var::In(d as u32));
            let m = LinExpr::var(Var::Param(params[d]));
            let mut g = if side < 0 { m - p } else { p - m };
            g.add_constant(-1);
            c.add_geq(g);
            rel.add_conjunct(c);
        }
    }
    Set::from_relation(rel).intersection(&layout.rel.domain())
}

/// A sound, always-available over-approximation of [`comm_sets`]: the full
/// exchange. Every processor sends its entire owned section of the array
/// to every other processor and symmetrically receives every other
/// processor's owned section, making each rank's copy owner-current.
///
/// Unlike the exact Figure 3 equations this needs no set difference (the
/// complement of `myid` is built syntactically), so it cannot fail with an
/// exactness or budget error — it is the event the driver degrades to when
/// the exact analysis gives up. `nl_write_data` is empty: the conservative
/// event only *refreshes* reads from owners; non-local writes degrade at
/// the nest level, where ownership of the written data is re-established
/// by replicating the computation.
pub fn conservative_comm_sets(layout: &Layout) -> CommSets {
    // Self-contained grace scope: the compositions below go through the
    // governed memoized operations, and this function is called precisely
    // when the budget has already tripped.
    let _grace = dhpf_omega::governor_grace();
    let proc_rank = layout.proc_rank();
    let data_rank = layout.rel.n_out();
    let mut me = myid_set(proc_rank);
    me.set_context(layout.rel.context());
    let owned_by_m = layout.rel.apply(&me);
    let others = others_set(proc_rank, layout);

    // Send: to each partner p != m, everything m owns. Receive: from each
    // partner p != m, everything p owns (the layout restricted to p) — the
    // exact dual of the send side, as the rank-expanded message pairing
    // requires.
    let mut all = Relation::universe(proc_rank, data_rank)
        .with_in_names((0..proc_rank).map(|d| format!("p{}", d + 1)));
    all.set_context(layout.rel.context());
    let mut send_map = all.restrict_domain(&others).restrict_range(&owned_by_m);
    let mut recv_map = layout.rel.restrict_domain(&others);
    send_map.simplify();
    recv_map.simplify();
    CommSets {
        nl_read_data: recv_map.range(),
        nl_write_data: Set::empty(data_rank),
        send_map,
        recv_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cp::{cp_map, cp_map_at_level, ref_map_in, slice_context};
    use crate::ir::collect_statements;
    use crate::layout::build_layouts;
    use dhpf_hpf::{analyze, parse};

    /// 1-D shift on a BLOCK distribution: the classic nearest-neighbour
    /// exchange. a(i) = b(i+1) with both block-distributed: each processor
    /// needs the first element of its right neighbour's block.
    const SHIFT: &str = "
program shift
real a(100), b(100)
!HPF$ processors p(4)
!HPF$ template t(100)
!HPF$ align a(i) with t(i)
!HPF$ align b(i) with t(i)
!HPF$ distribute t(block) onto p
do i = 1, 99
  a(i) = b(i+1)
enddo
end
";

    #[test]
    fn shift_communication() {
        let prog = parse(SHIFT).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let layouts = build_layouts(&a);
        let stmts = collect_statements(&a);
        let cp = cp_map(&stmts[0], &layouts);
        let rm = stmts[0].reads[0].ref_map(&stmts[0].ctx);
        let sets = comm_sets(
            &[CommRef {
                cp_map: cp,
                ref_map: rm,
            }],
            &[],
            &layouts["b"],
        )
        .unwrap();
        // m = 0 owns b[1..25], computes i in [1,25], reads b[2..26]:
        // needs b[26] from p=1.
        let m0 = [("m1", 0i64)];
        assert!(sets.nl_read_data.contains(&[26], &m0));
        assert!(!sets.nl_read_data.contains(&[25], &m0));
        assert!(!sets.nl_read_data.contains(&[27], &m0));
        // RecvCommMap: receive b[26] from partner 1.
        assert!(sets.recv_map.contains_pair(&[1], &[26], &m0));
        assert!(!sets.recv_map.contains_pair(&[2], &[51], &m0));
        // SendCommMap for m = 1: send b[26] to partner 0.
        let m1 = [("m1", 1i64)];
        assert!(sets.send_map.contains_pair(&[0], &[26], &m1));
        assert!(!sets.send_map.contains_pair(&[0], &[27], &m1));
        // Last processor owns b[76..100]; p=2 (computing i in [51,75])
        // reads b[76], so m=3 sends exactly that element left.
        let m3 = [("m1", 3i64)];
        assert!(sets.send_map.contains_pair(&[2], &[76], &m3));
        assert!(!sets.send_map.contains_pair(&[2], &[77], &m3));
        // ... but m=3 receives nothing (it reads b[77..100], all owned).
        for q in 0..4i64 {
            for x in 1..=100i64 {
                assert!(
                    !sets.recv_map.contains_pair(&[q], &[x], &m3),
                    "m=3 should receive nothing, got b[{x}] from {q}"
                );
            }
        }
    }

    #[test]
    fn conservative_full_exchange_is_dual_and_owner_current() {
        let prog = parse(SHIFT).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let layouts = build_layouts(&a);
        let sets = conservative_comm_sets(&layouts["b"]);
        let m0 = [("m1", 0i64)];
        // m=0 owns b[1..25]: it sends exactly that section to every other
        // rank in the grid, and never to itself or outside the grid.
        for q in 1..4i64 {
            assert!(sets.send_map.contains_pair(&[q], &[1], &m0));
            assert!(sets.send_map.contains_pair(&[q], &[25], &m0));
            assert!(!sets.send_map.contains_pair(&[q], &[26], &m0));
        }
        assert!(!sets.send_map.contains_pair(&[0], &[1], &m0));
        assert!(!sets.send_map.contains_pair(&[4], &[1], &m0));
        // ...and receives each partner's owned section — the exact dual.
        assert!(sets.recv_map.contains_pair(&[1], &[26], &m0));
        assert!(sets.recv_map.contains_pair(&[3], &[100], &m0));
        assert!(!sets.recv_map.contains_pair(&[1], &[51], &m0));
        assert!(!sets.recv_map.contains_pair(&[0], &[1], &m0));
        assert!(sets.nl_write_data.is_empty());
    }

    #[test]
    fn conservative_sets_survive_a_tripped_budget() {
        let prog = parse(SHIFT).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let ctx = dhpf_omega::Context::new();
        let layouts = crate::layout::build_layouts_in(&a, Some(&ctx));
        ctx.set_budget(&dhpf_omega::Budget::new().op_fuel(0));
        // Trip the governor, then demand the fallback: it must still be
        // exact (grace scope), not merely non-panicking.
        let probe = ctx.parse_set("{[i] : 1 <= i <= 2}").unwrap();
        assert!(probe.try_subtract(&probe).is_err());
        assert!(ctx.budget_tripped());
        let sets = conservative_comm_sets(&layouts["b"]);
        // Membership checks go through governed satisfiability, which
        // degrades to "maybe" while tripped — clear the budget so the
        // assertions below are exact.
        ctx.clear_budget();
        let m0 = [("m1", 0i64)];
        assert!(sets.send_map.contains_pair(&[1], &[25], &m0));
        assert!(!sets.send_map.contains_pair(&[1], &[26], &m0));
        assert!(sets.recv_map.contains_pair(&[3], &[76], &m0));
    }

    #[test]
    fn no_communication_when_aligned() {
        // a(i) = b(i): identical layouts, no data moves.
        let src = "
program aligned
real a(100), b(100)
!HPF$ processors p(4)
!HPF$ template t(100)
!HPF$ align a(i) with t(i)
!HPF$ align b(i) with t(i)
!HPF$ distribute t(block) onto p
do i = 1, 100
  a(i) = b(i)
enddo
end
";
        let prog = parse(src).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let layouts = build_layouts(&a);
        let stmts = collect_statements(&a);
        let cp = cp_map(&stmts[0], &layouts);
        let rm = stmts[0].reads[0].ref_map(&stmts[0].ctx);
        let sets = comm_sets(
            &[CommRef {
                cp_map: cp,
                ref_map: rm,
            }],
            &[],
            &layouts["b"],
        )
        .unwrap();
        assert!(sets.is_empty());
    }

    #[test]
    fn coalescing_unions_two_references() {
        // a(i) = b(i+1) + b(i+2): coalesced event needs b[B+1..B+2] once.
        let src = "
program coalesce
real a(100), b(100)
!HPF$ processors p(4)
!HPF$ template t(100)
!HPF$ align a(i) with t(i)
!HPF$ align b(i) with t(i)
!HPF$ distribute t(block) onto p
do i = 1, 98
  a(i) = b(i+1) + b(i+2)
enddo
end
";
        let prog = parse(src).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let layouts = build_layouts(&a);
        let stmts = collect_statements(&a);
        let cp = cp_map(&stmts[0], &layouts);
        let refs: Vec<CommRef> = stmts[0]
            .reads
            .iter()
            .map(|r| CommRef {
                cp_map: cp.clone(),
                ref_map: r.ref_map(&stmts[0].ctx),
            })
            .collect();
        let sets = comm_sets(&refs, &[], &layouts["b"]).unwrap();
        let m0 = [("m1", 0i64)];
        // m=0 computes i in [1,25]; reads b[2..27]; owns b[1..25]:
        // needs b[26], b[27] from p=1 — one coalesced message.
        assert!(sets.recv_map.contains_pair(&[1], &[26], &m0));
        assert!(sets.recv_map.contains_pair(&[1], &[27], &m0));
        assert!(!sets.recv_map.contains_pair(&[1], &[28], &m0));
    }

    #[test]
    fn non_local_writes_are_sent_to_owner() {
        // ON_HOME b(i): the *write* to a(i+1) can be non-local.
        let src = "
program nlwrite
real a(100), b(100)
!HPF$ processors p(4)
!HPF$ template t(100)
!HPF$ align a(i) with t(i)
!HPF$ align b(i) with t(i)
!HPF$ distribute t(block) onto p
do i = 1, 99
!HPF$ on_home b(i)
  a(i+1) = b(i)
enddo
end
";
        let prog = parse(src).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let layouts = build_layouts(&a);
        let stmts = collect_statements(&a);
        let cp = cp_map(&stmts[0], &layouts);
        let wref = CommRef {
            cp_map: cp,
            ref_map: stmts[0].lhs.as_ref().unwrap().ref_map(&stmts[0].ctx),
        };
        let sets = comm_sets(&[], &[wref], &layouts["a"]).unwrap();
        // m=0 computes i in [1,25], writes a[2..26]; owns a[1..25]:
        // must SEND a[26] to its owner p=1.
        let m0 = [("m1", 0i64)];
        assert!(sets.nl_write_data.contains(&[26], &m0));
        assert!(sets.send_map.contains_pair(&[1], &[26], &m0));
        // And p=1 receives a[26] from p=0.
        let m1 = [("m1", 1i64)];
        assert!(sets.recv_map.contains_pair(&[0], &[26], &m1));
    }

    #[test]
    fn pipeline_comm_at_inner_level() {
        // Loop-carried use: a(i,j) = a(i-1,j) with (block, *) distribution;
        // communication placed inside the i loop moves one row boundary cell
        // per outer iteration.
        let src = "
program pipe
real a(64,64)
!HPF$ processors p(4)
!HPF$ template t(64,64)
!HPF$ align a(i,j) with t(i,j)
!HPF$ distribute t(block,*) onto p
do i = 2, 64
  do j = 1, 64
    a(i,j) = a(i-1,j)
  enddo
enddo
end
";
        let prog = parse(src).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let layouts = build_layouts(&a);
        let stmts = collect_statements(&a);
        // Vectorize only out of the j loop (level 1): i stays symbolic.
        let (cp, inner) = cp_map_at_level(&stmts[0], &layouts, 1);
        let rm = ref_map_in(&stmts[0].reads[0], &slice_context(&stmts[0].ctx, 1));
        let sets = comm_sets(
            &[CommRef {
                cp_map: cp,
                ref_map: rm,
            }],
            &[],
            &layouts["a"],
        )
        .unwrap();
        assert_eq!(inner.vars, vec!["j".to_string()]);
        // With B = 16: m=1 owns rows 17..32. At i = 17 it reads row 16
        // (owned by p=0) for all j.
        let p = [("m1", 1i64), ("i", 17)];
        assert!(sets.recv_map.contains_pair(&[0], &[16, 1], &p));
        assert!(sets.recv_map.contains_pair(&[0], &[16, 64], &p));
        // At i = 18 the read row 17 is local: no communication.
        let p2 = [("m1", 1i64), ("i", 18)];
        assert!(!sets.recv_map.contains_pair(&[0], &[17, 1], &p2));
    }
}
