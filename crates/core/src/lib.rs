//! # dhpf-core — the dHPF compiler analyses and optimizations
//!
//! The paper's primary contribution, reproduced: computation partitioning
//! with the general ON_HOME model, integer-set communication analysis
//! (Figure 3), loop splitting (Figure 4), in-place communication
//! recognition (§3.3), the optimized virtual-processor model for symbolic
//! distribution parameters (§4, Figure 5), and SPMD program synthesis.
//!
//! ## API layers
//!
//! The crate root re-exports the **stable compile surface** — request and
//! response types, the compile entry points, and the error/report types a
//! serving tier needs (everything `dhpf-serve` depends on). Analysis
//! internals (communication sets, computation partitionings, loop
//! splitting, the SPMD item tree) remain available through their modules
//! ([`comm`], [`cp`], [`split`], [`spmd`], …) for the simulator, the
//! benches, and tests, but are *not* part of the stable surface. Glob the
//! common subset with [`prelude`]:
//!
//! ```
//! use dhpf_core::prelude::*;
//!
//! let resp = process_request(
//!     &dhpf_omega::Context::new(),
//!     &CompileRequest::new("program p\nreal a(8)\na(1) = 0.0\nend\n"),
//! );
//! assert!(resp.error.is_none());
//! ```

#![warn(missing_docs)]

pub mod comm;
pub mod cp;
pub mod dependence;
pub mod driver;
pub mod inplace;
pub mod ir;
pub mod layout;
mod parallel;
pub mod phases;
pub mod probes;
pub mod render;
pub mod split;
pub mod spmd;
pub mod vp;

pub use comm::{comm_sets, conservative_comm_sets, CommRef, CommSets};
pub use cp::{cp_map, cp_map_at_level, myid_set};
pub use dependence::{carried_level, carried_level_in, placement_level, placement_level_in};
pub use driver::{
    compile, compile_request, compile_with, process_request, Artifacts, CompileOptions,
    CompileReport, CompileRequest, CompileResponse, Compiled, WireError,
};
pub use inplace::{contiguity, Contiguity, RuntimeCheck};
pub use ir::{collect_statements, ArrayRef, LoopContext, ReduceOp, Reduction, StmtInfo};
pub use layout::{build_layouts, build_layouts_in, Layout, ProcCoord};
pub use phases::{PhaseRow, PhaseTimers};
pub use render::render_program;
pub use split::{split_sets, SplitSets};
// The stable slice of `spmd`: the error type, the degradation record, and
// the compiled-program value callers hold. Synthesis internals (the item
// tree, nest ops, `build_spmd`) live behind `dhpf_core::spmd::` — they are
// interpreter/test surface, not serving surface.
pub use spmd::{CompileError, Degradation, SpmdOptions, SpmdProgram, SpmdStats};
pub use vp::{active_vp_sets, ActiveVpSets};

/// The curated stable surface in one import: everything a caller needs to
/// submit compilations and consume results, and nothing that reaches into
/// synthesis internals.
///
/// ```
/// use dhpf_core::prelude::*;
/// let opts = CompileOptions::new().threads(2);
/// let compiled = compile("program p\nreal a(8)\na(1) = 0.0\nend\n", &opts);
/// assert!(compiled.is_ok());
/// ```
pub mod prelude {
    pub use crate::driver::{
        compile, compile_request, compile_with, process_request, Artifacts, CompileOptions,
        CompileReport, CompileRequest, CompileResponse, Compiled, WireError,
    };
    pub use crate::render::render_program;
    pub use crate::spmd::{CompileError, Degradation, SpmdProgram, SpmdStats};
    pub use dhpf_omega::{Budget, CancelToken, Context, ErrorCode, GovernorStats};
}
