//! # dhpf-core — the dHPF compiler analyses and optimizations
//!
//! The paper's primary contribution, reproduced: computation partitioning
//! with the general ON_HOME model, integer-set communication analysis
//! (Figure 3), loop splitting (Figure 4), in-place communication
//! recognition (§3.3), the optimized virtual-processor model for symbolic
//! distribution parameters (§4, Figure 5), and SPMD program synthesis.

#![warn(missing_docs)]

pub mod comm;
pub mod cp;
pub mod dependence;
pub mod driver;
pub mod inplace;
pub mod ir;
pub mod layout;
mod parallel;
pub mod phases;
pub mod probes;
pub mod split;
pub mod spmd;
pub mod vp;

pub use comm::{comm_sets, conservative_comm_sets, CommRef, CommSets};
pub use cp::{cp_map, cp_map_at_level, myid_set};
pub use dependence::{carried_level, carried_level_in, placement_level, placement_level_in};
pub use driver::{compile, compile_with, CompileOptions, CompileReport, Compiled};
pub use inplace::{contiguity, Contiguity, RuntimeCheck};
pub use ir::{collect_statements, ArrayRef, LoopContext, ReduceOp, Reduction, StmtInfo};
pub use layout::{build_layouts, build_layouts_in, Layout, ProcCoord};
pub use phases::{PhaseRow, PhaseTimers};
pub use split::{split_sets, SplitSets};
pub use spmd::{
    build_spmd, CommEvent, CompileError, CompiledStmt, Degradation, NestItem, NestOp, SpmdItem,
    SpmdOptions, SpmdProgram, SpmdStats,
};
pub use vp::{active_vp_sets, ActiveVpSets};
