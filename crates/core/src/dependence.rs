//! Array dependence testing with integer sets (Pugh-style), used to choose
//! legal communication placement levels (message vectorization).

use crate::ir::{ArrayRef, LoopContext};
use dhpf_omega::{LinExpr, Relation, Set, Var};

/// The deepest loop level that carries a true dependence from `write` to
/// `read` within `ctx`, or `None` if no loop-carried dependence exists.
///
/// A dependence is carried at level `d` when some write instance `iw` and
/// read instance `ir` touch the same element with `iw` and `ir` equal in
/// dimensions `0..d` and `iw[d] < ir[d]`.
pub fn carried_level(write: &ArrayRef, read: &ArrayRef, ctx: &LoopContext) -> Option<u32> {
    carried_level_in(write, read, ctx, None)
}

/// [`carried_level`] threading a shared Omega
/// [`Context`](dhpf_omega::Context) through the satisfiability tests, so
/// repeated dependence queries over the same nest reuse cached projections.
pub fn carried_level_in(
    write: &ArrayRef,
    read: &ArrayRef,
    ctx: &LoopContext,
    omega: Option<&dhpf_omega::Context>,
) -> Option<u32> {
    if write.array != read.array {
        return None;
    }
    let depth = ctx.depth();
    let w = write.ref_map(ctx);
    let r = read.ref_map(ctx);
    // Same-element relation: { [iw] -> [ir] : write(iw) = read(ir) }.
    let same = w.then(&r.inverse());
    // Restrict both sides to the iteration space.
    let mut iters = ctx.iteration_set();
    iters.set_context(omega);
    let same = same.restrict_domain(&iters).restrict_range(&iters);
    let mut deepest = None;
    for d in (0..depth).rev() {
        let order = lex_before_at(depth, d);
        if same.intersection(&order).is_satisfiable() {
            deepest = Some(d);
            break;
        }
    }
    deepest
}

/// The relation `{ [iw] -> [ir] : iw[0..d] = ir[0..d] && iw[d] < ir[d] }`.
fn lex_before_at(depth: u32, d: u32) -> Relation {
    let mut rel = Relation::universe(depth, depth);
    let mut c = dhpf_omega::Conjunct::new();
    for k in 0..d {
        c.add_eq(LinExpr::var(Var::In(k)) - LinExpr::var(Var::Out(k)));
    }
    c.add_geq(LinExpr::var(Var::Out(d)) - LinExpr::var(Var::In(d)) - LinExpr::constant(1));
    rel.conjuncts_mut().clear();
    rel.add_conjunct(c);
    rel
}

/// Chooses the outermost legal communication placement level for `read`
/// given all `writes` to the same array in the nest: communication may be
/// hoisted out of every loop that carries no true dependence into the read.
///
/// Returns a level in `0..=depth`: `0` hoists out of the whole nest; level
/// `l` places communication just inside loop `l-1`.
pub fn placement_level(read: &ArrayRef, writes: &[&ArrayRef], ctx: &LoopContext) -> u32 {
    placement_level_in(read, writes, ctx, None)
}

/// [`placement_level`] threading a shared Omega
/// [`Context`](dhpf_omega::Context) through the dependence tests.
pub fn placement_level_in(
    read: &ArrayRef,
    writes: &[&ArrayRef],
    ctx: &LoopContext,
    omega: Option<&dhpf_omega::Context>,
) -> u32 {
    let mut level = 0;
    for w in writes {
        if w.array != read.array {
            continue;
        }
        if let Some(d) = carried_level_in(w, read, ctx, omega) {
            level = level.max(d + 1);
        } else {
            // A loop-independent dependence (same iteration) still forbids
            // hoisting if the write can produce what the read consumes;
            // check same-iteration overlap.
            let same_iter = same_iteration_overlap(w, read, ctx, omega);
            if same_iter {
                level = level.max(ctx.depth());
            }
        }
    }
    level
}

fn same_iteration_overlap(
    write: &ArrayRef,
    read: &ArrayRef,
    ctx: &LoopContext,
    omega: Option<&dhpf_omega::Context>,
) -> bool {
    let w = write.ref_map(ctx);
    let r = read.ref_map(ctx);
    let same = w.then(&r.inverse());
    let mut iters = ctx.iteration_set();
    iters.set_context(omega);
    let same = same.restrict_domain(&iters).restrict_range(&iters);
    // identity on all dims
    let depth = ctx.depth();
    let mut rel = Relation::universe(depth, depth);
    let mut c = dhpf_omega::Conjunct::new();
    for k in 0..depth {
        c.add_eq(LinExpr::var(Var::In(k)) - LinExpr::var(Var::Out(k)));
    }
    rel.conjuncts_mut().clear();
    rel.add_conjunct(c);
    same.intersection(&rel).is_satisfiable()
}

/// True if the iterations of the nest can be reordered freely with respect
/// to this (write, read) pair — used to validate loop splitting.
pub fn permits_reordering(write: &ArrayRef, read: &ArrayRef, ctx: &LoopContext) -> bool {
    carried_level(write, read, ctx).is_none()
}

/// Convenience: the full iteration set of a context as a [`Set`].
pub fn iteration_set(ctx: &LoopContext) -> Set {
    ctx.iteration_set()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::collect_statements;
    use dhpf_hpf::{analyze, parse};

    fn stmts_of(src: &str) -> Vec<crate::ir::StmtInfo> {
        let prog = parse(src).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        collect_statements(&a)
    }

    #[test]
    fn stencil_from_other_array_has_no_dependence() {
        let s = stmts_of(
            "
program t
real a(64,64), b(64,64)
do i = 2, 63
  do j = 2, 63
    a(i,j) = b(i-1,j) + b(i+1,j)
  enddo
enddo
end
",
        );
        let w = s[0].lhs.as_ref().unwrap();
        for r in &s[0].reads {
            assert_eq!(carried_level(w, r, &s[0].ctx), None);
            assert_eq!(placement_level(r, &[w], &s[0].ctx), 0);
        }
    }

    #[test]
    fn pipeline_dependence_carried_at_outer_level() {
        let s = stmts_of(
            "
program t
real a(64,64)
do i = 2, 64
  do j = 1, 64
    a(i,j) = a(i-1,j)
  enddo
enddo
end
",
        );
        let w = s[0].lhs.as_ref().unwrap();
        let r = &s[0].reads[0];
        assert_eq!(carried_level(w, r, &s[0].ctx), Some(0));
        // Communication must stay inside the i loop: level 1.
        assert_eq!(placement_level(r, &[w], &s[0].ctx), 1);
    }

    #[test]
    fn inner_loop_dependence() {
        let s = stmts_of(
            "
program t
real a(64,64)
do i = 1, 64
  do j = 2, 64
    a(i,j) = a(i,j-1)
  enddo
enddo
end
",
        );
        let w = s[0].lhs.as_ref().unwrap();
        let r = &s[0].reads[0];
        assert_eq!(carried_level(w, r, &s[0].ctx), Some(1));
        assert_eq!(placement_level(r, &[w], &s[0].ctx), 2);
    }

    #[test]
    fn same_iteration_read_write() {
        let s = stmts_of(
            "
program t
real a(64)
do i = 1, 64
  a(i) = a(i) + 1.0
enddo
end
",
        );
        let w = s[0].lhs.as_ref().unwrap();
        let r = &s[0].reads[0];
        assert_eq!(carried_level(w, r, &s[0].ctx), None);
        // Same-iteration overlap forbids hoisting entirely... but the data
        // is local under owner-computes, so no communication results anyway.
        assert_eq!(placement_level(r, &[w], &s[0].ctx), 1);
    }

    #[test]
    fn anti_direction_is_not_a_true_dependence_carrier_here() {
        // a(i) = a(i+1): the read at iteration i is of an element written at
        // iteration i+1 — the write happens *after*, so no w->r carried dep.
        let s = stmts_of(
            "
program t
real a(64)
do i = 1, 63
  a(i) = a(i+1)
enddo
end
",
        );
        let w = s[0].lhs.as_ref().unwrap();
        let r = &s[0].reads[0];
        assert_eq!(carried_level(w, r, &s[0].ctx), None);
    }
}
