//! Active virtual-processor sets (paper §4.1, Figure 5).
//!
//! For symbolic distribution parameters the layout maps *virtual*
//! processors to data. Not every VP owned by a physical processor is active
//! in a given computation or communication; these equations compute the
//! active sets, from which code generation restricts VP loops and
//! eliminates runtime checks.

use crate::comm::CommRef;
use crate::layout::Layout;
use dhpf_omega::{Relation, Set};

/// The active-VP sets of Figure 5(a) for one logical communication event.
#[derive(Clone, Debug)]
pub struct ActiveVpSets {
    /// VPs that execute any iteration (`busyVPSet = Domain(CPMap)`).
    pub busy: Set,
    /// VPs that must send data.
    pub active_send: Set,
    /// VPs that must receive data.
    pub active_recv: Set,
}

/// Computes `busyVPSet`, `activeSendVPSet`, and `activeRecvVPSet`.
///
/// `reads` and `writes` are the event's references (as in
/// [`comm_sets`](crate::comm::comm_sets)); `layout` the referenced array's.
///
/// # Errors
///
/// Returns [`dhpf_omega::OmegaError`] when the non-local-data subtraction
/// hits an exactness limit (inexact negation of an existential system).
pub fn active_vp_sets(
    reads: &[CommRef],
    writes: &[CommRef],
    layout: &Layout,
) -> Result<ActiveVpSets, dhpf_omega::OmegaError> {
    let proc_rank = layout.proc_rank();
    // busyVPSet = ∪ Domain(CPMap_r).
    let mut busy = Set::empty(proc_rank);
    for r in reads.iter().chain(writes) {
        busy = busy.union(&r.cp_map.domain());
    }
    busy.simplify();

    // NLDataAccessed_t = DataAccessed_t - Layout (as a map proc -> data).
    let nl_map = |refs: &[CommRef]| -> Result<Relation, dhpf_omega::OmegaError> {
        let mut acc = Relation::empty(proc_rank, layout.rel.n_out());
        for r in refs {
            acc = acc.union(&r.cp_map.then(&r.ref_map));
        }
        acc.try_subtract(&layout.rel)
    };
    let nl_read = nl_map(reads)?;
    let nl_write = nl_map(writes)?;

    let vps_involved = |nl: &Relation| -> (Set, Set) {
        // allNLDataSet = NLDataAccessed(busyVPSet)
        let all_nl = nl.apply(&busy);
        // vpsThatOwnNLData = Layout⁻¹(allNLDataSet)
        let own = layout.rel.apply_inverse(&all_nl);
        // vpsThatAccessNLData = Domain(NLDataAccessed)
        let access = nl.domain();
        (own, access)
    };
    let (own_r, access_r) = vps_involved(&nl_read);
    let (own_w, access_w) = vps_involved(&nl_write);
    let mut active_send = own_r.union(&access_w);
    let mut active_recv = access_r.union(&own_w);
    active_send.simplify();
    active_recv.simplify();
    Ok(ActiveVpSets {
        busy,
        active_send,
        active_recv,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommRef;
    use crate::cp::cp_map;
    use crate::ir::collect_statements;
    use crate::layout::build_layouts;
    use dhpf_hpf::{analyze, parse};

    /// The paper's Figure 5(b) Gaussian-elimination loop:
    /// A(i,j) = ... + A(PIVOT, j) on a (cyclic, cyclic) layout with a
    /// symbolic processor count (so VPs are the template cells).
    const GAUSS: &str = "
program gauss
real a(100,100)
integer pivot
!HPF$ processors pa(number_of_processors(), number_of_processors())
!HPF$ template t(100,100)
!HPF$ align a(i,j) with t(i,j)
!HPF$ distribute t(cyclic,cyclic) onto pa
read *, pivot
do i = 1, 100
  do j = 1, 100
    if (i > pivot .and. j > pivot) then
      a(i,j) = a(i,j) + a(pivot,j)
    endif
  enddo
enddo
end
";

    /// Builds the Figure 5 inputs manually with the guard folded into the
    /// loop bounds (our IF statements don't constrain iteration sets).
    fn gauss_sets() -> ActiveVpSets {
        let src = GAUSS.replace("do i = 1, 100", "do i = pivot + 1, 100");
        let src = src.replace("do j = 1, 100", "do j = pivot + 1, 100");
        let src = src.replace("if (i > pivot .and. j > pivot) then", "if (i > 0) then");
        let prog = parse(&src).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let layouts = build_layouts(&a);
        let stmts = collect_statements(&a);
        let stmt = &stmts[0];
        let cp = cp_map(stmt, &layouts);
        // The potentially non-local read is A(pivot, j).
        let pivot_read = stmt
            .reads
            .iter()
            .find(|r| r.subs[0].terms.iter().any(|(n, _)| n == "pivot"))
            .expect("pivot read");
        let rref = CommRef {
            cp_map: cp.clone(),
            ref_map: pivot_read.ref_map(&stmt.ctx),
        };
        active_vp_sets(&[rref], &[], &layouts["a"]).unwrap()
    }

    #[test]
    fn gauss_busy_vps_are_lower_right_block() {
        let s = gauss_sets();
        let p = [("pivot", 40i64)];
        // busyVPSet = {[v1,v2] : PIVOT < v1, v2 <= 100}
        assert!(s.busy.contains(&[41, 41], &p));
        assert!(s.busy.contains(&[100, 100], &p));
        assert!(!s.busy.contains(&[40, 41], &p));
        assert!(!s.busy.contains(&[41, 40], &p));
    }

    #[test]
    fn gauss_senders_are_pivot_row() {
        let s = gauss_sets();
        let p = [("pivot", 40i64)];
        // activeSendVPSet = {[v1,v2] : v1 = PIVOT && PIVOT < v2 <= 100}
        assert!(s.active_send.contains(&[40, 41], &p));
        assert!(s.active_send.contains(&[40, 100], &p));
        assert!(!s.active_send.contains(&[41, 41], &p));
        assert!(!s.active_send.contains(&[40, 40], &p));
    }

    #[test]
    fn gauss_receivers_are_all_busy_vps() {
        let s = gauss_sets();
        let p = [("pivot", 40i64)];
        assert!(s.active_recv.contains(&[41, 41], &p));
        assert!(s.active_recv.contains(&[100, 42], &p));
        assert!(!s.active_recv.contains(&[40, 41], &p));
        // activeRecvVPSet = busyVPSet for this example.
        assert!(s.active_recv.equal(&s.busy));
    }
}
