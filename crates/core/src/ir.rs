//! Compiler IR: loop nests, statement groups, and their iteration spaces.
//!
//! The analyses of the paper operate on three tuple spaces (Figure 1):
//! `loop_k` (iteration vectors), `data_k` (array index vectors), and
//! `proc_k` (processor index vectors). This module extracts `loop_k` and
//! the reference mappings `RefMap: loop -> data` from the analyzed AST.

use dhpf_hpf::{Affine, Analysis, Expr, Stmt, StmtKind};
use dhpf_omega::{LinExpr, Relation, Set, Var};

/// A named iteration-space context: the enclosing DO variables, outermost
/// first, plus the constraints of their bounds.
#[derive(Clone, Debug, Default)]
pub struct LoopContext {
    /// Loop variable names, outermost first.
    pub vars: Vec<String>,
    /// Bounds: `(lo, hi)` affine per level.
    pub bounds: Vec<(Affine, Affine)>,
}

impl LoopContext {
    /// Depth of the nest.
    pub fn depth(&self) -> u32 {
        self.vars.len() as u32
    }

    /// The iteration set `{ [i1..ik] : lo_d <= i_d <= hi_d }`.
    pub fn iteration_set(&self) -> Set {
        let mut rel = Relation::universe(self.depth(), 0).with_in_names(self.vars.clone());
        let mut c = dhpf_omega::Conjunct::new();
        for (d, (lo, hi)) in self.bounds.iter().enumerate() {
            let v = LinExpr::var(Var::In(d as u32));
            let lo_e = affine_to_lin(lo, &self.vars, &mut rel);
            let hi_e = affine_to_lin(hi, &self.vars, &mut rel);
            c.add_geq(v.clone() - lo_e);
            c.add_geq(hi_e - v);
        }
        rel.conjuncts_mut().clear();
        rel.add_conjunct(c);
        Set::from_relation(rel)
    }
}

/// Converts a frontend [`Affine`] into a [`LinExpr`], mapping loop variables
/// to `In` positions and everything else to named parameters of `rel`.
pub fn affine_to_lin(a: &Affine, loop_vars: &[String], rel: &mut Relation) -> LinExpr {
    let mut e = LinExpr::constant(a.constant);
    for (name, c) in &a.terms {
        match loop_vars.iter().position(|v| v == name) {
            Some(d) => e.add_term(Var::In(d as u32), *c),
            None => {
                let p = rel.ensure_param(name);
                e.add_term(Var::Param(p), *c);
            }
        }
    }
    e
}

/// One array reference with affine subscripts.
#[derive(Clone, Debug)]
pub struct ArrayRef {
    /// Array name.
    pub array: String,
    /// One affine subscript per array dimension.
    pub subs: Vec<Affine>,
    /// True for the left-hand side of an assignment.
    pub is_write: bool,
}

impl ArrayRef {
    /// Builds `RefMap: loop_k -> data_r` for this reference within `ctx`.
    pub fn ref_map(&self, ctx: &LoopContext) -> Relation {
        let rank = self.subs.len() as u32;
        let mut rel = Relation::universe(ctx.depth(), rank)
            .with_in_names(ctx.vars.clone())
            .with_out_names((0..rank).map(|d| format!("a{}", d + 1)));
        let mut c = dhpf_omega::Conjunct::new();
        for (d, sub) in self.subs.iter().enumerate() {
            let e = affine_to_lin(sub, &ctx.vars, &mut rel);
            c.add_eq(LinExpr::var(Var::Out(d as u32)) - e);
        }
        rel.conjuncts_mut().clear();
        rel.add_conjunct(c);
        rel
    }
}

/// One assignment statement with its analysis artifacts.
#[derive(Clone, Debug)]
pub struct StmtInfo {
    /// Index of this statement in the group (source order).
    pub index: usize,
    /// The original statement.
    pub stmt: Stmt,
    /// Enclosing loops.
    pub ctx: LoopContext,
    /// LHS reference (None for scalar assignment).
    pub lhs: Option<ArrayRef>,
    /// RHS array reads with affine subscripts.
    pub reads: Vec<ArrayRef>,
    /// RHS reads with non-affine subscripts (degrade gracefully).
    pub non_affine_reads: Vec<String>,
    /// ON_HOME terms (defaults to the LHS when absent).
    pub on_home: Vec<ArrayRef>,
    /// Conditions of enclosing IF statements (evaluated at runtime by the
    /// SPMD executor; analysis over-approximates by ignoring them).
    pub guards: Vec<Expr>,
    /// Scalar reduction recognized on this statement
    /// (`s = s + e`, `s = max(s, e)`, ...).
    pub reduction: Option<Reduction>,
}

/// A recognized scalar reduction.
#[derive(Clone, Debug, PartialEq)]
pub struct Reduction {
    /// Accumulator scalar name.
    pub scalar: String,
    /// Combining operation.
    pub op: ReduceOp,
}

/// Reduction combiners.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum.
    Add,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

/// Walks the executable statements of a unit, producing [`StmtInfo`] for
/// every assignment, in source order.
pub fn collect_statements(analysis: &Analysis) -> Vec<StmtInfo> {
    collect_in(analysis, &analysis.unit.body)
}

/// Like [`collect_statements`], but over an arbitrary statement list (used
/// to analyze one parallel nest at a time; enclosing serial-loop variables
/// then appear as free symbolic names).
pub fn collect_in(analysis: &Analysis, body: &[Stmt]) -> Vec<StmtInfo> {
    let mut out = Vec::new();
    let mut ctx = LoopContext::default();
    walk(analysis, body, &mut ctx, &mut out);
    out
}

fn walk(a: &Analysis, body: &[Stmt], ctx: &mut LoopContext, out: &mut Vec<StmtInfo>) {
    walk_guarded(a, body, ctx, &mut Vec::new(), out)
}

fn walk_guarded(
    a: &Analysis,
    body: &[Stmt],
    ctx: &mut LoopContext,
    guards: &mut Vec<Expr>,
    out: &mut Vec<StmtInfo>,
) {
    for s in body {
        match &s.kind {
            StmtKind::Do {
                var,
                lo,
                hi,
                step: _,
                body,
            } => {
                let lo_a = a
                    .affine_of(lo, &ctx.vars)
                    .unwrap_or_else(|| Affine::constant(1));
                let hi_a = a
                    .affine_of(hi, &ctx.vars)
                    .unwrap_or_else(|| Affine::constant(0));
                ctx.vars.push(var.clone());
                ctx.bounds.push((lo_a, hi_a));
                walk_guarded(a, body, ctx, guards, out);
                ctx.vars.pop();
                ctx.bounds.pop();
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                guards.push(cond.clone());
                walk_guarded(a, then_body, ctx, guards, out);
                guards.pop();
                guards.push(Expr::Un(dhpf_hpf::UnOp::Not, Box::new(cond.clone())));
                walk_guarded(a, else_body, ctx, guards, out);
                guards.pop();
            }
            StmtKind::Assign {
                name,
                subs,
                rhs,
                on_home,
            } => {
                let index = out.len();
                let lhs = if a.is_array(name) {
                    Some(make_ref(a, name, subs, ctx, true))
                } else {
                    None
                };
                let mut reads = Vec::new();
                let mut non_affine = Vec::new();
                collect_reads(a, rhs, ctx, &mut reads, &mut non_affine);
                let oh: Vec<ArrayRef> = match on_home {
                    Some(refs) => refs
                        .iter()
                        .map(|(n, ss)| make_ref(a, n, ss, ctx, false))
                        .collect(),
                    None => match &lhs {
                        Some(l) => vec![l.clone()],
                        None => Vec::new(),
                    },
                };
                let reduction = recognize_reduction(name, subs, rhs, a);
                out.push(StmtInfo {
                    index,
                    stmt: s.clone(),
                    ctx: ctx.clone(),
                    lhs,
                    reads,
                    non_affine_reads: non_affine,
                    on_home: oh,
                    guards: guards.clone(),
                    reduction,
                });
            }
            _ => {}
        }
    }
}

fn make_ref(
    a: &Analysis,
    name: &str,
    subs: &[Expr],
    ctx: &LoopContext,
    is_write: bool,
) -> ArrayRef {
    let affine_subs: Vec<Affine> = subs
        .iter()
        .map(|e| {
            a.affine_of(e, &ctx.vars)
                .unwrap_or_else(|| Affine::var("?nonaffine"))
        })
        .collect();
    ArrayRef {
        array: name.to_string(),
        subs: affine_subs,
        is_write,
    }
}

fn collect_reads(
    a: &Analysis,
    e: &Expr,
    ctx: &LoopContext,
    out: &mut Vec<ArrayRef>,
    non_affine: &mut Vec<String>,
) {
    match e {
        Expr::Ref(name, args) => {
            if a.is_array(name) {
                let ok = args.iter().all(|s| a.affine_of(s, &ctx.vars).is_some());
                if ok {
                    out.push(make_ref(a, name, args, ctx, false));
                } else {
                    non_affine.push(name.clone());
                }
                for arg in args {
                    collect_reads(a, arg, ctx, out, non_affine);
                }
            } else {
                // intrinsic call: scan arguments
                for arg in args {
                    collect_reads(a, arg, ctx, out, non_affine);
                }
            }
        }
        Expr::Bin(_, x, y) => {
            collect_reads(a, x, ctx, out, non_affine);
            collect_reads(a, y, ctx, out, non_affine);
        }
        Expr::Un(_, x) => collect_reads(a, x, ctx, out, non_affine),
        _ => {}
    }
}

/// Recognizes `s = s + e`, `s = s - e`, `s = max(s, e)`, `s = min(s, e)`
/// for a scalar `s`.
fn recognize_reduction(name: &str, subs: &[Expr], rhs: &Expr, a: &Analysis) -> Option<Reduction> {
    if !subs.is_empty() || a.is_array(name) {
        return None;
    }
    let mentions_self = |e: &Expr| expr_mentions(e, name);
    match rhs {
        Expr::Bin(dhpf_hpf::BinOp::Add, x, y) => {
            if matches!(&**x, Expr::Var(v) if v == name) && !mentions_self(y) {
                return Some(Reduction {
                    scalar: name.to_string(),
                    op: ReduceOp::Add,
                });
            }
            if matches!(&**y, Expr::Var(v) if v == name) && !mentions_self(x) {
                return Some(Reduction {
                    scalar: name.to_string(),
                    op: ReduceOp::Add,
                });
            }
            None
        }
        Expr::Ref(f, args) if (f == "max" || f == "min") && args.len() == 2 => {
            let op = if f == "max" {
                ReduceOp::Max
            } else {
                ReduceOp::Min
            };
            let self_first =
                matches!(&args[0], Expr::Var(v) if v == name) && !mentions_self(&args[1]);
            let self_second =
                matches!(&args[1], Expr::Var(v) if v == name) && !mentions_self(&args[0]);
            if self_first || self_second {
                return Some(Reduction {
                    scalar: name.to_string(),
                    op,
                });
            }
            None
        }
        _ => None,
    }
}

fn expr_mentions(e: &Expr, name: &str) -> bool {
    match e {
        Expr::Var(v) => v == name,
        Expr::Ref(_, args) => args.iter().any(|a| expr_mentions(a, name)),
        Expr::Bin(_, a, b) => expr_mentions(a, name) || expr_mentions(b, name),
        Expr::Un(_, a) => expr_mentions(a, name),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhpf_hpf::{analyze, parse};

    const SRC: &str = "
program t
real a(100,100), b(100,100)
real err
integer n
read *, n
do i = 1, n
  do j = 2, n+1
    a(i,j) = b(j-1,i)
    err = max(err, a(i,j))
  enddo
enddo
end
";

    #[test]
    fn collects_statements_with_contexts() {
        let prog = parse(SRC).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let stmts = collect_statements(&a);
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].ctx.vars, vec!["i".to_string(), "j".to_string()]);
        let iter = stmts[0].ctx.iteration_set();
        assert!(iter.contains(&[1, 2], &[("n", 5)]));
        assert!(iter.contains(&[5, 6], &[("n", 5)]));
        assert!(!iter.contains(&[6, 2], &[("n", 5)]));
    }

    #[test]
    fn ref_map_matches_figure2() {
        let prog = parse(SRC).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let stmts = collect_statements(&a);
        // B(j-1, i): {[i,j] -> [b1,b2] : b1 = j-1 && b2 = i}
        let rm = stmts[0].reads[0].ref_map(&stmts[0].ctx);
        assert!(rm.contains_pair(&[3, 7], &[6, 3], &[]));
        assert!(!rm.contains_pair(&[3, 7], &[7, 3], &[]));
    }

    #[test]
    fn reduction_recognized() {
        let prog = parse(SRC).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let stmts = collect_statements(&a);
        assert_eq!(
            stmts[1].reduction,
            Some(Reduction {
                scalar: "err".to_string(),
                op: ReduceOp::Max
            })
        );
        // And the reduction statement's reads include a(i,j).
        assert_eq!(stmts[1].reads[0].array, "a");
    }

    #[test]
    fn on_home_defaults_to_lhs() {
        let prog = parse(SRC).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let stmts = collect_statements(&a);
        assert_eq!(stmts[0].on_home.len(), 1);
        assert_eq!(stmts[0].on_home[0].array, "a");
    }
}
