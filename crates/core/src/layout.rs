//! Data layouts: `Layout: proc_k -> data_k` relations from ALIGN/DISTRIBUTE
//! directives, including the optimized virtual-processor model for symbolic
//! distribution parameters (paper §4.1).

use crate::ir::affine_to_lin;
use dhpf_hpf::{AlignMap, Analysis, DistFormat, ProcDim};
use dhpf_omega::{Conjunct, LinExpr, Relation, Var};

/// How one processor dimension is realized.
#[derive(Clone, Debug, PartialEq)]
pub enum ProcCoord {
    /// A physical processor dimension with a known extent; indices `0..count`.
    Physical {
        /// Number of processors.
        count: i64,
    },
    /// Virtual processors for a BLOCK distribution with symbolic parameters:
    /// VP `v` owns template cells `[v, v + B - 1]`; physical processor `m`
    /// (0-based) is VP `v = B*m + 1`. `B` is the named block-size parameter.
    BlockVp {
        /// Name of the symbolic block-size parameter.
        bsize: String,
        /// Name of the symbolic processor-count parameter.
        nproc: String,
    },
    /// Virtual processors for a CYCLIC distribution with a symbolic count:
    /// one VP per template cell; physical processor = `(v - 1) mod P`.
    CyclicVp {
        /// Name of the symbolic processor-count parameter.
        nproc: String,
    },
    /// Virtual processors for CYCLIC(K) with symbolic count: VP `v` owns
    /// template cells `[k(v-1)+1, k(v-1)+k]`; physical = `(v - 1) mod P`.
    CyclicKVp {
        /// Block factor `k`.
        k: i64,
        /// Name of the symbolic processor-count parameter.
        nproc: String,
    },
}

impl ProcCoord {
    /// True if this dimension uses the virtual-processor model.
    pub fn is_virtual(&self) -> bool {
        !matches!(self, ProcCoord::Physical { .. })
    }
}

/// The layout of one array: which (possibly virtual) processor owns which
/// elements.
#[derive(Clone, Debug)]
pub struct Layout {
    /// Processor array name ("" for replicated data).
    pub proc_array: String,
    /// Realization of each processor dimension.
    pub coords: Vec<ProcCoord>,
    /// The relation `[p1..pr] -> [a1..ak]`.
    pub rel: Relation,
    /// True if the array is replicated (owned by every processor).
    pub replicated: bool,
}

impl Layout {
    /// Processor-space rank.
    pub fn proc_rank(&self) -> u32 {
        self.coords.len() as u32
    }
}

/// Builds the [`Layout`] for every array of the unit.
///
/// Arrays without an `ALIGN` to a distributed template are replicated.
/// Every template distributed onto the same processor arrangement shares
/// parameter names (`np<d>` for symbolic counts, `bs_<template><d>` for
/// symbolic block sizes) so that layouts compose in one space.
pub fn build_layouts(a: &Analysis) -> std::collections::BTreeMap<String, Layout> {
    build_layouts_in(a, None)
}

/// [`build_layouts`] attaching a shared Omega [`Context`](dhpf_omega::Context)
/// to every layout relation, so all set operations derived from the layouts
/// (CP maps, communication sets, split sets, active-VP sets, code
/// generation) share one memoization arena for the whole compilation.
pub fn build_layouts_in(
    a: &Analysis,
    ctx: Option<&dhpf_omega::Context>,
) -> std::collections::BTreeMap<String, Layout> {
    let mut out = std::collections::BTreeMap::new();
    for (name, info) in &a.arrays {
        let mut layout = build_layout(a, name, info);
        layout.rel.set_context(ctx);
        out.insert(name.clone(), layout);
    }
    out
}

fn replicated_layout(a: &Analysis, info: &dhpf_hpf::ArrayInfo, proc_rank: u32) -> Layout {
    let rank = info.dims.len() as u32;
    let mut rel = Relation::universe(proc_rank, rank);
    let mut c = Conjunct::new();
    add_array_bounds(a, info, &mut rel, &mut c);
    rel.conjuncts_mut().clear();
    rel.add_conjunct(c);
    Layout {
        proc_array: String::new(),
        coords: (0..proc_rank)
            .map(|_| ProcCoord::Physical { count: 1 })
            .collect(),
        rel,
        replicated: true,
    }
}

fn add_array_bounds(
    _a: &Analysis,
    info: &dhpf_hpf::ArrayInfo,
    rel: &mut Relation,
    c: &mut Conjunct,
) {
    for (d, (lo, hi)) in info.dims.iter().enumerate() {
        let v = LinExpr::var(Var::Out(d as u32));
        let lo_e = affine_to_lin(lo, &[], rel);
        let hi_e = affine_to_lin(hi, &[], rel);
        c.add_geq(v.clone() - lo_e);
        c.add_geq(hi_e - v);
    }
}

fn build_layout(a: &Analysis, _name: &str, info: &dhpf_hpf::ArrayInfo) -> Layout {
    // Resolve array -> template -> distribution.
    let Some(align) = &info.align else {
        return replicated_layout(a, info, default_proc_rank(a));
    };
    let Some(template) = a.templates.get(&align.template) else {
        return replicated_layout(a, info, default_proc_rank(a));
    };
    let Some(dist) = &template.dist else {
        return replicated_layout(a, info, default_proc_rank(a));
    };
    let proc = &a.procs[&dist.onto];
    let proc_rank = proc.dims.len() as u32;
    let rank = info.dims.len() as u32;
    let mut rel = Relation::universe(proc_rank, rank)
        .with_in_names((0..proc_rank).map(|d| format!("p{}", d + 1)))
        .with_out_names((0..rank).map(|d| format!("a{}", d + 1)));
    let mut c = Conjunct::new();
    add_array_bounds(a, info, &mut rel, &mut c);
    let mut coords = Vec::new();
    // Walk template dimensions; each non-star distributed dim consumes the
    // next processor dimension.
    let mut pdim = 0u32;
    for (tdim, fmt) in dist.formats.iter().enumerate() {
        // Template index expression for this dim (an existential or an
        // affine function of the data indices).
        let t_expr: LinExpr = match &align.subs[tdim] {
            AlignMap::Affine { coeffs, constant } => {
                let mut e = LinExpr::constant(*constant);
                for (d, k) in coeffs.iter().enumerate() {
                    e.add_term(Var::Out(d as u32), *k);
                }
                e
            }
            AlignMap::Star => {
                // Free template coordinate within its extent.
                let alpha = c.fresh_exist();
                let ext = affine_to_lin(&template.extents[tdim], &[], &mut rel);
                c.add_geq(LinExpr::var(alpha) - LinExpr::constant(1));
                c.add_geq(ext - LinExpr::var(alpha));
                LinExpr::var(alpha)
            }
        };
        if matches!(fmt, DistFormat::Star) {
            // Not distributed: constrain only to template range (implied by
            // array bounds for affine aligns; nothing to add).
            continue;
        }
        let p = LinExpr::var(Var::In(pdim));
        let extent = template.extents[tdim].clone();
        let ext_const = extent.as_const();
        let known = match proc.dims[pdim as usize] {
            ProcDim::Known(n) => Some(n),
            ProcDim::Symbolic => None,
        };
        let coord = match (fmt, known, ext_const) {
            (DistFormat::Block, Some(np), Some(n)) => {
                // Physical block: B = ceil(N/P); B*p + 1 <= t <= B*p + B.
                let b = (n + np - 1) / np;
                c.add_geq(t_expr.clone() - p.scaled(b) - LinExpr::constant(1));
                c.add_geq(p.scaled(b) + LinExpr::constant(b) - t_expr.clone());
                c.add_geq(p.clone());
                c.add_geq(LinExpr::constant(np - 1) - p.clone());
                ProcCoord::Physical { count: np }
            }
            (DistFormat::Block, _, _) => {
                // Virtual block: v <= t <= v + B - 1, 1 <= v <= N.
                let bs = format!("bs{}", pdim + 1);
                let npn = format!("np{}", pdim + 1);
                let b = rel.param_var(&bs);
                let ext = affine_to_lin(&extent, &[], &mut rel);
                c.add_geq(t_expr.clone() - p.clone());
                c.add_geq(p.clone() + b - LinExpr::constant(1) - t_expr.clone());
                c.add_geq(p.clone() - LinExpr::constant(1));
                c.add_geq(ext - p.clone());
                ProcCoord::BlockVp {
                    bsize: bs,
                    nproc: npn,
                }
            }
            (DistFormat::Cyclic, Some(np), _) => {
                // t - 1 ≡ p (mod P), 0 <= p < P.
                c.add_stride(t_expr.clone() - LinExpr::constant(1) - p.clone(), np);
                c.add_geq(p.clone());
                c.add_geq(LinExpr::constant(np - 1) - p.clone());
                ProcCoord::Physical { count: np }
            }
            (DistFormat::Cyclic, None, _) => {
                // One VP per template cell: v = t.
                let npn = format!("np{}", pdim + 1);
                rel.ensure_param(&npn);
                c.add_eq(t_expr.clone() - p.clone());
                ProcCoord::CyclicVp { nproc: npn }
            }
            (DistFormat::CyclicK(k), Some(np), _) => {
                // exists a, r: t - 1 = k*P*a + k*p + r, 0 <= r < k.
                let alpha = c.fresh_exist();
                let r = c.fresh_exist();
                c.add_eq(
                    t_expr.clone()
                        - LinExpr::constant(1)
                        - LinExpr::term(alpha, k * np)
                        - p.scaled(*k)
                        - LinExpr::var(r),
                );
                c.add_geq(LinExpr::var(r));
                c.add_geq(LinExpr::constant(k - 1) - LinExpr::var(r));
                c.add_geq(LinExpr::var(alpha));
                c.add_geq(p.clone());
                c.add_geq(LinExpr::constant(np - 1) - p.clone());
                ProcCoord::Physical { count: np }
            }
            (DistFormat::CyclicK(k), None, _) => {
                // VP v owns cells [k(v-1)+1, kv].
                let npn = format!("np{}", pdim + 1);
                rel.ensure_param(&npn);
                c.add_geq(t_expr.clone() - p.scaled(*k) + LinExpr::constant(*k - 1));
                c.add_geq(p.scaled(*k) - t_expr.clone());
                c.add_geq(p.clone() - LinExpr::constant(1));
                ProcCoord::CyclicKVp { k: *k, nproc: npn }
            }
            (DistFormat::Star, _, _) => unreachable!(),
        };
        coords.push(coord);
        pdim += 1;
    }
    rel.conjuncts_mut().clear();
    rel.add_conjunct(c);
    Layout {
        proc_array: dist.onto.clone(),
        coords,
        rel,
        replicated: false,
    }
}

/// Rank of the (single) processor arrangement of the unit, defaulting to 1.
pub fn default_proc_rank(a: &Analysis) -> u32 {
    a.procs
        .values()
        .map(|p| p.dims.len() as u32)
        .max()
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhpf_hpf::{analyze, parse};

    const FIG2: &str = "
program fig2
real a(0:99,100), b(100,100)
integer n
!HPF$ processors p(4)
!HPF$ template t(100,100)
!HPF$ align a(i,j) with t(i+1,j)
!HPF$ align b(i,j) with t(*,i)
!HPF$ distribute t(*,block) onto p
read *, n
do i = 1, n
  do j = 2, n+1
    a(i,j) = b(j-1,i)
  enddo
enddo
end
";

    #[test]
    fn figure2_layout_a() {
        // Layout_A = {[p] -> [a1,a2] : max(25p-1, 0) <= a1 <= min(25p+23, 99), ...}
        // Template dim 2 (distributed BLOCK on 4 procs, extent 100): B = 25,
        // t2 = a2 (align A(i,j) -> t(i+1,j)): so 25p+1 <= a2 <= 25p+25.
        let prog = parse(FIG2).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let layouts = build_layouts(&a);
        let la = &layouts["a"];
        assert!(!la.replicated);
        assert_eq!(la.coords, vec![ProcCoord::Physical { count: 4 }]);
        // Processor 1 owns a2 in [26, 50] (a1 spans full 0..99).
        assert!(la.rel.contains_pair(&[1], &[0, 26], &[]));
        assert!(la.rel.contains_pair(&[1], &[99, 50], &[]));
        assert!(!la.rel.contains_pair(&[1], &[0, 25], &[]));
        assert!(!la.rel.contains_pair(&[1], &[0, 51], &[]));
        // Paper: Layout_A(p) = { max(25p+1,1) <= a2 <= min(25p+25, 100) } with
        // 0-based p. Check p = 0 and p = 3 edges.
        assert!(la.rel.contains_pair(&[0], &[5, 1], &[]));
        assert!(la.rel.contains_pair(&[3], &[5, 100], &[]));
        assert!(!la.rel.contains_pair(&[4], &[5, 100], &[]));
    }

    #[test]
    fn figure2_layout_b_star_alignment() {
        // B(i,j) aligned with t(*, i): owner of b depends only on b1 (= i);
        // 25p+1 <= b1 <= 25p+25.
        let prog = parse(FIG2).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let layouts = build_layouts(&a);
        let lb = &layouts["b"];
        assert!(lb.rel.contains_pair(&[2], &[51, 1], &[]));
        assert!(lb.rel.contains_pair(&[2], &[75, 100], &[]));
        assert!(!lb.rel.contains_pair(&[2], &[76, 1], &[]));
    }

    #[test]
    fn symbolic_block_uses_vp_model() {
        let src = "
program s
real a(100)
!HPF$ processors q(number_of_processors())
!HPF$ template t(100)
!HPF$ align a(i) with t(i)
!HPF$ distribute t(block) onto q
a(1) = 0.0
end
";
        let prog = parse(src).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let layouts = build_layouts(&a);
        let la = &layouts["a"];
        assert!(matches!(&la.coords[0], ProcCoord::BlockVp { .. }));
        // With B = 25 bound: VP v owns [v, v+24]; physical m=1 is v=26.
        assert!(la
            .rel
            .contains_pair(&[26], &[26], &[("bs1", 25), ("np1", 4)]));
        assert!(la
            .rel
            .contains_pair(&[26], &[50], &[("bs1", 25), ("np1", 4)]));
        assert!(!la
            .rel
            .contains_pair(&[26], &[51], &[("bs1", 25), ("np1", 4)]));
    }

    #[test]
    fn cyclic_layout() {
        let src = "
program s
real a(16)
!HPF$ processors q(4)
!HPF$ template t(16)
!HPF$ align a(i) with t(i)
!HPF$ distribute t(cyclic) onto q
a(1) = 0.0
end
";
        let prog = parse(src).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let layouts = build_layouts(&a);
        let la = &layouts["a"];
        // proc 1 owns 2, 6, 10, 14 (1-based template, 0-based procs).
        for x in 1..=16i64 {
            let owned = la.rel.contains_pair(&[1], &[x], &[]);
            assert_eq!(owned, (x - 1).rem_euclid(4) == 1, "x = {x}");
        }
    }

    #[test]
    fn cyclic_k_layout() {
        let src = "
program s
real a(16)
!HPF$ processors q(2)
!HPF$ template t(16)
!HPF$ align a(i) with t(i)
!HPF$ distribute t(cyclic(3)) onto q
a(1) = 0.0
end
";
        let prog = parse(src).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let la = &build_layouts(&a)["a"].clone();
        // blocks of 3 dealt round-robin to 2 procs:
        // proc0: 1-3, 7-9, 13-15; proc1: 4-6, 10-12, 16.
        for x in 1..=16i64 {
            let owned0 = la.rel.contains_pair(&[0], &[x], &[]);
            let blk = (x - 1) / 3;
            assert_eq!(owned0, blk % 2 == 0, "x = {x}");
        }
    }

    #[test]
    fn unaligned_array_is_replicated() {
        let src = "
program s
real a(10)
a(1) = 0.0
end
";
        let prog = parse(src).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let la = &build_layouts(&a)["a"];
        assert!(la.replicated);
    }
}
