//! SPMD program synthesis: partitioned loop nests, communication events,
//! loop splitting, and reductions, assembled into an executable per-rank
//! program (interpreted by `dhpf-sim`).

use crate::comm::{comm_sets, CommRef};
use crate::cp::{cp_map_at_level, myid_set, proc_rank_of, slice_context};
use crate::dependence::placement_level_in;
use crate::inplace::{contiguity, Contiguity};
use crate::ir::{collect_in, ArrayRef, Reduction, StmtInfo};
use crate::layout::{Layout, ProcCoord};
use crate::split::split_sets;
use dhpf_codegen::{codegen, Code, CodegenOptions, Mapping, StmtId};
use dhpf_hpf::{Affine, Analysis, Expr, Stmt, StmtKind, TypeName};
use dhpf_omega::{Relation, Set, Var};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from SPMD synthesis.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum CompileError {
    /// Frontend error.
    Frontend(dhpf_hpf::HpfError),
    /// A construct the SPMD generator does not support.
    Unsupported(String),
    /// Loop synthesis failed.
    Codegen(dhpf_codegen::CodegenError),
    /// A set-algebra operation hit an exactness limit (inexact negation,
    /// coefficient overflow, …) while analyzing the program.
    SetAlgebra(dhpf_omega::OmegaError),
    /// The compile budget (deadline or op fuel) was exhausted and the
    /// failing construct had no sound conservative fallback. The payload
    /// names the exhausted resource.
    Budget(&'static str),
    /// The compilation was cancelled through its
    /// [`CancelToken`](dhpf_omega::CancelToken). Cancellation never
    /// degrades: it is always surfaced as this error.
    Cancelled,
    /// A compiler task panicked; the payload is the panic message. The
    /// panic was contained by the driver's isolation boundary — sibling
    /// tasks ran to completion and no lock was poisoned.
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Frontend(e) => write!(f, "{e}"),
            CompileError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
            CompileError::Codegen(e) => write!(f, "code generation failed: {e}"),
            CompileError::SetAlgebra(e) => write!(f, "set algebra failed: {e}"),
            CompileError::Budget(what) => write!(f, "compile budget exceeded: {what}"),
            CompileError::Cancelled => write!(f, "compilation cancelled"),
            CompileError::Internal(m) => write!(f, "internal compiler error: {m}"),
        }
    }
}

impl CompileError {
    /// The stable machine-readable [`ErrorCode`](dhpf_omega::ErrorCode) of
    /// this error — the code `dhpf-serve` serializes and tests assert on,
    /// shared with [`OmegaError::code`](dhpf_omega::OmegaError::code).
    pub fn code(&self) -> dhpf_omega::ErrorCode {
        match self {
            CompileError::Frontend(_) => dhpf_omega::ErrorCode::Frontend,
            CompileError::Unsupported(_) => dhpf_omega::ErrorCode::Unsupported,
            CompileError::Codegen(_) => dhpf_omega::ErrorCode::Codegen,
            CompileError::SetAlgebra(e) => e.code(),
            CompileError::Budget(_) => dhpf_omega::ErrorCode::Budget,
            CompileError::Cancelled => dhpf_omega::ErrorCode::Cancelled,
            CompileError::Internal(_) => dhpf_omega::ErrorCode::Internal,
        }
    }
}

impl std::error::Error for CompileError {}

impl From<dhpf_hpf::HpfError> for CompileError {
    fn from(e: dhpf_hpf::HpfError) -> Self {
        CompileError::Frontend(e)
    }
}

impl From<dhpf_codegen::CodegenError> for CompileError {
    fn from(e: dhpf_codegen::CodegenError) -> Self {
        CompileError::Codegen(e)
    }
}

impl From<dhpf_omega::OmegaError> for CompileError {
    fn from(e: dhpf_omega::OmegaError) -> Self {
        match e {
            dhpf_omega::OmegaError::Cancelled => CompileError::Cancelled,
            dhpf_omega::OmegaError::BudgetExceeded(what) => CompileError::Budget(what),
            e => CompileError::SetAlgebra(e),
        }
    }
}

/// True for errors the driver may absorb by falling back to a sound
/// conservative construct: exactness failures and budget exhaustion.
/// Cancellation and structural errors (unsupported constructs, panics)
/// always abort.
pub(crate) fn degradable(e: &CompileError) -> bool {
    matches!(
        e,
        CompileError::SetAlgebra(_) | CompileError::Budget(_) | CompileError::Codegen(_)
    )
}

/// One compiled assignment statement.
#[derive(Clone, Debug)]
pub struct CompiledStmt {
    /// Target name (array or scalar).
    pub lhs: String,
    /// LHS subscripts (empty for scalars).
    pub subs: Vec<Expr>,
    /// Right-hand side.
    pub rhs: Expr,
    /// Enclosing IF conditions (all must hold).
    pub guards: Vec<Expr>,
    /// Floating-point operation count (for the machine model).
    pub cost: u64,
}

/// Operations referenced by `Code::Stmt` ids inside a nest.
#[derive(Clone, Debug)]
pub enum NestOp {
    /// Execute an assignment instance.
    Assign(CompiledStmt),
    /// Pack and send all messages of a communication event.
    CommSend(usize),
    /// Receive and unpack all messages of a communication event.
    CommRecv(usize),
}

/// A communication event: what `myid` sends and receives.
#[derive(Clone, Debug)]
pub struct CommEvent {
    /// Event id (message tag).
    pub id: usize,
    /// The communicated array.
    pub array: String,
    /// Code enumerating `SendCommMap(m)` over `[q1..qr, d1..dk]`.
    pub send_code: Code,
    /// Code enumerating `RecvCommMap(m)` over `[q1..qr, d1..dk]`.
    pub recv_code: Code,
    /// Processor-space rank.
    pub proc_rank: u32,
    /// Array rank.
    pub data_rank: u32,
    /// True if §3.3 proved the messages contiguous (in-place eligible:
    /// the simulator charges no pack/unpack copy cost).
    pub contiguous: bool,
    /// Loop level the event was vectorized to (0 = out of the whole nest).
    pub level: u32,
}

/// A partitioned loop nest with embedded communication markers.
#[derive(Clone, Debug)]
pub struct NestItem {
    /// The generated code; `Stmt(id)` indexes into `ops`.
    pub code: Code,
    /// Operation table.
    pub ops: Vec<NestOp>,
    /// Reductions to combine after the nest (scalar, op).
    pub reductions: Vec<Reduction>,
    /// True if Figure-4 loop splitting restructured this nest.
    pub split: bool,
}

/// One element of the SPMD program.
#[derive(Clone, Debug)]
pub enum SpmdItem {
    /// A statement replicated on every rank (`read`, `print`, pure-scalar
    /// assignments and IFs).
    Serial(Stmt),
    /// A replicated (time-step) loop whose body is more items.
    SerialLoop {
        /// Loop variable (bound in every rank's environment).
        var: String,
        /// Lower bound.
        lo: Expr,
        /// Upper bound.
        hi: Expr,
        /// Body items.
        body: Vec<SpmdItem>,
    },
    /// A partitioned nest.
    Nest(NestItem),
}

/// Per-dimension processor grid specification.
#[derive(Clone, Debug)]
pub struct ProcDimSpec {
    /// The dimension's realization.
    pub coord: ProcCoord,
    /// Distributed template extent (needed to compute block sizes for
    /// symbolic distributions).
    pub extent: Option<Affine>,
}

/// Array allocation info.
#[derive(Clone, Debug)]
pub struct ArraySpec {
    /// Per-dimension `(lower, upper)` bounds.
    pub dims: Vec<(Affine, Affine)>,
    /// Element type.
    pub ty: TypeName,
    /// Code enumerating the locally-owned index set (for result gathering);
    /// `None` for replicated arrays.
    pub owned_code: Option<Code>,
}

/// The compiled SPMD program.
#[derive(Clone, Debug)]
pub struct SpmdProgram {
    /// Program name.
    pub name: String,
    /// Processor grid dimensions.
    pub proc_dims: Vec<ProcDimSpec>,
    /// Array allocations.
    pub arrays: BTreeMap<String, ArraySpec>,
    /// Runtime input scalars (from `read`).
    pub inputs: Vec<String>,
    /// The program body.
    pub items: Vec<SpmdItem>,
    /// All communication events (indexed by [`CommEvent::id`]).
    pub events: Vec<CommEvent>,
}

/// One recorded graceful degradation: where the exact analysis gave up,
/// why, and which sound conservative construct replaced it. Collected in
/// [`SpmdStats::degradations`] in serial nest order (the parallel driver
/// reconciles to the same order), so the list is deterministic for a given
/// program, options, and fault plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Degradation {
    /// The construct that degraded: `"split"` (Figure-4 loop splitting
    /// abandoned), `"comm_sets"` (one event fell back to the conservative
    /// full exchange), or `"nest"` (the whole nest was replicated).
    pub site: &'static str,
    /// The affected array, when the degradation is array-scoped.
    pub array: Option<String>,
    /// The error that triggered the fallback.
    pub reason: String,
    /// What the compiler did instead.
    pub action: &'static str,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.site)?;
        if let Some(a) = &self.array {
            write!(f, "({a})")?;
        }
        write!(f, ": {} — {}", self.reason, self.action)
    }
}

/// Statistics gathered during synthesis (feeds the Table 1 harness).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpmdStats {
    /// Number of communication events generated.
    pub comm_events: usize,
    /// Events vectorized out of the full nest.
    pub fully_vectorized: usize,
    /// Events proven contiguous (§3.3).
    pub contiguous_events: usize,
    /// Nests restructured by loop splitting.
    pub split_nests: usize,
    /// Coalesced reference groups (more than one reference per event).
    pub coalesced_groups: usize,
    /// Graceful degradations taken, in serial nest order. Empty means the
    /// whole program compiled exactly.
    pub degradations: Vec<Degradation>,
}

/// Options for SPMD synthesis.
#[derive(Clone, Debug)]
pub struct SpmdOptions {
    /// Apply Figure-4 loop splitting for communication overlap.
    pub loop_splitting: bool,
}

impl Default for SpmdOptions {
    fn default() -> Self {
        SpmdOptions {
            loop_splitting: true,
        }
    }
}

/// Context shared across synthesis.
pub(crate) struct Synth<'a> {
    analysis: &'a Analysis,
    layouts: &'a BTreeMap<String, Layout>,
    opts: &'a SpmdOptions,
    events: Vec<CommEvent>,
    stats: SpmdStats,
    timers: Option<&'a mut crate::phases::PhaseTimers>,
    /// The Omega context the layouts carry (if any): attached to every
    /// root set built during synthesis so all derived operations share it.
    octx: Option<dhpf_omega::Context>,
}

impl Synth<'_> {
    fn time<T>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> T) -> T {
        // PhaseTimers::time needs &mut PhaseTimers; emulate with open/close
        // so we can keep borrowing self while nested phases still link to
        // their parent (no double-counted self time).
        if let Some(t) = self.timers.as_mut() {
            t.open(name);
        }
        let t0 = std::time::Instant::now();
        let out = f(self);
        let dt = t0.elapsed();
        if let Some(t) = self.timers.as_mut() {
            t.close(name, dt);
        }
        out
    }

    /// Records one graceful degradation.
    fn degrade(
        &mut self,
        site: &'static str,
        array: Option<&str>,
        reason: &dyn fmt::Display,
        action: &'static str,
    ) {
        self.stats.degradations.push(Degradation {
            site,
            array: array.map(str::to_string),
            reason: reason.to_string(),
            action,
        });
    }
}

/// Synthesizes the SPMD program for one analyzed unit.
///
/// # Errors
///
/// Returns [`CompileError::Unsupported`] for constructs outside the SPMD
/// subset (e.g. subroutine calls) and [`CompileError::Codegen`] if loop
/// synthesis fails.
pub fn build_spmd(
    analysis: &Analysis,
    layouts: &BTreeMap<String, Layout>,
    opts: &SpmdOptions,
    timers: Option<&mut crate::phases::PhaseTimers>,
) -> Result<(SpmdProgram, SpmdStats), CompileError> {
    let octx = layouts.values().find_map(|l| l.rel.context().cloned());
    let mut synth = Synth {
        analysis,
        layouts,
        opts,
        events: Vec::new(),
        stats: SpmdStats::default(),
        timers,
        octx,
    };
    let items = build_items(&mut synth, &analysis.unit.body)?;
    let program = finish_program(analysis, layouts, items, synth.events)?;
    Ok((program, synth.stats))
}

/// Assembles the unit-level program around already-built items: processor
/// grid, array allocations (with owned-set enumeration code), inputs.
/// Shared by the serial path and the parallel assembly.
fn finish_program(
    analysis: &Analysis,
    layouts: &BTreeMap<String, Layout>,
    items: Vec<SpmdItem>,
    events: Vec<CommEvent>,
) -> Result<SpmdProgram, CompileError> {
    // Unit assembly is *structural*: owned-set enumeration per declared
    // array, grid and input collection — bounded work proportional to the
    // declarations, with no sound fallback (a program without its
    // allocation code is not a program). The budget governs analysis and
    // per-nest synthesis, not this epilogue, so it runs in a governor
    // grace scope: a tripped budget cannot fail it, and injection skips
    // it (cancellation stays live).
    let _grace = dhpf_omega::governor_grace();
    // Processor grid: from the distributed layouts (all share one arrangement).
    let proc_dims = grid_of(analysis, layouts);
    // Arrays.
    let mut arrays = BTreeMap::new();
    for (name, info) in &analysis.arrays {
        let layout = &layouts[name];
        let owned_code = if layout.replicated {
            None
        } else {
            let owned = layout.rel.apply(&myid_set(layout.proc_rank()));
            let names: Vec<String> = (0..info.dims.len())
                .map(|d| format!("d{}", d + 1))
                .collect();
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            Some(dhpf_codegen::codegen_set(
                &owned,
                StmtId(0),
                &name_refs,
                &CodegenOptions::default(),
            )?)
        };
        arrays.insert(
            name.clone(),
            ArraySpec {
                dims: info.dims.clone(),
                ty: info.ty,
                owned_code,
            },
        );
    }
    let mut inputs = Vec::new();
    collect_inputs(&analysis.unit.body, &mut inputs);
    Ok(SpmdProgram {
        name: analysis.unit.name.clone(),
        proc_dims,
        arrays,
        inputs,
        items,
        events,
    })
}

fn grid_of(analysis: &Analysis, layouts: &BTreeMap<String, Layout>) -> Vec<ProcDimSpec> {
    // Find a non-replicated layout and take its coordinate structure,
    // pairing each processor dimension with its template extent.
    for (aname, l) in layouts {
        if l.replicated {
            continue;
        }
        let info = &analysis.arrays[aname];
        let Some(align) = &info.align else { continue };
        let Some(t) = analysis.templates.get(&align.template) else {
            continue;
        };
        let Some(dist) = &t.dist else { continue };
        let mut out = Vec::new();
        let mut pdim = 0;
        for (tdim, f) in dist.formats.iter().enumerate() {
            if matches!(f, dhpf_hpf::DistFormat::Star) {
                continue;
            }
            out.push(ProcDimSpec {
                coord: l.coords[pdim].clone(),
                extent: Some(t.extents[tdim].clone()),
            });
            pdim += 1;
        }
        return out;
    }
    vec![ProcDimSpec {
        coord: ProcCoord::Physical { count: 1 },
        extent: None,
    }]
}

fn collect_inputs(body: &[Stmt], out: &mut Vec<String>) {
    for s in body {
        match &s.kind {
            StmtKind::Read { vars } => out.extend(vars.iter().cloned()),
            StmtKind::Do { body, .. } => collect_inputs(body, out),
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                collect_inputs(then_body, out);
                collect_inputs(else_body, out);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Item structure
// ---------------------------------------------------------------------------

fn build_items(synth: &mut Synth, body: &[Stmt]) -> Result<Vec<SpmdItem>, CompileError> {
    let mut items = Vec::new();
    let mut pending: Vec<Stmt> = Vec::new(); // consecutive nest-able stmts
    for s in body {
        match &s.kind {
            StmtKind::Read { .. } | StmtKind::Print { .. } => {
                flush_nest(synth, &mut pending, &mut items)?;
                items.push(SpmdItem::Serial(s.clone()));
            }
            StmtKind::Call { name, .. } => {
                return Err(CompileError::Unsupported(format!(
                    "call to '{name}' (inline subroutines before SPMD synthesis)"
                )));
            }
            StmtKind::Assign { name, rhs, .. } => {
                if !synth.analysis.is_array(name)
                    && !reads_distributed_array(synth.analysis, synth.layouts, rhs)
                {
                    // Pure scalar statement: replicated.
                    flush_nest(synth, &mut pending, &mut items)?;
                    items.push(SpmdItem::Serial(s.clone()));
                } else {
                    pending.push(s.clone());
                }
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                if is_pure_scalar_block(synth.analysis, synth.layouts, then_body)
                    && is_pure_scalar_block(synth.analysis, synth.layouts, else_body)
                {
                    flush_nest(synth, &mut pending, &mut items)?;
                    items.push(SpmdItem::Serial(s.clone()));
                } else {
                    // An IF with array assignments forms its own nest; do
                    // not fuse with neighbouring statements.
                    flush_nest(synth, &mut pending, &mut items)?;
                    let nest = build_nest(synth, std::slice::from_ref(s))?;
                    items.push(SpmdItem::Nest(nest));
                }
            }
            StmtKind::Do {
                var,
                lo,
                hi,
                body: do_body,
                ..
            } => {
                if is_serial_loop(synth.analysis, synth.layouts, var, do_body) {
                    flush_nest(synth, &mut pending, &mut items)?;
                    let inner = build_items(synth, do_body)?;
                    items.push(SpmdItem::SerialLoop {
                        var: var.clone(),
                        lo: lo.clone(),
                        hi: hi.clone(),
                        body: inner,
                    });
                } else {
                    // Each parallel DO nest stands alone: fusing separate
                    // source loops could violate dependences.
                    flush_nest(synth, &mut pending, &mut items)?;
                    let nest = build_nest(synth, std::slice::from_ref(s))?;
                    items.push(SpmdItem::Nest(nest));
                }
            }
        }
    }
    flush_nest(synth, &mut pending, &mut items)?;
    Ok(items)
}

fn flush_nest(
    synth: &mut Synth,
    pending: &mut Vec<Stmt>,
    items: &mut Vec<SpmdItem>,
) -> Result<(), CompileError> {
    if pending.is_empty() {
        return Ok(());
    }
    let body = std::mem::take(pending);
    let nest = build_nest(synth, &body)?;
    items.push(SpmdItem::Nest(nest));
    Ok(())
}

// ---------------------------------------------------------------------------
// Parallel nest synthesis: plan → build standalone → assemble
// ---------------------------------------------------------------------------
//
// The serial `build_items` interleaves item structuring with nest synthesis,
// assigning communication-event ids from one global counter as it goes. The
// parallel driver instead (1) *plans* the item skeleton up front (a pure
// structural pass over the AST — `plan_items` mirrors `build_items`'
// control flow exactly, flushing pending statements at the same points),
// (2) builds each extracted nest *standalone* on a worker thread with local
// event ids counted from 0, and (3) *assembles*: walking the skeleton in
// order, offsetting each nest's event ids by the running total so the final
// numbering is identical to what the serial single-counter pass produces.
// Synthesis statistics are per-nest and additive, so summing them in any
// order reconciles with the serial accumulation.

/// Skeleton of a unit's item list with nest bodies factored out by index.
pub(crate) enum ItemSkel {
    /// A replicated statement.
    Serial(Stmt),
    /// A replicated loop over more skeleton items.
    SerialLoop {
        /// Loop variable.
        var: String,
        /// Lower bound.
        lo: Expr,
        /// Upper bound.
        hi: Expr,
        /// Body skeleton.
        body: Vec<ItemSkel>,
    },
    /// The `i`-th extracted nest body (index into [`UnitPlan::nests`]).
    Nest(usize),
}

/// A planned unit: the item skeleton plus the extracted nest bodies, each
/// of which can be synthesized independently.
pub(crate) struct UnitPlan {
    /// Item structure, with nests by index.
    pub skel: Vec<ItemSkel>,
    /// Nest bodies, in serial traversal order.
    pub nests: Vec<Vec<Stmt>>,
}

/// Plans a unit's items without doing any set algebra. Mirrors
/// [`build_items`]' dispatch exactly, so `skel` reproduces the serial item
/// structure and `nests` lists nest bodies in serial traversal order.
pub(crate) fn plan_items(
    analysis: &Analysis,
    layouts: &BTreeMap<String, Layout>,
    body: &[Stmt],
) -> Result<UnitPlan, CompileError> {
    let mut nests = Vec::new();
    let skel = plan_body(analysis, layouts, body, &mut nests)?;
    Ok(UnitPlan { skel, nests })
}

fn plan_body(
    analysis: &Analysis,
    layouts: &BTreeMap<String, Layout>,
    body: &[Stmt],
    nests: &mut Vec<Vec<Stmt>>,
) -> Result<Vec<ItemSkel>, CompileError> {
    fn flush(pending: &mut Vec<Stmt>, items: &mut Vec<ItemSkel>, nests: &mut Vec<Vec<Stmt>>) {
        if !pending.is_empty() {
            items.push(ItemSkel::Nest(nests.len()));
            nests.push(std::mem::take(pending));
        }
    }
    let mut items = Vec::new();
    let mut pending: Vec<Stmt> = Vec::new();
    for s in body {
        match &s.kind {
            StmtKind::Read { .. } | StmtKind::Print { .. } => {
                flush(&mut pending, &mut items, nests);
                items.push(ItemSkel::Serial(s.clone()));
            }
            StmtKind::Call { name, .. } => {
                return Err(CompileError::Unsupported(format!(
                    "call to '{name}' (inline subroutines before SPMD synthesis)"
                )));
            }
            StmtKind::Assign { name, rhs, .. } => {
                if !analysis.is_array(name) && !reads_distributed_array(analysis, layouts, rhs) {
                    flush(&mut pending, &mut items, nests);
                    items.push(ItemSkel::Serial(s.clone()));
                } else {
                    pending.push(s.clone());
                }
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                flush(&mut pending, &mut items, nests);
                if is_pure_scalar_block(analysis, layouts, then_body)
                    && is_pure_scalar_block(analysis, layouts, else_body)
                {
                    items.push(ItemSkel::Serial(s.clone()));
                } else {
                    items.push(ItemSkel::Nest(nests.len()));
                    nests.push(vec![s.clone()]);
                }
            }
            StmtKind::Do {
                var,
                lo,
                hi,
                body: do_body,
                ..
            } => {
                flush(&mut pending, &mut items, nests);
                if is_serial_loop(analysis, layouts, var, do_body) {
                    let inner = plan_body(analysis, layouts, do_body, nests)?;
                    items.push(ItemSkel::SerialLoop {
                        var: var.clone(),
                        lo: lo.clone(),
                        hi: hi.clone(),
                        body: inner,
                    });
                } else {
                    items.push(ItemSkel::Nest(nests.len()));
                    nests.push(vec![s.clone()]);
                }
            }
        }
    }
    flush(&mut pending, &mut items, nests);
    Ok(items)
}

/// Output of one standalone nest synthesis: the nest item with event ids
/// local to the nest (counted from 0), the events themselves, and the
/// statistics and phase timings the nest accumulated.
pub(crate) struct NestOut {
    /// The synthesized nest.
    pub item: NestItem,
    /// The nest's communication events, ids local (0-based).
    pub events: Vec<CommEvent>,
    /// Synthesis statistics for this nest alone.
    pub stats: SpmdStats,
    /// Phase timings for this nest alone (merge into the unit's timers
    /// with `PhaseTimers::merge`).
    pub timers: crate::phases::PhaseTimers,
}

/// Synthesizes one planned nest in isolation (safe to run on a worker
/// thread: the layouts' shared `Context` is `Sync`). If `obs` is given,
/// the nest's phase spans are stitched under the anchor span via
/// [`dhpf_obs::Collector::begin_child_of`].
pub(crate) fn build_nest_standalone(
    analysis: &Analysis,
    layouts: &BTreeMap<String, Layout>,
    opts: &SpmdOptions,
    body: &[Stmt],
    label: &str,
    obs: Option<(dhpf_obs::Collector, dhpf_obs::SpanId)>,
) -> Result<NestOut, CompileError> {
    let octx = layouts.values().find_map(|l| l.rel.context().cloned());
    let mut timers = crate::phases::PhaseTimers::new();
    let wrapper = obs.map(|(c, anchor)| {
        let id = c.begin_child_of(anchor, label, "phase");
        timers.attach_collector(c.clone());
        (c, id)
    });
    let item = {
        let mut synth = Synth {
            analysis,
            layouts,
            opts,
            events: Vec::new(),
            stats: SpmdStats::default(),
            timers: Some(&mut timers),
            octx,
        };
        let item = build_nest(&mut synth, body);
        let events = synth.events;
        let stats = synth.stats;
        item.map(|item| (item, events, stats))
    };
    if let Some((c, id)) = wrapper {
        c.end(id);
    }
    timers.finish();
    let (item, events, stats) = item?;
    Ok(NestOut {
        item,
        events,
        stats,
        timers,
    })
}

/// Assembles standalone nest outputs back into a unit program with event
/// numbering identical to the serial pass: each nest's local event ids are
/// shifted by the number of events in all earlier nests (serial traversal
/// order), and the `CommSend`/`CommRecv` op references inside the nest are
/// rewritten to match. Returns the program plus the summed statistics.
pub(crate) fn assemble_spmd(
    analysis: &Analysis,
    layouts: &BTreeMap<String, Layout>,
    skel: &[ItemSkel],
    nest_outs: Vec<NestOut>,
) -> Result<(SpmdProgram, SpmdStats), CompileError> {
    let mut events: Vec<CommEvent> = Vec::new();
    let mut stats = SpmdStats::default();
    let mut items_by_nest: Vec<Option<NestItem>> = Vec::with_capacity(nest_outs.len());
    for out in nest_outs {
        let offset = events.len();
        let mut item = out.item;
        for op in &mut item.ops {
            match op {
                NestOp::CommSend(e) | NestOp::CommRecv(e) => *e += offset,
                NestOp::Assign(_) => {}
            }
        }
        for mut ev in out.events {
            ev.id += offset;
            events.push(ev);
        }
        stats.comm_events += out.stats.comm_events;
        stats.fully_vectorized += out.stats.fully_vectorized;
        stats.contiguous_events += out.stats.contiguous_events;
        stats.split_nests += out.stats.split_nests;
        stats.coalesced_groups += out.stats.coalesced_groups;
        // Degradations concatenate in serial traversal order, so the list
        // (and thus the whole stats value) reconciles with the serial pass.
        stats.degradations.extend(out.stats.degradations);
        items_by_nest.push(Some(item));
    }
    fn realize(skel: &[ItemSkel], nests: &mut [Option<NestItem>]) -> Vec<SpmdItem> {
        skel.iter()
            .map(|s| match s {
                ItemSkel::Serial(stmt) => SpmdItem::Serial(stmt.clone()),
                ItemSkel::SerialLoop { var, lo, hi, body } => SpmdItem::SerialLoop {
                    var: var.clone(),
                    lo: lo.clone(),
                    hi: hi.clone(),
                    body: realize(body, nests),
                },
                ItemSkel::Nest(i) => {
                    SpmdItem::Nest(nests[*i].take().expect("each nest realized once"))
                }
            })
            .collect()
    }
    let items = realize(skel, &mut items_by_nest);
    let program = finish_program(analysis, layouts, items, events)?;
    Ok((program, stats))
}

fn reads_distributed_array(
    analysis: &Analysis,
    layouts: &BTreeMap<String, Layout>,
    e: &Expr,
) -> bool {
    match e {
        Expr::Ref(name, args) => {
            (analysis.is_array(name) && !layouts[name].replicated)
                || args
                    .iter()
                    .any(|a| reads_distributed_array(analysis, layouts, a))
        }
        Expr::Bin(_, a, b) => {
            reads_distributed_array(analysis, layouts, a)
                || reads_distributed_array(analysis, layouts, b)
        }
        Expr::Un(_, a) => reads_distributed_array(analysis, layouts, a),
        _ => false,
    }
}

fn is_pure_scalar_block(
    analysis: &Analysis,
    layouts: &BTreeMap<String, Layout>,
    body: &[Stmt],
) -> bool {
    body.iter().all(|s| match &s.kind {
        StmtKind::Assign { name, rhs, .. } => {
            !analysis.is_array(name) && !reads_distributed_array(analysis, layouts, rhs)
        }
        StmtKind::Print { .. } => true,
        StmtKind::If {
            then_body,
            else_body,
            ..
        } => {
            is_pure_scalar_block(analysis, layouts, then_body)
                && is_pure_scalar_block(analysis, layouts, else_body)
        }
        _ => false,
    })
}

/// A DO loop is *serial* (replicated, e.g. a time-step or convergence loop)
/// when its index never appears in a subscript of a distributed array.
fn is_serial_loop(
    analysis: &Analysis,
    layouts: &BTreeMap<String, Layout>,
    var: &str,
    body: &[Stmt],
) -> bool {
    !var_in_distributed_subscript(analysis, layouts, var, body)
}

fn var_in_distributed_subscript(
    analysis: &Analysis,
    layouts: &BTreeMap<String, Layout>,
    var: &str,
    body: &[Stmt],
) -> bool {
    fn expr_has_var_subscript(
        analysis: &Analysis,
        layouts: &BTreeMap<String, Layout>,
        var: &str,
        e: &Expr,
    ) -> bool {
        match e {
            Expr::Ref(name, args) => {
                let in_sub = analysis.is_array(name)
                    && !layouts[name].replicated
                    && args.iter().any(|a| mentions_var(a, var));
                in_sub
                    || args
                        .iter()
                        .any(|a| expr_has_var_subscript(analysis, layouts, var, a))
            }
            Expr::Bin(_, a, b) => {
                expr_has_var_subscript(analysis, layouts, var, a)
                    || expr_has_var_subscript(analysis, layouts, var, b)
            }
            Expr::Un(_, a) => expr_has_var_subscript(analysis, layouts, var, a),
            _ => false,
        }
    }
    fn mentions_var(e: &Expr, var: &str) -> bool {
        match e {
            Expr::Var(v) => v == var,
            Expr::Ref(_, args) => args.iter().any(|a| mentions_var(a, var)),
            Expr::Bin(_, a, b) => mentions_var(a, var) || mentions_var(b, var),
            Expr::Un(_, a) => mentions_var(a, var),
            _ => false,
        }
    }
    body.iter().any(|s| match &s.kind {
        StmtKind::Assign {
            name, subs, rhs, ..
        } => {
            let lhs_hit = analysis.is_array(name)
                && !layouts[name].replicated
                && subs.iter().any(|a| mentions_var(a, var));
            lhs_hit || expr_has_var_subscript(analysis, layouts, var, rhs)
        }
        StmtKind::Do { body, .. } => var_in_distributed_subscript(analysis, layouts, var, body),
        StmtKind::If {
            then_body,
            else_body,
            ..
        } => {
            var_in_distributed_subscript(analysis, layouts, var, then_body)
                || var_in_distributed_subscript(analysis, layouts, var, else_body)
        }
        _ => false,
    })
}

// ---------------------------------------------------------------------------
// Nest synthesis
// ---------------------------------------------------------------------------

/// Synthesizes one nest with the degradation ladder wrapped around the
/// exact path (the failure model in DESIGN.md §12):
///
/// - rung 0 (inside [`build_nest_exact`]): Figure-4 loop splitting fails →
///   keep the exact events, emit the unsplit schedule;
/// - rung 1 (inside [`build_nest_exact`]): a level-0 read event's Figure-3
///   equations fail → substitute the conservative full exchange for that
///   event only;
/// - rung 2 (here): anything else degradable fails → roll back whatever
///   the exact attempt accumulated and rebuild the nest *replicated*, with
///   conservative pre-refresh events.
///
/// Cancellation is checked at entry (nests are the driver's unit of
/// progress) and is never absorbed by the ladder.
fn build_nest(synth: &mut Synth, body: &[Stmt]) -> Result<NestItem, CompileError> {
    if let Some(cx) = synth.octx.clone() {
        cx.check_cancelled()?;
        if let Err(e) = cx.inject_check("nest") {
            let e = CompileError::from(e);
            if !degradable(&e) {
                return Err(e);
            }
            synth.degrade(
                "nest",
                None,
                &e,
                "replicated nest with conservative refresh",
            );
            return build_nest_replicated(synth, body);
        }
    }
    let events_mark = synth.events.len();
    let stats_mark = synth.stats.clone();
    // Infallible set-algebra entry points (`then`, `domain`, projection)
    // surface a governed abort by *panicking*; when the budget has
    // tripped, catch the unwind and degrade like any other budget error.
    // Panics with an untripped budget are genuine bugs (or injected
    // panics probing unwind isolation) and are re-raised to the driver's
    // isolation boundary.
    let tripped_panic = |synth: &Synth| {
        synth
            .octx
            .as_ref()
            .and_then(|cx| cx.governor_stats().tripped)
    };
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        build_nest_exact(synth, body)
    }));
    let attempt = match attempt {
        Ok(r) => r,
        Err(payload) => match tripped_panic(synth) {
            Some(what) => Err(CompileError::Budget(what)),
            None => std::panic::resume_unwind(payload),
        },
    };
    match attempt {
        Ok(item) => Ok(item),
        Err(e) if degradable(&e) => {
            // Roll back everything the failed exact attempt accumulated
            // (half-built events, stats — including rung-0/1 records of
            // abandoned work) so the replicated rebuild starts clean.
            synth.events.truncate(events_mark);
            synth.stats = stats_mark;
            synth.degrade(
                "nest",
                None,
                &e,
                "replicated nest with conservative refresh",
            );
            build_nest_replicated(synth, body)
        }
        Err(e) => Err(e),
    }
}

/// The rung-2 fallback: the whole nest is *replicated*. Every distributed
/// array the nest references is first refreshed with a conservative full
/// exchange (each rank receives every other rank's owned section, making
/// all copies owner-current); then every rank executes the full iteration
/// set with no partitioning, in original statement order. Reductions are
/// dropped from the item: each rank computes the complete value locally,
/// so combining partials would over-count. After the nest every rank's
/// copy of each written array is identical and owner-current, so later
/// exact nests — and the simulator's owned-region result gathering — stay
/// correct.
fn build_nest_replicated(synth: &mut Synth, body: &[Stmt]) -> Result<NestItem, CompileError> {
    // The rebuild runs in a governor grace scope: it executes precisely
    // when the budget has tripped or a fault fired, and its own (cheap,
    // bounded) set algebra and codegen must not re-fail. Cancellation
    // stays live inside the scope.
    let _grace = dhpf_omega::governor_grace();
    let stmts = collect_in(synth.analysis, body);
    if stmts.is_empty() {
        return Ok(NestItem {
            code: Code::empty(),
            ops: Vec::new(),
            reductions: Vec::new(),
            split: false,
        });
    }
    // Refresh every distributed array the nest references, in sorted
    // order for determinism.
    let mut arrays: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for s in &stmts {
        for r in &s.reads {
            if synth.layouts.get(&r.array).is_some_and(|l| !l.replicated) {
                arrays.insert(&r.array);
            }
        }
        if let Some(l) = &s.lhs {
            if synth.layouts.get(&l.array).is_some_and(|ly| !ly.replicated) {
                arrays.insert(&l.array);
            }
        }
    }
    let mut ops: Vec<NestOp> = Vec::new();
    let mut chunks: Vec<Code> = Vec::new();
    for array in arrays {
        let array = array.to_string();
        let sets = crate::comm::conservative_comm_sets(&synth.layouts[&array]);
        if sets.recv_map.is_empty() {
            continue; // single-rank grid: nothing to refresh
        }
        let id = push_event(synth, &array, &sets.send_map, &sets.recv_map, 0)?;
        let op = ops.len();
        ops.push(NestOp::CommSend(id));
        chunks.push(Code::Stmt(StmtId(op)));
        let op = ops.len();
        ops.push(NestOp::CommRecv(id));
        chunks.push(Code::Stmt(StmtId(op)));
    }
    // Full-iteration code, group by group, mirroring the exact path's
    // grouping so statement order is preserved.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (k, s) in stmts.iter().enumerate() {
        match groups.last_mut() {
            Some(g) if stmts[g[0]].ctx.vars == s.ctx.vars => g.push(k),
            _ => groups.push(vec![k]),
        }
    }
    for g in &groups {
        let names: Vec<&str> = stmts[g[0]].ctx.vars.iter().map(String::as_str).collect();
        let mut mappings = Vec::new();
        for &k in g {
            let s = &stmts[k];
            let mut space = s.ctx.iteration_set();
            space.set_context(synth.octx.as_ref());
            let op = ops.len();
            ops.push(NestOp::Assign(compile_stmt(s)));
            mappings.push(Mapping {
                stmt: StmtId(op),
                space,
            });
        }
        let code = synth.time("mult mappings code generation", |_| {
            codegen(&mappings, &names, &CodegenOptions::default())
        })?;
        chunks.push(code);
    }
    Ok(NestItem {
        code: Code::Seq(chunks),
        ops,
        reductions: Vec::new(),
        split: false,
    })
}

fn build_nest_exact(synth: &mut Synth, body: &[Stmt]) -> Result<NestItem, CompileError> {
    let stmts = collect_in(synth.analysis, body);
    if stmts.is_empty() {
        return Ok(NestItem {
            code: Code::empty(),
            ops: Vec::new(),
            reductions: Vec::new(),
            split: false,
        });
    }
    // All writes in the nest (for dependence-based placement).
    let writes: Vec<(usize, ArrayRef)> = stmts
        .iter()
        .enumerate()
        .filter_map(|(k, s)| s.lhs.clone().map(|l| (k, l)))
        .collect();

    // Plan communication events: group potentially non-local reads by
    // (array, placement level, statement-group) for coalescing.
    #[derive(Default)]
    struct EventPlan {
        refs: Vec<CommRef>,
        /// (statement index, read index) pairs behind `refs`.
        sources: Vec<(usize, usize)>,
        level: u32,
        array: String,
        group_of_stmt: usize,
    }
    let mut plans: BTreeMap<(String, u32, usize), EventPlan> = BTreeMap::new();

    // Statement groups: consecutive statements with identical loop nests.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (k, s) in stmts.iter().enumerate() {
        match groups.last_mut() {
            Some(g) if stmts[g[0]].ctx.vars == s.ctx.vars => g.push(k),
            _ => groups.push(vec![k]),
        }
    }
    let group_of = |k: usize| groups.iter().position(|g| g.contains(&k)).unwrap();

    for (k, s) in stmts.iter().enumerate() {
        for (ri, r) in s.reads.iter().enumerate() {
            let Some(layout) = synth.layouts.get(&r.array) else {
                continue;
            };
            if layout.replicated {
                continue;
            }
            // Owner-computes self-reference: a read identical to the sole
            // ON_HOME term is local by definition (the paper's "early
            // phases identify potentially non-local references").
            if s.on_home.len() == 1 && s.on_home[0].array == r.array && s.on_home[0].subs == r.subs
            {
                continue;
            }
            let same_ctx_writes: Vec<&ArrayRef> = writes
                .iter()
                .filter(|(wk, w)| stmts[*wk].ctx.vars == s.ctx.vars && w.array == r.array)
                .map(|(_, w)| w)
                .collect();
            let mut level = synth.time("communication placement", |sy| {
                placement_level_in(r, &same_ctx_writes, &s.ctx, sy.octx.as_ref())
            });
            // Cross-context writes to the same array force conservative
            // placement inside the whole nest for safety.
            let cross = writes
                .iter()
                .any(|(wk, w)| w.array == r.array && stmts[*wk].ctx.vars != s.ctx.vars);
            if cross {
                level = s.ctx.depth();
            }
            let (cp, _) = synth.time("partitioning computation", |sy| {
                cp_map_at_level(s, sy.layouts, level)
            });
            let rm = r.ref_map(&slice_context(&s.ctx, level));
            let key = (
                r.array.clone(),
                level,
                if level > 0 { group_of(k) } else { usize::MAX },
            );
            let plan = plans.entry(key.clone()).or_insert_with(|| EventPlan {
                refs: Vec::new(),
                sources: Vec::new(),
                level,
                array: r.array.clone(),
                group_of_stmt: group_of(k),
            });
            plan.refs.push(CommRef {
                cp_map: cp,
                ref_map: rm,
            });
            plan.sources.push((k, ri));
        }
        // Non-local writes (CP differs from owner of the LHS).
        if let Some(l) = &s.lhs {
            let layout = &synth.layouts[&l.array];
            if !layout.replicated && !s.on_home.is_empty() {
                let owner_differs = s
                    .on_home
                    .iter()
                    .any(|oh| oh.array != l.array || oh.subs != l.subs);
                if owner_differs {
                    let (cp, _) = cp_map_at_level(s, synth.layouts, 0);
                    let rm = l.ref_map(&s.ctx);
                    let key = (format!("{}!w", l.array), 0, usize::MAX);
                    let plan = plans.entry(key).or_insert_with(|| EventPlan {
                        refs: Vec::new(),
                        sources: Vec::new(),
                        level: 0,
                        array: l.array.clone(),
                        group_of_stmt: group_of(k),
                    });
                    plan.refs.push(CommRef {
                        cp_map: cp,
                        ref_map: rm,
                    });
                }
            }
        }
    }

    // Materialize events.
    struct BuiltEvent {
        event: usize,
        level: u32,
        group: usize,
        is_write: bool,
    }
    let mut built: Vec<BuiltEvent> = Vec::new();
    let plan_list: Vec<((String, u32, usize), EventPlan)> = plans.into_iter().collect();
    for ((key_arr, _, _), plan) in plan_list {
        let is_write = key_arr.ends_with("!w");
        let layout = &synth.layouts[&plan.array];
        let sets = match synth.time("communication generation", |_| {
            if is_write {
                comm_sets(&[], &plan.refs, layout)
            } else {
                comm_sets(&plan.refs, &[], layout)
            }
        }) {
            Ok(sets) => sets,
            // Rung 1: a level-0 read exchange has a sound in-place
            // fallback — the conservative full exchange delivers a
            // superset of the data the exact event would have moved,
            // before the nest runs. Non-local writes and pipelined
            // placements have no such event-local fallback (a full
            // exchange would push stale copies over owner data or break
            // the send/recv pairing inside the loop), so they escalate
            // to the nest-level rung in `build_nest`. Cancellation is
            // never absorbed.
            Err(e)
                if !is_write
                    && plan.level == 0
                    && !matches!(e, dhpf_omega::OmegaError::Cancelled) =>
            {
                synth.degrade(
                    "comm_sets",
                    Some(&plan.array),
                    &e,
                    "conservative full exchange",
                );
                crate::comm::conservative_comm_sets(layout)
            }
            Err(e) => return Err(e.into()),
        };
        // An event is needed only if some processor touches *non-local*
        // data. With the virtual-processor layouts the send-side maps can
        // be spuriously non-empty (fictitious VPs overlap every real one),
        // so emptiness is judged on the non-local data sets: `m` is
        // symbolic, so emptiness here means "empty for every processor".
        let needed = if is_write {
            !sets.nl_write_data.is_empty()
        } else {
            !sets.nl_read_data.is_empty()
        };
        if !needed {
            continue;
        }
        if plan.refs.len() > 1 {
            synth.stats.coalesced_groups += 1;
        }
        if plan.level == 0 {
            // Vectorized out of the whole nest: one pre-/post-nest event.
            let id = push_event(synth, &plan.array, &sets.send_map, &sets.recv_map, 0)?;
            if !is_write {
                synth.stats.fully_vectorized += 1;
            }
            built.push(BuiltEvent {
                event: id,
                level: 0,
                group: plan.group_of_stmt,
                is_write,
            });
            continue;
        }
        // Pipelined placement inside loop `level`. The *receive* happens at
        // the consumer's iteration (the level-l maps are parameterized by
        // the outer loop variables), but the matching *send* must be driven
        // by the PRODUCER's own iteration: a processor sends boundary data
        // right after producing it. Data never written inside the nest is
        // exchanged once, before the nest.
        let consumer_stmt_idx = groups[plan.group_of_stmt][0];
        let ctx = &stmts[consumer_stmt_idx].ctx;
        // All data of this array written anywhere in the nest.
        let mut written = Set::empty(layout.rel.n_out());
        written.set_context(layout.rel.context());
        for (wk, w) in &writes {
            if w.array == plan.array {
                written = written.union(
                    &w.ref_map(&stmts[*wk].ctx)
                        .apply(&stmts[*wk].ctx.iteration_set()),
                );
            }
        }
        written.simplify();
        let mut all_indices = array_index_set(synth.analysis, &plan.array);
        all_indices.set_context(layout.rel.context());
        let unwritten = all_indices.try_subtract(&written)?;
        // Fully-vectorized maps for this plan's own references (no
        // consumer-iteration parameters): they drive the producer-side
        // send schedule.
        let refs0: Vec<CommRef> = plan
            .sources
            .iter()
            .map(|&(k, ri)| {
                let s = &stmts[k];
                let (cp, _) = cp_map_at_level(s, synth.layouts, 0);
                CommRef {
                    cp_map: cp,
                    ref_map: s.reads[ri].ref_map(&s.ctx),
                }
            })
            .collect();
        let sets0 = synth.time("communication generation", |_| {
            comm_sets(&refs0, &[], layout)
        })?;
        // Pre-nest exchange of never-written data.
        let pre_send = sets0.send_map.restrict_range(&unwritten);
        let pre_recv = sets0.recv_map.restrict_range(&unwritten);
        if !pre_recv.is_empty() {
            let id = push_event(synth, &plan.array, &pre_send, &pre_recv, 0)?;
            built.push(BuiltEvent {
                event: id,
                level: 0,
                group: plan.group_of_stmt,
                is_write: false,
            });
        }
        // In-loop event: receive what this iteration consumes (written
        // data only); send what this iteration just produced and someone
        // else will consume.
        let mut w_cur = Set::empty(layout.rel.n_out());
        w_cur.set_context(layout.rel.context());
        for (wk, w) in &writes {
            if w.array != plan.array || stmts[*wk].ctx.vars != ctx.vars {
                continue;
            }
            let (wcp, _) = cp_map_at_level(&stmts[*wk], synth.layouts, plan.level);
            let my_inner = wcp.apply(&crate::cp::myid_set(layout.proc_rank()));
            let rm = w.ref_map(&slice_context(&stmts[*wk].ctx, plan.level));
            w_cur = w_cur.union(&rm.apply(&my_inner));
        }
        w_cur.simplify();
        let in_send = sets0.send_map.restrict_range(&w_cur);
        let in_recv = sets.recv_map.restrict_range(&written);
        if !in_recv.is_empty() {
            let id = push_event(synth, &plan.array, &in_send, &in_recv, plan.level)?;
            built.push(BuiltEvent {
                event: id,
                level: plan.level,
                group: plan.group_of_stmt,
                is_write: false,
            });
        }
    }

    // Generate the partitioned code, group by group.
    let mut ops: Vec<NestOp> = Vec::new();
    let mut chunks: Vec<Code> = Vec::new();
    // Pre-nest receives/sends for level-0 read events are emitted before
    // the first group unless loop splitting moves the receive.
    let mut split_used = false;
    let level0_reads: Vec<usize> = built
        .iter()
        .filter(|b| b.level == 0 && !b.is_write)
        .map(|b| b.event)
        .collect();

    // Decide on loop splitting: single group, single statement, all
    // communication vectorized out of the nest, and no loop-carried
    // dependence (splitting reorders iterations, Figure 4 requires
    // "no dependences that prevent iteration reordering").
    let reorder_safe = || {
        stmts.iter().all(|s| {
            s.reads.iter().all(|r| {
                writes.iter().all(|(wk, w)| {
                    w.array != r.array
                        || stmts[*wk].ctx.vars != s.ctx.vars
                        || crate::dependence::carried_level_in(w, r, &s.ctx, synth.octx.as_ref())
                            .is_none()
                })
            })
        })
    };
    // All statements must share one loop nest and one partition for the
    // sections of Figure 4 to be computed once for the whole group.
    let shared_partition = || -> Result<Option<Set>, CompileError> {
        let s0 = &stmts[groups[0][0]];
        let (cp0, _) = cp_map_at_level(s0, synth.layouts, 0);
        let mine0 = cp0.apply(&myid_set(proc_rank_of(s0, synth.layouts)));
        for &k in &groups[0][1..] {
            let (cp, _) = cp_map_at_level(&stmts[k], synth.layouts, 0);
            let mine = cp.apply(&myid_set(proc_rank_of(&stmts[k], synth.layouts)));
            if !mine.try_equal(&mine0)? {
                return Ok(None);
            }
        }
        Ok(Some(mine0))
    };
    let try_split = synth.opts.loop_splitting
        && groups.len() == 1
        && !level0_reads.is_empty()
        && built.iter().all(|b| b.level == 0)
        && stmts.iter().all(|s| s.reduction.is_none())
        && reorder_safe();

    // Rung 0: a degradable failure anywhere in the Figure-4 analysis
    // abandons splitting for this nest (the exact events stay; only the
    // schedule overlap is lost) instead of failing the nest.
    let mine = if try_split {
        match shared_partition() {
            Ok(m) => m,
            Err(e) if degradable(&e) => {
                synth.degrade("split", None, &e, "unsplit schedule");
                None
            }
            Err(e) => return Err(e),
        }
    } else {
        None
    };
    let sections = if let Some(mine) = &mine {
        let s0 = &stmts[groups[0][0]];
        let (cp, _) = cp_map_at_level(s0, synth.layouts, 0);
        // Sections intersected across every statement's references.
        let reads_l: Vec<(CommRef, &Layout)> = stmts
            .iter()
            .flat_map(|s| {
                s.reads
                    .iter()
                    .filter(|r| !synth.layouts[&r.array].replicated)
                    .map(|r| {
                        (
                            CommRef {
                                cp_map: cp.clone(),
                                ref_map: r.ref_map(&s.ctx),
                            },
                            &synth.layouts[&r.array],
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let read_pairs: Vec<(&CommRef, &Layout)> = reads_l.iter().map(|(c, l)| (c, *l)).collect();
        match synth.time("loop splitting", |_| split_sets(mine, &read_pairs, &[])) {
            Ok(s) => Some(s),
            Err(e) => {
                let e = CompileError::from(e);
                if degradable(&e) {
                    synth.degrade("split", None, &e, "unsplit schedule");
                    None
                } else {
                    return Err(e);
                }
            }
        }
    } else {
        None
    };
    if let Some(sections) = sections {
        let s0 = &stmts[groups[0][0]];
        // SEND; compute local; RECV; compute non-local (Figure 4(b) without
        // non-local writes).
        let names: Vec<&str> = s0.ctx.vars.iter().map(String::as_str).collect();
        let stmt_ops: Vec<StmtId> = stmts
            .iter()
            .map(|s| {
                let op = ops.len();
                ops.push(NestOp::Assign(compile_stmt(s)));
                StmtId(op)
            })
            .collect();
        let gen = |space: &Set| -> Result<Code, dhpf_codegen::CodegenError> {
            let mappings: Vec<Mapping> = stmt_ops
                .iter()
                .map(|&id| Mapping {
                    stmt: id,
                    space: space.clone(),
                })
                .collect();
            // Splitting already established that iterations may be
            // reordered, so disjoint section pieces become independent
            // loop nests (no per-iteration membership guards).
            let opts = CodegenOptions {
                sequential_pieces: true,
                ..CodegenOptions::default()
            };
            codegen(&mappings, &names, &opts)
        };
        let local_code = synth.time("mult mappings code generation", |_| gen(&sections.local))?;
        let nl = sections.nl_ro.union(&sections.nl_wo).union(&sections.nl_rw);
        let nl_code = synth.time("mult mappings code generation", |_| gen(&nl))?;
        for &ev in &level0_reads {
            let op = ops.len();
            ops.push(NestOp::CommSend(ev));
            chunks.push(Code::Stmt(StmtId(op)));
        }
        chunks.push(local_code);
        for &ev in &level0_reads {
            let op = ops.len();
            ops.push(NestOp::CommRecv(ev));
            chunks.push(Code::Stmt(StmtId(op)));
        }
        chunks.push(nl_code);
        split_used = true;
        synth.stats.split_nests += 1;
    } else {
        // Plain schedule: send+recv all level-0 read events up front.
        for b in built.iter().filter(|b| b.level == 0 && !b.is_write) {
            let op = ops.len();
            ops.push(NestOp::CommSend(b.event));
            chunks.push(Code::Stmt(StmtId(op)));
            let op = ops.len();
            ops.push(NestOp::CommRecv(b.event));
            chunks.push(Code::Stmt(StmtId(op)));
        }
        for (gidx, g) in groups.iter().enumerate() {
            let names: Vec<&str> = stmts[g[0]].ctx.vars.iter().map(String::as_str).collect();
            let mut mappings = Vec::new();
            for &k in g {
                let s = &stmts[k];
                let (cp, _) = synth.time("partitioning computation", |sy| {
                    cp_map_at_level(s, sy.layouts, 0)
                });
                let mut mine = cp.apply(&myid_set(proc_rank_of(s, synth.layouts)));
                synth.time("loop bounds reduction", |_| mine.simplify_deep());
                let op = ops.len();
                ops.push(NestOp::Assign(compile_stmt(s)));
                mappings.push(Mapping {
                    stmt: StmtId(op),
                    space: mine,
                });
            }
            let mut code = synth.time("mult mappings code generation", |_| {
                codegen(&mappings, &names, &CodegenOptions::default())
            })?;
            // Inject inner-level communication (pipelines) into this group.
            for b in built.iter().filter(|b| b.level > 0 && b.group == gidx) {
                let send = ops.len();
                ops.push(NestOp::CommSend(b.event));
                let recv = ops.len();
                ops.push(NestOp::CommRecv(b.event));
                code = inject_at_level(
                    code,
                    b.level,
                    vec![Code::Stmt(StmtId(recv))],
                    vec![Code::Stmt(StmtId(send))],
                );
            }
            chunks.push(code);
        }
        // Post-nest write events (send our non-local writes to owners).
        for b in built.iter().filter(|b| b.is_write) {
            let op = ops.len();
            ops.push(NestOp::CommSend(b.event));
            chunks.push(Code::Stmt(StmtId(op)));
            let op = ops.len();
            ops.push(NestOp::CommRecv(b.event));
            chunks.push(Code::Stmt(StmtId(op)));
        }
    }
    let reductions: Vec<Reduction> = {
        let mut rs: Vec<Reduction> = Vec::new();
        for s in &stmts {
            if let Some(r) = &s.reduction {
                if !rs.contains(r) {
                    rs.push(r.clone());
                }
            }
        }
        rs
    };
    Ok(NestItem {
        code: Code::Seq(chunks),
        ops,
        reductions,
        split: split_used,
    })
}

/// Builds a [`CommEvent`] from send/recv maps and registers it.
fn push_event(
    synth: &mut Synth,
    array: &str,
    send_map: &Relation,
    recv_map: &Relation,
    level: u32,
) -> Result<usize, CompileError> {
    synth.time("communication generation", |sy| {
        push_event_inner(sy, array, send_map, recv_map, level)
    })
}

fn push_event_inner(
    synth: &mut Synth,
    array: &str,
    send_map: &Relation,
    recv_map: &Relation,
    level: u32,
) -> Result<usize, CompileError> {
    let layout = &synth.layouts[array];
    let local = array_index_set(synth.analysis, array);
    let recv_data = recv_map.range();
    let contiguous = synth.time("check if msg is contiguous", |_| {
        matches!(contiguity(&recv_data, &local), Contiguity::Contiguous)
    });
    if contiguous {
        synth.stats.contiguous_events += 1;
    }
    let id = synth.events.len();
    let send_code = synth.time("loops over comm partners", |sy| comm_code(sy, send_map))?;
    let recv_code = synth.time("loops over comm partners", |sy| comm_code(sy, recv_map))?;
    synth.events.push(CommEvent {
        id,
        array: array.to_string(),
        send_code,
        recv_code,
        proc_rank: layout.proc_rank(),
        data_rank: layout.rel.n_out(),
        contiguous,
        level,
    });
    synth.stats.comm_events += 1;
    Ok(id)
}

/// Compiles one statement for the executor.
fn compile_stmt(s: &StmtInfo) -> CompiledStmt {
    let StmtKind::Assign {
        name, subs, rhs, ..
    } = &s.stmt.kind
    else {
        unreachable!("nest statements are assignments");
    };
    CompiledStmt {
        lhs: name.clone(),
        subs: subs.clone(),
        rhs: rhs.clone(),
        guards: s.guards.clone(),
        cost: count_ops(rhs),
    }
}

fn count_ops(e: &Expr) -> u64 {
    match e {
        Expr::Bin(_, a, b) => 1 + count_ops(a) + count_ops(b),
        Expr::Un(_, a) => count_ops(a),
        Expr::Ref(_, args) => args.iter().map(count_ops).sum::<u64>() + 1,
        _ => 0,
    }
}

/// The full local index set of an array, as a [`Set`].
fn array_index_set(analysis: &Analysis, array: &str) -> Set {
    let info = &analysis.arrays[array];
    let rank = info.dims.len() as u32;
    let mut rel = Relation::universe(rank, 0);
    let mut c = dhpf_omega::Conjunct::new();
    for (d, (lo, hi)) in info.dims.iter().enumerate() {
        let v = dhpf_omega::LinExpr::var(Var::In(d as u32));
        let lo_e = crate::ir::affine_to_lin(lo, &[], &mut rel);
        let hi_e = crate::ir::affine_to_lin(hi, &[], &mut rel);
        c.add_geq(v.clone() - lo_e);
        c.add_geq(hi_e - v);
    }
    rel.conjuncts_mut().clear();
    rel.add_conjunct(c);
    Set::from_relation(rel)
}

/// Generates enumeration code for a comm map `[q1..qr] -> [d1..dk]`.
fn comm_code(synth: &mut Synth, map: &Relation) -> Result<Code, CompileError> {
    let r = map.n_in();
    let k = map.n_out();
    let set = rel_to_set(map);
    let mut names: Vec<String> = (0..r).map(|d| format!("q{}", d + 1)).collect();
    names.extend((0..k).map(|d| format!("d{}", d + 1)));
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let _ = synth;
    Ok(dhpf_codegen::codegen_set(
        &set,
        StmtId(0),
        &name_refs,
        &CodegenOptions::default(),
    )?)
}

/// Flattens a relation into a set over `[in..., out...]`.
pub fn rel_to_set(rel: &Relation) -> Set {
    let n_in = rel.n_in();
    let n_out = rel.n_out();
    let mut out = Relation::universe(n_in + n_out, 0);
    out.set_context(rel.context());
    for p in rel.params() {
        out.ensure_param(p);
    }
    let conjs: Vec<_> = rel
        .conjuncts()
        .iter()
        .map(|c| {
            c.rename(|v| match v {
                Var::Out(j) => Var::In(n_in + j),
                v => v,
            })
        })
        .collect();
    *out.conjuncts_mut() = conjs;
    Set::from_relation(out)
}

/// Inserts `pre`/`post` code around the body of the `level`-th nested loop
/// (1-based: `level = 1` is inside the outermost loop).
fn inject_at_level(code: Code, level: u32, pre: Vec<Code>, post: Vec<Code>) -> Code {
    fn go(code: Code, remaining: u32, pre: &[Code], post: &[Code]) -> Code {
        match code {
            Code::Loop {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                if remaining == 1 {
                    let mut seq = pre.to_vec();
                    seq.push(*body);
                    seq.extend(post.to_vec());
                    Code::Loop {
                        var,
                        lo,
                        hi,
                        step,
                        body: Box::new(Code::Seq(seq)),
                    }
                } else {
                    Code::Loop {
                        var,
                        lo,
                        hi,
                        step,
                        body: Box::new(go(*body, remaining - 1, pre, post)),
                    }
                }
            }
            Code::Seq(cs) => Code::Seq(
                cs.into_iter()
                    .map(|c| go(c, remaining, pre, post))
                    .collect(),
            ),
            Code::If { cond, body } => Code::If {
                cond,
                body: Box::new(go(*body, remaining, pre, post)),
            },
            other => other,
        }
    }
    go(code, level, &pre, &post)
}
