//! Renders a compiled [`SpmdProgram`] as a readable pseudo-Fortran rank
//! program: the `code` artifact of a [`CompileRequest`](crate::CompileRequest).
//!
//! The listing is what one rank executes — partitioned nests come out as
//! the generated loop/guard structure (via `dhpf_codegen::emit_fortran`)
//! with communication events as `call comm_send/comm_recv` markers, serial
//! statements and time loops are unparsed back to source form, and a
//! trailing appendix describes each communication event. It is meant for
//! human inspection and golden-file diffs, not recompilation.

use crate::spmd::{NestItem, NestOp, SpmdItem, SpmdProgram};
use dhpf_codegen::emit_fortran;
use dhpf_hpf::{expr_str, stmt_str};
use std::fmt::Write as _;

/// Renders the whole program as indented pseudo-Fortran.
pub fn render_program(p: &SpmdProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "! SPMD rank program: {}", p.name);
    let dims: Vec<String> = p
        .proc_dims
        .iter()
        .map(|d| match &d.coord {
            crate::layout::ProcCoord::Physical { count } => count.to_string(),
            other => format!("{other:?}"),
        })
        .collect();
    if !dims.is_empty() {
        let _ = writeln!(out, "! processors: ({})", dims.join(", "));
    }
    for (name, spec) in &p.arrays {
        let ds: Vec<String> = spec
            .dims
            .iter()
            .map(|(lo, hi)| format!("{}:{}", affine_str(lo), affine_str(hi)))
            .collect();
        let local = if spec.owned_code.is_some() {
            "distributed"
        } else {
            "replicated"
        };
        let _ = writeln!(out, "! array {name}({}) — {local}", ds.join(", "));
    }
    if !p.inputs.is_empty() {
        let _ = writeln!(out, "! inputs: {}", p.inputs.join(", "));
    }
    for item in &p.items {
        render_item(item, 0, &mut out);
    }
    if !p.events.is_empty() {
        out.push_str("!\n! communication events:\n");
        for e in &p.events {
            let _ = writeln!(
                out,
                "!   event {}: array {}, level {}, {}",
                e.id,
                e.array,
                e.level,
                if e.contiguous {
                    "contiguous (in-place)"
                } else {
                    "packed"
                }
            );
        }
    }
    out
}

fn affine_str(a: &dhpf_hpf::Affine) -> String {
    let mut s = String::new();
    for (name, coef) in &a.terms {
        match *coef {
            1 if s.is_empty() => s.push_str(name),
            1 => {
                let _ = write!(s, " + {name}");
            }
            -1 => {
                let _ = write!(s, "{}{name}", if s.is_empty() { "-" } else { " - " });
            }
            c if s.is_empty() => {
                let _ = write!(s, "{c}*{name}");
            }
            c if c < 0 => {
                let _ = write!(s, " - {}*{name}", -c);
            }
            c => {
                let _ = write!(s, " + {c}*{name}");
            }
        }
    }
    if s.is_empty() {
        return a.constant.to_string();
    }
    match a.constant {
        0 => {}
        c if c < 0 => {
            let _ = write!(s, " - {}", -c);
        }
        c => {
            let _ = write!(s, " + {c}");
        }
    }
    s
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_item(item: &SpmdItem, depth: usize, out: &mut String) {
    match item {
        SpmdItem::Serial(s) => out.push_str(&stmt_str(s, depth)),
        SpmdItem::SerialLoop { var, lo, hi, body } => {
            indent(out, depth);
            let _ = writeln!(out, "do {var} = {}, {}", expr_str(lo), expr_str(hi));
            for b in body {
                render_item(b, depth + 1, out);
            }
            indent(out, depth);
            out.push_str("enddo\n");
        }
        SpmdItem::Nest(nest) => render_nest(nest, depth, out),
    }
}

fn render_nest(nest: &NestItem, depth: usize, out: &mut String) {
    let text = emit_fortran(&nest.code, &|id| nest_op_text(nest, id.0));
    for line in text.lines() {
        indent(out, depth);
        out.push_str(line);
        out.push('\n');
    }
    for r in &nest.reductions {
        indent(out, depth);
        let _ = writeln!(out, "call reduce_{:?}({})", r.op, r.scalar);
    }
}

fn nest_op_text(nest: &NestItem, id: usize) -> String {
    match nest.ops.get(id) {
        Some(NestOp::Assign(s)) => {
            let target = if s.subs.is_empty() {
                s.lhs.clone()
            } else {
                let subs: Vec<String> = s.subs.iter().map(expr_str).collect();
                format!("{}({})", s.lhs, subs.join(","))
            };
            let body = format!("{target} = {}", expr_str(&s.rhs));
            if s.guards.is_empty() {
                body
            } else {
                let gs: Vec<String> = s.guards.iter().map(expr_str).collect();
                format!("if ({}) {body}", gs.join(" .and. "))
            }
        }
        Some(NestOp::CommSend(e)) => format!("call comm_send({e})"),
        Some(NestOp::CommRecv(e)) => format!("call comm_recv({e})"),
        None => format!("! unknown op {id}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile, CompileOptions};

    const JACOBI: &str = "
program jacobi
real a(64,64), b(64,64)
integer iter
!HPF$ processors p(4)
!HPF$ template t(64,64)
!HPF$ align a(i,j) with t(i,j)
!HPF$ align b(i,j) with t(i,j)
!HPF$ distribute t(block,*) onto p
do iter = 1, 3
  do i = 2, 63
    do j = 2, 63
      a(i,j) = 0.25 * (b(i-1,j) + b(i+1,j) + b(i,j-1) + b(i,j+1))
    enddo
  enddo
enddo
end
";

    #[test]
    fn renders_nests_comm_and_structure() {
        let c = compile(JACOBI, &CompileOptions::default()).unwrap();
        let text = render_program(&c.program);
        assert!(text.contains("! SPMD rank program: jacobi"), "{text}");
        assert!(text.contains("do iter = 1, 3"), "{text}");
        assert!(text.contains("call comm_send(0)"), "{text}");
        assert!(text.contains("call comm_recv(0)"), "{text}");
        assert!(text.contains("a(i,j) ="), "{text}");
        assert!(text.contains("! communication events:"), "{text}");
    }
}
