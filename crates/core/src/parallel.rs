//! Minimal scoped-thread execution primitives for the parallel driver.
//!
//! Zero dependencies: a work-stealing-free ordered parallel map (atomic
//! work index over a fixed task list) and a dependency-DAG executor
//! (indegree counting with a mutex-guarded ready queue). Both run on
//! `std::thread::scope`, so tasks may borrow from the caller's stack, and
//! both preserve *determinism of results*: outputs land in slots indexed
//! by task id, independent of which worker ran what when.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Runs `f(0..n)` on `threads` scoped workers, returning the results in
/// task order. `threads <= 1` degenerates to a plain serial loop on the
/// calling thread (no spawn, byte-identical scheduling to serial code).
pub fn ordered_map<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled its slot"))
        .collect()
}

/// Shared scheduler state of [`run_dag`].
struct DagState {
    ready: Vec<usize>,
    indegree: Vec<usize>,
    remaining: usize,
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Executes a dependency DAG of `n` tasks on `threads` scoped workers,
/// returning per-task panic messages (`None` = the task body completed).
///
/// `deps[i]` lists the tasks that must complete before task `i` starts.
/// Ready tasks are dispatched in ascending task id (the queue is kept
/// sorted), so a single-threaded run visits tasks in topological id order
/// — the same order a serial loop over a topologically-sorted list would.
/// Tasks only signal completion; results should be written into
/// caller-owned per-task slots (e.g. a `Vec<Mutex<Option<T>>>`).
///
/// Task bodies are isolated with `catch_unwind`: a panicking task still
/// signals completion and releases its dependents (whose result slots
/// then simply stay empty), so one bad nest can never wedge sibling tasks
/// on the condvar or abort the process. The caller inspects the returned
/// messages and turns empty slots into typed errors.
pub fn run_dag<F>(threads: usize, deps: &[Vec<usize>], f: F) -> Vec<Option<String>>
where
    F: Fn(usize) + Sync,
{
    let n = deps.len();
    if n == 0 {
        return Vec::new();
    }
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ds) in deps.iter().enumerate() {
        indegree[i] = ds.len();
        for &d in ds {
            assert!(d < n, "dependency on unknown task");
            dependents[d].push(i);
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    assert!(!ready.is_empty(), "dependency cycle: no root task");
    ready.sort_unstable_by(|a, b| b.cmp(a)); // pop() yields the lowest id
    let state = Mutex::new(DagState {
        ready,
        indegree,
        remaining: n,
    });
    let wake = Condvar::new();
    let panics: Vec<Mutex<Option<String>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.max(1).min(n) {
            s.spawn(|| loop {
                let task = {
                    let mut st = state.lock().unwrap();
                    loop {
                        if st.remaining == 0 {
                            return;
                        }
                        if let Some(t) = st.ready.pop() {
                            break t;
                        }
                        st = wake.wait(st).unwrap();
                    }
                };
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(task)));
                if let Err(payload) = r {
                    *panics[task].lock().unwrap() = Some(panic_message(payload));
                }
                let mut st = state.lock().unwrap();
                st.remaining -= 1;
                for &d in &dependents[task] {
                    st.indegree[d] -= 1;
                    if st.indegree[d] == 0 {
                        st.ready.push(d);
                        st.ready.sort_unstable_by(|a, b| b.cmp(a));
                    }
                }
                drop(st);
                wake.notify_all();
            });
        }
    });
    let st = state.into_inner().unwrap();
    assert_eq!(st.remaining, 0, "dependency cycle: tasks left unrunnable");
    panics
        .into_iter()
        .map(|m| m.into_inner().unwrap())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ordered_map_preserves_order() {
        for threads in [1, 2, 4, 8] {
            let out = ordered_map(threads, 17, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn ordered_map_empty_and_single() {
        assert_eq!(ordered_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(ordered_map(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn dag_respects_dependencies() {
        // Diamond per unit: 0 -> {1,2} -> 3, plus an independent chain.
        let deps: Vec<Vec<usize>> = vec![vec![], vec![0], vec![0], vec![1, 2], vec![], vec![4]];
        for threads in [1, 2, 4] {
            let stamp = AtomicU64::new(0);
            let finished: Vec<AtomicU64> = (0..deps.len()).map(|_| AtomicU64::new(0)).collect();
            let panics = run_dag(threads, &deps, |i| {
                let t = stamp.fetch_add(1, Ordering::SeqCst) + 1;
                finished[i].store(t, Ordering::SeqCst);
            });
            assert!(panics.iter().all(Option::is_none));
            let at = |i: usize| finished[i].load(Ordering::SeqCst);
            assert!((0..deps.len()).all(|i| at(i) > 0));
            assert!(at(0) < at(1) && at(0) < at(2));
            assert!(at(1) < at(3) && at(2) < at(3));
            assert!(at(4) < at(5));
        }
    }

    #[test]
    fn dag_isolates_panicking_tasks() {
        // Task 1 panics; its dependent 3 must still run (with task 1's
        // result slot empty), siblings must be unaffected, and the panic
        // message must be reported — at every thread count, with no hang.
        let deps: Vec<Vec<usize>> = vec![vec![], vec![0], vec![0], vec![1, 2], vec![], vec![4]];
        for threads in [1, 2, 4, 8] {
            let ran: Vec<AtomicU64> = (0..deps.len()).map(|_| AtomicU64::new(0)).collect();
            let panics = run_dag(threads, &deps, |i| {
                ran[i].store(1, Ordering::SeqCst);
                if i == 1 {
                    panic!("nest 1 exploded");
                }
            });
            for (i, p) in panics.iter().enumerate() {
                if i == 1 {
                    assert_eq!(p.as_deref(), Some("nest 1 exploded"));
                } else {
                    assert!(p.is_none(), "task {i} reported {p:?}");
                }
            }
            assert!(
                (0..deps.len()).all(|i| ran[i].load(Ordering::SeqCst) == 1),
                "every task ran (threads = {threads})"
            );
        }
    }

    #[test]
    fn dag_survives_every_task_panicking() {
        let deps: Vec<Vec<usize>> = (0..8)
            .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
            .collect();
        for threads in [1, 4] {
            let panics = run_dag(threads, &deps, |i| panic!("boom {i}"));
            assert!(panics.iter().all(Option::is_some));
        }
    }
}
