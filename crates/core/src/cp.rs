//! Computation partitionings: the general ON_HOME model (paper §3.1).
//!
//! `CPMap = ∪_j (Layout_Aj ∘ RefMap_j⁻¹) ∩range loop` — an explicit integer
//! tuple mapping from processors to the statement instances they execute.

use crate::ir::{ArrayRef, LoopContext, StmtInfo};
use crate::layout::Layout;
use dhpf_omega::{LinExpr, Relation, Set, Var};
use std::collections::BTreeMap;

/// The singleton processor set `{ [p1..pr] : p_d = m_d }` for the
/// representative processor `myid`, whose coordinates are the symbolic
/// parameters `m1..mr`.
pub fn myid_set(proc_rank: u32) -> Set {
    let mut rel = Relation::universe(proc_rank, 0)
        .with_in_names((0..proc_rank).map(|d| format!("p{}", d + 1)));
    let mut c = dhpf_omega::Conjunct::new();
    for d in 0..proc_rank {
        let m = rel.ensure_param(&format!("m{}", d + 1));
        c.add_eq(LinExpr::var(Var::In(d)) - LinExpr::var(Var::Param(m)));
    }
    rel.conjuncts_mut().clear();
    rel.add_conjunct(c);
    Set::from_relation(rel)
}

/// Computes the statement's `CPMap: proc -> loop` at a given loop level:
/// loop variables outside `level..` are treated as symbolic (they become
/// parameters named after the loop variable), which is how communication
/// hoisted to an intermediate level sees the iteration space (Figure 3,
/// equation 1).
///
/// Returns the CPMap and the inner [`LoopContext`] it ranges over.
pub fn cp_map_at_level(
    stmt: &StmtInfo,
    layouts: &BTreeMap<String, Layout>,
    level: u32,
) -> (Relation, LoopContext) {
    let inner = slice_context(&stmt.ctx, level);
    let loop_set = inner.iteration_set();
    let proc_rank = proc_rank_of(stmt, layouts);
    let mut acc: Option<Relation> = None;
    for oh in effective_on_home(stmt, layouts) {
        let layout = &layouts[&oh.array];
        if layout.replicated {
            continue;
        }
        let refmap = ref_map_in(&oh, &inner);
        // Layout: proc -> data; RefMap⁻¹: data -> loop.
        let term = layout.rel.then(&refmap.inverse());
        acc = Some(match acc {
            None => term,
            Some(a) => a.union(&term),
        });
    }
    let cp = match acc {
        Some(a) => a.restrict_range(&loop_set),
        None => {
            // Fully replicated statement: every processor runs it.
            Relation::universe(proc_rank, inner.depth()).restrict_range(&loop_set)
        }
    };
    (cp, inner)
}

/// The statement's `CPMap: proc -> loop` over its full loop nest.
pub fn cp_map(stmt: &StmtInfo, layouts: &BTreeMap<String, Layout>) -> Relation {
    cp_map_at_level(stmt, layouts, 0).0
}

/// ON_HOME terms actually used for partitioning: the declared terms, or the
/// LHS by default; scalar reductions partition on their first distributed
/// read so each processor reduces its local section.
pub fn effective_on_home(stmt: &StmtInfo, layouts: &BTreeMap<String, Layout>) -> Vec<ArrayRef> {
    let declared: Vec<ArrayRef> = stmt
        .on_home
        .iter()
        .filter(|r| layouts.contains_key(&r.array))
        .cloned()
        .collect();
    let usable: Vec<ArrayRef> = declared
        .into_iter()
        .filter(|r| !layouts[&r.array].replicated)
        .collect();
    if !usable.is_empty() {
        return usable;
    }
    if stmt.reduction.is_some() {
        if let Some(r) = stmt
            .reads
            .iter()
            .find(|r| layouts.get(&r.array).is_some_and(|l| !l.replicated))
        {
            return vec![r.clone()];
        }
    }
    Vec::new()
}

/// Processor-space rank relevant to this statement.
pub fn proc_rank_of(stmt: &StmtInfo, layouts: &BTreeMap<String, Layout>) -> u32 {
    for r in stmt
        .on_home
        .iter()
        .chain(stmt.lhs.iter())
        .chain(stmt.reads.iter())
    {
        if let Some(l) = layouts.get(&r.array) {
            if !l.replicated {
                return l.proc_rank();
            }
        }
    }
    layouts.values().map(Layout::proc_rank).max().unwrap_or(1)
}

/// Restricts a loop context to the loops at `level..`, turning outer loop
/// variables into free symbols.
pub fn slice_context(ctx: &LoopContext, level: u32) -> LoopContext {
    LoopContext {
        vars: ctx.vars[level as usize..].to_vec(),
        bounds: ctx.bounds[level as usize..].to_vec(),
    }
}

/// `RefMap` for a reference within an explicit (possibly sliced) context.
pub fn ref_map_in(r: &ArrayRef, ctx: &LoopContext) -> Relation {
    r.ref_map(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::collect_statements;
    use crate::layout::build_layouts;
    use dhpf_hpf::{analyze, parse};

    const FIG2: &str = "
program fig2
real a(0:99,100), b(100,100)
integer n
!HPF$ processors p(4)
!HPF$ template t(100,100)
!HPF$ align a(i,j) with t(i+1,j)
!HPF$ align b(i,j) with t(*,i)
!HPF$ distribute t(*,block) onto p
read *, n
do i = 1, n
  do j = 2, n+1
!HPF$ on_home b(j-1,i)
    a(i,j) = b(j-1,i)
  enddo
enddo
end
";

    #[test]
    fn figure2_cpmap() {
        // Paper: CPMap = {[p] -> [l1,l2] : 1 <= l1 <= min(N,100) &&
        //                 max(2, 25p+2) <= l2 <= min(N+1, 101, 25p+26)}
        // (0-based p). ON_HOME B(j-1,i): owner of b(j-1,i) has 25p+1 <= j-1
        // <= 25p+25.
        let prog = parse(FIG2).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let layouts = build_layouts(&a);
        let stmts = collect_statements(&a);
        let cp = cp_map(&stmts[0], &layouts);
        let n = [("n", 60i64)];
        // p=0 executes j in [2, 26]
        assert!(cp.contains_pair(&[0], &[1, 2], &n));
        assert!(cp.contains_pair(&[0], &[1, 26], &n));
        assert!(!cp.contains_pair(&[0], &[1, 27], &n));
        // p=1 executes j in [27, 51]
        assert!(cp.contains_pair(&[1], &[5, 27], &n));
        assert!(cp.contains_pair(&[1], &[60, 51], &n));
        assert!(!cp.contains_pair(&[1], &[5, 52], &n));
        // l2 bounded by n+1 = 61
        assert!(cp.contains_pair(&[2], &[3, 52], &n));
        assert!(cp.contains_pair(&[2], &[3, 61], &n));
        assert!(!cp.contains_pair(&[2], &[3, 62], &n));
        // l1 bounded by n
        assert!(!cp.contains_pair(&[1], &[61, 30], &n));
    }

    #[test]
    fn my_iterations_from_cpmap() {
        let prog = parse(FIG2).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let layouts = build_layouts(&a);
        let stmts = collect_statements(&a);
        let cp = cp_map(&stmts[0], &layouts);
        let mine = cp.apply(&myid_set(1));
        // With m1 = 1, n = 60: iterations i in [1,60], j in [27,51].
        let params = [("m1", 1i64), ("n", 60)];
        assert!(mine.contains(&[1, 27], &params));
        assert!(mine.contains(&[60, 51], &params));
        assert!(!mine.contains(&[1, 26], &params));
        assert!(!mine.contains(&[1, 52], &params));
    }

    #[test]
    fn cp_map_at_inner_level_parameterizes_outer() {
        let prog = parse(FIG2).unwrap();
        let a = analyze(&prog.units[0]).unwrap();
        let layouts = build_layouts(&a);
        let stmts = collect_statements(&a);
        let (cp, inner) = cp_map_at_level(&stmts[0], &layouts, 1);
        assert_eq!(inner.vars, vec!["j".to_string()]);
        // Outer loop i becomes a parameter; it does not affect ownership here.
        let params = [("n", 60i64), ("i", 3)];
        assert!(cp.contains_pair(&[0], &[2], &params));
        assert!(!cp.contains_pair(&[0], &[27], &params));
    }
}
