//! Compilation phase timing (the instrumentation behind Table 1), plus the
//! Omega-cache effectiveness counters reported alongside the wall-clock rows.

use dhpf_omega::CacheStats;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Accumulated wall-clock time per named compilation phase.
///
/// Phases nest; times recorded for a phase include its children (matching
/// the paper's Table 1, where indented rows refine their parents).
#[derive(Clone, Debug, Default)]
pub struct PhaseTimers {
    totals: BTreeMap<String, Duration>,
    order: Vec<String>,
    start: Option<Instant>,
    overall: Duration,
    cache: Option<CacheStats>,
}

impl PhaseTimers {
    /// Creates an empty set of timers and starts the overall clock.
    pub fn new() -> Self {
        PhaseTimers {
            start: Some(Instant::now()),
            ..Default::default()
        }
    }

    /// Times `f` under the phase `name`, accumulating across calls.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> T) -> T {
        let t0 = Instant::now();
        let out = f(self);
        let dt = t0.elapsed();
        if !self.totals.contains_key(name) {
            self.order.push(name.to_string());
        }
        *self.totals.entry(name.to_string()).or_default() += dt;
        out
    }

    /// Adds an externally measured duration to the phase `name`.
    pub fn add(&mut self, name: &str, dt: Duration) {
        if !self.totals.contains_key(name) {
            self.order.push(name.to_string());
        }
        *self.totals.entry(name.to_string()).or_default() += dt;
    }

    /// Stops the overall clock.
    pub fn finish(&mut self) {
        if let Some(t0) = self.start.take() {
            self.overall = t0.elapsed();
        }
    }

    /// Total compilation time.
    pub fn total(&self) -> Duration {
        self.overall
    }

    /// Time accumulated under `name`.
    pub fn phase(&self, name: &str) -> Duration {
        self.totals.get(name).copied().unwrap_or_default()
    }

    /// Records the Omega-context cache counters of the compilation these
    /// timers instrumented, so Table-1 renderers can report cache
    /// effectiveness next to the wall-clock rows.
    pub fn set_cache_stats(&mut self, stats: CacheStats) {
        self.cache = Some(stats);
    }

    /// The recorded Omega-context cache counters, if any.
    pub fn cache_stats(&self) -> Option<&CacheStats> {
        self.cache.as_ref()
    }

    /// `(phase, time, percent-of-total)` rows in first-use order.
    pub fn rows(&self) -> Vec<(String, Duration, f64)> {
        let total = self.overall.as_secs_f64().max(1e-12);
        self.order
            .iter()
            .map(|name| {
                let d = self.totals[name];
                (name.clone(), d, 100.0 * d.as_secs_f64() / total)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_calls() {
        let mut t = PhaseTimers::new();
        t.time("a", |_| std::thread::sleep(Duration::from_millis(2)));
        t.time("a", |_| std::thread::sleep(Duration::from_millis(2)));
        t.time("b", |_| ());
        t.finish();
        assert!(t.phase("a") >= Duration::from_millis(4));
        assert!(t.total() >= t.phase("a"));
        let rows = t.rows();
        assert_eq!(rows[0].0, "a");
        assert_eq!(rows[1].0, "b");
        assert!(rows[0].2 > 0.0);
    }

    #[test]
    fn nesting_supported() {
        let mut t = PhaseTimers::new();
        t.time("outer", |t| {
            t.time("inner", |_| std::thread::sleep(Duration::from_millis(1)));
        });
        t.finish();
        assert!(t.phase("outer") >= t.phase("inner"));
    }
}
