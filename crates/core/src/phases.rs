//! Compilation phase timing (the instrumentation behind Table 1), plus the
//! Omega-cache effectiveness counters reported alongside the wall-clock rows.
//!
//! Phases form a tree: `time`/`open`/`close` maintain an explicit stack, so
//! every phase knows its parent and the accounting distinguishes
//! **cumulative** time (includes children — what the paper's Table 1 rows
//! report, with indented rows refining their parents) from **self** time
//! (children subtracted). The old flat map double-counted nested phases
//! with no way to tell; [`PhaseTimers::rows_nested`] now exposes the
//! linkage explicitly.
//!
//! When a [`dhpf_obs::Collector`] is attached, every phase also opens a
//! span in the shared trace, so Omega set-operation metrics recorded by the
//! `Context` during a phase are attributed to that phase's span.

use dhpf_obs::{Collector, SpanId};
use dhpf_omega::CacheStats;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// One row of the nested Table-1 breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseRow {
    /// Phase name.
    pub name: String,
    /// Nesting depth (0 = top level; children of "module compilation" are
    /// depth 1, and so on — matching Table 1's indentation).
    pub depth: usize,
    /// Cumulative time: includes nested child phases.
    pub cumulative: Duration,
    /// Self time: cumulative minus the time of closed child phases.
    pub self_time: Duration,
    /// Cumulative time as a percentage of the overall compilation.
    pub percent: f64,
}

/// Accumulated wall-clock time per named compilation phase.
///
/// Phase times are *cumulative* (a phase includes its children, matching
/// the paper's Table 1); the parent/child linkage and self times are
/// available through [`PhaseTimers::rows_nested`] and
/// [`PhaseTimers::self_time`].
#[derive(Clone, Debug, Default)]
pub struct PhaseTimers {
    totals: BTreeMap<String, Duration>,
    /// Per phase: total time of its *closed children*, for self-time.
    child_time: BTreeMap<String, Duration>,
    /// First-seen parent of each phase (None = top level).
    parent: BTreeMap<String, Option<String>>,
    order: Vec<String>,
    /// Currently open phases, outermost first.
    stack: Vec<String>,
    start: Option<Instant>,
    overall: Duration,
    cache: Option<CacheStats>,
    /// Attached trace collector and the span ids of the open phases
    /// (parallel to `stack`).
    obs: Option<Collector>,
    spans: Vec<SpanId>,
}

impl PhaseTimers {
    /// Creates an empty set of timers and starts the overall clock.
    pub fn new() -> Self {
        PhaseTimers {
            start: Some(Instant::now()),
            ..Default::default()
        }
    }

    /// Attaches a trace collector: every phase subsequently opened also
    /// opens a `"phase"` span in `c`'s tree.
    pub fn attach_collector(&mut self, c: Collector) {
        self.obs = Some(c);
    }

    /// The attached trace collector, if any.
    pub fn collector(&self) -> Option<&Collector> {
        self.obs.as_ref()
    }

    /// Opens the phase `name` (nested under the innermost open phase).
    /// Pair with [`PhaseTimers::close`]; prefer [`PhaseTimers::time`] when
    /// borrowing allows.
    pub fn open(&mut self, name: &str) {
        if !self.totals.contains_key(name) {
            self.order.push(name.to_string());
            self.totals.insert(name.to_string(), Duration::ZERO);
            self.parent
                .insert(name.to_string(), self.stack.last().cloned());
        }
        self.stack.push(name.to_string());
        if let Some(c) = &self.obs {
            self.spans.push(c.begin(name, "phase"));
        }
    }

    /// Closes the innermost open phase, attributing `dt` to it (and to its
    /// parent's child-time, for self-time accounting). `name` must match
    /// the innermost open phase; mismatches are ignored defensively.
    pub fn close(&mut self, name: &str, dt: Duration) {
        if self.stack.last().map(String::as_str) != Some(name) {
            return;
        }
        self.stack.pop();
        if let (Some(c), Some(id)) = (&self.obs, self.spans.pop()) {
            c.end(id);
        }
        *self.totals.entry(name.to_string()).or_default() += dt;
        if let Some(p) = self.stack.last() {
            *self.child_time.entry(p.clone()).or_default() += dt;
        }
    }

    /// Times `f` under the phase `name`, accumulating across calls.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> T) -> T {
        self.open(name);
        let t0 = Instant::now();
        let out = f(self);
        let dt = t0.elapsed();
        self.close(name, dt);
        out
    }

    /// Adds an externally measured duration to the phase `name`, nested
    /// under the innermost open phase.
    pub fn add(&mut self, name: &str, dt: Duration) {
        if !self.totals.contains_key(name) {
            self.order.push(name.to_string());
            self.totals.insert(name.to_string(), Duration::ZERO);
            self.parent
                .insert(name.to_string(), self.stack.last().cloned());
        }
        *self.totals.entry(name.to_string()).or_default() += dt;
        if let Some(p) = self.stack.last() {
            *self.child_time.entry(p.clone()).or_default() += dt;
        }
        if let Some(c) = &self.obs {
            c.record_span(name, "phase", dt);
        }
    }

    /// Stops the overall clock.
    pub fn finish(&mut self) {
        if let Some(t0) = self.start.take() {
            self.overall = t0.elapsed();
        }
    }

    /// Total compilation time.
    pub fn total(&self) -> Duration {
        self.overall
    }

    /// Cumulative time accumulated under `name` (includes child phases).
    pub fn phase(&self, name: &str) -> Duration {
        self.totals.get(name).copied().unwrap_or_default()
    }

    /// Self time of `name`: cumulative minus the time of its child phases
    /// (saturating, so timer jitter cannot underflow).
    pub fn self_time(&self, name: &str) -> Duration {
        self.phase(name)
            .saturating_sub(self.child_time.get(name).copied().unwrap_or_default())
    }

    /// The first-seen parent phase of `name` (None = top level or unknown).
    pub fn parent_of(&self, name: &str) -> Option<&str> {
        self.parent.get(name)?.as_deref()
    }

    /// Nesting depth of `name` (0 = top level).
    pub fn depth_of(&self, name: &str) -> usize {
        let mut d = 0;
        let mut cur = self.parent_of(name);
        while let Some(p) = cur {
            d += 1;
            cur = self.parent_of(p);
        }
        d
    }

    /// The span id of the innermost open phase in the attached collector's
    /// tree, if a collector is attached and a phase is open. The parallel
    /// driver passes this to `Collector::begin_child_of` so worker-thread
    /// spans stitch under the phase that spawned them.
    pub fn current_span(&self) -> Option<SpanId> {
        self.spans.last().copied()
    }

    /// Merges another timer set (a worker's per-nest measurements) into
    /// this one, deterministically: `other`'s top-level phases are adopted
    /// as children of this timer's innermost open phase (the *anchor*),
    /// crediting the anchor's child-time so self-time accounting matches
    /// the serial pipeline; nested parents carry over unchanged. Phase
    /// first-use order appends `other`'s new names in their own order, so
    /// merging workers in nest order reproduces the serial row order.
    pub fn merge(&mut self, other: &PhaseTimers) {
        let anchor = self.stack.last().cloned();
        for name in &other.order {
            let dt = other.totals[name];
            let parent = match other.parent.get(name).cloned().flatten() {
                Some(p) => Some(p),
                None => anchor.clone(),
            };
            if !self.totals.contains_key(name) {
                self.order.push(name.clone());
                self.totals.insert(name.clone(), Duration::ZERO);
                self.parent.insert(name.clone(), parent.clone());
            }
            *self.totals.entry(name.clone()).or_default() += dt;
            // Credit the anchor's child-time for other's *top-level* phases
            // only; nested child-time transfers directly below.
            if other.parent.get(name).cloned().flatten().is_none() {
                if let Some(a) = &anchor {
                    *self.child_time.entry(a.clone()).or_default() += dt;
                }
            }
        }
        for (name, dt) in &other.child_time {
            *self.child_time.entry(name.clone()).or_default() += *dt;
        }
    }

    /// Records the Omega-context cache counters of the compilation these
    /// timers instrumented, so Table-1 renderers can report cache
    /// effectiveness next to the wall-clock rows.
    pub fn set_cache_stats(&mut self, stats: CacheStats) {
        self.cache = Some(stats);
    }

    /// The recorded Omega-context cache counters, if any.
    pub fn cache_stats(&self) -> Option<&CacheStats> {
        self.cache.as_ref()
    }

    /// `(phase, cumulative time, percent-of-total)` rows in first-use
    /// order — the backward-compatible flat view.
    pub fn rows(&self) -> Vec<(String, Duration, f64)> {
        let total = self.overall.as_secs_f64().max(1e-12);
        self.order
            .iter()
            .map(|name| {
                let d = self.totals[name];
                (name.clone(), d, 100.0 * d.as_secs_f64() / total)
            })
            .collect()
    }

    /// Nested rows: first-use order with explicit depth, cumulative time,
    /// and self time — child rows are the ones with `depth > 0`, matching
    /// Table 1's indented rows.
    pub fn rows_nested(&self) -> Vec<PhaseRow> {
        let total = self.overall.as_secs_f64().max(1e-12);
        self.order
            .iter()
            .map(|name| {
                let cumulative = self.totals[name];
                PhaseRow {
                    name: name.clone(),
                    depth: self.depth_of(name),
                    cumulative,
                    self_time: self.self_time(name),
                    percent: 100.0 * cumulative.as_secs_f64() / total,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_calls() {
        let mut t = PhaseTimers::new();
        t.time("a", |_| std::thread::sleep(Duration::from_millis(2)));
        t.time("a", |_| std::thread::sleep(Duration::from_millis(2)));
        t.time("b", |_| ());
        t.finish();
        assert!(t.phase("a") >= Duration::from_millis(4));
        assert!(t.total() >= t.phase("a"));
        let rows = t.rows();
        assert_eq!(rows[0].0, "a");
        assert_eq!(rows[1].0, "b");
        assert!(rows[0].2 > 0.0);
    }

    #[test]
    fn nesting_supported() {
        let mut t = PhaseTimers::new();
        t.time("outer", |t| {
            t.time("inner", |_| std::thread::sleep(Duration::from_millis(1)));
        });
        t.finish();
        assert!(t.phase("outer") >= t.phase("inner"));
    }

    #[test]
    fn self_time_excludes_children() {
        let mut t = PhaseTimers::new();
        t.time("outer", |t| {
            t.time("inner", |_| std::thread::sleep(Duration::from_millis(4)));
            std::thread::sleep(Duration::from_millis(1));
        });
        t.finish();
        assert_eq!(t.parent_of("inner"), Some("outer"));
        assert_eq!(t.depth_of("inner"), 1);
        assert_eq!(t.depth_of("outer"), 0);
        // Self excludes the 4ms child; cumulative includes it.
        assert!(t.self_time("outer") < t.phase("outer"));
        assert!(
            t.self_time("outer") + t.phase("inner") <= t.phase("outer") + Duration::from_micros(50)
        );
        let rows = t.rows_nested();
        assert_eq!(rows[0].depth, 0);
        assert_eq!(rows[1].depth, 1);
        assert!(rows[0].self_time <= rows[0].cumulative);
    }

    #[test]
    fn add_nests_under_open_phase() {
        let mut t = PhaseTimers::new();
        t.open("outer");
        t.add("measured", Duration::from_millis(2));
        t.close("outer", Duration::from_millis(3));
        t.finish();
        assert_eq!(t.parent_of("measured"), Some("outer"));
        assert_eq!(t.self_time("outer"), Duration::from_millis(1));
        assert_eq!(t.phase("outer"), Duration::from_millis(3));
    }

    #[test]
    fn repeated_nested_phase_not_double_counted_in_self() {
        // The old flat map credited nested same-name time to parent AND
        // child with no linkage; the tree keeps cumulative for both but
        // self-time only once.
        let mut t = PhaseTimers::new();
        t.open("p");
        t.add("c", Duration::from_millis(2));
        t.add("c", Duration::from_millis(2));
        t.close("p", Duration::from_millis(5));
        t.finish();
        assert_eq!(t.phase("c"), Duration::from_millis(4));
        assert_eq!(t.phase("p"), Duration::from_millis(5));
        assert_eq!(t.self_time("p"), Duration::from_millis(1));
    }

    #[test]
    fn merge_adopts_top_level_phases_under_anchor() {
        let mut worker = PhaseTimers::new();
        worker.open("placement");
        worker.add("cp", Duration::from_millis(2));
        worker.close("placement", Duration::from_millis(3));
        worker.finish();

        let mut main = PhaseTimers::new();
        main.open("module compilation");
        main.merge(&worker);
        main.close("module compilation", Duration::from_millis(3));
        main.finish();

        assert_eq!(main.parent_of("placement"), Some("module compilation"));
        assert_eq!(main.parent_of("cp"), Some("placement"));
        assert_eq!(main.phase("placement"), Duration::from_millis(3));
        assert_eq!(main.phase("cp"), Duration::from_millis(2));
        assert_eq!(main.self_time("placement"), Duration::from_millis(1));
        assert_eq!(main.self_time("module compilation"), Duration::ZERO);
        // Merging a second worker accumulates rather than duplicates.
        main.merge(&worker);
        assert_eq!(main.phase("placement"), Duration::from_millis(6));
        assert_eq!(main.rows().iter().filter(|r| r.0 == "placement").count(), 1);
    }

    #[test]
    fn collector_receives_phase_spans() {
        let c = dhpf_obs::Collector::new();
        let mut t = PhaseTimers::new();
        t.attach_collector(c.clone());
        t.time("outer", |t| {
            t.time("inner", |_| ());
            t.add("measured", Duration::from_micros(10));
        });
        t.finish();
        let trace = c.trace();
        let outer = trace.find("outer").unwrap();
        let inner = trace.find("inner").unwrap();
        let measured = trace.find("measured").unwrap();
        assert_eq!(trace.nodes[inner].parent, Some(outer));
        assert_eq!(trace.nodes[measured].parent, Some(outer));
        assert!(trace.nodes.iter().all(|n| !n.open));
    }
}
