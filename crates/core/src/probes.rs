//! Pipeline invariant probes for the differential oracle.
//!
//! Each probe checks one paper-level invariant of the analysis outputs by
//! exhaustive enumeration over concrete processor ids and data points —
//! independent ground truth against the symbolic Omega machinery. They are
//! exercised by the `oracle_pipeline` integration test over randomized
//! block-distributed programs.

use crate::comm::CommSets;
use crate::split::SplitSets;
use dhpf_omega::{OmegaError, Relation, Set};

/// Checks that a computation-partitioning map assigns every iteration of
/// `iter_space` to exactly one of the `n_procs` processors (the ON_HOME
/// model makes CP maps a partition of the loop range, paper §2).
///
/// # Errors
///
/// Returns a human-readable description of the first violation found.
pub fn cp_partition(cp: &Relation, iter_space: &Set, n_procs: i64) -> Result<(), String> {
    let iters = iter_space
        .enumerate(&[])
        .map_err(|e| format!("cp_partition: iteration space not enumerable: {e}"))?;
    for point in &iters {
        let owners: Vec<i64> = (0..n_procs)
            .filter(|&p| cp.contains_pair(&[p], point, &[]))
            .collect();
        if owners.len() != 1 {
            return Err(format!(
                "cp_partition: iteration {point:?} owned by processors {owners:?} \
                 (expected exactly one of 0..{n_procs})"
            ));
        }
    }
    Ok(())
}

/// Checks the Send/Recv duality of Figure 3: processor `m` sends datum `d`
/// to partner `p` if and only if `p` receives `d` from partner `m`.
///
/// `data` is the concrete window of array index points to test (typically
/// the full declared index set of the array).
///
/// # Errors
///
/// Returns a human-readable description of the first violation found.
pub fn comm_duality(sets: &CommSets, n_procs: i64, data: &[Vec<i64>]) -> Result<(), String> {
    for m in 0..n_procs {
        for p in 0..n_procs {
            if m == p {
                continue;
            }
            for d in data {
                let sent = sets.send_map.contains_pair(&[p], d, &[("m1", m)]);
                let recvd = sets.recv_map.contains_pair(&[m], d, &[("m1", p)]);
                if sent != recvd {
                    return Err(format!(
                        "comm_duality: datum {d:?} sent by {m} to {p} = {sent}, \
                         but received by {p} from {m} = {recvd}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Checks that the Figure 4 sections partition the partitioned iteration
/// set `mine` for processor `m`: every iteration of `mine` lies in exactly
/// one of `local`/`nl_ro`/`nl_wo`/`nl_rw`, and no section strays outside.
///
/// # Errors
///
/// Returns a human-readable description of the first violation found.
pub fn split_partition(splits: &SplitSets, mine: &Set, m: i64) -> Result<(), String> {
    let params = [("m1", m)];
    let iters = mine
        .enumerate(&params)
        .map_err(|e| format!("split_partition: iteration set not enumerable for m={m}: {e}"))?;
    let sections = [
        ("local", &splits.local),
        ("nl_ro", &splits.nl_ro),
        ("nl_wo", &splits.nl_wo),
        ("nl_rw", &splits.nl_rw),
    ];
    for point in &iters {
        let homes: Vec<&str> = sections
            .iter()
            .filter(|(_, s)| s.contains(point, &params))
            .map(|&(n, _)| n)
            .collect();
        if homes.len() != 1 {
            return Err(format!(
                "split_partition: iteration {point:?} of processor {m} lies in \
                 sections {homes:?} (expected exactly one)"
            ));
        }
    }
    for (name, s) in sections {
        let pts = s
            .enumerate(&params)
            .map_err(|e| format!("split_partition: section {name} not enumerable: {e}"))?;
        for point in &pts {
            if !mine.contains(point, &params) {
                return Err(format!(
                    "split_partition: section {name} contains {point:?} for m={m}, \
                     which is outside the partitioned iteration set"
                ));
            }
        }
    }
    Ok(())
}

/// Checks that two [`CommSets`] computed by different routes (e.g. with and
/// without a shared memoizing [`Context`](dhpf_omega::Context)) denote the
/// same communication.
///
/// # Errors
///
/// Returns a human-readable description of the first component that
/// differs, or the underlying [`OmegaError`] rendered as a string if the
/// comparison itself is inexact.
pub fn comm_equiv(a: &CommSets, b: &CommSets) -> Result<(), String> {
    let eq_set = |x: &Set, y: &Set| -> Result<bool, OmegaError> {
        Ok(x.try_subtract(y)?.is_empty() && y.try_subtract(x)?.is_empty())
    };
    let pairs = [
        ("nl_read_data", &a.nl_read_data, &b.nl_read_data),
        ("nl_write_data", &a.nl_write_data, &b.nl_write_data),
    ];
    for (name, x, y) in pairs {
        match eq_set(x, y) {
            Ok(true) => {}
            Ok(false) => return Err(format!("comm_equiv: {name} differs:\n  {x}\n  {y}")),
            Err(e) => return Err(format!("comm_equiv: {name} comparison inexact: {e}")),
        }
    }
    let map_pairs = [
        ("send_map", &a.send_map, &b.send_map),
        ("recv_map", &a.recv_map, &b.recv_map),
    ];
    for (name, x, y) in map_pairs {
        match x.try_equal(y) {
            Ok(true) => {}
            Ok(false) => return Err(format!("comm_equiv: {name} differs:\n  {x}\n  {y}")),
            Err(e) => return Err(format!("comm_equiv: {name} comparison inexact: {e}")),
        }
    }
    Ok(())
}
