//! Focused tests of relation operations beyond the inline unit tests:
//! parameter unification, restriction properties, gist laws, and the
//! specific set shapes produced by HPF distributions.

use dhpf_omega::{Relation, Set};

fn rel(s: &str) -> Relation {
    s.parse().unwrap()
}

fn set(s: &str) -> Set {
    s.parse().unwrap()
}

#[test]
fn unify_params_merges_sorted() {
    let a = rel("{[i] -> [] : i <= N}");
    let b = rel("{[i] -> [] : i >= K && i <= M}");
    let (a2, b2) = Relation::unify_params(a, b);
    assert_eq!(a2.params(), b2.params());
    assert_eq!(
        a2.params(),
        &["K".to_string(), "M".to_string(), "N".to_string()]
    );
    // Meaning preserved after remapping.
    assert!(a2.contains_pair(&[3], &[], &[("K", 0), ("M", 0), ("N", 5)]));
    assert!(!a2.contains_pair(&[6], &[], &[("K", 0), ("M", 0), ("N", 5)]));
    assert!(b2.contains_pair(&[3], &[], &[("K", 2), ("M", 4), ("N", 0)]));
}

#[test]
fn restrict_domain_and_range_agree_with_membership() {
    let r = rel("{[i] -> [j] : j = i + 10 && 0 <= i <= 20}");
    let dom = set("{[i] : 5 <= i <= 7}");
    let rng = set("{[j] : 16 <= j <= 30}");
    let rd = r.restrict_domain(&dom);
    let rr = r.restrict_range(&rng);
    for i in 0..=20i64 {
        let j = i + 10;
        assert_eq!(rd.contains_pair(&[i], &[j], &[]), (5..=7).contains(&i));
        assert_eq!(rr.contains_pair(&[i], &[j], &[]), (16..=30).contains(&j));
    }
}

#[test]
fn gist_identity_law() {
    // (gist A given B) ∧ B == A ∧ B
    let a = rel("{[i] -> [] : 2 <= i <= 8 && i <= N}");
    let b = rel("{[i] -> [] : 1 <= i <= 8}");
    let g = a.gist(&b);
    let left = g.intersection(&b);
    let right = a.intersection(&b);
    assert!(left.equal(&right));
}

#[test]
fn inverse_is_involutive() {
    let r = rel("{[i,j] -> [k] : k = i + j && 1 <= i <= 3 && 1 <= j <= 3}");
    assert!(r.inverse().inverse().equal(&r));
}

#[test]
fn then_associativity_on_samples() {
    let f = rel("{[i] -> [j] : j = i + 1}");
    let g = rel("{[i] -> [j] : j = 2i}");
    let h = rel("{[i] -> [j] : j = i - 3}");
    let ab_c = f.then(&g).then(&h);
    let a_bc = f.then(&g.then(&h));
    for x in -5..=5i64 {
        let y = 2 * (x + 1) - 3;
        assert!(ab_c.contains_pair(&[x], &[y], &[]));
        assert!(a_bc.contains_pair(&[x], &[y], &[]));
        assert!(!ab_c.contains_pair(&[x], &[y + 1], &[]));
        assert!(!a_bc.contains_pair(&[x], &[y + 1], &[]));
    }
}

#[test]
fn domain_range_of_composition() {
    let f = rel("{[i] -> [j] : j = i + 1 && 1 <= i <= 5}");
    let g = rel("{[i] -> [j] : j = 3i && 2 <= i <= 4}");
    let fg = f.then(&g); // domain: i with i+1 in [2,4] => i in [1,3]
    let dom = fg.domain();
    for i in 0..=6i64 {
        assert_eq!(dom.contains(&[i], &[]), (1..=3).contains(&i), "i={i}");
    }
    let rng = fg.range(); // 3*(i+1) for i in [1,3]: {6, 9, 12}
    for j in 0..=15i64 {
        assert_eq!(rng.contains(&[j], &[]), [6, 9, 12].contains(&j), "j={j}");
    }
}

#[test]
fn cyclic_distribution_set_algebra() {
    // Ownership of a CYCLIC(3) distribution on 2 processors, and its
    // complement, partition the template exactly.
    let p0 = set("{[t] : 1 <= t <= 18 && exists(a : t - 1 = 6a) || 1 <= t <= 18 && exists(a : t - 2 = 6a) || 1 <= t <= 18 && exists(a : t - 3 = 6a)}");
    let all = set("{[t] : 1 <= t <= 18}");
    let p1 = all.subtract(&p0);
    for t in 1..=18i64 {
        let blk = (t - 1) / 3;
        let mine = blk % 2 == 0;
        assert_eq!(p0.contains(&[t], &[]), mine, "t={t}");
        assert_eq!(p1.contains(&[t], &[]), !mine, "t={t}");
    }
    assert!(p0.union(&p1).equal(&all));
    assert!(p0.intersection(&p1).as_relation().is_empty());
}

#[test]
fn specialize_param_then_enumerate() {
    let s = set("{[i] : 1 <= i <= N && exists(a : i = 2a)}");
    let even_to_10 = s.as_relation().specialize_param("N", 10);
    let fixed = Set::from_relation(even_to_10);
    let pts = fixed.enumerate(&[]).unwrap();
    assert_eq!(pts, vec![vec![2], vec![4], vec![6], vec![8], vec![10]]);
}

#[test]
fn block_overlap_regions() {
    // Two adjacent BLOCK(25) owners share no elements; shifting one by a
    // halo of 1 overlaps in exactly one element.
    let own1 = set("{[a] : 26 <= a <= 50}");
    let own0_halo = set("{[a] : 1 <= a <= 26}");
    let overlap = own1.intersection(&own0_halo);
    let pts = overlap.enumerate(&[]).unwrap();
    assert_eq!(pts, vec![vec![26]]);
}

#[test]
fn empty_relation_ops_are_safe() {
    let e = Relation::empty(1, 1);
    assert!(e.is_empty());
    assert!(e.domain().is_empty());
    assert!(e.range().is_empty());
    let u = Relation::universe(1, 1);
    assert!(e.union(&u).equal(&u));
    assert!(e.intersection(&u).is_empty());
    assert!(u.subtract(&e).equal(&u));
}

#[test]
fn symbolic_subset_depends_on_all_params() {
    // {i : 1 <= i <= N} ⊆ {i : 1 <= i <= M} does NOT hold for all N, M.
    let a = set("{[i] : 1 <= i <= N}");
    let b = set("{[i] : 1 <= i <= M}");
    assert!(!a.is_subset_of(&b));
    // But it does hold with the constraint N <= M folded in.
    let a2 = set("{[i] : 1 <= i <= N && N <= M}");
    assert!(a2.is_subset_of(&b));
}
