//! Regressions for the normalize-once conjunct discipline.
//!
//! Historically `Conjunct::canonical()` (used by the hash-consing arena)
//! and `Conjunct::normalize()` (used by the solvers) applied *different*
//! rewrites, so two semantically identical conjuncts could intern to two
//! distinct arena ids and miss each other's memo-cache entries. These
//! tests pin the unified discipline: `canonical` is exactly a normalized
//! copy, normalization is idempotent, and every trivially-false conjunct
//! takes one structural shape.

use dhpf_omega::{Conjunct, Context, LinExpr, Normalized, Var};

fn iv(n: u32) -> Var {
    Var::In(n)
}

fn e(terms: &[(Var, i64)], c: i64) -> LinExpr {
    LinExpr::from_terms(terms.iter().copied(), c)
}

/// The original bug: a conjunct built from *scaled* constraints and the
/// same conjunct built from reduced constraints described the same set,
/// but the arena saw two identities (and the sat/negate/eliminate memo
/// tables kept two disjoint entries). One discipline now means one id.
#[test]
fn scaled_and_reduced_forms_intern_to_one_id() {
    let ctx = Context::new();

    let mut scaled = Conjunct::new();
    scaled.add_geq(e(&[(iv(0), 2)], -10)); // 2x >= 10
    scaled.add_geq(e(&[(iv(0), -4)], 28)); // 4x <= 28
    scaled.add_eq(e(&[(iv(0), 3), (iv(1), -3)], 0)); // 3x = 3y

    let mut reduced = Conjunct::new();
    reduced.add_geq(e(&[(iv(0), 1)], -5)); // x >= 5
    reduced.add_geq(e(&[(iv(0), -1)], 7)); // x <= 7
    reduced.add_eq(e(&[(iv(0), 1), (iv(1), -1)], 0)); // x = y

    assert_eq!(scaled.canonical(), reduced.canonical());
    assert_eq!(ctx.intern_conjunct(&scaled), ctx.intern_conjunct(&reduced));
}

/// Constraint order and repetition do not change identity either — this
/// half already held before the unification, and must keep holding.
#[test]
fn permuted_and_duplicated_forms_intern_to_one_id() {
    let ctx = Context::new();

    let mut a = Conjunct::new();
    a.add_geq(e(&[(iv(0), 1)], -1));
    a.add_geq(e(&[(iv(0), -1)], 9));

    let mut b = Conjunct::new();
    b.add_geq(e(&[(iv(0), -1)], 9));
    b.add_geq(e(&[(iv(0), 1)], -1));
    b.add_geq(e(&[(iv(0), 1)], -1)); // duplicate

    assert_eq!(ctx.intern_conjunct(&a), ctx.intern_conjunct(&b));
}

/// `canonical()` must be *exactly* "clone + normalize": a normalized
/// conjunct is its own canonical form, bit for bit.
#[test]
fn canonical_agrees_with_normalize() {
    let mut c = Conjunct::new();
    c.add_geq(e(&[(iv(0), 6), (iv(1), -4)], 3));
    c.add_eq(e(&[(iv(0), -5), (iv(1), 10)], 0));
    c.add_stride(LinExpr::var(iv(1)), 4);

    let canon = c.canonical();
    c.normalize();
    assert_eq!(c, canon);
    assert!(c.is_normalized());
    assert_eq!(c.canonical(), c, "normalized form is a fixed point");
}

/// Normalization is idempotent: a second pass (with the once-flag
/// defeated by a no-op rebuild) reproduces the same structure.
#[test]
fn normalize_is_idempotent() {
    let cases: Vec<Conjunct> = vec![
        {
            let mut c = Conjunct::new();
            c.add_geq(e(&[(iv(0), 2)], -5));
            c.add_geq(e(&[(iv(0), -2)], 11));
            c
        },
        {
            let mut c = Conjunct::new();
            c.add_eq(e(&[(iv(0), 4), (iv(1), 6)], 2));
            c.add_geq(e(&[(iv(1), 3)], 7));
            c
        },
        {
            let mut c = Conjunct::new();
            c.add_stride(e(&[(iv(0), 1)], -1), 3);
            c.add_bounds(iv(0), -4, 17);
            c
        },
    ];
    for (i, case) in cases.into_iter().enumerate() {
        let mut once = case.clone();
        once.normalize();
        // Rebuild from the normalized constraints so the once-flag is
        // clear, forcing `normalize` to actually re-derive.
        let mut twice = Conjunct::new();
        for q in once.eqs() {
            twice.add_eq(q.clone());
        }
        for q in once.geqs() {
            twice.add_geq(q.clone());
        }
        assert!(!twice.is_normalized());
        twice.normalize();
        assert_eq!(twice, once, "case {i}: normalize is not idempotent");
    }
}

/// Oracle-minimized: opposing inequalities promote to an equality whose
/// sign must not depend on insertion order. With the old code
/// `{x >= 5, x <= 5}` produced `x - 5 = 0` or `-x + 5 = 0` depending on
/// which inequality was added first — two arena ids for one point.
#[test]
fn promoted_equality_sign_is_insertion_order_independent() {
    let mut ab = Conjunct::new();
    ab.add_geq(e(&[(iv(0), 1)], -5)); // x >= 5 first
    ab.add_geq(e(&[(iv(0), -1)], 5)); // x <= 5 second

    let mut ba = Conjunct::new();
    ba.add_geq(e(&[(iv(0), -1)], 5)); // x <= 5 first
    ba.add_geq(e(&[(iv(0), 1)], -5)); // x >= 5 second

    assert_eq!(ab.normalize(), Normalized::Consistent);
    assert_eq!(ba.normalize(), Normalized::Consistent);
    assert_eq!(ab, ba);
    assert_eq!(ab.eqs().len(), 1);
    assert!(
        matches!(ab.eqs()[0].terms().next(), Some((_, c)) if c > 0),
        "promoted equality must carry the canonical (positive-leading) sign"
    );
}

/// Oracle-minimized boundary case: GCD tightening runs *before* the
/// opposing-inequality scan, so `2x >= 5 ∧ 2x <= 5` (real solution
/// x = 2.5, no integer solution) tightens to `x >= 3 ∧ x <= 2` and must
/// normalize to false — not promote to a phantom equality.
#[test]
fn opposing_promotion_respects_integer_tightening() {
    let mut hole = Conjunct::new();
    hole.add_geq(e(&[(iv(0), 2)], -5)); // 2x >= 5
    hole.add_geq(e(&[(iv(0), -2)], 5)); // 2x <= 5
    assert_eq!(hole.normalize(), Normalized::False);
    assert!(hole.is_false());

    // Same shape, but the boundary lands on an integer: promote.
    let mut point = Conjunct::new();
    point.add_geq(e(&[(iv(0), 2)], -4)); // 2x >= 4
    point.add_geq(e(&[(iv(0), -2)], 5)); // 2x <= 5  (i.e. x <= 2)
    assert_eq!(point.normalize(), Normalized::Consistent);
    assert_eq!(point.eqs(), &[e(&[(iv(0), 1)], -2)]); // x = 2
    assert!(point.geqs().is_empty());
}

/// The parallel-inequality dedup must keep the *tighter* bound. The
/// sorted order puts the smaller constant first, and `dedup_by` hands
/// the closure the later (looser) element to drop — a mixed-up argument
/// order here would silently keep the loose bound.
#[test]
fn parallel_dedup_keeps_tighter_bound() {
    let mut c = Conjunct::new();
    c.add_geq(e(&[(iv(0), 1)], 0)); // x >= 0 (loose)
    c.add_geq(e(&[(iv(0), 1)], -5)); // x >= 5 (tight)
    c.add_geq(e(&[(iv(0), 1)], -2)); // x >= 2 (loose)
    c.normalize();
    assert_eq!(c.geqs(), &[e(&[(iv(0), 1)], -5)]);

    let mut u = Conjunct::new();
    u.add_geq(e(&[(iv(0), -1)], 9)); // x <= 9 (loose)
    u.add_geq(e(&[(iv(0), -1)], 4)); // x <= 4 (tight)
    u.normalize();
    assert_eq!(u.geqs(), &[e(&[(iv(0), -1)], 4)]);
}

/// Every trivially-contradictory conjunct rewrites to the one canonical
/// false shape and interns to a single arena id, regardless of which
/// contradiction produced it or which variables it once mentioned.
#[test]
fn all_trivially_false_conjuncts_share_one_identity() {
    let mut constant_eq = Conjunct::new();
    constant_eq.add_eq(LinExpr::constant(1)); // 1 = 0

    let mut constant_geq = Conjunct::new();
    constant_geq.add_geq(LinExpr::constant(-3)); // -3 >= 0

    let mut parity = Conjunct::new();
    parity.add_eq(e(&[(iv(0), 2)], 1)); // 2x + 1 = 0

    let mut gap = Conjunct::new();
    gap.add_geq(e(&[(iv(1), 1)], -7)); // y >= 7
    gap.add_geq(e(&[(iv(1), -1)], 3)); // y <= 3

    let ctx = Context::new();
    let ids: Vec<u32> = [&constant_eq, &constant_geq, &parity, &gap]
        .into_iter()
        .map(|c| {
            let canon = c.canonical();
            assert!(canon.is_false());
            assert_eq!(canon.n_exist(), 0);
            ctx.intern_conjunct(c)
        })
        .collect();
    assert!(
        ids.windows(2).all(|w| w[0] == w[1]),
        "ids diverged: {ids:?}"
    );
}

/// Unused trailing existential slots are dead weight that used to split
/// identities: `fresh_exist` with no constraint must not change the
/// canonical form.
#[test]
fn trailing_unused_existentials_are_trimmed() {
    let mut a = Conjunct::new();
    a.add_bounds(iv(0), 0, 7);

    let mut b = Conjunct::new();
    b.add_bounds(iv(0), 0, 7);
    let _dead = b.fresh_exist();
    let _dead2 = b.fresh_exist();

    assert_eq!(b.canonical().n_exist(), 0);
    assert_eq!(a.canonical(), b.canonical());

    let ctx = Context::new();
    assert_eq!(ctx.intern_conjunct(&a), ctx.intern_conjunct(&b));
}

/// Memo coherence end to end: warm a context with one spelling of a
/// conjunct, then query a different spelling of the same set — the
/// cached answers must be the ones the fresh computation would give.
#[test]
fn memo_hits_across_spellings_stay_correct() {
    let ctx = Context::new();

    let mut scaled = Conjunct::new();
    scaled.add_geq(e(&[(iv(0), 3)], -6)); // 3x >= 6
    scaled.add_geq(e(&[(iv(0), -3)], 30)); // 3x <= 30
    assert!(scaled.is_satisfiable_in(Some(&ctx)));

    let mut reduced = Conjunct::new();
    reduced.add_geq(e(&[(iv(0), 1)], -2)); // x >= 2
    reduced.add_geq(e(&[(iv(0), -1)], 10)); // x <= 10
    assert!(reduced.is_satisfiable_in(Some(&ctx)));

    // Negation through the shared cache: both spellings must agree on
    // membership of every probe point.
    let neg_s = dhpf_omega::negate_conjunct_in(&scaled, Some(&ctx)).unwrap();
    let neg_r = dhpf_omega::negate_conjunct_in(&reduced, Some(&ctx)).unwrap();
    for x in -3..=14i64 {
        let in_s = neg_s
            .iter()
            .any(|c| c.contains(|v| if v == iv(0) { Some(x) } else { None }));
        let in_r = neg_r
            .iter()
            .any(|c| c.contains(|v| if v == iv(0) { Some(x) } else { None }));
        assert_eq!(in_s, in_r, "x = {x}");
        assert_eq!(in_s, !(2..=10).contains(&x), "x = {x}");
    }
}
