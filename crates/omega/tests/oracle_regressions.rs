//! Minimized regressions from the differential oracle (`oracle_fuzz`).
//!
//! Each test replays a counterexample found by the fuzz harness and
//! minimized by its shrinker, stated as a printable `parse_set` string plus
//! the law it violated. Keep each case minimal and annotated with the law
//! name so future refactors cannot silently reintroduce the bug.

use dhpf_omega::{OmegaError, Set};

/// Law `enumerate-ref` / `dim-bounds`, found at oracle seed 5 (shrunk).
///
/// `dim_bounds` folded per-conjunct bounds with `Option` maps that let a
/// later *bounded* conjunct overwrite an earlier conjunct's `None`
/// (= unbounded side). On `{[x] : x >= 0 || 0 <= x <= 3}` the first
/// conjunct has no upper bound, but the second conjunct's `3` was reported
/// as the union's upper bound, so `enumerate` silently dropped every
/// `x > 3` instead of reporting `Unbounded`.
#[test]
fn dim_bounds_keeps_unbounded_upper_side_of_union() {
    let s: Set = "{[x0] : x0 >= 0 || 0 <= x0 <= 3}".parse().unwrap();
    assert_eq!(s.dim_bounds(0, &[]), (Some(0), None));
    assert!(matches!(s.enumerate(&[]), Err(OmegaError::Unbounded)));
}

/// Mirror of the case above on the lower side.
#[test]
fn dim_bounds_keeps_unbounded_lower_side_of_union() {
    let s: Set = "{[x0] : x0 <= 5 || 0 <= x0 <= 3}".parse().unwrap();
    assert_eq!(s.dim_bounds(0, &[]), (None, Some(5)));
    assert!(matches!(s.enumerate(&[]), Err(OmegaError::Unbounded)));
}

/// The bounded-union case must keep working after the fix: both conjuncts
/// bounded, outer hull reported, enumeration exact.
#[test]
fn dim_bounds_union_of_bounded_conjuncts_is_hull() {
    let s: Set = "{[x0] : 0 <= x0 <= 9 || 2 <= x0 <= 3}".parse().unwrap();
    assert_eq!(s.dim_bounds(0, &[]), (Some(0), Some(9)));
    let pts = s.enumerate(&[]).unwrap();
    assert_eq!(pts, (0..=9).map(|v| vec![v]).collect::<Vec<_>>());
}

/// Law `convex-1d`: `is_convex_1d` on a non-1-D set used to panic inside
/// set algebra with an opaque message; the fallible API reports a typed
/// arity error instead (and `dhpf-core`'s contiguity analysis relies on
/// getting an `Err` it can turn into a runtime check).
#[test]
fn convex_1d_on_wrong_arity_is_typed_error() {
    let s: Set = "{[x0,x1] : 0 <= x0 <= 1 && 0 <= x1 <= 1}".parse().unwrap();
    assert!(matches!(s.try_is_convex_1d(), Err(OmegaError::Arity(_))));
    assert!(matches!(s.try_is_singleton_1d(), Err(OmegaError::Arity(_))));
}

/// Law `subtract` (overflow burn-down): Fourier–Motzkin elimination forms
/// the products `a·U + b·L` and the dark-shadow constant `(a-1)(b-1)`;
/// with ~4·10⁹ coefficients these exceed `i64` and previously wrapped in
/// release builds (UB-adjacent silent corruption) or aborted in debug.
/// The checked path must surface `OmegaError::Overflow`.
#[test]
fn fme_coefficient_overflow_surfaces_as_error() {
    let s: Set =
        "{[x0] : exists(e0 : 4000000000e0 <= x0 && x0 <= 4000000000e0 + 1 && 0 <= e0 <= 4000000000)}"
            .parse()
            .unwrap();
    let u = Set::universe(1);
    assert!(matches!(u.try_subtract(&s), Err(OmegaError::Overflow(_))));
}

/// Same overflow class reached through satisfiability: the emptiness test
/// must stay *conservative* on overflow (answer "maybe satisfiable", never
/// a wrong "empty") rather than panicking mid-query.
#[test]
fn sat_is_conservative_under_overflow() {
    let s: Set =
        "{[x0] : exists(e0 : 4000000000e0 <= x0 && x0 <= 4000000000e0 + 1 && 0 <= e0 <= 4000000000)}"
            .parse()
            .unwrap();
    // x0 = 0 (witness e0 = 0) really is in the set, so emptiness must say
    // "not empty" even though exact elimination overflows.
    assert!(!s.is_empty());
    assert!(s.contains(&[0], &[]));
}

/// Law `display-roundtrip`, found at oracle seed 5 (case seed
/// 9312763031162338807, shrunk): simplifying `{[x0] : x0 = 4 || 0 <= 0}`
/// reduces the tautological conjunct to the empty conjunct, which `Display`
/// prints as `TRUE` — and the parser rejected its own printer's output.
/// `TRUE`/`FALSE` must parse back to the empty conjunct / empty union.
#[test]
fn display_roundtrip_accepts_true_and_false() {
    let t: Set = "{[x0] : x0 = 4 || TRUE}".parse().unwrap();
    assert!(t.contains(&[-7], &[]) && t.contains(&[4], &[]));

    let f: Set = "{[x0] : FALSE}".parse().unwrap();
    assert!(f.is_empty());

    // Root cause was wider than the printer: the parser normalized each
    // conjunct and discarded the verdict, so *any* contradictory constant
    // constraint silently parsed as the universe.
    let f2: Set = "{[x0] : 1 = 0}".parse().unwrap();
    assert!(f2.is_empty());
    let f3: Set = "{[x0] : 0 >= 2}".parse().unwrap();
    assert!(f3.is_empty());

    // The original counterexample: print then re-parse must succeed and
    // denote the same set.
    let s: Set = "{[x0] : 4 <= x0 <= 4 || 0 <= 0}".parse().unwrap();
    let back: Set = s.to_string().parse().unwrap();
    for x in -3..=8i64 {
        assert_eq!(s.contains(&[x], &[]), back.contains(&[x], &[]));
    }
}

/// Law `rel-compose` termination, found at oracle seed 5 (case seed
/// 412626756059678056): composing stride + symbolic-parameter relations
/// produced conjuncts whose exact negation cross-product explodes
/// (10 stride pieces × ~17 atoms ⇒ up to 17^10 conjuncts, tens of GB).
/// `negate_uncached` now carries a piece budget and reports
/// `InexactNegation` instead, and `semantic_subsume` skips oversized
/// negations — so this compose must terminate quickly.
#[test]
fn compose_of_stride_param_relations_terminates() {
    use dhpf_omega::Relation;
    let a: Relation = "{[x0] -> [y0] : -1 <= x0 <= 5 && 0 <= y0 <= 6 && -x0 - N + 3 >= 0 && \
         exists(s0 : -x0 + y0 + N - 2 = 4s0) || \
         0 <= x0 <= 4 && -1 <= y0 <= 6 && x0 - N + 2 >= 0}"
        .parse()
        .unwrap();
    let b: Relation = "{[x0] -> [y0] : -1 <= x0 <= 5 && -2 <= y0 <= 6 && 2x0 + N >= 0 && \
         exists(s0 : -y0 + 5 = 4s0) || -1 <= x0 <= 4 && 0 <= y0 <= 6}"
        .parse()
        .unwrap();
    let c = a.then(&b);
    // Spot-check one chain: N = 3 pins a's first disjunct to x0 = 0 and the
    // composition must relate x0 = 0 to some y0 through a mid value.
    let n = [("N", 3)];
    let mut any = false;
    for y in -2..=6i64 {
        any |= c.contains_pair(&[0], &[y], &n);
    }
    assert!(any, "compose lost all successors of x0 = 0 under N = 3");
}

/// Law `gist` soundness on a stride case: `gist(S, C) ∩ C ≡ S ∩ C` where
/// the stride constraint survives the gist. Kept from the initial
/// campaign as a semantic anchor for the congruence path.
#[test]
fn gist_stride_against_interval_context() {
    let s: Set = "{[x0] : 0 <= x0 <= 9 && exists(e0 : x0 = 2e0)}"
        .parse()
        .unwrap();
    let c: Set = "{[x0] : 2 <= x0 <= 5}".parse().unwrap();
    let g = s.as_relation().gist(c.as_relation());
    let rhs = s.intersection(&c);
    for x in -2..=12i64 {
        if !c.contains(&[x], &[]) {
            continue; // gist is only constrained within the context
        }
        assert_eq!(
            g.contains_pair(&[x], &[], &[]),
            rhs.contains(&[x], &[]),
            "gist law broken at x = {x}"
        );
    }
}
