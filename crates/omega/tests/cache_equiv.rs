//! Cached and uncached evaluation must be indistinguishable.
//!
//! Randomized pipelines of union / intersect / subtract / project / gist
//! are run twice — once with every operand attached to a shared
//! [`Context`] (hash-consing + memoized simplification) and once without
//! any context — and the results are compared point-by-point against a
//! brute-force enumeration oracle. A third pass reuses one context across
//! all pipelines so memo hits from earlier cases feed later ones, which is
//! exactly the sharing pattern the compiler driver relies on.

use dhpf_omega::testing::Rng;
use dhpf_omega::{Conjunct, Context, LinExpr, Set, Var};

const LO: i64 = -4;
const HI: i64 = 8;
const CASES: u64 = 40;

fn random_conjunct(rng: &mut Rng, arity: usize) -> Conjunct {
    let mut c = Conjunct::new();
    for d in 0..arity {
        c.add_bounds(Var::In(d as u32), LO, HI);
    }
    let n = rng.range(0, 2);
    for _ in 0..n {
        match rng.index(4) {
            0 => {
                let d = rng.index(arity) as u32;
                let a = rng.range(-3, 5);
                let b = rng.range(-3, 5);
                c.add_bounds(Var::In(d), a.min(b), a.max(b));
            }
            1 => {
                let coeffs: Vec<i64> = (0..arity).map(|_| rng.range(-2, 2)).collect();
                let e = LinExpr::from_terms(
                    coeffs
                        .iter()
                        .enumerate()
                        .map(|(d, &co)| (Var::In(d as u32), co)),
                    rng.range(-4, 6),
                );
                c.add_geq(e);
            }
            2 => {
                let d = rng.index(arity) as u32;
                let m = rng.range(2, 4);
                let r = rng.range(0, m - 1);
                let mut e = LinExpr::var(Var::In(d));
                e.add_constant(-r);
                c.add_stride(e, m);
            }
            _ => {
                let coeffs: Vec<i64> = (0..arity).map(|_| rng.range(-1, 1)).collect();
                let e = LinExpr::from_terms(
                    coeffs
                        .iter()
                        .enumerate()
                        .map(|(d, &co)| (Var::In(d as u32), co)),
                    rng.range(-3, 3),
                );
                c.add_eq(e);
            }
        }
    }
    c
}

fn random_set(rng: &mut Rng, arity: usize, ctx: Option<&Context>) -> Set {
    let mut r = Set::empty(arity as u32).into_relation();
    for _ in 0..rng.range(1, 2) {
        r.add_conjunct(random_conjunct(rng, arity));
    }
    let mut s = Set::from_relation(r);
    s.set_context(ctx);
    s
}

/// One random pipeline step applied to the accumulator.
fn step(rng: &mut Rng, acc: Set, other: &Set) -> Set {
    match rng.index(4) {
        0 => acc.union(other),
        1 => acc.intersection(other),
        2 => acc.subtract(other),
        _ => {
            // gist: simplify `acc` under the assumption `other`; the result
            // must agree with `acc` on every point of `other`.
            let g = acc.into_relation().gist(other.as_relation());
            Set::from_relation(g)
        }
    }
}

fn membership(s: &Set) -> Vec<bool> {
    let mut out = Vec::new();
    for x in LO - 1..=HI + 1 {
        for y in LO - 1..=HI + 1 {
            out.push(s.contains(&[x, y], &[]));
        }
    }
    out
}

/// Runs one random pipeline; `ctx` chooses cached vs uncached evaluation.
/// Returns the membership bitmaps observed after every step, plus the
/// 1-D projection of the final set.
fn run_pipeline(seed: u64, ctx: Option<&Context>) -> (Vec<Vec<bool>>, Vec<bool>) {
    let mut rng = Rng::new(seed);
    let mut acc = random_set(&mut rng, 2, ctx);
    let mut maps = Vec::new();
    let n_steps = rng.range(2, 4);
    for _ in 0..n_steps {
        let other = random_set(&mut rng, 2, ctx);
        let is_gist = {
            // Peek which op `step` will draw without consuming the stream
            // twice: clone the generator state.
            let mut peek = rng.clone();
            peek.index(4) == 3
        };
        let next = step(&mut rng, acc.clone(), &other);
        if is_gist {
            // gist only preserves membership within the context set.
            let mut m = Vec::new();
            for x in LO - 1..=HI + 1 {
                for y in LO - 1..=HI + 1 {
                    let p = [x, y];
                    let within = other.contains(&p, &[]);
                    m.push(within && next.contains(&p, &[]));
                }
            }
            maps.push(m);
            // Keep the pipeline deterministic and oracle-comparable by
            // restricting to the gist context.
            acc = next.intersection(&other);
        } else {
            maps.push(membership(&next));
            acc = next;
        }
    }
    let pj = acc.project_onto(&[0]);
    let proj: Vec<bool> = (LO - 1..=HI + 1).map(|x| pj.contains(&[x], &[])).collect();
    (maps, proj)
}

#[test]
fn cached_pipelines_match_uncached() {
    for seed in 0..CASES {
        let ctx = Context::new();
        let cached = run_pipeline(seed, Some(&ctx));
        let uncached = run_pipeline(seed, None);
        assert_eq!(cached, uncached, "seed {seed}");
    }
}

#[test]
fn shared_context_across_pipelines_matches_uncached() {
    // One context for every pipeline: later cases hit entries memoized by
    // earlier ones, so cache hits (not just cold misses) are exercised.
    let ctx = Context::new();
    for seed in 0..CASES {
        let cached = run_pipeline(seed, Some(&ctx));
        let uncached = run_pipeline(seed, None);
        assert_eq!(cached, uncached, "seed {seed}");
    }
    let stats = ctx.stats();
    assert!(
        stats.total_hits() > 0,
        "shared context never hit its caches: {stats:?}"
    );
}

#[test]
fn disabled_context_matches_enabled() {
    let on = Context::new();
    let off = Context::disabled();
    for seed in 0..CASES / 2 {
        let a = run_pipeline(seed, Some(&on));
        let b = run_pipeline(seed, Some(&off));
        assert_eq!(a, b, "seed {seed}");
    }
    assert_eq!(off.stats().total_hits(), 0);
    assert_eq!(off.stats().total_misses(), 0);
}
