//! Property-based tests: every set operation is checked against a
//! brute-force membership oracle on randomly generated small sets.

use dhpf_omega::{Conjunct, LinExpr, Relation, Set, Var};
use proptest::prelude::*;

const LO: i64 = -6;
const HI: i64 = 10;

/// A randomly generated constraint for a conjunct of the given arity.
#[derive(Clone, Debug)]
enum Cons {
    /// `lo <= dim <= hi`
    Bounds(usize, i64, i64),
    /// `c0*d0 + c1*d1 + k >= 0`
    Geq(Vec<i64>, i64),
    /// `dim ≡ r (mod m)`
    Stride(usize, i64, i64),
    /// `c0*d0 + c1*d1 + k = 0`
    Eq(Vec<i64>, i64),
}

fn cons_strategy(arity: usize) -> impl Strategy<Value = Cons> {
    let dims = 0..arity;
    prop_oneof![
        (dims.clone(), -3..6i64, -3..6i64).prop_map(|(d, a, b)| Cons::Bounds(d, a.min(b), a.max(b))),
        (
            proptest::collection::vec(-2..=2i64, arity),
            -5..8i64
        )
            .prop_map(|(cs, k)| Cons::Geq(cs, k)),
        (dims.clone(), 0..4i64, 2..5i64).prop_map(|(d, r, m)| Cons::Stride(d, r % m, m)),
        (
            proptest::collection::vec(-2..=2i64, arity),
            -4..5i64
        )
            .prop_map(|(cs, k)| Cons::Eq(cs, k)),
    ]
}

fn build_conjunct(arity: usize, cons: &[Cons]) -> Conjunct {
    let mut c = Conjunct::new();
    // Always bound the box so enumeration oracles stay finite.
    for d in 0..arity {
        c.add_bounds(Var::In(d as u32), LO, HI);
    }
    for k in cons {
        match k {
            Cons::Bounds(d, lo, hi) => c.add_bounds(Var::In(*d as u32), *lo, *hi),
            Cons::Geq(cs, k) => {
                let e = LinExpr::from_terms(
                    cs.iter()
                        .enumerate()
                        .map(|(d, &co)| (Var::In(d as u32), co)),
                    *k,
                );
                c.add_geq(e);
            }
            Cons::Stride(d, r, m) => {
                let mut e = LinExpr::var(Var::In(*d as u32));
                e.add_constant(-r);
                c.add_stride(e, *m);
            }
            Cons::Eq(cs, k) => {
                let e = LinExpr::from_terms(
                    cs.iter()
                        .enumerate()
                        .map(|(d, &co)| (Var::In(d as u32), co)),
                    *k,
                );
                c.add_eq(e);
            }
        }
    }
    c
}

fn set_strategy(arity: usize) -> impl Strategy<Value = Set> {
    proptest::collection::vec(proptest::collection::vec(cons_strategy(arity), 0..3), 1..3)
        .prop_map(move |conjs| {
            let mut r = Set::empty(arity as u32).into_relation();
            for cons in &conjs {
                r.add_conjunct(build_conjunct(arity, cons));
            }
            Set::from_relation(r)
        })
}

fn points(arity: usize) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    if arity == 1 {
        for x in LO - 2..=HI + 2 {
            out.push(vec![x]);
        }
    } else {
        for x in LO - 1..=HI + 1 {
            for y in LO - 1..=HI + 1 {
                out.push(vec![x, y]);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn union_matches_oracle(a in set_strategy(2), b in set_strategy(2)) {
        let u = a.union(&b);
        for p in points(2) {
            prop_assert_eq!(
                u.contains(&p, &[]),
                a.contains(&p, &[]) || b.contains(&p, &[]),
                "point {:?}", p
            );
        }
    }

    #[test]
    fn intersection_matches_oracle(a in set_strategy(2), b in set_strategy(2)) {
        let n = a.intersection(&b);
        for p in points(2) {
            prop_assert_eq!(
                n.contains(&p, &[]),
                a.contains(&p, &[]) && b.contains(&p, &[]),
                "point {:?}", p
            );
        }
    }

    #[test]
    fn subtract_matches_oracle(a in set_strategy(1), b in set_strategy(1)) {
        let d = a.subtract(&b);
        for p in points(1) {
            prop_assert_eq!(
                d.contains(&p, &[]),
                a.contains(&p, &[]) && !b.contains(&p, &[]),
                "point {:?}", p
            );
        }
    }

    #[test]
    fn subtract_2d_matches_oracle(a in set_strategy(2), b in set_strategy(2)) {
        let d = a.subtract(&b);
        for p in points(2) {
            prop_assert_eq!(
                d.contains(&p, &[]),
                a.contains(&p, &[]) && !b.contains(&p, &[]),
                "point {:?}", p
            );
        }
    }

    #[test]
    fn emptiness_matches_oracle(a in set_strategy(2)) {
        let any = points(2).iter().any(|p| a.contains(p, &[]));
        prop_assert_eq!(a.is_empty(), !any);
    }

    #[test]
    fn subset_matches_oracle(a in set_strategy(1), b in set_strategy(1)) {
        let want = points(1)
            .iter()
            .all(|p| !a.contains(p, &[]) || b.contains(p, &[]));
        prop_assert_eq!(a.is_subset_of(&b), want);
    }

    #[test]
    fn projection_matches_oracle(a in set_strategy(2)) {
        let pj = a.project_onto(&[0]);
        for x in LO - 1..=HI + 1 {
            let want = (LO - 1..=HI + 1).any(|y| a.contains(&[x, y], &[]));
            prop_assert_eq!(pj.contains(&[x], &[]), want, "x = {}", x);
        }
    }

    #[test]
    fn enumerate_matches_contains(a in set_strategy(2)) {
        let listed = a.enumerate(&[]).unwrap();
        for p in points(2) {
            let want = a.contains(&p, &[]);
            prop_assert_eq!(listed.contains(&p), want, "point {:?}", p);
        }
    }

    #[test]
    fn convexity_matches_oracle(a in set_strategy(1)) {
        let members: Vec<i64> = (LO..=HI).filter(|&x| a.contains(&[x], &[])).collect();
        let mut has_hole = false;
        if members.len() >= 2 {
            let lo = members[0];
            let hi = *members.last().unwrap();
            has_hole = (lo..=hi).any(|x| !members.contains(&x));
        }
        prop_assert_eq!(a.is_convex_1d(), !has_hole, "members {:?}", members);
    }

    #[test]
    fn singleton_matches_oracle(a in set_strategy(1)) {
        let count = (LO..=HI).filter(|&x| a.contains(&[x], &[])).count();
        prop_assert_eq!(a.is_singleton_1d(), count <= 1);
    }

    #[test]
    fn apply_matches_oracle(a in set_strategy(1)) {
        // R = {[i] -> [j] : j = 2i - 1}
        let r: Relation = "{[i] -> [j] : j = 2i - 1}".parse().unwrap();
        let img = r.apply(&a);
        for y in 2 * LO - 3..=2 * HI + 1 {
            let want = (LO..=HI).any(|x| a.contains(&[x], &[]) && y == 2 * x - 1);
            prop_assert_eq!(img.contains(&[y], &[]), want, "y = {}", y);
        }
    }

    #[test]
    fn compose_matches_oracle(a in set_strategy(1)) {
        let f: Relation = "{[i] -> [j] : j = i + 3}".parse().unwrap();
        let g: Relation = "{[i] -> [j] : j = 2i}".parse().unwrap();
        let fg = f.then(&g); // j = 2(i + 3)
        for p in points(1) {
            let x = p[0];
            prop_assert!(fg.contains_pair(&[x], &[2 * (x + 3)], &[]));
            prop_assert!(!fg.contains_pair(&[x], &[2 * (x + 3) + 1], &[]));
        }
        let _ = a; // arity anchor
    }
}
