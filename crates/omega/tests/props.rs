//! Property-based tests: every set operation is checked against a
//! brute-force membership oracle on randomly generated small sets.
//!
//! Uses the in-tree deterministic generator ([`dhpf_omega::testing::Rng`])
//! so the suite runs fully offline; every assertion message carries the
//! seed, and re-running with that seed replays the case exactly.

use dhpf_omega::testing::Rng;
use dhpf_omega::{Conjunct, LinExpr, Relation, Set, Var};

const LO: i64 = -6;
const HI: i64 = 10;
const CASES: u64 = 48;

/// A randomly generated constraint for a conjunct of the given arity.
#[derive(Clone, Debug)]
enum Cons {
    /// `lo <= dim <= hi`
    Bounds(usize, i64, i64),
    /// `c0*d0 + c1*d1 + k >= 0`
    Geq(Vec<i64>, i64),
    /// `dim ≡ r (mod m)`
    Stride(usize, i64, i64),
    /// `c0*d0 + c1*d1 + k = 0`
    Eq(Vec<i64>, i64),
}

fn random_cons(rng: &mut Rng, arity: usize) -> Cons {
    match rng.index(4) {
        0 => {
            let d = rng.index(arity);
            let a = rng.range(-3, 5);
            let b = rng.range(-3, 5);
            Cons::Bounds(d, a.min(b), a.max(b))
        }
        1 => {
            let cs = (0..arity).map(|_| rng.range(-2, 2)).collect();
            Cons::Geq(cs, rng.range(-5, 7))
        }
        2 => {
            let d = rng.index(arity);
            let m = rng.range(2, 4);
            let r = rng.range(0, 3) % m;
            Cons::Stride(d, r, m)
        }
        _ => {
            let cs = (0..arity).map(|_| rng.range(-2, 2)).collect();
            Cons::Eq(cs, rng.range(-4, 4))
        }
    }
}

fn build_conjunct(arity: usize, cons: &[Cons]) -> Conjunct {
    let mut c = Conjunct::new();
    // Always bound the box so enumeration oracles stay finite.
    for d in 0..arity {
        c.add_bounds(Var::In(d as u32), LO, HI);
    }
    for k in cons {
        match k {
            Cons::Bounds(d, lo, hi) => c.add_bounds(Var::In(*d as u32), *lo, *hi),
            Cons::Geq(cs, k) => {
                let e = LinExpr::from_terms(
                    cs.iter()
                        .enumerate()
                        .map(|(d, &co)| (Var::In(d as u32), co)),
                    *k,
                );
                c.add_geq(e);
            }
            Cons::Stride(d, r, m) => {
                let mut e = LinExpr::var(Var::In(*d as u32));
                e.add_constant(-r);
                c.add_stride(e, *m);
            }
            Cons::Eq(cs, k) => {
                let e = LinExpr::from_terms(
                    cs.iter()
                        .enumerate()
                        .map(|(d, &co)| (Var::In(d as u32), co)),
                    *k,
                );
                c.add_eq(e);
            }
        }
    }
    c
}

fn random_set(rng: &mut Rng, arity: usize) -> Set {
    let n_conj = rng.range(1, 2) as usize;
    let mut r = Set::empty(arity as u32).into_relation();
    for _ in 0..n_conj {
        let n_cons = rng.range(0, 2) as usize;
        let cons: Vec<Cons> = (0..n_cons).map(|_| random_cons(rng, arity)).collect();
        r.add_conjunct(build_conjunct(arity, &cons));
    }
    Set::from_relation(r)
}

fn points(arity: usize) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    if arity == 1 {
        for x in LO - 2..=HI + 2 {
            out.push(vec![x]);
        }
    } else {
        for x in LO - 1..=HI + 1 {
            for y in LO - 1..=HI + 1 {
                out.push(vec![x, y]);
            }
        }
    }
    out
}

#[test]
fn union_matches_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = random_set(&mut rng, 2);
        let b = random_set(&mut rng, 2);
        let u = a.union(&b);
        for p in points(2) {
            assert_eq!(
                u.contains(&p, &[]),
                a.contains(&p, &[]) || b.contains(&p, &[]),
                "seed {seed} point {p:?}"
            );
        }
    }
}

#[test]
fn intersection_matches_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = random_set(&mut rng, 2);
        let b = random_set(&mut rng, 2);
        let n = a.intersection(&b);
        for p in points(2) {
            assert_eq!(
                n.contains(&p, &[]),
                a.contains(&p, &[]) && b.contains(&p, &[]),
                "seed {seed} point {p:?}"
            );
        }
    }
}

#[test]
fn subtract_matches_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = random_set(&mut rng, 1);
        let b = random_set(&mut rng, 1);
        let d = a.subtract(&b);
        for p in points(1) {
            assert_eq!(
                d.contains(&p, &[]),
                a.contains(&p, &[]) && !b.contains(&p, &[]),
                "seed {seed} point {p:?}"
            );
        }
    }
}

#[test]
fn subtract_2d_matches_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = random_set(&mut rng, 2);
        let b = random_set(&mut rng, 2);
        let d = a.subtract(&b);
        for p in points(2) {
            assert_eq!(
                d.contains(&p, &[]),
                a.contains(&p, &[]) && !b.contains(&p, &[]),
                "seed {seed} point {p:?}"
            );
        }
    }
}

#[test]
fn emptiness_matches_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = random_set(&mut rng, 2);
        let any = points(2).iter().any(|p| a.contains(p, &[]));
        assert_eq!(a.is_empty(), !any, "seed {seed}");
    }
}

#[test]
fn subset_matches_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = random_set(&mut rng, 1);
        let b = random_set(&mut rng, 1);
        let want = points(1)
            .iter()
            .all(|p| !a.contains(p, &[]) || b.contains(p, &[]));
        assert_eq!(a.is_subset_of(&b), want, "seed {seed}");
    }
}

#[test]
fn projection_matches_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = random_set(&mut rng, 2);
        let pj = a.project_onto(&[0]);
        for x in LO - 1..=HI + 1 {
            let want = (LO - 1..=HI + 1).any(|y| a.contains(&[x, y], &[]));
            assert_eq!(pj.contains(&[x], &[]), want, "seed {seed} x = {x}");
        }
    }
}

#[test]
fn enumerate_matches_contains() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = random_set(&mut rng, 2);
        let listed = a.enumerate(&[]).unwrap();
        for p in points(2) {
            let want = a.contains(&p, &[]);
            assert_eq!(listed.contains(&p), want, "seed {seed} point {p:?}");
        }
    }
}

#[test]
fn convexity_matches_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = random_set(&mut rng, 1);
        let members: Vec<i64> = (LO..=HI).filter(|&x| a.contains(&[x], &[])).collect();
        let mut has_hole = false;
        if members.len() >= 2 {
            let lo = members[0];
            let hi = *members.last().unwrap();
            has_hole = (lo..=hi).any(|x| !members.contains(&x));
        }
        assert_eq!(
            a.is_convex_1d(),
            !has_hole,
            "seed {seed} members {members:?}"
        );
    }
}

#[test]
fn singleton_matches_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = random_set(&mut rng, 1);
        let count = (LO..=HI).filter(|&x| a.contains(&[x], &[])).count();
        assert_eq!(a.is_singleton_1d(), count <= 1, "seed {seed}");
    }
}

#[test]
fn apply_matches_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = random_set(&mut rng, 1);
        // R = {[i] -> [j] : j = 2i - 1}
        let r: Relation = "{[i] -> [j] : j = 2i - 1}".parse().unwrap();
        let img = r.apply(&a);
        for y in 2 * LO - 3..=2 * HI + 1 {
            let want = (LO..=HI).any(|x| a.contains(&[x], &[]) && y == 2 * x - 1);
            assert_eq!(img.contains(&[y], &[]), want, "seed {seed} y = {y}");
        }
    }
}

#[test]
fn compose_matches_oracle() {
    let f: Relation = "{[i] -> [j] : j = i + 3}".parse().unwrap();
    let g: Relation = "{[i] -> [j] : j = 2i}".parse().unwrap();
    let fg = f.then(&g); // j = 2(i + 3)
    for p in points(1) {
        let x = p[0];
        assert!(fg.contains_pair(&[x], &[2 * (x + 3)], &[]));
        assert!(!fg.contains_pair(&[x], &[2 * (x + 3) + 1], &[]));
    }
}
