//! Exact negation of conjuncts — the engine behind set difference.

use crate::conjunct::{Conjunct, Normalized};
use crate::linexpr::LinExpr;
use crate::num::gcd;
use crate::var::Var;
use crate::OmegaError;
use std::collections::BTreeMap;

/// Negates a conjunct exactly, returning the disjunction of conjuncts whose
/// union is the complement.
///
/// Existential variables are supported when each one occurs in exactly one
/// equality (a stride/congruence constraint, e.g. `exists a : i = 25a + r`);
/// the negation of `f ≡ 0 (mod g)` is `∨_{r=1}^{g-1} f ≡ r (mod g)`.
/// Other existential systems are first eliminated exactly; if elimination
/// keeps reintroducing complex existentials the function reports
/// [`OmegaError::InexactNegation`].
///
/// # Errors
///
/// Returns [`OmegaError::InexactNegation`] if the existential structure
/// cannot be reduced to congruences.
#[deprecated(note = "use `negate_conjunct_in(c, None)` or `Context::negate_conjunct`")]
pub fn negate_conjunct(c: &Conjunct) -> Result<Vec<Conjunct>, OmegaError> {
    negate_conjunct_in(c, None)
}

/// [`negate_conjunct`] threading an optional shared [`Context`](crate::Context)
/// that memoizes the negation per distinct conjunct structure.
///
/// # Errors
///
/// Returns [`OmegaError::InexactNegation`] if the existential structure
/// cannot be reduced to congruences.
pub fn negate_conjunct_in(
    c: &Conjunct,
    ctx: Option<&crate::Context>,
) -> Result<Vec<Conjunct>, OmegaError> {
    match ctx {
        Some(cx) => cx.cached_negate(c, || negate_uncached(c, ctx)),
        None => negate_uncached(c, None),
    }
}

fn negate_uncached(
    c: &Conjunct,
    ctx: Option<&crate::Context>,
) -> Result<Vec<Conjunct>, OmegaError> {
    let mut c = c.clone();
    if c.normalize() == Normalized::False {
        // Complement of the empty conjunct is the universe. Every
        // trivially-empty conjunct interns to the one canonical false id,
        // so this arm also keeps the memoized negation independent of
        // which empty conjunct reached the cache first.
        let mut u = Conjunct::new();
        u.normalize();
        return Ok(vec![u]);
    }
    // Reduce to stride form: eliminate every existential that is not a pure
    // congruence witness. Elimination can introduce fresh existentials with
    // shrinking coefficients (the Omega test), so iterate with fuel.
    let stride_form = to_stride_form_in(c, ctx)?;
    // ¬(u1 ∨ u2 ∨ ...) = ¬u1 ∧ ¬u2 ∧ ...
    //
    // The cross product over stride pieces can explode combinatorially (k
    // pieces with ~17 negation atoms each yield up to 17^k conjuncts), so
    // the accumulator carries a hard budget; blowing it means the exact
    // complement is too large to represent and the negation is inexact.
    // The cap is per-context configurable via `Budget::max_negation_pieces`
    // (default 10 000, the historical constant).
    let max_negation_pieces = ctx.map_or_else(
        || crate::Budget::default().max_negation_pieces,
        crate::Context::max_negation_pieces,
    );
    let mut acc: Vec<Conjunct> = vec![Conjunct::new()];
    for p in &stride_form {
        let negs = negate_stride_conjunct(p);
        if acc.len().saturating_mul(negs.len()) > max_negation_pieces {
            return Err(OmegaError::InexactNegation);
        }
        let mut next = Vec::new();
        for a in &acc {
            for n in &negs {
                let mut m = a.clone();
                m.merge(n);
                if m.normalize() != Normalized::False {
                    next.push(m);
                }
            }
        }
        acc = next;
    }
    Ok(acc)
}

/// Eliminates all non-stride existentials, returning an equivalent union of
/// conjuncts whose existentials are pure congruence witnesses (each occurs
/// in exactly one equality and in no inequality).
///
/// Code generation and negation both require this normal form: congruences
/// translate to loop strides or `mod` guards, while general existential
/// systems do not.
///
/// # Errors
///
/// Returns [`OmegaError::InexactNegation`] if the reduction does not
/// converge within its fuel budget (does not happen for the constraint
/// class produced by affine loop nests and HPF layouts).
#[deprecated(note = "use `to_stride_form_in(c, None)` or `Context::to_stride_form`")]
pub fn to_stride_form(c: Conjunct) -> Result<Vec<Conjunct>, OmegaError> {
    to_stride_form_in(c, None)
}

/// [`to_stride_form`] threading an optional shared [`Context`](crate::Context)
/// so the exact eliminations share the context's projection cache.
///
/// # Errors
///
/// Returns [`OmegaError::InexactNegation`] if the reduction does not
/// converge within its fuel budget.
pub fn to_stride_form_in(
    c: Conjunct,
    ctx: Option<&crate::Context>,
) -> Result<Vec<Conjunct>, OmegaError> {
    let mut done = Vec::new();
    let mut work = vec![c];
    // Per-context configurable via `Budget::stride_fuel` (default 500).
    let mut fuel = ctx.map_or_else(
        || crate::Budget::default().stride_fuel,
        crate::Context::stride_fuel,
    );
    while let Some(mut c) = work.pop() {
        if fuel == 0 {
            return Err(OmegaError::InexactNegation);
        }
        fuel -= 1;
        if c.normalize() == Normalized::False {
            continue;
        }
        match first_complex_exist(&c) {
            None => done.push(c),
            Some(v) => work.extend(c.try_eliminate_exact_in(v, ctx)?),
        }
    }
    Ok(done)
}

/// Negates a conjunct whose existentials are all pure congruence witnesses:
/// the complement is the union of the per-constraint negations, made
/// *pairwise disjoint* by the standard prefix trick —
/// `¬(c1 ∧ c2 ∧ ...) = ¬c1 ∨ (c1 ∧ ¬c2) ∨ (c1 ∧ c2 ∧ ¬c3) ∨ ...`.
///
/// Disjointness matters downstream: code generation turns the pieces of a
/// set difference into loop nests and must enumerate every tuple exactly
/// once, so an overlapping complement would duplicate iterations (and
/// communication messages). The prefix costs extra constraints per piece
/// but never increases the piece count.
fn negate_stride_conjunct(c: &Conjunct) -> Vec<Conjunct> {
    let mut out = Vec::new();
    let mut prefix = Conjunct::new();
    for e in c.geqs() {
        // ¬(e >= 0)  =  -e - 1 >= 0, under the satisfied prefix.
        let mut n = prefix.clone();
        let mut neg = e.negated();
        neg.add_constant(-1);
        n.add_geq(neg);
        if n.normalize() != Normalized::False {
            out.push(n);
        }
        prefix.add_geq(e.clone());
    }
    for e in c.eqs() {
        let (exist_gcd, f) = split_exist_part(e);
        match exist_gcd {
            None => {
                // ¬(f = 0)  =  f >= 1  ∨  -f >= 1 (disjoint halves).
                let mut hi = prefix.clone();
                let mut a = f.clone();
                a.add_constant(-1);
                hi.add_geq(a);
                if hi.normalize() != Normalized::False {
                    out.push(hi);
                }
                let mut lo = prefix.clone();
                let mut b = f.negated();
                b.add_constant(-1);
                lo.add_geq(b);
                if lo.normalize() != Normalized::False {
                    out.push(lo);
                }
                prefix.add_eq(f.clone());
            }
            Some(g) if g <= 1 => {
                // f ≡ 0 (mod 1): tautology; contributes nothing to ¬c.
            }
            Some(g) => {
                // ¬(f ≡ 0 mod g): f ≡ r (mod g) for r = 1..g-1 (disjoint
                // residue classes).
                for r in 1..g {
                    let mut n = prefix.clone();
                    let mut expr = f.clone();
                    expr.add_constant(-r);
                    n.add_stride(expr, g);
                    if n.normalize() != Normalized::False {
                        out.push(n);
                    }
                }
                prefix.add_stride(f.clone(), g);
            }
        }
    }
    out
}

/// Finds an existential that occurs in an inequality or in more than one
/// equality (and is therefore not a plain congruence witness).
fn first_complex_exist(c: &Conjunct) -> Option<Var> {
    let mut eq_count: BTreeMap<Var, u32> = BTreeMap::new();
    for e in c.eqs() {
        for (v, _) in e.terms() {
            if v.is_exist() {
                *eq_count.entry(v).or_insert(0) += 1;
            }
        }
    }
    for e in c.geqs() {
        for (v, _) in e.terms() {
            if v.is_exist() {
                return Some(v);
            }
        }
    }
    eq_count.into_iter().find(|&(_, n)| n > 1).map(|(v, _)| v)
}

/// Splits an equality into its existential part and the free part.
///
/// For `Σ k_i·α_i + f = 0` (α_i existential, f free), the reachable values of
/// the existential part are exactly the multiples of `g = gcd(k_i)`, so the
/// constraint is `f ≡ 0 (mod g)`. Returns `(Some(g), f)`; `(None, e)` if no
/// existentials occur.
fn split_exist_part(e: &LinExpr) -> (Option<i64>, LinExpr) {
    let mut g = 0i64;
    let mut f = LinExpr::constant(e.constant_term());
    let mut any = false;
    for (v, c) in e.terms() {
        if v.is_exist() {
            any = true;
            g = gcd(g, c);
        } else {
            f.add_term(v, c);
        }
    }
    if any {
        (Some(g.abs()), f)
    } else {
        (None, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::Var;

    fn iv(n: u32) -> Var {
        Var::In(n)
    }

    fn member_of_union(pieces: &[Conjunct], x: i64) -> bool {
        pieces
            .iter()
            .any(|c| c.contains(|v| if v == iv(0) { Some(x) } else { None }))
    }

    #[test]
    fn negate_interval() {
        let mut c = Conjunct::new();
        c.add_bounds(iv(0), 3, 7);
        let neg = negate_conjunct_in(&c, None).unwrap();
        for x in -5..=15i64 {
            assert_eq!(member_of_union(&neg, x), !(3..=7).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn negate_equality() {
        let mut c = Conjunct::new();
        c.add_eq(crate::LinExpr::from_terms([(iv(0), 1)], -4)); // i = 4
        let neg = negate_conjunct_in(&c, None).unwrap();
        for x in 0..=8i64 {
            assert_eq!(member_of_union(&neg, x), x != 4);
        }
    }

    #[test]
    fn negate_stride() {
        // i ≡ 0 (mod 3)
        let mut c = Conjunct::new();
        c.add_stride(crate::LinExpr::var(iv(0)), 3);
        let neg = negate_conjunct_in(&c, None).unwrap();
        for x in -9..=9i64 {
            assert_eq!(member_of_union(&neg, x), x.rem_euclid(3) != 0, "x = {x}");
        }
    }

    #[test]
    fn negate_empty_is_universe() {
        let mut c = Conjunct::new();
        c.add_geq(crate::LinExpr::constant(-1)); // false
        let neg = negate_conjunct_in(&c, None).unwrap();
        assert!(member_of_union(&neg, 42));
    }

    #[test]
    fn negate_complex_existential_via_elimination() {
        // { i : exists a : 2a <= i <= 2a + 1 && 0 <= a <= 2 } = [0, 5]
        let a = Var::Exist(0);
        let mut c = Conjunct::new();
        c.add_geq(crate::LinExpr::from_terms([(iv(0), 1), (a, -2)], 0));
        c.add_geq(crate::LinExpr::from_terms([(iv(0), -1), (a, 2)], 1));
        c.add_geq(crate::LinExpr::from_terms([(a, 1)], 0));
        c.add_geq(crate::LinExpr::from_terms([(a, -1)], 2));
        let neg = negate_conjunct_in(&c, None).unwrap();
        for x in -5..=10i64 {
            assert_eq!(member_of_union(&neg, x), !(0..=5).contains(&x), "x = {x}");
        }
    }
}
