//! Relations: unions of [`Conjunct`]s mapping input tuples to output tuples.

use crate::conjunct::{Conjunct, Normalized};
use crate::context::{join, Context};
use crate::linexpr::LinExpr;
use crate::ops::negate_conjunct_in;
use crate::var::Var;

/// A symbolic integer tuple relation `{ [i..] -> [j..] : formula }`.
///
/// A relation is a finite union of [`Conjunct`]s over shared named
/// parameters. A [`Set`](crate::Set) is a relation with no output tuple.
///
/// # Examples
///
/// ```
/// use dhpf_omega::Relation;
/// let r: Relation = "{[i] -> [j] : j = i + 1 && 1 <= i <= N}".parse()?;
/// assert_eq!(r.n_in(), 1);
/// assert_eq!(r.n_out(), 1);
/// assert_eq!(r.params(), &["N".to_string()]);
/// # Ok::<(), dhpf_omega::ParseError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Relation {
    params: Vec<String>,
    n_in: u32,
    n_out: u32,
    pub(crate) in_names: Vec<String>,
    pub(crate) out_names: Vec<String>,
    conjuncts: Vec<Conjunct>,
    pub(crate) ctx: Option<Context>,
}

impl Relation {
    /// The universe relation (no constraints) of the given arities.
    pub fn universe(n_in: u32, n_out: u32) -> Self {
        Relation {
            params: Vec::new(),
            n_in,
            n_out,
            in_names: Vec::new(),
            out_names: Vec::new(),
            conjuncts: vec![Conjunct::new()],
            ctx: None,
        }
    }

    /// The empty relation of the given arities.
    pub fn empty(n_in: u32, n_out: u32) -> Self {
        Relation {
            params: Vec::new(),
            n_in,
            n_out,
            in_names: Vec::new(),
            out_names: Vec::new(),
            conjuncts: Vec::new(),
            ctx: None,
        }
    }

    /// Attaches a shared [`Context`], returning the relation.
    ///
    /// Derived relations inherit the context of their operands (the left
    /// operand wins when both carry one), so attaching a context to the
    /// *root* relations of a computation is enough for every downstream
    /// operation to share its caches.
    #[must_use]
    pub fn with_context(mut self, ctx: &Context) -> Self {
        self.ctx = Some(ctx.clone());
        self
    }

    /// Attaches (or clears) the shared [`Context`] in place.
    pub fn set_context(&mut self, ctx: Option<&Context>) {
        self.ctx = ctx.cloned();
    }

    /// The shared [`Context`] attached to this relation, if any.
    pub fn context(&self) -> Option<&Context> {
        self.ctx.as_ref()
    }

    /// Number of input tuple variables.
    pub fn n_in(&self) -> u32 {
        self.n_in
    }

    /// Number of output tuple variables.
    pub fn n_out(&self) -> u32 {
        self.n_out
    }

    /// The sorted parameter names of this relation.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// The disjuncts of this relation.
    pub fn conjuncts(&self) -> &[Conjunct] {
        &self.conjuncts
    }

    /// Mutable access to the disjuncts (for in-place construction).
    pub fn conjuncts_mut(&mut self) -> &mut Vec<Conjunct> {
        &mut self.conjuncts
    }

    /// Adds a disjunct.
    pub fn add_conjunct(&mut self, c: Conjunct) {
        self.conjuncts.push(c);
    }

    /// Sets display names for the input tuple variables.
    pub fn with_in_names<I: IntoIterator<Item = S>, S: Into<String>>(mut self, names: I) -> Self {
        self.in_names = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets display names for the output tuple variables.
    pub fn with_out_names<I: IntoIterator<Item = S>, S: Into<String>>(mut self, names: I) -> Self {
        self.out_names = names.into_iter().map(Into::into).collect();
        self
    }

    /// Index of parameter `name`, registering it (keeping the list sorted
    /// and remapping existing constraints) if it is new.
    pub fn ensure_param(&mut self, name: &str) -> u32 {
        if let Ok(i) = self.params.binary_search_by(|p| p.as_str().cmp(name)) {
            return i as u32;
        }
        let pos = self
            .params
            .binary_search_by(|p| p.as_str().cmp(name))
            .unwrap_err();
        self.params.insert(pos, name.to_string());
        let remap = |v: Var| match v {
            Var::Param(i) if i as usize >= pos => Var::Param(i + 1),
            v => v,
        };
        for c in &mut self.conjuncts {
            *c = c.rename(remap);
        }
        pos as u32
    }

    /// Index of parameter `name`, if present.
    pub fn param_index(&self, name: &str) -> Option<u32> {
        self.params
            .binary_search_by(|p| p.as_str().cmp(name))
            .ok()
            .map(|i| i as u32)
    }

    /// Remaps both relations onto the union of their parameter lists.
    pub fn unify_params(mut a: Relation, mut b: Relation) -> (Relation, Relation) {
        if a.params == b.params {
            return (a, b);
        }
        let mut merged: Vec<String> = a.params.iter().chain(&b.params).cloned().collect();
        merged.sort();
        merged.dedup();
        let remap_into = |r: &mut Relation, merged: &[String]| {
            let map: Vec<u32> = r
                .params
                .iter()
                .map(|p| merged.iter().position(|m| m == p).unwrap() as u32)
                .collect();
            let f = |v: Var| match v {
                Var::Param(i) => Var::Param(map[i as usize]),
                v => v,
            };
            for c in &mut r.conjuncts {
                *c = c.rename(f);
            }
            r.params = merged.to_vec();
        };
        remap_into(&mut a, &merged);
        remap_into(&mut b, &merged);
        (a, b)
    }

    fn check_same_arity(&self, other: &Relation, op: &str) {
        assert_eq!(
            (self.n_in, self.n_out),
            (other.n_in, other.n_out),
            "{op}: arity mismatch ({}->{} vs {}->{})",
            self.n_in,
            self.n_out,
            other.n_in,
            other.n_out
        );
    }

    /// Union of two relations of identical arity.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    pub fn union(&self, other: &Relation) -> Relation {
        self.check_same_arity(other, "union");
        let (mut a, b) = Relation::unify_params(self.clone(), other.clone());
        a.conjuncts.extend(b.conjuncts);
        if a.in_names.is_empty() {
            a.in_names = b.in_names;
        }
        if a.out_names.is_empty() {
            a.out_names = b.out_names;
        }
        a.ctx = join(a.ctx.as_ref(), b.ctx.as_ref());
        a
    }

    /// Intersection of two relations of identical arity.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    pub fn intersection(&self, other: &Relation) -> Relation {
        self.check_same_arity(other, "intersection");
        let (a, b) = Relation::unify_params(self.clone(), other.clone());
        let mut out = Relation {
            params: a.params.clone(),
            n_in: a.n_in,
            n_out: a.n_out,
            in_names: if a.in_names.is_empty() {
                b.in_names.clone()
            } else {
                a.in_names.clone()
            },
            out_names: if a.out_names.is_empty() {
                b.out_names.clone()
            } else {
                a.out_names.clone()
            },
            conjuncts: Vec::new(),
            ctx: join(a.ctx.as_ref(), b.ctx.as_ref()),
        };
        for ca in &a.conjuncts {
            for cb in &b.conjuncts {
                let mut c = ca.clone();
                c.merge(cb);
                if c.normalize() != Normalized::False {
                    out.conjuncts.push(c);
                }
            }
        }
        out
    }

    /// Set difference `self - other` (exact).
    ///
    /// # Panics
    ///
    /// Panics if the arities differ, or if a conjunct of `other` contains an
    /// existential system that cannot be negated exactly (see
    /// [`negate_conjunct`]); the constraint classes produced by the dHPF
    /// analyses never trigger this.
    pub fn subtract(&self, other: &Relation) -> Relation {
        self.try_subtract(other)
            .expect("subtract: inexact negation of existential system")
    }

    /// Set difference `self - other`, or an error if a conjunct of `other`
    /// cannot be negated exactly.
    ///
    /// # Errors
    ///
    /// Returns [`crate::OmegaError::InexactNegation`] when a conjunct of
    /// `other` has an existential that cannot be eliminated or expressed as a
    /// stride.
    pub fn try_subtract(&self, other: &Relation) -> Result<Relation, crate::OmegaError> {
        self.check_same_arity(other, "subtract");
        let (a, b) = Relation::unify_params(self.clone(), other.clone());
        let ctx = join(a.ctx.as_ref(), b.ctx.as_ref());
        let cx = ctx.as_ref();
        let mut pieces: Vec<Conjunct> = a.conjuncts.clone();
        for cb in &b.conjuncts {
            let negs = negate_conjunct_in(cb, cx)?;
            let mut next = Vec::new();
            for p in &pieces {
                for n in &negs {
                    let mut c = p.clone();
                    c.merge(n);
                    if c.normalize() != Normalized::False && c.is_satisfiable_in(cx) {
                        next.push(c);
                    }
                }
            }
            pieces = next;
            if pieces.is_empty() {
                break;
            }
        }
        let mut out = Relation {
            params: a.params.clone(),
            n_in: a.n_in,
            n_out: a.n_out,
            in_names: a.in_names.clone(),
            out_names: a.out_names.clone(),
            conjuncts: pieces,
            ctx: ctx.clone(),
        };
        out.simplify();
        Ok(out)
    }

    /// Applies `self` then `other`: for `self: A -> B` and `other: B -> C`,
    /// the result is `{ a -> c : exists b : (a,b) in self && (b,c) in other }`.
    ///
    /// This is the paper's `other ∘ self` (Appendix A).
    ///
    /// # Panics
    ///
    /// Panics if `self.n_out() != other.n_in()`.
    pub fn then(&self, other: &Relation) -> Relation {
        assert_eq!(
            self.n_out, other.n_in,
            "then: mid arity mismatch ({} vs {})",
            self.n_out, other.n_in
        );
        let (a, b) = Relation::unify_params(self.clone(), other.clone());
        let mid = a.n_out;
        let mut out = Relation {
            params: a.params.clone(),
            n_in: a.n_in,
            n_out: b.n_out,
            in_names: a.in_names.clone(),
            out_names: b.out_names.clone(),
            conjuncts: Vec::new(),
            ctx: join(a.ctx.as_ref(), b.ctx.as_ref()),
        };
        let ctx = out.ctx.clone();
        let cx = ctx.as_ref();
        for ca in &a.conjuncts {
            for cb in &b.conjuncts {
                // Mid variables become existentials Exist(0..mid); the two
                // conjuncts' own existentials are shifted above them.
                let ea = ca.n_exist();
                let ra = ca.rename(|v| match v {
                    Var::Out(j) => Var::Exist(j),
                    Var::Exist(i) => Var::Exist(mid + i),
                    v => v,
                });
                let rb = cb.rename(|v| match v {
                    Var::In(j) => Var::Exist(j),
                    Var::Exist(i) => Var::Exist(mid + ea + i),
                    v => v,
                });
                // The renames above already placed the existential index
                // ranges disjointly, so the two halves conjoin verbatim.
                let mut merged = ra;
                merged.conjoin_raw(rb);
                // Eliminate the mid existentials exactly for compact output.
                let mut work = vec![merged];
                for j in 0..mid {
                    let mut next = Vec::new();
                    for c in work {
                        next.extend(c.eliminate_exact_in(Var::Exist(j), cx));
                    }
                    work = next;
                }
                out.conjuncts.extend(work);
            }
        }
        out.simplify();
        out
    }

    /// Mathematical composition `self ∘ other`: apply `other` first.
    ///
    /// # Panics
    ///
    /// Panics if `other.n_out() != self.n_in()`.
    pub fn compose(&self, other: &Relation) -> Relation {
        other.then(self)
    }

    /// The inverse relation (inputs and outputs swapped).
    pub fn inverse(&self) -> Relation {
        let f = |v: Var| match v {
            Var::In(i) => Var::Out(i),
            Var::Out(i) => Var::In(i),
            v => v,
        };
        Relation {
            params: self.params.clone(),
            n_in: self.n_out,
            n_out: self.n_in,
            in_names: self.out_names.clone(),
            out_names: self.in_names.clone(),
            conjuncts: self.conjuncts.iter().map(|c| c.rename(f)).collect(),
            ctx: self.ctx.clone(),
        }
    }

    /// Eliminates a tuple variable exactly from every conjunct, keeping the
    /// arity bookkeeping to the caller. Internal building block.
    fn eliminate_var(&mut self, v: Var) {
        let ctx = self.ctx.clone();
        let mut out = Vec::new();
        for c in &self.conjuncts {
            out.extend(c.eliminate_exact_in(v, ctx.as_ref()));
        }
        self.conjuncts = out;
    }

    /// The domain of the relation, as a set over the input tuple.
    pub fn domain(&self) -> crate::Set {
        let mut r = self.clone();
        for j in 0..self.n_out {
            r.eliminate_var(Var::Out(j));
        }
        r.n_out = 0;
        r.out_names.clear();
        r.simplify();
        crate::Set::from_relation(r)
    }

    /// The range of the relation, as a set over the output tuple.
    pub fn range(&self) -> crate::Set {
        self.inverse().domain()
    }

    /// Restricts the domain to `set` (the paper's `∩ domain`).
    ///
    /// # Panics
    ///
    /// Panics if `set.arity() != self.n_in()`.
    pub fn restrict_domain(&self, set: &crate::Set) -> Relation {
        assert_eq!(
            set.arity(),
            self.n_in,
            "restrict_domain: arity mismatch ({} vs {})",
            set.arity(),
            self.n_in
        );
        let mut lifted = set.as_relation().clone();
        lifted.n_out = self.n_out;
        lifted.out_names = self.out_names.clone();
        self.intersection(&lifted)
    }

    /// Restricts the range to `set` (the paper's `∩range`).
    ///
    /// # Panics
    ///
    /// Panics if `set.arity() != self.n_out()`.
    pub fn restrict_range(&self, set: &crate::Set) -> Relation {
        assert_eq!(
            set.arity(),
            self.n_out,
            "restrict_range: arity mismatch ({} vs {})",
            set.arity(),
            self.n_out
        );
        let f = |v: Var| match v {
            Var::In(i) => Var::Out(i),
            v => v,
        };
        let mut lifted = Relation {
            params: set.as_relation().params.clone(),
            n_in: self.n_in,
            n_out: self.n_out,
            in_names: self.in_names.clone(),
            out_names: set.as_relation().in_names.clone(),
            conjuncts: set
                .as_relation()
                .conjuncts
                .iter()
                .map(|c| c.rename(f))
                .collect(),
            ctx: set.as_relation().ctx.clone(),
        };
        if lifted.out_names.is_empty() {
            lifted.out_names = self.out_names.clone();
        }
        self.intersection(&lifted)
    }

    /// Applies the relation to a set: `R(S) = { j : exists i in S, (i,j) in R }`.
    ///
    /// # Panics
    ///
    /// Panics if `set.arity() != self.n_in()`.
    pub fn apply(&self, set: &crate::Set) -> crate::Set {
        self.restrict_domain(set).range()
    }

    /// Applies the inverse relation to a set.
    pub fn apply_inverse(&self, set: &crate::Set) -> crate::Set {
        self.restrict_range(set).domain()
    }

    /// Substitutes a constant value for parameter `name`, removing it.
    ///
    /// Unknown parameters are ignored (the relation does not change).
    pub fn specialize_param(&self, name: &str, value: i64) -> Relation {
        let Some(idx) = self.param_index(name) else {
            return self.clone();
        };
        let mut out = self.clone();
        out.params.remove(idx as usize);
        out.conjuncts = self
            .conjuncts
            .iter()
            .map(|c| {
                let b = c.bind(|v| match v {
                    Var::Param(i) if i == idx => Some(value),
                    _ => None,
                });
                b.rename(|v| match v {
                    Var::Param(i) if i > idx => Var::Param(i - 1),
                    v => v,
                })
            })
            .collect();
        out.simplify_cheap();
        out
    }

    /// True if the relation has no integer solutions for any parameter
    /// values.
    pub fn is_empty(&self) -> bool {
        let cx = self.ctx.as_ref();
        !self.conjuncts.iter().any(|c| c.is_satisfiable_in(cx))
    }

    /// True if some tuple satisfies the relation for some parameter values.
    pub fn is_satisfiable(&self) -> bool {
        !self.is_empty()
    }

    /// True if `self ⊆ other` for all parameter values.
    ///
    /// Thin delegate over [`Relation::try_is_subset_of`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Relation::subtract`].
    pub fn is_subset_of(&self, other: &Relation) -> bool {
        self.try_is_subset_of(other)
            .expect("is_subset_of: inexact negation of existential system")
    }

    /// True if `self ⊆ other` for all parameter values, or an error if the
    /// difference cannot be formed exactly.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Relation::try_subtract`].
    pub fn try_is_subset_of(&self, other: &Relation) -> Result<bool, crate::OmegaError> {
        Ok(self.try_subtract(other)?.is_empty())
    }

    /// True if the relations contain exactly the same tuples for all
    /// parameter values.
    ///
    /// Thin delegate over [`Relation::try_equal`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Relation::subtract`].
    pub fn equal(&self, other: &Relation) -> bool {
        self.try_equal(other)
            .expect("equal: inexact negation of existential system")
    }

    /// True if the relations contain exactly the same tuples for all
    /// parameter values, or an error if a difference cannot be formed
    /// exactly.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Relation::try_subtract`].
    pub fn try_equal(&self, other: &Relation) -> Result<bool, crate::OmegaError> {
        Ok(self.try_is_subset_of(other)? && other.try_is_subset_of(self)?)
    }

    /// Cheap cleanup: normalize conjuncts, drop trivially-false ones.
    pub fn simplify_cheap(&mut self) {
        self.conjuncts
            .retain_mut(|c| c.normalize() != Normalized::False);
        // Conjuncts are normalized (sorted, deduplicated constraints), so
        // their structural `Ord` gives a canonical sequence directly — no
        // more formatting every conjunct to a `Debug` string per sort key.
        self.conjuncts.sort_unstable();
        self.conjuncts.dedup();
    }

    /// Full cleanup: normalizes, drops unsatisfiable conjuncts (Omega
    /// test), removes syntactically and semantically subsumed conjuncts,
    /// and eliminates redundant constraints within each conjunct.
    ///
    /// All passes run on every call: keeping intermediate sets minimal
    /// proved cheaper end-to-end than deferring any pass (see
    /// [`Relation::simplify_deep`]).
    pub fn simplify(&mut self) {
        match self.ctx.clone() {
            Some(cx) => {
                self.conjuncts = cx.cached_simplify(&self.conjuncts, || {
                    let mut scratch = self.clone();
                    scratch.simplify_uncached();
                    scratch.conjuncts
                });
            }
            None => self.simplify_uncached(),
        }
    }

    fn simplify_uncached(&mut self) {
        let ctx = self.ctx.clone();
        let cx = ctx.as_ref();
        self.simplify_cheap();
        self.conjuncts.retain(|c| c.is_satisfiable_in(cx));
        self.syntactic_subsume();
        for c in &mut self.conjuncts {
            c.remove_redundant_in(cx);
        }
        self.simplify_cheap();
        self.semantic_subsume();
    }

    /// Alias of [`Relation::simplify`], kept for call sites that want to
    /// state explicitly that constraint quality matters (code generation).
    pub fn simplify_deep(&mut self) {
        // Measured on the Table-1 workloads: deferring either redundancy
        // elimination or semantic subsumption to "deep-only" call sites
        // made overall compilation ~3x slower — smaller intermediate sets
        // pay for the per-operation cost everywhere. Both variants
        // therefore run the full pipeline.
        self.simplify();
    }

    /// Removes conjuncts subsumed by another conjunct (exact test via
    /// negation when possible; skipped silently when negation is inexact).
    /// Keeps conjunct counts from compounding across chained operations.
    fn semantic_subsume(&mut self) {
        if self.conjuncts.len() < 2 {
            return;
        }
        let ctx = self.ctx.clone();
        let cx = ctx.as_ref();
        let mut keep = vec![true; self.conjuncts.len()];
        // Subsumption is only an optimization: when the negation
        // shatters into too many pieces (stride-heavy conjuncts can
        // produce thousands), checking them all costs far more than
        // keeping the extra conjunct. Skip those pairs. The cap is
        // per-context configurable via
        // `Budget::subsume_negation_pieces` (default 64).
        let max_neg_pieces = cx.map_or_else(
            || crate::Budget::default().subsume_negation_pieces,
            crate::Context::subsume_negation_pieces,
        );
        for i in 0..self.conjuncts.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..self.conjuncts.len() {
                if i == j || !keep[j] {
                    continue;
                }
                if let Ok(negs) = negate_conjunct_in(&self.conjuncts[j], cx) {
                    if negs.len() > max_neg_pieces {
                        continue;
                    }
                    let ci = &self.conjuncts[i];
                    let sub = negs.iter().all(|n| {
                        let mut t = ci.clone();
                        t.merge(n);
                        t.normalize() == Normalized::False || !t.is_satisfiable_in(cx)
                    });
                    if sub {
                        keep[i] = false;
                        break;
                    }
                }
            }
        }
        let mut it = keep.iter();
        self.conjuncts.retain(|_| *it.next().unwrap());
    }

    /// Drops conjuncts whose solutions are contained in another conjunct by
    /// a purely syntactic argument: if (existential-free) `c_j`'s
    /// constraints are a subset of `c_i`'s, then `c_i ⊆ c_j`.
    fn syntactic_subsume(&mut self) {
        let n = self.conjuncts.len();
        if n < 2 {
            return;
        }
        let mut keep = vec![true; n];
        for i in 0..n {
            if !keep[i] {
                continue;
            }
            if self.conjuncts[i].n_exist() > 0 {
                continue;
            }
            for j in 0..n {
                if i == j || !keep[j] || self.conjuncts[j].n_exist() > 0 {
                    continue;
                }
                let (ci, cj) = (&self.conjuncts[i], &self.conjuncts[j]);
                // Normalized conjuncts keep their constraints sorted, so
                // the subset tests can binary-search instead of scanning.
                let sub = cj.eqs().iter().all(|e| ci.eqs().binary_search(e).is_ok())
                    && cj.geqs().iter().all(|e| ci.geqs().binary_search(e).is_ok())
                    && (cj.eqs().len() < ci.eqs().len()
                        || cj.geqs().len() < ci.geqs().len()
                        || j < i);
                if sub {
                    keep[i] = false;
                    break;
                }
            }
        }
        let mut it = keep.iter();
        self.conjuncts.retain(|_| *it.next().unwrap());
    }

    /// The gist of `self` given `context`: constraints of `self` that are
    /// not implied by `context`. Both must have identical arities.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    pub fn gist(&self, context: &Relation) -> Relation {
        self.check_same_arity(context, "gist");
        let (a, b) = Relation::unify_params(self.clone(), context.clone());
        let mut out = a.clone();
        out.ctx = join(a.ctx.as_ref(), b.ctx.as_ref());
        if b.conjuncts.len() == 1 {
            let cx = out.ctx.clone();
            out.conjuncts = a
                .conjuncts
                .iter()
                .map(|c| c.gist_given_in(&b.conjuncts[0], cx.as_ref()))
                .collect();
        }
        out.simplify_cheap();
        out
    }

    /// Membership test for fully instantiated input/output tuples under the
    /// given parameter bindings. Exact (existentials are decided by the
    /// Omega test).
    ///
    /// # Panics
    ///
    /// Panics if the tuple lengths do not match the arities or a parameter
    /// binding is missing.
    pub fn contains_pair(&self, input: &[i64], output: &[i64], params: &[(&str, i64)]) -> bool {
        assert_eq!(input.len(), self.n_in as usize, "input arity mismatch");
        assert_eq!(output.len(), self.n_out as usize, "output arity mismatch");
        let lookup = |v: Var| match v {
            Var::In(i) => Some(input[i as usize]),
            Var::Out(i) => Some(output[i as usize]),
            Var::Param(i) => {
                let name = &self.params[i as usize];
                let val = params
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, v)| v)
                    .unwrap_or_else(|| panic!("missing binding for parameter {name}"));
                Some(val)
            }
            Var::Exist(_) => None,
        };
        let cx = self.ctx.as_ref();
        self.conjuncts.iter().any(|c| c.contains_in(lookup, cx))
    }

    /// A fresh [`LinExpr`] naming input variable `i`.
    pub fn in_var(i: u32) -> LinExpr {
        LinExpr::var(Var::In(i))
    }

    /// A fresh [`LinExpr`] naming output variable `j`.
    pub fn out_var(j: u32) -> LinExpr {
        LinExpr::var(Var::Out(j))
    }

    /// A [`LinExpr`] naming parameter `name` (registering it if needed).
    pub fn param_var(&mut self, name: &str) -> LinExpr {
        LinExpr::var(Var::Param(self.ensure_param(name)))
    }
}

#[cfg(test)]
mod tests {
    use crate::{Relation, Set};

    fn rel(s: &str) -> Relation {
        s.parse().unwrap()
    }

    fn set(s: &str) -> Set {
        s.parse().unwrap()
    }

    #[test]
    fn union_and_intersection() {
        let a = set("{[i] : 1 <= i <= 10}");
        let b = set("{[i] : 5 <= i <= 20}");
        let u = a.union(&b);
        let n = a.intersection(&b);
        for i in -5..=30i64 {
            assert_eq!(u.contains(&[i], &[]), (1..=20).contains(&i), "u {i}");
            assert_eq!(n.contains(&[i], &[]), (5..=10).contains(&i), "n {i}");
        }
    }

    #[test]
    fn subtract_creates_union() {
        let a = set("{[i] : 1 <= i <= 10}");
        let b = set("{[i] : 4 <= i <= 6}");
        let d = a.subtract(&b);
        for i in 0..=12i64 {
            let want = (1..=3).contains(&i) || (7..=10).contains(&i);
            assert_eq!(d.contains(&[i], &[]), want, "i = {i}");
        }
    }

    #[test]
    fn compose_then() {
        let shift = rel("{[i] -> [j] : j = i + 1}");
        let double = rel("{[i] -> [j] : j = 2i}");
        // then: first shift, then double: j = 2(i+1)
        let t = shift.then(&double);
        assert!(t.contains_pair(&[3], &[8], &[]));
        assert!(!t.contains_pair(&[3], &[7], &[]));
        // compose: double ∘ shift is the same thing
        let c = double.compose(&shift);
        assert!(c.contains_pair(&[3], &[8], &[]));
    }

    #[test]
    fn domain_range_inverse() {
        let r = rel("{[i] -> [j] : j = i + 1 && 1 <= i <= 5}");
        let d = r.domain();
        let g = r.range();
        for i in -2..=8i64 {
            assert_eq!(d.contains(&[i], &[]), (1..=5).contains(&i));
            assert_eq!(g.contains(&[i], &[]), (2..=6).contains(&i));
        }
        let inv = r.inverse();
        assert!(inv.contains_pair(&[4], &[3], &[]));
    }

    #[test]
    fn apply_and_restrict() {
        let r = rel("{[i] -> [j] : j = i + 2}");
        let s = set("{[i] : 1 <= i <= 3}");
        let img = r.apply(&s);
        for j in 0..=8i64 {
            assert_eq!(img.contains(&[j], &[]), (3..=5).contains(&j));
        }
        let rr = r.restrict_range(&set("{[j] : j = 4}"));
        assert!(rr.contains_pair(&[2], &[4], &[]));
        assert!(!rr.contains_pair(&[3], &[5], &[]));
    }

    #[test]
    fn symbolic_params_flow_through_operations() {
        let a = set("{[i] : 1 <= i <= N}");
        let b = set("{[i] : i >= K}");
        let n = a.intersection(&b);
        assert!(n.contains(&[5], &[("N", 10), ("K", 3)]));
        assert!(!n.contains(&[2], &[("N", 10), ("K", 3)]));
        assert_eq!(
            n.as_relation().params(),
            &["K".to_string(), "N".to_string()]
        );
    }

    #[test]
    fn specialize_param() {
        let a = set("{[i] : 1 <= i <= N}");
        let f = a.as_relation().specialize_param("N", 4);
        assert!(f.contains_pair(&[4], &[], &[]));
        assert!(!f.contains_pair(&[5], &[], &[]));
        assert!(f.params().is_empty());
    }

    #[test]
    fn subset_and_equality() {
        let a = set("{[i] : 2 <= i <= 5}");
        let b = set("{[i] : 1 <= i <= 10}");
        assert!(a.as_relation().is_subset_of(b.as_relation()));
        assert!(!b.as_relation().is_subset_of(a.as_relation()));
        let c = set("{[i] : 1 <= i <= 10 && 1 <= i}");
        assert!(b.as_relation().equal(c.as_relation()));
    }

    #[test]
    fn emptiness_with_strides() {
        // even ∩ odd = empty
        let even = set("{[i] : exists(a : i = 2a)}");
        let odd = set("{[i] : exists(a : i = 2a + 1)}");
        assert!(even.intersection(&odd).as_relation().is_empty());
        assert!(!even.as_relation().is_empty());
    }

    #[test]
    fn gist_drops_known_constraints() {
        let a = rel("{[i] -> [] : 1 <= i <= 10 && i <= N}");
        let ctx = rel("{[i] -> [] : 1 <= i <= 10}");
        let g = a.gist(&ctx);
        // Only the i <= N constraint should remain.
        let total: usize = g
            .conjuncts()
            .iter()
            .map(|c| c.eqs().len() + c.geqs().len())
            .sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn block_layout_roundtrip() {
        // Layout for block(25) over 4 procs: {[p] -> [a] : 25p <= a <= 25p+24, 0<=p<=3}
        let layout = rel("{[p] -> [a] : 25p <= a <= 25p + 24 && 0 <= p <= 3}");
        let owned = layout.apply(&set("{[p] : p = 2}"));
        for a in 0..=120i64 {
            assert_eq!(owned.contains(&[a], &[]), (50..=74).contains(&a));
        }
        // Domain covers every processor that owns something in [0,99].
        let who = layout.restrict_range(&set("{[a] : 0 <= a <= 99}")).domain();
        for p in -1..=5i64 {
            assert_eq!(who.contains(&[p], &[]), (0..=3).contains(&p));
        }
    }
}
