//! A shared Omega [`Context`]: hash-consing arena + memoization caches.
//!
//! The dHPF equation pipeline (Fig. 3 communication sets, Fig. 4 loop
//! splitting, Fig. 5 active virtual processors) re-derives the same layout
//! and iteration-space conjuncts at every statement group, so the expensive
//! per-conjunct operations — integer satisfiability, Fourier–Motzkin
//! projection, exact negation, gist — are recomputed many times over
//! structurally identical inputs. A `Context` hash-conses [`Conjunct`]s
//! (and [`LinExpr`]s) into interned ids and memoizes those operations in
//! per-operation caches keyed by the interned ids, with hit/miss/eviction
//! counters that the compiler driver surfaces next to its Table-1 phase
//! timers.
//!
//! A `Context` is an `Arc`-shared handle: cloning it is cheap and all
//! clones share one arena. Attach it to root relations (layouts, parsed
//! sets, iteration spaces) with [`Relation::with_context`]; every derived
//! relation inherits the context through the set operations.
//!
//! # Concurrency
//!
//! The arena is **lock-striped**: interners and memo tables are split
//! across [`SHARDS`] shards selected by a deterministic structural hash,
//! so concurrent clients (the parallel driver's worker threads) contend
//! only when they touch the same shard. No operation ever holds two shard
//! locks at once, and no shard lock is held across a `compute` closure,
//! so the locking is deadlock-free by construction. `Context` is
//! `Send + Sync` (statically asserted below): one long-lived context can
//! serve a whole thread pool.
//!
//! ```
//! use dhpf_omega::Context;
//!
//! let ctx = Context::new();
//! let layout = ctx.parse_relation("{[p] -> [a] : 25p+1 <= a <= 25p+25 && 0 <= p <= 3}")?;
//! let iters = ctx.parse_set("{[i] : 1 <= i <= N}")?;
//! let owned = layout.apply(&iters); // cached ops record hits/misses
//! assert!(!owned.is_empty());
//! assert!(ctx.stats().total_misses() > 0);
//! # Ok::<(), dhpf_omega::OmegaError>(())
//! ```

use crate::budget::{
    anchor, current_request_governor, now_us, request_governor_armed, trip_reason, Budget,
    CancelToken, GovernorStats, TRIP_DEADLINE, TRIP_FUEL, TRIP_INJECTED,
};
use crate::builder::{RelationBuilder, SetBuilder};
use crate::conjunct::Conjunct;
use crate::inject::{FaultAction, InjectPlan};
use crate::linexpr::LinExpr;
use crate::relation::Relation;
use crate::set::Set;
use crate::var::Var;
use crate::OmegaError;
use dhpf_obs::Collector;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default maximum total entries per memo table (summed across shards).
/// Keeps long compilations bounded; one compilation of the paper's
/// benchmarks stays under this (SP-sym's FME table peaks at ~150k entries,
/// so the cap must exceed that or the warm cache is churned
/// mid-compilation). A serving deployment tunes it with
/// [`Context::set_cache_capacity`].
pub const DEFAULT_CACHE_CAP: usize = 1 << 19;

/// Number of lock stripes in the arena. A power of two so the shard of an
/// interned id is `id % SHARDS` (the id encodes its shard in the low bits).
pub const SHARDS: usize = 16;

/// Entries inspected per eviction round. Sampled eviction (à la Redis)
/// keeps insertion O(sample) instead of O(table): the victim is the
/// lowest-scored of a small sample, which for a power-law access pattern
/// is within noise of true LRU.
const EVICT_SAMPLE: usize = 8;

/// Cap on the recency credit an expensive entry earns (see
/// [`MemoTable::insert`]): one microsecond of saved recomputation counts
/// as one tick of recency, up to this bound, so a pathological multi-second
/// entry cannot pin itself forever.
const COST_CREDIT_CAP_US: u32 = 8_192;

/// Interned id of a hash-consed conjunct (or expression). The low
/// `log2(SHARDS)` bits identify the owning shard.
type Id = u32;

/// Hit/miss/eviction counters for one memoized operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the real computation.
    pub misses: u64,
    /// Entries discarded when the table hit its capacity bound.
    pub evictions: u64,
}

impl OpCounts {
    fn add(&mut self, other: &OpCounts) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// A snapshot of a context's cache effectiveness, reported by
/// [`Context::stats`] and surfaced through the compiler's `CompileReport`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Conjunct satisfiability tests (the hottest operation: emptiness,
    /// subset, redundancy and gist checks all bottom out here).
    pub sat: OpCounts,
    /// Exact existential/variable elimination (FME projection).
    pub eliminate: OpCounts,
    /// Exact conjunct negation (difference/subset tests).
    pub negate: OpCounts,
    /// Gist (constraint simplification relative to a known context).
    pub gist: OpCounts,
    /// Relation-level `simplify` (keyed by the interned conjunct list).
    pub simplify: OpCounts,
    /// Distinct conjuncts hash-consed into the arena.
    pub interned_conjuncts: u64,
    /// Distinct linear expressions hash-consed into the arena.
    pub interned_exprs: u64,
}

impl CacheStats {
    /// Sum of hits across every operation cache.
    pub fn total_hits(&self) -> u64 {
        self.sat.hits + self.eliminate.hits + self.negate.hits + self.gist.hits + self.simplify.hits
    }

    /// Sum of misses across every operation cache.
    pub fn total_misses(&self) -> u64 {
        self.sat.misses
            + self.eliminate.misses
            + self.negate.misses
            + self.gist.misses
            + self.simplify.misses
    }

    /// Sum of evictions across every operation cache.
    pub fn total_evictions(&self) -> u64 {
        self.sat.evictions
            + self.eliminate.evictions
            + self.negate.evictions
            + self.gist.evictions
            + self.simplify.evictions
    }

    /// Overall hit rate in `0.0..=1.0` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_hits() + self.total_misses();
        if total == 0 {
            0.0
        } else {
            self.total_hits() as f64 / total as f64
        }
    }

    /// Accumulates another snapshot into this one (used when a compilation
    /// aggregates per-unit contexts, and by [`Context::stats`] to merge the
    /// per-shard counters).
    pub fn merge(&mut self, other: &CacheStats) {
        self.sat.add(&other.sat);
        self.eliminate.add(&other.eliminate);
        self.negate.add(&other.negate);
        self.gist.add(&other.gist);
        self.simplify.add(&other.simplify);
        self.interned_conjuncts += other.interned_conjuncts;
        self.interned_exprs += other.interned_exprs;
    }

    /// `(name, counts)` rows in a stable order, for table rendering.
    pub fn rows(&self) -> [(&'static str, OpCounts); 5] {
        [
            ("satisfiability", self.sat),
            ("fme projection", self.eliminate),
            ("negation", self.negate),
            ("gist", self.gist),
            ("simplify", self.simplify),
        ]
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache: {} hits / {} misses ({:.1}% hit rate), {} evictions, {} conjuncts interned",
            self.total_hits(),
            self.total_misses(),
            100.0 * self.hit_rate(),
            self.total_evictions(),
            self.interned_conjuncts,
        )
    }
}

/// One memoized result plus the bookkeeping the eviction policy needs.
struct MemoEntry<V> {
    v: V,
    /// Table tick at the entry's last hit (or its insertion).
    stamp: u64,
    /// Microseconds the original computation took — the recomputation
    /// cost this entry saves on every hit.
    cost_us: u32,
}

/// A size-bounded memo table with **cost-aware sampled eviction**
/// (GDSF-flavored): each entry's retention score is its recency stamp
/// plus a credit proportional to how expensive it was to compute, so under
/// pressure the cache sheds cheap, cold entries first and keeps the
/// expensive projections/negations that fleet-level reuse is for.
///
/// Replaces the previous wholesale shard flush: eviction is now
/// incremental (one victim per over-capacity insert, chosen as the
/// lowest-scored of a small sample), so a warm serving cache degrades
/// smoothly at its capacity bound instead of periodically dumping
/// everything it learned.
struct MemoTable<K, V> {
    map: HashMap<K, MemoEntry<V>>,
    /// Monotonic access counter; stamps entries for recency scoring.
    tick: u64,
}

impl<K, V> Default for MemoTable<K, V> {
    fn default() -> Self {
        MemoTable {
            map: HashMap::new(),
            tick: 0,
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> MemoTable<K, V> {
    /// Cache probe: a hit refreshes the entry's recency stamp.
    fn get(&mut self, k: &K, counts: &mut OpCounts) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(k) {
            Some(e) => {
                e.stamp = tick;
                counts.hits += 1;
                Some(e.v.clone())
            }
            None => {
                counts.misses += 1;
                None
            }
        }
    }

    /// Inserts a computed result, evicting lowest-scored entries while the
    /// table is at its capacity bound. `cost_us` is the measured compute
    /// time of the inserted result.
    fn insert(&mut self, k: K, v: V, cost_us: u32, cap: usize, counts: &mut OpCounts) {
        while self.map.len() >= cap.max(1) {
            let victim = self
                .map
                .iter()
                .take(EVICT_SAMPLE)
                .min_by_key(|(_, e)| {
                    e.stamp
                        .saturating_add(u64::from(e.cost_us.min(COST_CREDIT_CAP_US)))
                })
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.map.remove(&k);
                    counts.evictions += 1;
                }
                None => break,
            }
        }
        self.tick += 1;
        self.map.insert(
            k,
            MemoEntry {
                v,
                stamp: self.tick,
                cost_us,
            },
        );
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn clear(&mut self) {
        self.map.clear();
    }
}

/// Per-shard hit/miss/eviction counters, one [`OpCounts`] per memoized
/// operation. Plain integers mutated under the shard lock: cheaper than
/// shared atomics (no cross-shard cache-line ping-pong) and merged into a
/// [`CacheStats`] on read.
#[derive(Default)]
struct ShardCounts {
    sat: OpCounts,
    eliminate: OpCounts,
    negate: OpCounts,
    gist: OpCounts,
    simplify: OpCounts,
}

/// One lock stripe of the arena: interner slices plus one memo table per
/// operation. A conjunct's per-conjunct memo entries (sat / eliminate /
/// negate) live in the same shard as the conjunct itself, so the hot path
/// interns and probes under a single lock acquisition.
#[derive(Default)]
struct Shard {
    /// Hash-consed conjuncts owned by this shard: structural value → id.
    /// The id is the key of every per-conjunct memo table, so a conjunct
    /// is hashed in full at most once per distinct structure.
    conjuncts: HashMap<Conjunct, Id>,
    /// Hash-consed linear expressions (used by the builder API).
    exprs: HashMap<LinExpr, Id>,
    sat: MemoTable<Id, bool>,
    eliminate: MemoTable<(Id, Var), Result<Vec<Conjunct>, OmegaError>>,
    negate: MemoTable<Id, Result<Vec<Conjunct>, OmegaError>>,
    /// Keyed `(a, b)`; stored in the shard of `a`.
    gist: MemoTable<(Id, Id), Conjunct>,
    /// Keyed by the interned conjunct list; stored in the shard selected
    /// by the hash of that id list.
    simplify: MemoTable<Vec<Id>, Vec<Conjunct>>,
    counts: ShardCounts,
}

impl Shard {
    fn stats(&self) -> CacheStats {
        CacheStats {
            sat: self.counts.sat,
            eliminate: self.counts.eliminate,
            negate: self.counts.negate,
            gist: self.counts.gist,
            simplify: self.counts.simplify,
            interned_conjuncts: self.conjuncts.len() as u64,
            interned_exprs: self.exprs.len() as u64,
        }
    }
}

thread_local! {
    /// Nesting depth of [`governor_grace`] scopes on the current thread.
    static GRACE_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Suspends budget enforcement and fault injection on the *current thread*
/// until the returned guard drops; cancellation stays live.
///
/// The degraded rebuild that runs after a budget trip must itself perform
/// set algebra — conservative communication maps still pass through code
/// generation, which subtracts conjuncts — and without a grace scope those
/// operations would fail with the very `BudgetExceeded` the rebuild is
/// recovering from. The scope is thread-local so sibling compile tasks on
/// other worker threads remain fully governed; it nests, and it suspends
/// injection too, so a fallback can never be re-injected into an
/// escalation loop.
#[must_use = "enforcement resumes when the guard drops"]
pub fn governor_grace() -> GraceGuard {
    GRACE_DEPTH.with(|d| d.set(d.get() + 1));
    GraceGuard { _priv: () }
}

/// RAII scope of [`governor_grace`].
pub struct GraceGuard {
    _priv: (),
}

impl Drop for GraceGuard {
    fn drop(&mut self) {
        GRACE_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

fn in_grace() -> bool {
    GRACE_DEPTH.with(std::cell::Cell::get) > 0
}

/// Mutable fault-injection bookkeeping, behind one mutex that is only
/// touched when a plan is armed (the `governed` gate keeps it off the
/// ungoverned hot path). Per-site hit counters make decisions a pure
/// function of `(seed, site, count)` regardless of thread interleaving
/// *per site*.
#[derive(Default)]
struct InjectState {
    plan: Option<InjectPlan>,
    counts: HashMap<&'static str, u64>,
    fired: u64,
}

struct Inner {
    enabled: AtomicBool,
    /// Fast gate for the trace hook: `true` iff `obs` holds a collector.
    /// Kept separate so the untraced hot path pays one relaxed load.
    traced: AtomicBool,
    /// The attached trace collector (see [`Context::set_collector`]).
    obs: Mutex<Option<Collector>>,
    /// Fast gate for the resource governor: `true` iff a deadline, op
    /// fuel, a cancel token, or an injection plan is armed (or the budget
    /// already tripped). When `false`, `charge` is one relaxed load.
    governed: AtomicBool,
    /// Sticky once the budget trips; `trip_code` says why.
    tripped: AtomicBool,
    trip_code: AtomicU8,
    /// Remaining op fuel; `u64::MAX` = unlimited.
    fuel: AtomicU64,
    /// Deadline in microseconds since [`anchor`]; `u64::MAX` = none.
    deadline_us: AtomicU64,
    /// Fast gate for the cancel check (avoids the mutex when unarmed).
    cancel_armed: AtomicBool,
    cancel: Mutex<Option<CancelToken>>,
    /// Configurable exactness limits (satellite of PR 7: the former
    /// hard-coded constants in `ops.rs` / `relation.rs`).
    max_negation_pieces: AtomicUsize,
    subsume_negation_pieces: AtomicUsize,
    stride_fuel: AtomicU32,
    /// Governor counters ([`GovernorStats`]).
    charged: AtomicU64,
    degraded: AtomicU64,
    /// Fast gate + state for fault injection.
    inject_armed: AtomicBool,
    inject: Mutex<InjectState>,
    /// Total memo-entry capacity per operation table (divided evenly
    /// across shards). See [`Context::set_cache_capacity`].
    cache_capacity: AtomicUsize,
    shards: [Mutex<Shard>; SHARDS],
}

/// RAII sample of one set operation: on drop, records the call (count,
/// duration, input-size histogram) on the attached collector's innermost
/// open span. Declared *first* in each memoized operation so it drops
/// *last* — after any shard `MutexGuard` — keeping the collector's lock
/// disjoint from the shard locks.
struct OpTrace {
    obs: Collector,
    op: &'static str,
    size: u64,
    t0: Instant,
}

impl Drop for OpTrace {
    fn drop(&mut self) {
        self.obs.record_op(self.op, self.t0.elapsed(), self.size);
    }
}

/// Input size of a per-conjunct operation: its constraint count.
fn conjunct_size(c: &Conjunct) -> u64 {
    (c.eqs().len() + c.geqs().len()) as u64
}

/// Measured compute cost of a memo miss, for the eviction policy.
/// Saturates at `u32::MAX` (~71 minutes — effectively never).
fn elapsed_us(t0: Instant) -> u32 {
    u32::try_from(t0.elapsed().as_micros()).unwrap_or(u32::MAX)
}

/// Deterministic shard index for a hashable key. `DefaultHasher::new()`
/// uses fixed keys, so the mapping is stable across runs and threads —
/// interned ids (and therefore eviction behaviour) never depend on
/// scheduling.
fn shard_of<K: Hash>(k: &K) -> usize {
    let mut h = DefaultHasher::new();
    k.hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

/// The shard that owns an interned id (the id's low bits).
fn shard_of_id(id: Id) -> usize {
    (id as usize) & (SHARDS - 1)
}

/// A shared hash-consing + memoization context for Omega operations.
///
/// See the [module documentation](self) for the design; in short: create
/// one per compilation (or one long-lived one via
/// `dhpf_core::compile_with`), attach it to root sets/relations, and every
/// derived operation reuses previously computed satisfiability tests,
/// projections, negations, gists and simplifications. The context is
/// `Send + Sync`: the parallel driver shares one across worker threads.
#[derive(Clone)]
pub struct Context {
    inner: Arc<Inner>,
}

// The whole point of the sharded arena: a Context can be shared across the
// driver's worker threads. Checked at compile time so a non-Sync field can
// never sneak in.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Context>();
};

impl Default for Context {
    fn default() -> Self {
        Context::new()
    }
}

impl fmt::Debug for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("enabled", &self.is_enabled())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Context {
    /// A fresh context with caching enabled and the default cache
    /// capacity ([`DEFAULT_CACHE_CAP`]).
    pub fn new() -> Self {
        Context::with_capacity(DEFAULT_CACHE_CAP)
    }

    /// A fresh context whose memo tables are bounded at `capacity` total
    /// entries per operation table. Long-running servers pick this to
    /// bound resident memory; see [`Context::set_cache_capacity`].
    pub fn with_capacity(capacity: usize) -> Self {
        Context {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(true),
                traced: AtomicBool::new(false),
                obs: Mutex::new(None),
                governed: AtomicBool::new(false),
                tripped: AtomicBool::new(false),
                trip_code: AtomicU8::new(0),
                fuel: AtomicU64::new(u64::MAX),
                deadline_us: AtomicU64::new(u64::MAX),
                cancel_armed: AtomicBool::new(false),
                cancel: Mutex::new(None),
                max_negation_pieces: AtomicUsize::new(Budget::default().max_negation_pieces),
                subsume_negation_pieces: AtomicUsize::new(
                    Budget::default().subsume_negation_pieces,
                ),
                stride_fuel: AtomicU32::new(Budget::default().stride_fuel),
                charged: AtomicU64::new(0),
                degraded: AtomicU64::new(0),
                inject_armed: AtomicBool::new(false),
                inject: Mutex::new(InjectState::default()),
                cache_capacity: AtomicUsize::new(capacity),
                shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            }),
        }
    }

    /// Bounds every memo table at `capacity` total entries (per operation,
    /// summed across shards). When a table is full, inserting a new result
    /// evicts the entry with the lowest recency + compute-cost score from
    /// a small sample, so cheap cold entries leave first. Takes effect on
    /// subsequent inserts; existing entries are not flushed. A capacity of
    /// `0` is clamped to one entry per shard.
    pub fn set_cache_capacity(&self, capacity: usize) {
        self.inner.cache_capacity.store(capacity, Ordering::Relaxed);
    }

    /// The current per-table memo capacity (see
    /// [`set_cache_capacity`](Self::set_cache_capacity)).
    pub fn cache_capacity(&self) -> usize {
        self.inner.cache_capacity.load(Ordering::Relaxed)
    }

    /// The per-shard entry bound derived from the table capacity.
    fn shard_cap(&self) -> usize {
        (self.inner.cache_capacity.load(Ordering::Relaxed) / SHARDS).max(1)
    }

    /// True when the thread's armed [`RequestGovernor`] carries
    /// non-default exactness limits: a result computed under those limits
    /// is not interchangeable with a default-limit entry (a negation that
    /// is inexact under a tight piece cap may be exact under the default),
    /// so both memo lookup and insert are skipped for such requests. The
    /// context-global `set_budget` path instead flushes the tables when
    /// its limits change — that stays correct because only one global
    /// budget exists at a time.
    fn memo_bypassed(&self) -> bool {
        current_request_governor().is_some_and(|g| g.non_default_limits())
    }

    /// Total memoized entries currently resident, summed over the five
    /// operation tables and all shards — the quantity
    /// [`set_cache_capacity`](Self::set_cache_capacity) bounds per table.
    pub fn memo_entries(&self) -> u64 {
        let mut n = 0u64;
        for shard in &self.inner.shards {
            let s = shard.lock().unwrap();
            n += (s.sat.len()
                + s.eliminate.len()
                + s.negate.len()
                + s.gist.len()
                + s.simplify.len()) as u64;
        }
        n
    }

    /// Per-table resident memo entries, as `(operation name, entries)`
    /// pairs in a fixed order — the gauge hook a serving tier polls to
    /// export memo-table occupancy per operation (the sum equals
    /// [`memo_entries`](Self::memo_entries)). Shards are locked one at a
    /// time, so the snapshot is per-shard-consistent.
    pub fn memo_occupancy(&self) -> [(&'static str, u64); 5] {
        let mut out: [(&'static str, u64); 5] = [
            ("sat", 0),
            ("eliminate", 0),
            ("negate", 0),
            ("gist", 0),
            ("simplify", 0),
        ];
        for shard in &self.inner.shards {
            let s = shard.lock().unwrap();
            out[0].1 += s.sat.len() as u64;
            out[1].1 += s.eliminate.len() as u64;
            out[2].1 += s.negate.len() as u64;
            out[3].1 += s.gist.len() as u64;
            out[4].1 += s.simplify.len() as u64;
        }
        out
    }

    /// A context with caching disabled: operations behave exactly as with
    /// no context at all. Used by the `--no-cache` ablation.
    pub fn disabled() -> Self {
        let ctx = Context::new();
        ctx.set_enabled(false);
        ctx
    }

    /// Enables or disables memoization at runtime (existing entries are
    /// kept but not consulted while disabled).
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// True if lookups consult the memo tables.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// True if `self` and `other` share one arena.
    pub fn same_as(&self, other: &Context) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Attaches (or with `None`, detaches) a trace collector. While
    /// attached, every memoizable set operation — satisfiability, FME
    /// projection, negation, gist, simplify; cache hit or miss alike —
    /// records a count/duration/size sample on the collector's innermost
    /// open span. Works with memoization disabled too, so `--no-cache`
    /// ablations still report their set-operation mix. With no collector
    /// the hook costs one relaxed atomic load per operation.
    pub fn set_collector(&self, c: Option<Collector>) {
        let mut obs = self.inner.obs.lock().unwrap();
        self.inner.traced.store(c.is_some(), Ordering::Release);
        *obs = c;
    }

    /// The attached trace collector, if any.
    pub fn collector(&self) -> Option<Collector> {
        if !self.inner.traced.load(Ordering::Relaxed) {
            return None;
        }
        self.inner.obs.lock().unwrap().clone()
    }

    /// Starts an RAII op sample if a collector is attached (the untraced
    /// fast path is one relaxed load and no allocation).
    fn op_trace(&self, op: &'static str, size: u64) -> Option<OpTrace> {
        if !self.inner.traced.load(Ordering::Relaxed) {
            return None;
        }
        let obs = self.inner.obs.lock().unwrap().clone()?;
        Some(OpTrace {
            obs,
            op,
            size,
            t0: Instant::now(),
        })
    }

    /// A snapshot of the cache counters: the per-shard counters merged via
    /// [`CacheStats::merge`]. Shards are locked one at a time, so the
    /// snapshot is per-shard-consistent (exact once the workers are
    /// quiesced, which is when the driver reads it).
    pub fn stats(&self) -> CacheStats {
        let mut out = CacheStats::default();
        for shard in &self.inner.shards {
            out.merge(&shard.lock().unwrap().stats());
        }
        out
    }

    /// Resets the hit/miss/eviction counters (the interned arena is kept).
    pub fn reset_stats(&self) {
        for shard in &self.inner.shards {
            shard.lock().unwrap().counts = ShardCounts::default();
        }
    }

    // ------------------------------------------------------------------
    // Resource governor
    // ------------------------------------------------------------------

    /// Recomputes the `governed` fast gate from the armed state. Called
    /// after every arm/disarm mutation.
    fn update_governed(&self) {
        let i = &self.inner;
        let on = i.fuel.load(Ordering::Relaxed) != u64::MAX
            || i.deadline_us.load(Ordering::Relaxed) != u64::MAX
            || i.cancel_armed.load(Ordering::Relaxed)
            || i.inject_armed.load(Ordering::Relaxed)
            || i.tripped.load(Ordering::Relaxed);
        i.governed.store(on, Ordering::Release);
    }

    /// Arms a compile [`Budget`] on this context. The deadline clock
    /// starts now; op fuel is set to the budget's quota; the exactness
    /// limits (negation pieces, subsumption pieces, stride fuel) replace
    /// the previous values. Any earlier trip is cleared.
    pub fn set_budget(&self, b: &Budget) {
        let i = &self.inner;
        i.tripped.store(false, Ordering::Relaxed);
        i.trip_code.store(0, Ordering::Relaxed);
        i.fuel
            .store(b.op_fuel.unwrap_or(u64::MAX), Ordering::Relaxed);
        let deadline = b.deadline_ms.map_or(u64::MAX, |ms| {
            let at = anchor().elapsed() + Duration::from_millis(ms);
            u64::try_from(at.as_micros()).unwrap_or(u64::MAX)
        });
        i.deadline_us.store(deadline, Ordering::Relaxed);
        // Memoized negation/elimination results depend on the exactness
        // limits (a negation that is inexact under a tight piece cap may
        // be exact under the default), so changing any limit flushes the
        // memo tables — otherwise a stale `InexactNegation` could outlive
        // the budget that caused it.
        let limits_changed = i
            .max_negation_pieces
            .swap(b.max_negation_pieces, Ordering::Relaxed)
            != b.max_negation_pieces
            || i.subsume_negation_pieces
                .swap(b.subsume_negation_pieces, Ordering::Relaxed)
                != b.subsume_negation_pieces
            || i.stride_fuel.swap(b.stride_fuel, Ordering::Relaxed) != b.stride_fuel;
        if limits_changed {
            self.flush_memo_tables();
        }
        self.update_governed();
    }

    /// Drops every memoized result (the interned arena and the counters
    /// are kept). Used when the exactness limits change.
    fn flush_memo_tables(&self) {
        for shard in &self.inner.shards {
            let mut s = shard.lock().unwrap();
            s.sat.clear();
            s.eliminate.clear();
            s.negate.clear();
            s.gist.clear();
            s.simplify.clear();
        }
    }

    /// Disarms the budget: unlimited fuel, no deadline, default limits,
    /// trip state cleared. Cancel token and injection plan are unaffected.
    pub fn clear_budget(&self) {
        self.set_budget(&Budget::default());
    }

    /// Arms (or with `None`, disarms) a cancellation token. Once the token
    /// is [cancelled](CancelToken::cancel), fallible governed operations
    /// return [`OmegaError::Cancelled`] and [`Context::check_cancelled`]
    /// fails at the driver's checkpoints.
    pub fn set_cancel_token(&self, t: Option<CancelToken>) {
        let i = &self.inner;
        let armed = t.is_some();
        *i.cancel.lock().unwrap() = t;
        i.cancel_armed.store(armed, Ordering::Release);
        self.update_governed();
    }

    /// Arms (or with `None`, disarms) a deterministic fault-injection
    /// plan. Per-site hit counters are reset on every call.
    pub fn set_inject(&self, p: Option<InjectPlan>) {
        let i = &self.inner;
        let armed = p.is_some();
        {
            let mut st = i.inject.lock().unwrap();
            st.plan = p;
            st.counts.clear();
            st.fired = 0;
        }
        i.inject_armed.store(armed, Ordering::Release);
        self.update_governed();
    }

    /// True once the budget has tripped (deadline passed, fuel spent, or
    /// an injected exhaustion). Sticky until the next [`Context::set_budget`].
    ///
    /// Reports the *merged* view: the context-global governor or, when a
    /// [`RequestGovernor`] is armed on the calling thread, that request's
    /// governor — so degradation sites keep working unchanged under
    /// per-request governance.
    pub fn budget_tripped(&self) -> bool {
        if current_request_governor().is_some_and(|g| g.tripped()) {
            return true;
        }
        self.inner.tripped.load(Ordering::Relaxed)
    }

    /// Governor counters: ops charged, ops answered conservatively after a
    /// trip, and the trip reason if any.
    ///
    /// Like [`budget_tripped`](Self::budget_tripped) this merges the
    /// context-global counters with the thread's armed [`RequestGovernor`]
    /// (scoped counters are summed in; a scoped trip reason wins).
    pub fn governor_stats(&self) -> GovernorStats {
        let global = GovernorStats {
            ops_charged: self.inner.charged.load(Ordering::Relaxed),
            ops_degraded: self.inner.degraded.load(Ordering::Relaxed),
            tripped: trip_reason(self.inner.trip_code.load(Ordering::Relaxed)),
        };
        match current_request_governor() {
            Some(gov) => {
                let scoped = gov.stats();
                GovernorStats {
                    ops_charged: global.ops_charged + scoped.ops_charged,
                    ops_degraded: global.ops_degraded + scoped.ops_degraded,
                    tripped: scoped.tripped.or(global.tripped),
                }
            }
            None => global,
        }
    }

    /// How many times the armed injection plan has fired.
    pub fn inject_fired(&self) -> u64 {
        if !self.inner.inject_armed.load(Ordering::Relaxed) {
            return 0;
        }
        self.inner.inject.lock().unwrap().fired
    }

    /// Current exact-negation piece cap (see [`Budget::max_negation_pieces`]).
    /// A thread-armed [`RequestGovernor`] overrides the context-global value.
    pub fn max_negation_pieces(&self) -> usize {
        match current_request_governor() {
            Some(gov) => gov.max_negation_pieces(),
            None => self.inner.max_negation_pieces.load(Ordering::Relaxed),
        }
    }

    /// Current subsumption piece cap (see [`Budget::subsume_negation_pieces`]).
    /// A thread-armed [`RequestGovernor`] overrides the context-global value.
    pub fn subsume_negation_pieces(&self) -> usize {
        match current_request_governor() {
            Some(gov) => gov.subsume_negation_pieces(),
            None => self.inner.subsume_negation_pieces.load(Ordering::Relaxed),
        }
    }

    /// Current stride-form rewrite fuel (see [`Budget::stride_fuel`]).
    /// A thread-armed [`RequestGovernor`] overrides the context-global value.
    pub fn stride_fuel(&self) -> u32 {
        match current_request_governor() {
            Some(gov) => gov.stride_fuel(),
            None => self.inner.stride_fuel.load(Ordering::Relaxed),
        }
    }

    /// Explicit cancellation checkpoint: `Err(Cancelled)` once the armed
    /// token has tripped. The driver calls this between phases and at nest
    /// entry so cancellation is prompt even when the set operations in
    /// flight are the infallible ones (sat/gist/simplify) that cannot
    /// propagate an error.
    pub fn check_cancelled(&self) -> Result<(), OmegaError> {
        if current_request_governor()
            .is_some_and(|g| g.cancel_token().is_some_and(CancelToken::is_cancelled))
        {
            return Err(OmegaError::Cancelled);
        }
        if !self.inner.cancel_armed.load(Ordering::Relaxed) {
            return Ok(());
        }
        let cancelled = self
            .inner
            .cancel
            .lock()
            .unwrap()
            .as_ref()
            .is_some_and(CancelToken::is_cancelled);
        if cancelled {
            Err(OmegaError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// Trips the budget with the given reason code (sticky).
    fn trip(&self, code: u8) {
        let i = &self.inner;
        // First tripper wins the reason; later trips keep it.
        let _ = i
            .trip_code
            .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
        i.tripped.store(true, Ordering::Relaxed);
        i.governed.store(true, Ordering::Release);
    }

    /// Charges one governed operation against the budget. `Ok(())` means
    /// proceed; `Err` means the op must not run: the fallible memoized
    /// operations propagate the error (uncached — budget errors must never
    /// be memoized), the infallible ones substitute a sound conservative
    /// answer. The ungoverned fast path is a single relaxed load.
    pub(crate) fn charge(&self, op: &'static str) -> Result<(), OmegaError> {
        if !self.inner.governed.load(Ordering::Relaxed) && !request_governor_armed() {
            return Ok(());
        }
        self.charge_slow(op)
    }

    #[cold]
    fn charge_slow(&self, op: &'static str) -> Result<(), OmegaError> {
        // A thread-armed request governor takes over budget enforcement;
        // context-global fault injection (and a global trip it causes)
        // still applies so chaos plans compose with per-request budgets.
        if let Some(gov) = current_request_governor() {
            let grace = in_grace();
            self.check_cancelled()?;
            if !grace {
                if self.inner.inject_armed.load(Ordering::Relaxed) {
                    self.inject_fire(op)?;
                }
                if self.inner.tripped.load(Ordering::Relaxed) {
                    self.inner.degraded.fetch_add(1, Ordering::Relaxed);
                    let code = self.inner.trip_code.load(Ordering::Relaxed);
                    return Err(OmegaError::BudgetExceeded(
                        trip_reason(code).unwrap_or("budget"),
                    ));
                }
            }
            return gov.charge(grace);
        }
        let i = &self.inner;
        self.check_cancelled()?;
        if in_grace() {
            return Ok(());
        }
        if i.inject_armed.load(Ordering::Relaxed) {
            self.inject_fire(op)?;
        }
        i.charged.fetch_add(1, Ordering::Relaxed);
        if !i.tripped.load(Ordering::Relaxed) {
            // Spend fuel (u64::MAX = unlimited; fetch_update avoids wrap).
            let fuel = i.fuel.load(Ordering::Relaxed);
            if fuel != u64::MAX {
                let spent = i
                    .fuel
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| f.checked_sub(1));
                if spent.is_err() {
                    self.trip(TRIP_FUEL);
                }
            }
            let deadline = i.deadline_us.load(Ordering::Relaxed);
            if deadline != u64::MAX && now_us() > deadline {
                self.trip(TRIP_DEADLINE);
            }
        }
        if i.tripped.load(Ordering::Relaxed) {
            i.degraded.fetch_add(1, Ordering::Relaxed);
            let reason = trip_reason(i.trip_code.load(Ordering::Relaxed)).unwrap_or("budget");
            return Err(OmegaError::BudgetExceeded(reason));
        }
        Ok(())
    }

    /// Fault-injection checkpoint for a named site. Suspended inside a
    /// [`governor_grace`] scope so the degraded rebuild that follows an
    /// injected fault cannot be re-injected into an escalation loop.
    /// The memoized Omega
    /// operations pass through here via [`Context::charge`]; the host
    /// compiler calls it directly at its own sites (`"comm_sets"`,
    /// `"nest"`). No locks are held when an injected panic unwinds.
    pub fn inject_check(&self, site: &'static str) -> Result<(), OmegaError> {
        if !self.inner.inject_armed.load(Ordering::Relaxed) || in_grace() {
            return Ok(());
        }
        self.inject_fire(site)
    }

    fn inject_fire(&self, site: &'static str) -> Result<(), OmegaError> {
        let action = {
            let mut st = self.inner.inject.lock().unwrap();
            let Some(plan) = st.plan.clone() else {
                return Ok(());
            };
            let count = st.counts.entry(site).or_insert(0);
            let n = *count;
            *count += 1;
            if !plan.should_fire(site, n) {
                return Ok(());
            }
            st.fired += 1;
            plan.action
            // Guard drops here: injected panics never poison the state.
        };
        match action {
            FaultAction::Error => Err(OmegaError::InexactNegation),
            FaultAction::Panic => panic!("injected panic at site {site}"),
            FaultAction::ExhaustBudget => {
                self.trip(TRIP_INJECTED);
                self.inner.degraded.fetch_add(1, Ordering::Relaxed);
                Err(OmegaError::BudgetExceeded("injected"))
            }
        }
    }

    // ------------------------------------------------------------------
    // Construction entry points
    // ------------------------------------------------------------------

    /// Parses a relation in Omega syntax and attaches this context.
    ///
    /// This is the non-panicking replacement for the `FromStr` entry
    /// points: every failure (syntax, arity, coefficient overflow) is an
    /// [`OmegaError`] carrying the source offset.
    pub fn parse_relation(&self, input: &str) -> Result<Relation, OmegaError> {
        let rel = crate::parse::parse_relation(input)?;
        Ok(rel.with_context(self))
    }

    /// Parses a set in Omega syntax and attaches this context.
    pub fn parse_set(&self, input: &str) -> Result<Set, OmegaError> {
        let rel = self.parse_relation(input)?;
        if rel.n_out() != 0 {
            return Err(OmegaError::Parse(crate::parse::ParseError::expected_set()));
        }
        Ok(Set::from_relation(rel))
    }

    /// The universe set of the given arity, attached to this context.
    pub fn universe_set(&self, arity: u32) -> Set {
        Set::from_relation(Relation::universe(arity, 0).with_context(self))
    }

    /// The empty set of the given arity, attached to this context.
    pub fn empty_set(&self, arity: u32) -> Set {
        Set::from_relation(Relation::empty(arity, 0).with_context(self))
    }

    /// The universe relation, attached to this context.
    pub fn universe_relation(&self, n_in: u32, n_out: u32) -> Relation {
        Relation::universe(n_in, n_out).with_context(self)
    }

    /// The empty relation, attached to this context.
    pub fn empty_relation(&self, n_in: u32, n_out: u32) -> Relation {
        Relation::empty(n_in, n_out).with_context(self)
    }

    /// Starts a fluent [`SetBuilder`] for a set of the given arity.
    pub fn set(&self, arity: u32) -> SetBuilder {
        SetBuilder::new(self.clone(), arity)
    }

    /// Starts a fluent [`RelationBuilder`] for a relation.
    pub fn relation(&self, n_in: u32, n_out: u32) -> RelationBuilder {
        RelationBuilder::new(self.clone(), n_in, n_out)
    }

    /// Exact negation of a conjunct, memoized (the `Context`-threaded form
    /// of the deprecated free function `ops::negate_conjunct`).
    pub fn negate_conjunct(&self, c: &Conjunct) -> Result<Vec<Conjunct>, OmegaError> {
        crate::ops::negate_conjunct_in(c, Some(self))
    }

    /// Stride-form rewrite of a conjunct (the `Context`-threaded form of
    /// the deprecated free function `ops::to_stride_form`).
    pub fn to_stride_form(&self, c: Conjunct) -> Result<Vec<Conjunct>, OmegaError> {
        crate::ops::to_stride_form_in(c, Some(self))
    }

    // ------------------------------------------------------------------
    // Interning
    // ------------------------------------------------------------------

    /// Hash-conses a conjunct, returning its interned id. Conjuncts with
    /// the same [`Conjunct::canonical`] form — same constraints up to
    /// order, repetition, scaling, and slack constants — share one id.
    pub fn intern_conjunct(&self, c: &Conjunct) -> u32 {
        self.intern_conjunct_key(c)
    }

    /// Interns the canonical form of `c`, borrowing `c` directly when it
    /// is already normalized (the common case on probe paths: producers
    /// normalize once at construction) instead of cloning per probe.
    fn intern_conjunct_key(&self, c: &Conjunct) -> Id {
        if c.is_normalized() {
            self.intern_canonical(c)
        } else {
            self.intern_canonical(&c.canonical())
        }
    }

    /// Interns an already-canonical conjunct (locks exactly one shard).
    fn intern_canonical(&self, cc: &Conjunct) -> Id {
        let s = shard_of(cc);
        let mut shard = self.inner.shards[s].lock().unwrap();
        Self::intern_in(&mut shard.conjuncts, cc, s)
    }

    /// Hash-conses a linear expression, returning its interned id.
    pub fn intern_expr(&self, e: &LinExpr) -> u32 {
        let s = shard_of(e);
        let mut shard = self.inner.shards[s].lock().unwrap();
        Self::intern_in(&mut shard.exprs, e, s)
    }

    /// Interns `k` into one shard's slice of an interner. The id encodes
    /// the shard in its low bits (`id = local * SHARDS + shard`), so ids
    /// are globally unique and `id % SHARDS` recovers the owner.
    fn intern_in<K: Clone + Eq + Hash>(map: &mut HashMap<K, Id>, k: &K, shard: usize) -> Id {
        if let Some(&id) = map.get(k) {
            return id;
        }
        let id = (map.len() * SHARDS + shard) as Id;
        map.insert(k.clone(), id);
        id
    }

    // ------------------------------------------------------------------
    // Memoized operations
    // ------------------------------------------------------------------
    //
    // Lock discipline: at most one shard lock is held at a time, and no
    // lock is held across `compute`: intern + probe under the key's shard
    // lock, drop it, run the real computation (which may itself recurse
    // into the cache), then re-lock that shard to insert. Single-threaded
    // compilations never duplicate work; concurrent ones at worst compute
    // an entry twice.

    /// `cached_sat` for *analysis* callers, where "satisfiable" is the
    /// sound conservative answer: once the budget trips, the degraded
    /// `true` never lets the compiler skip communication or drop a
    /// splinter. Code generation must NOT use this — an emptiness test
    /// that prunes pieces before emitting loop bounds needs the exact
    /// answer or a typed failure ([`cached_sat_strict`](Self::cached_sat_strict)):
    /// a spurious "satisfiable" there widens hull bounds and emits
    /// phantom iterations, breaking send/recv duality.
    pub(crate) fn cached_sat(&self, c: &Conjunct, compute: impl FnOnce() -> bool) -> bool {
        self.cached_sat_strict(c, compute).unwrap_or(true)
    }

    /// Exact-or-fail satisfiability: the budget charge error propagates
    /// instead of degrading to `true`. Degraded answers are never cached.
    pub(crate) fn cached_sat_strict(
        &self,
        c: &Conjunct,
        compute: impl FnOnce() -> bool,
    ) -> Result<bool, OmegaError> {
        let _t = self.op_trace("satisfiability", conjunct_size(c));
        self.charge("sat")?;
        if !self.is_enabled() || self.memo_bypassed() {
            return Ok(compute());
        }
        let (s, id) = {
            // Borrow `c` as its own canonical key when already
            // normalized; only un-normalized probes pay for a copy.
            let tmp;
            let cc: &Conjunct = if c.is_normalized() {
                c
            } else {
                tmp = c.canonical();
                &tmp
            };
            let s = shard_of(cc);
            let mut shard = self.inner.shards[s].lock().unwrap();
            let sh = &mut *shard;
            let id = Self::intern_in(&mut sh.conjuncts, cc, s);
            if let Some(v) = sh.sat.get(&id, &mut sh.counts.sat) {
                return Ok(v);
            }
            (s, id)
        };
        let t0 = Instant::now();
        let v = compute();
        let cost_us = elapsed_us(t0);
        let cap = self.shard_cap();
        let mut shard = self.inner.shards[s].lock().unwrap();
        let sh = &mut *shard;
        sh.sat.insert(id, v, cost_us, cap, &mut sh.counts.sat);
        Ok(v)
    }

    pub(crate) fn cached_eliminate(
        &self,
        c: &Conjunct,
        v: Var,
        compute: impl FnOnce() -> Result<Vec<Conjunct>, OmegaError>,
    ) -> Result<Vec<Conjunct>, OmegaError> {
        let _t = self.op_trace("fme projection", conjunct_size(c));
        // Budget/cancel errors propagate *uncached*: memoizing one would
        // poison a long-lived context past the end of the budgeted
        // compilation.
        self.charge("eliminate")?;
        if !self.is_enabled() || self.memo_bypassed() {
            return compute();
        }
        let (s, id) = {
            let tmp;
            let cc: &Conjunct = if c.is_normalized() {
                c
            } else {
                tmp = c.canonical();
                &tmp
            };
            let s = shard_of(cc);
            let mut shard = self.inner.shards[s].lock().unwrap();
            let sh = &mut *shard;
            let id = Self::intern_in(&mut sh.conjuncts, cc, s);
            if let Some(r) = sh.eliminate.get(&(id, v), &mut sh.counts.eliminate) {
                return r;
            }
            (s, id)
        };
        let t0 = Instant::now();
        let r = compute();
        let cost_us = elapsed_us(t0);
        let cap = self.shard_cap();
        let mut shard = self.inner.shards[s].lock().unwrap();
        let sh = &mut *shard;
        sh.eliminate
            .insert((id, v), r.clone(), cost_us, cap, &mut sh.counts.eliminate);
        r
    }

    pub(crate) fn cached_negate(
        &self,
        c: &Conjunct,
        compute: impl FnOnce() -> Result<Vec<Conjunct>, OmegaError>,
    ) -> Result<Vec<Conjunct>, OmegaError> {
        let _t = self.op_trace("negation", conjunct_size(c));
        self.charge("negate")?;
        if !self.is_enabled() || self.memo_bypassed() {
            return compute();
        }
        let (s, id) = {
            let tmp;
            let cc: &Conjunct = if c.is_normalized() {
                c
            } else {
                tmp = c.canonical();
                &tmp
            };
            let s = shard_of(cc);
            let mut shard = self.inner.shards[s].lock().unwrap();
            let sh = &mut *shard;
            let id = Self::intern_in(&mut sh.conjuncts, cc, s);
            if let Some(r) = sh.negate.get(&id, &mut sh.counts.negate) {
                return r;
            }
            (s, id)
        };
        let t0 = Instant::now();
        let r = compute();
        let cost_us = elapsed_us(t0);
        let cap = self.shard_cap();
        let mut shard = self.inner.shards[s].lock().unwrap();
        let sh = &mut *shard;
        sh.negate
            .insert(id, r.clone(), cost_us, cap, &mut sh.counts.negate);
        r
    }

    pub(crate) fn cached_gist(
        &self,
        c: &Conjunct,
        given: &Conjunct,
        compute: impl FnOnce() -> Conjunct,
    ) -> Conjunct {
        let _t = self.op_trace("gist", conjunct_size(c) + conjunct_size(given));
        // Gist is a pure simplification: returning the input unchanged is
        // always sound, so a tripped budget degrades to the identity.
        if self.charge("gist").is_err() {
            return c.clone();
        }
        if !self.is_enabled() || self.memo_bypassed() {
            return compute();
        }
        // The two operands may live in different shards: intern each under
        // its own lock (sequentially — never nested), then probe the memo
        // table in the shard of `a`.
        let (gs, key) = {
            let a = self.intern_conjunct_key(c);
            let b = self.intern_conjunct_key(given);
            let gs = shard_of_id(a);
            let mut shard = self.inner.shards[gs].lock().unwrap();
            let sh = &mut *shard;
            if let Some(r) = sh.gist.get(&(a, b), &mut sh.counts.gist) {
                return r;
            }
            (gs, (a, b))
        };
        let t0 = Instant::now();
        let r = compute();
        let cost_us = elapsed_us(t0);
        let cap = self.shard_cap();
        let mut shard = self.inner.shards[gs].lock().unwrap();
        let sh = &mut *shard;
        sh.gist
            .insert(key, r.clone(), cost_us, cap, &mut sh.counts.gist);
        r
    }

    pub(crate) fn cached_simplify(
        &self,
        conjuncts: &[Conjunct],
        compute: impl FnOnce() -> Vec<Conjunct>,
    ) -> Vec<Conjunct> {
        let _t = self.op_trace("simplify", conjuncts.iter().map(conjunct_size).sum());
        // Like gist: identity is sound, so degrade to the input list.
        if self.charge("simplify").is_err() {
            return conjuncts.to_vec();
        }
        if !self.is_enabled() || self.memo_bypassed() {
            return compute();
        }
        let (ss, key) = {
            let key: Vec<Id> = conjuncts
                .iter()
                .map(|c| self.intern_conjunct_key(c))
                .collect();
            let ss = shard_of(&key);
            let mut shard = self.inner.shards[ss].lock().unwrap();
            let sh = &mut *shard;
            if let Some(r) = sh.simplify.get(&key, &mut sh.counts.simplify) {
                return r;
            }
            (ss, key)
        };
        let t0 = Instant::now();
        let r = compute();
        let cost_us = elapsed_us(t0);
        let cap = self.shard_cap();
        let mut shard = self.inner.shards[ss].lock().unwrap();
        let sh = &mut *shard;
        sh.simplify
            .insert(key, r.clone(), cost_us, cap, &mut sh.counts.simplify);
        r
    }
}

/// Picks the context shared by a binary operation's operands: the left
/// operand's context wins; otherwise the right's.
pub(crate) fn join(a: Option<&Context>, b: Option<&Context>) -> Option<Context> {
    a.or(b).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let ctx = Context::new();
        let mut c = Conjunct::new();
        c.add_geq(LinExpr::var(Var::In(0)));
        let id1 = ctx.intern_conjunct(&c);
        let id2 = ctx.intern_conjunct(&c.clone());
        assert_eq!(id1, id2);
        let mut d = c.clone();
        d.add_geq(LinExpr::var(Var::In(1)));
        assert_ne!(ctx.intern_conjunct(&d), id1);
        assert_eq!(ctx.stats().interned_conjuncts, 2);
    }

    #[test]
    fn ids_encode_their_shard() {
        let ctx = Context::new();
        for i in 0..64 {
            let mut c = Conjunct::new();
            c.add_geq(LinExpr::var(Var::In(i)));
            let id = ctx.intern_conjunct(&c);
            assert_eq!(shard_of_id(id), shard_of(&c.canonical()));
        }
        assert_eq!(ctx.stats().interned_conjuncts, 64);
    }

    #[test]
    fn sat_cache_hits_on_repeat() {
        let ctx = Context::new();
        let s = ctx.parse_set("{[i] : 1 <= i <= 10}").unwrap();
        assert!(!s.is_empty());
        let before = ctx.stats();
        assert!(!s.is_empty());
        let after = ctx.stats();
        assert!(
            after.sat.hits > before.sat.hits,
            "second emptiness test must hit"
        );
    }

    #[test]
    fn disabled_context_never_hits() {
        let ctx = Context::disabled();
        let s = ctx.parse_set("{[i] : 1 <= i <= 10}").unwrap();
        assert!(!s.is_empty());
        assert!(!s.is_empty());
        let stats = ctx.stats();
        assert_eq!(stats.total_hits(), 0);
        assert_eq!(stats.total_misses(), 0);
    }

    #[test]
    fn concurrent_clients_share_one_arena() {
        // Hammer one context from several threads; every thread computes
        // the same results it would alone, and the merged counters add up.
        let ctx = Context::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let ctx = ctx.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        let s = ctx
                            .parse_set(&format!("{{[i] : {} <= i <= {}}}", t, t + i))
                            .unwrap();
                        assert!(!s.is_empty());
                        let e = ctx
                            .parse_set(&format!("{{[i] : {} <= i <= {}}}", i + 1, i))
                            .unwrap();
                        assert!(e.is_empty());
                    }
                });
            }
        });
        let stats = ctx.stats();
        assert!(stats.total_misses() > 0);
        assert!(stats.interned_conjuncts > 0);
        // Re-running the same queries on the quiesced context now hits.
        let before = ctx.stats();
        let s = ctx.parse_set("{[i] : 0 <= i <= 0}").unwrap();
        assert!(!s.is_empty());
        let after = ctx.stats();
        assert!(after.total_hits() > before.total_hits());
    }

    #[test]
    fn collector_records_set_ops_on_open_span() {
        let obs = Collector::new();
        let ctx = Context::new();
        ctx.set_collector(Some(obs.clone()));
        let span = obs.begin("analysis", "phase");
        let s = ctx.parse_set("{[i] : 1 <= i <= 10}").unwrap();
        assert!(!s.is_empty());
        assert!(!s.is_empty()); // cache hit still counts as a call
        obs.end(span);
        let t = obs.trace();
        let i = t.find("analysis").unwrap();
        let sat = t.nodes[i].ops.get("satisfiability").expect("sat recorded");
        assert!(sat.calls >= 2);
        assert!(sat.sizes.count() == sat.calls);

        // Detaching stops recording.
        ctx.set_collector(None);
        let before = obs.len();
        let _ = s.is_empty();
        assert_eq!(obs.len(), before);
    }

    #[test]
    fn disabled_cache_still_records_set_ops() {
        let obs = Collector::new();
        let ctx = Context::disabled();
        ctx.set_collector(Some(obs.clone()));
        let s = ctx.parse_set("{[i] : 1 <= i <= 10}").unwrap();
        assert!(!s.is_empty());
        let ops = obs.trace().total_ops();
        assert!(ops.get("satisfiability").map_or(0, |o| o.calls) > 0);
        assert_eq!(ctx.stats().total_misses(), 0, "cache untouched");
    }

    #[test]
    fn stats_display_is_humane() {
        let ctx = Context::new();
        let txt = ctx.stats().to_string();
        assert!(txt.contains("hit rate"));
    }

    #[test]
    fn ungoverned_context_charges_nothing() {
        let ctx = Context::new();
        let s = ctx.parse_set("{[i] : 1 <= i <= 10}").unwrap();
        assert!(!s.is_empty());
        assert_eq!(ctx.governor_stats(), GovernorStats::default());
    }

    #[test]
    fn op_fuel_trips_and_degrades_soundly() {
        let ctx = Context::new();
        ctx.set_budget(&Budget::new().op_fuel(1));
        let s = ctx.parse_set("{[i] : 1 <= i <= 10}").unwrap();
        let t = ctx.parse_set("{[i] : 3 <= i <= 30}").unwrap();
        // Burn far more than one op; everything must still terminate and
        // the conservative answers must be sound (non-empty says non-empty).
        assert!(!s.is_empty());
        assert!(!s.intersection(&t).is_empty());
        assert!(ctx.budget_tripped());
        let g = ctx.governor_stats();
        assert_eq!(g.tripped, Some("op fuel"));
        assert!(g.ops_degraded > 0);
        // Fallible ops now surface the typed error.
        let err = s.try_subtract(&t).unwrap_err();
        assert!(matches!(err, OmegaError::BudgetExceeded("op fuel")));
        // Re-arming clears the trip.
        ctx.clear_budget();
        assert!(!ctx.budget_tripped());
        assert!(s.try_subtract(&t).is_ok());
    }

    #[test]
    fn expired_deadline_trips() {
        let ctx = Context::new();
        ctx.set_budget(&Budget::new().deadline_ms(0));
        std::thread::sleep(Duration::from_millis(2));
        let s = ctx.parse_set("{[i] : 1 <= i <= 10}").unwrap();
        assert!(!s.is_empty()); // degraded-but-sound
        assert!(!s.is_empty());
        assert!(ctx.budget_tripped());
        assert_eq!(ctx.governor_stats().tripped, Some("deadline"));
    }

    #[test]
    fn budget_errors_are_never_memoized() {
        let ctx = Context::new();
        let s = ctx.parse_set("{[i] : 1 <= i <= 10}").unwrap();
        let t = ctx.parse_set("{[i] : 3 <= i <= 30}").unwrap();
        ctx.set_budget(&Budget::new().op_fuel(0));
        assert!(s.try_subtract(&t).is_err());
        ctx.clear_budget();
        // The same structural query must now succeed from a clean slate.
        let d = s.try_subtract(&t).unwrap();
        assert!(d.contains(&[2], &[]));
        assert!(!d.contains(&[3], &[]));
    }

    #[test]
    fn grace_scope_suspends_trip_but_not_cancellation() {
        let ctx = Context::new();
        let s = ctx.parse_set("{[i] : 1 <= i <= 10}").unwrap();
        let t = ctx.parse_set("{[i] : 3 <= i <= 30}").unwrap();
        ctx.set_budget(&Budget::new().op_fuel(0));
        assert!(s.try_subtract(&t).is_err());
        assert!(ctx.budget_tripped());
        {
            let _grace = governor_grace();
            // Inside the grace scope the tripped budget no longer blocks
            // the set algebra the degraded rebuild needs...
            let d = s.try_subtract(&t).unwrap();
            assert!(d.contains(&[2], &[]));
            // ...but cancellation still aborts.
            let token = CancelToken::new();
            ctx.set_cancel_token(Some(token.clone()));
            token.cancel();
            assert!(matches!(s.try_subtract(&t), Err(OmegaError::Cancelled)));
            ctx.set_cancel_token(None);
        }
        // Enforcement resumes once the guard drops.
        assert!(matches!(
            s.try_subtract(&t),
            Err(OmegaError::BudgetExceeded(_))
        ));
    }

    #[test]
    fn cancel_token_aborts_fallible_ops() {
        let ctx = Context::new();
        let token = CancelToken::new();
        ctx.set_cancel_token(Some(token.clone()));
        let s = ctx.parse_set("{[i] : 1 <= i <= 10}").unwrap();
        let t = ctx.parse_set("{[i] : 3 <= i <= 30}").unwrap();
        assert!(s.try_subtract(&t).is_ok());
        assert!(ctx.check_cancelled().is_ok());
        token.cancel();
        assert_eq!(ctx.check_cancelled(), Err(OmegaError::Cancelled));
        assert!(matches!(s.try_subtract(&t), Err(OmegaError::Cancelled)));
        ctx.set_cancel_token(None);
        assert!(s.try_subtract(&t).is_ok());
    }

    #[test]
    fn configurable_limits_reach_the_ops() {
        let ctx = Context::new();
        assert_eq!(ctx.max_negation_pieces(), 10_000);
        assert_eq!(ctx.subsume_negation_pieces(), 64);
        assert_eq!(ctx.stride_fuel(), 500);
        // A piece cap of zero makes any non-trivial negation inexact.
        ctx.set_budget(&Budget::new().max_negation_pieces(0));
        let s = ctx.parse_set("{[i] : 1 <= i <= 10}").unwrap();
        let t = ctx.parse_set("{[i] : 3 <= i <= 5}").unwrap();
        assert!(matches!(
            s.try_subtract(&t),
            Err(OmegaError::InexactNegation)
        ));
        ctx.clear_budget();
        assert!(s.try_subtract(&t).is_ok());
    }

    #[test]
    fn injected_errors_fire_deterministically() {
        use crate::inject::{FaultAction, InjectPlan};
        let run = |seed: u64| -> (bool, u64) {
            let ctx = Context::new();
            ctx.set_inject(Some(InjectPlan::new(seed, 3, FaultAction::Error)));
            let s = ctx.parse_set("{[i] : 1 <= i <= 10}").unwrap();
            let t = ctx.parse_set("{[i] : 3 <= i <= 30}").unwrap();
            let r = s.try_subtract(&t).is_ok();
            (r, ctx.inject_fired())
        };
        let (a_ok, a_fired) = run(42);
        let (b_ok, b_fired) = run(42);
        assert_eq!(a_ok, b_ok);
        assert_eq!(a_fired, b_fired);
    }

    #[test]
    fn injected_budget_exhaustion_trips_governor() {
        use crate::inject::{FaultAction, InjectPlan};
        let ctx = Context::new();
        ctx.set_inject(Some(
            InjectPlan::new(7, 1, FaultAction::ExhaustBudget).at_site("eliminate"),
        ));
        let s = ctx
            .parse_set("{[i] : exists(a : i = 2a) && 0 <= i <= 10}")
            .unwrap();
        let t = ctx.parse_set("{[i] : 3 <= i <= 30}").unwrap();
        let _ = s.try_subtract(&t);
        assert!(ctx.budget_tripped());
        assert_eq!(ctx.governor_stats().tripped, Some("injected"));
    }

    #[test]
    fn injected_panics_unwind_cleanly() {
        use crate::inject::{FaultAction, InjectPlan};
        let ctx = Context::new();
        ctx.set_inject(Some(
            InjectPlan::new(9, 1, FaultAction::Panic).at_site("sat"),
        ));
        let s = ctx.parse_set("{[i] : 1 <= i <= 10}").unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.is_empty()));
        assert!(r.is_err(), "period-1 sat panic plan must fire");
        // The context is not poisoned: disarm and keep using it.
        ctx.set_inject(None);
        assert!(!s.is_empty());
        assert!(ctx.stats().total_misses() > 0);
    }
}
