//! Checked integer arithmetic helpers used throughout the set library.
//!
//! All coefficient arithmetic in this crate is performed on `i64` values via
//! these helpers so that silent wraparound can never corrupt a set. Overflow
//! aborts with a panic that names the operation; the constraint systems
//! produced by a data-parallel compiler keep coefficients tiny, so in
//! practice these panics indicate a logic error, not a capacity limit.

/// Greatest common divisor of the absolute values of `a` and `b`.
///
/// `gcd(0, 0)` is defined as `0` so it can be folded over a coefficient list.
///
/// # Examples
///
/// ```
/// use dhpf_omega::num::gcd;
/// assert_eq!(gcd(12, -18), 6);
/// assert_eq!(gcd(0, 5), 5);
/// assert_eq!(gcd(0, 0), 0);
/// ```
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i64
}

/// Least common multiple of the absolute values of `a` and `b`.
///
/// # Panics
///
/// Panics if the result overflows `i64`.
///
/// # Examples
///
/// ```
/// use dhpf_omega::num::lcm;
/// assert_eq!(lcm(4, 6), 12);
/// ```
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    mul(a / gcd(a, b), b).abs()
}

/// Floor division: the greatest integer `q` such that `q * b <= a`.
///
/// # Panics
///
/// Panics if `b == 0`.
///
/// # Examples
///
/// ```
/// use dhpf_omega::num::floor_div;
/// assert_eq!(floor_div(7, 2), 3);
/// assert_eq!(floor_div(-7, 2), -4);
/// ```
pub fn floor_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division: the least integer `q` such that `q * b >= a`.
///
/// # Panics
///
/// Panics if `b == 0`.
///
/// # Examples
///
/// ```
/// use dhpf_omega::num::ceil_div;
/// assert_eq!(ceil_div(7, 2), 4);
/// assert_eq!(ceil_div(-7, 2), -3);
/// ```
pub fn ceil_div(a: i64, b: i64) -> i64 {
    -floor_div(-a, b)
}

/// Mathematical modulus: `a - floor_div(a, b) * b`, always in `0..|b|`.
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn modulo(a: i64, b: i64) -> i64 {
    a - floor_div(a, b) * b
}

/// Checked multiplication returning [`OmegaError::Overflow`] on overflow.
///
/// This is the fallible path used by the parser and the builder API so
/// malformed or adversarial inputs surface as errors, never panics.
pub fn try_mul(a: i64, b: i64) -> Result<i64, crate::OmegaError> {
    a.checked_mul(b)
        .ok_or(crate::OmegaError::Overflow("multiplication"))
}

/// Checked addition returning [`OmegaError::Overflow`] on overflow.
pub fn try_add(a: i64, b: i64) -> Result<i64, crate::OmegaError> {
    a.checked_add(b)
        .ok_or(crate::OmegaError::Overflow("addition"))
}

/// Checked subtraction returning [`OmegaError::Overflow`] on overflow.
pub fn try_sub(a: i64, b: i64) -> Result<i64, crate::OmegaError> {
    a.checked_sub(b)
        .ok_or(crate::OmegaError::Overflow("subtraction"))
}

/// Checked multiplication.
///
/// # Panics
///
/// Panics on overflow.
pub fn mul(a: i64, b: i64) -> i64 {
    try_mul(a, b).unwrap_or_else(|_| panic!("integer overflow in {a} * {b}"))
}

/// Checked addition.
///
/// # Panics
///
/// Panics on overflow.
pub fn add(a: i64, b: i64) -> i64 {
    try_add(a, b).unwrap_or_else(|_| panic!("integer overflow in {a} + {b}"))
}

/// Checked subtraction.
///
/// # Panics
///
/// Panics on overflow.
pub fn sub(a: i64, b: i64) -> i64 {
    try_sub(a, b).unwrap_or_else(|_| panic!("integer overflow in {a} - {b}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(12, -18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, -9), 9);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
        assert_eq!(lcm(-4, 6), 12);
    }

    #[test]
    fn floor_ceil_div() {
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(floor_div(7, -2), -4);
        assert_eq!(floor_div(-7, -2), 3);
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(-7, 2), -3);
        assert_eq!(ceil_div(6, 2), 3);
    }

    #[test]
    fn modulo_is_nonnegative_for_positive_modulus() {
        assert_eq!(modulo(7, 3), 1);
        assert_eq!(modulo(-7, 3), 2);
        assert_eq!(modulo(-6, 3), 0);
    }

    #[test]
    #[should_panic(expected = "integer overflow")]
    fn mul_overflow_panics() {
        mul(i64::MAX, 2);
    }
}
