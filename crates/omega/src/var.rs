//! Variables of a constraint system.
//!
//! A [`Relation`](crate::Relation) constrains four kinds of variables:
//! symbolic parameters (global symbolic constants such as `N` or the
//! representative processor id `m`), input tuple variables, output tuple
//! variables, and per-conjunct existentially quantified variables.

use std::fmt;

/// A variable reference inside a constraint.
///
/// The ordering (`Param < In < Out < Exist`, then by index) is the canonical
/// term order used by [`LinExpr`](crate::LinExpr).
///
/// # Examples
///
/// ```
/// use dhpf_omega::Var;
/// assert!(Var::Param(0) < Var::In(0));
/// assert!(Var::In(1) < Var::Out(0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Var {
    /// A named symbolic constant, indexed into the relation's parameter list.
    Param(u32),
    /// An input tuple variable (`[i, j] -> ...`), 0-based position.
    In(u32),
    /// An output tuple variable (`... -> [k]`), 0-based position.
    Out(u32),
    /// An existentially quantified variable local to one conjunct.
    Exist(u32),
}

impl Var {
    /// Returns `true` if this is a tuple variable (input or output).
    pub fn is_tuple(self) -> bool {
        matches!(self, Var::In(_) | Var::Out(_))
    }

    /// Returns `true` if this is an existential variable.
    pub fn is_exist(self) -> bool {
        matches!(self, Var::Exist(_))
    }

    /// Returns `true` if this is a symbolic parameter.
    pub fn is_param(self) -> bool {
        matches!(self, Var::Param(_))
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Var::Param(i) => write!(f, "p{i}"),
            Var::In(i) => write!(f, "i{i}"),
            Var::Out(i) => write!(f, "o{i}"),
            Var::Exist(i) => write!(f, "e{i}"),
        }
    }
}

/// Names used when pretty-printing the variables of a relation.
///
/// Produced by [`Relation`](crate::Relation) display code; user-facing names
/// come from the parser or from `set_in_names`-style builders.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VarNames {
    /// Names of input tuple variables.
    pub input: Vec<String>,
    /// Names of output tuple variables.
    pub output: Vec<String>,
}

impl VarNames {
    /// Display name for `v`, consulting `params` for parameter names.
    pub fn name_of(&self, v: Var, params: &[String]) -> String {
        match v {
            Var::Param(i) => params
                .get(i as usize)
                .cloned()
                .unwrap_or_else(|| format!("p{i}")),
            Var::In(i) => self
                .input
                .get(i as usize)
                .cloned()
                .unwrap_or_else(|| format!("i{i}")),
            Var::Out(i) => self
                .output
                .get(i as usize)
                .cloned()
                .unwrap_or_else(|| format!("o{i}")),
            Var::Exist(i) => format!("alpha{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order() {
        let mut vars = vec![Var::Exist(0), Var::Out(1), Var::In(2), Var::Param(3)];
        vars.sort();
        assert_eq!(
            vars,
            vec![Var::Param(3), Var::In(2), Var::Out(1), Var::Exist(0)]
        );
    }

    #[test]
    fn kind_predicates() {
        assert!(Var::In(0).is_tuple());
        assert!(Var::Out(0).is_tuple());
        assert!(!Var::Param(0).is_tuple());
        assert!(Var::Exist(0).is_exist());
        assert!(Var::Param(0).is_param());
    }

    #[test]
    fn names_fall_back_to_positional() {
        let names = VarNames::default();
        assert_eq!(names.name_of(Var::In(3), &[]), "i3");
        assert_eq!(names.name_of(Var::Param(0), &["N".into()]), "N");
    }
}
