//! Fluent construction of sets and relations bound to a [`Context`].
//!
//! The builders replace ad-hoc string parsing for *programmatic* call sites:
//! instead of formatting an Omega-syntax string and re-parsing it, analyses
//! assemble constraints directly from [`LinExpr`]s. Every built value carries
//! the originating [`Context`], so all downstream operations share its
//! caches.
//!
//! ```
//! use dhpf_omega::Context;
//!
//! let ctx = Context::new();
//! // {[i, j] : 1 <= i <= N && 2 <= j <= i + 1}
//! let s = ctx
//!     .set(2)
//!     .names(["i", "j"])
//!     .param("N")
//!     .constrain(|c| {
//!         c.geq(c.dim(0).minus(&c.constant(1)));        // i - 1 >= 0
//!         c.geq(c.param("N").minus(&c.dim(0)));         // N - i >= 0
//!         c.geq(c.dim(1).minus(&c.constant(2)));        // j - 2 >= 0
//!         c.geq(c.dim(0).plus(&c.constant(1)).minus(&c.dim(1))); // i + 1 - j >= 0
//!     })
//!     .build();
//! assert!(s.contains(&[3, 4], &[("N", 10)]));
//! assert!(!s.contains(&[3, 5], &[("N", 10)]));
//! ```

use crate::conjunct::Conjunct;
use crate::context::Context;
use crate::linexpr::LinExpr;
use crate::relation::Relation;
use crate::set::Set;
use crate::var::Var;

/// Fluent builder for a [`Relation`] bound to a [`Context`].
///
/// Obtained from [`Context::relation`]. Declare parameters with
/// [`param`](Self::param) *before* recording constraints that mention them;
/// each [`constrain`](Self::constrain) call contributes one disjunct.
/// A builder with no `constrain` call yields the universe relation.
#[derive(Clone, Debug)]
pub struct RelationBuilder {
    ctx: Context,
    rel: Relation,
    any_disjunct: bool,
}

impl RelationBuilder {
    /// Starts a builder for a relation of the given arities.
    pub fn new(ctx: Context, n_in: u32, n_out: u32) -> Self {
        RelationBuilder {
            rel: Relation::empty(n_in, n_out).with_context(&ctx),
            ctx,
            any_disjunct: false,
        }
    }

    /// Sets display names for the input tuple variables.
    #[must_use]
    pub fn in_names<I: IntoIterator<Item = S>, S: Into<String>>(mut self, names: I) -> Self {
        self.rel = self.rel.with_in_names(names);
        self
    }

    /// Sets display names for the output tuple variables.
    #[must_use]
    pub fn out_names<I: IntoIterator<Item = S>, S: Into<String>>(mut self, names: I) -> Self {
        self.rel = self.rel.with_out_names(names);
        self
    }

    /// Declares a symbolic parameter, making it available to
    /// [`ConjunctBuilder::param`].
    #[must_use]
    pub fn param(mut self, name: &str) -> Self {
        self.rel.ensure_param(name);
        self
    }

    /// Records one disjunct: the closure receives a [`ConjunctBuilder`] and
    /// adds constraints to it. Calling `constrain` several times builds a
    /// union of conjuncts.
    #[must_use]
    pub fn constrain<F: FnOnce(&mut ConjunctBuilder)>(mut self, f: F) -> Self {
        let mut cb = ConjunctBuilder {
            params: self.rel.params().to_vec(),
            conjunct: Conjunct::new(),
        };
        f(&mut cb);
        self.rel.add_conjunct(cb.conjunct);
        self.any_disjunct = true;
        self
    }

    /// Finishes construction. With no recorded disjunct the result is the
    /// universe relation of the declared arities.
    pub fn build(self) -> Relation {
        if self.any_disjunct {
            self.rel
        } else {
            let mut u = Relation::universe(self.rel.n_in(), self.rel.n_out())
                .with_context(&self.ctx)
                .with_in_names(self.rel.in_names.clone())
                .with_out_names(self.rel.out_names.clone());
            for p in self.rel.params() {
                u.ensure_param(p);
            }
            u
        }
    }
}

/// Fluent builder for a [`Set`] bound to a [`Context`].
///
/// Obtained from [`Context::set`]; a thin wrapper over [`RelationBuilder`]
/// with output arity zero.
#[derive(Clone, Debug)]
pub struct SetBuilder {
    inner: RelationBuilder,
}

impl SetBuilder {
    /// Starts a builder for a set of the given arity.
    pub fn new(ctx: Context, arity: u32) -> Self {
        SetBuilder {
            inner: RelationBuilder::new(ctx, arity, 0),
        }
    }

    /// Sets display names for the tuple variables.
    #[must_use]
    pub fn names<I: IntoIterator<Item = S>, S: Into<String>>(mut self, names: I) -> Self {
        self.inner = self.inner.in_names(names);
        self
    }

    /// Declares a symbolic parameter, making it available to
    /// [`ConjunctBuilder::param`].
    #[must_use]
    pub fn param(mut self, name: &str) -> Self {
        self.inner = self.inner.param(name);
        self
    }

    /// Records one disjunct (see [`RelationBuilder::constrain`]).
    #[must_use]
    pub fn constrain<F: FnOnce(&mut ConjunctBuilder)>(mut self, f: F) -> Self {
        self.inner = self.inner.constrain(f);
        self
    }

    /// Finishes construction. With no recorded disjunct the result is the
    /// universe set of the declared arity.
    pub fn build(self) -> Set {
        Set::from_relation(self.inner.build())
    }
}

/// Records the constraints of one disjunct.
///
/// Expression helpers ([`dim`](Self::dim), [`output`](Self::output),
/// [`param`](Self::param), [`constant`](Self::constant)) produce
/// [`LinExpr`]s; constraint recorders ([`eq`](Self::eq), [`geq`](Self::geq),
/// [`le`](Self::le), [`bounds`](Self::bounds), [`stride`](Self::stride))
/// add them to the conjunct under construction.
#[derive(Clone, Debug)]
pub struct ConjunctBuilder {
    params: Vec<String>,
    conjunct: Conjunct,
}

impl ConjunctBuilder {
    /// The expression naming tuple dimension `i` (an input variable).
    pub fn dim(&self, i: u32) -> LinExpr {
        LinExpr::var(Var::In(i))
    }

    /// Alias of [`dim`](Self::dim), reading naturally for relations.
    pub fn input(&self, i: u32) -> LinExpr {
        self.dim(i)
    }

    /// The expression naming output tuple variable `j`.
    pub fn output(&self, j: u32) -> LinExpr {
        LinExpr::var(Var::Out(j))
    }

    /// The expression naming a declared parameter.
    ///
    /// # Panics
    ///
    /// Panics if `name` was not declared with `.param(name)` on the builder —
    /// a programmer error, not a data error: the builder API is not an
    /// untrusted-input surface (that is [`Context::parse_set`]'s job).
    pub fn param(&self, name: &str) -> LinExpr {
        let i = self
            .params
            .iter()
            .position(|p| p == name)
            .unwrap_or_else(|| panic!("parameter `{name}` not declared on the builder"));
        LinExpr::var(Var::Param(i as u32))
    }

    /// The constant expression `k`.
    pub fn constant(&self, k: i64) -> LinExpr {
        LinExpr::constant(k)
    }

    /// Records `e = 0`.
    pub fn eq(&mut self, e: LinExpr) {
        self.conjunct.add_eq(e);
    }

    /// Records `e >= 0`.
    pub fn geq(&mut self, e: LinExpr) {
        self.conjunct.add_geq(e);
    }

    /// Records `lhs <= rhs`.
    pub fn le(&mut self, lhs: &LinExpr, rhs: &LinExpr) {
        self.geq(rhs.minus(lhs));
    }

    /// Records `lo <= e <= hi` for constant bounds.
    pub fn bounds(&mut self, e: &LinExpr, lo: i64, hi: i64) {
        let mut lower = e.clone();
        lower.add_constant(-lo);
        self.geq(lower); // e - lo >= 0
        let mut upper = e.negated();
        upper.add_constant(hi);
        self.geq(upper); // hi - e >= 0
    }

    /// Records the congruence `e ≡ 0 (mod k)` via a fresh existential.
    pub fn stride(&mut self, e: LinExpr, k: i64) {
        self.conjunct.add_stride(e, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_builder_matches_parsed_set() {
        let ctx = Context::new();
        let built = ctx
            .set(1)
            .names(["i"])
            .param("N")
            .constrain(|c| {
                c.bounds(&c.dim(0), 1, 100);
                c.le(&c.dim(0), &c.param("N"));
            })
            .build();
        let parsed = ctx.parse_set("{[i] : 1 <= i <= 100 && i <= N}").unwrap();
        assert!(built.as_relation().equal(parsed.as_relation()));
        assert!(built.context().is_some());
    }

    #[test]
    fn relation_builder_block_layout() {
        let ctx = Context::new();
        // {[p] -> [a] : 25p <= a <= 25p + 24 && 0 <= p <= 3}
        let layout = ctx
            .relation(1, 1)
            .in_names(["p"])
            .out_names(["a"])
            .constrain(|c| {
                c.le(&c.input(0).scaled(25), &c.output(0));
                c.le(&c.output(0), &c.input(0).scaled(25).plus(&c.constant(24)));
                c.bounds(&c.input(0), 0, 3);
            })
            .build();
        let parsed = ctx
            .parse_relation("{[p] -> [a] : 25p <= a <= 25p + 24 && 0 <= p <= 3}")
            .unwrap();
        assert!(layout.equal(&parsed));
    }

    #[test]
    fn multiple_constrain_calls_union() {
        let ctx = Context::new();
        let s = ctx
            .set(1)
            .constrain(|c| c.bounds(&c.dim(0), 1, 3))
            .constrain(|c| c.bounds(&c.dim(0), 7, 9))
            .build();
        assert!(s.contains(&[2], &[]));
        assert!(!s.contains(&[5], &[]));
        assert!(s.contains(&[8], &[]));
    }

    #[test]
    fn empty_builder_is_universe() {
        let ctx = Context::new();
        let s = ctx.set(1).build();
        assert!(s.contains(&[12345], &[]));
    }

    #[test]
    fn stride_constraint() {
        let ctx = Context::new();
        let evens = ctx
            .set(1)
            .constrain(|c| {
                c.bounds(&c.dim(0), 0, 10);
                c.stride(c.dim(0), 2);
            })
            .build();
        assert!(evens.contains(&[4], &[]));
        assert!(!evens.contains(&[5], &[]));
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn undeclared_param_panics() {
        let ctx = Context::new();
        let _ = ctx
            .set(1)
            .constrain(|c| c.le(&c.dim(0), &c.param("N")))
            .build();
    }
}
