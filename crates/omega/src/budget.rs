//! Resource governance: compile budgets and cooperative cancellation.
//!
//! A [`Budget`] bounds what one compilation may spend inside the Omega
//! substrate — wall-clock time, a fuel count of memoized set operations,
//! and the piece/fuel limits that keep exact negation and FME from
//! exploding combinatorially. Arm it on a [`Context`](crate::Context) with
//! [`Context::set_budget`](crate::Context::set_budget); every memoized
//! operation then checks the budget at entry. A [`CancelToken`] is the
//! sharper tool: tripping it makes the next fallible operation return
//! [`OmegaError::Cancelled`](crate::OmegaError::Cancelled) so the whole
//! compilation aborts with a typed error.
//!
//! The distinction matters downstream: budget exhaustion means "stop
//! spending, a conservative answer is fine" (the driver degrades to
//! conservative communication), while cancellation means "the caller no
//! longer wants any answer" (the driver aborts).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Resource limits for one compilation. All fields default to the
/// historical hard-coded behaviour: no deadline, no fuel cap, and the
/// negation/FME limits that previously lived as constants in `ops.rs`.
///
/// Construct fluently:
///
/// ```
/// use dhpf_omega::Budget;
/// let b = Budget::new().deadline_ms(5_000).op_fuel(2_000_000);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline in milliseconds, measured from the moment the
    /// budget is armed on a context. `None` = no deadline.
    pub deadline_ms: Option<u64>,
    /// Total memoized Omega operations (sat, FME, negation, gist,
    /// simplify) the compilation may charge. `None` = unlimited.
    pub op_fuel: Option<u64>,
    /// Hard cap on the conjunct pieces an exact negation may produce
    /// before it is declared inexact (default 10 000 — the PR-5 value).
    pub max_negation_pieces: usize,
    /// Negation-piece cap above which semantic subsumption skips a pair
    /// (purely an optimization limit; default 64).
    pub subsume_negation_pieces: usize,
    /// Iteration fuel for the stride-form rewrite inside exact negation
    /// (default 500).
    pub stride_fuel: u32,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            deadline_ms: None,
            op_fuel: None,
            max_negation_pieces: 10_000,
            subsume_negation_pieces: 64,
            stride_fuel: 500,
        }
    }
}

impl Budget {
    /// An unlimited budget with the default exactness limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the wall-clock deadline in milliseconds.
    #[must_use]
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the total Omega-operation fuel.
    #[must_use]
    pub fn op_fuel(mut self, fuel: u64) -> Self {
        self.op_fuel = Some(fuel);
        self
    }

    /// Sets the exact-negation piece cap.
    #[must_use]
    pub fn max_negation_pieces(mut self, n: usize) -> Self {
        self.max_negation_pieces = n;
        self
    }

    /// Sets the subsumption-check piece cap.
    #[must_use]
    pub fn subsume_negation_pieces(mut self, n: usize) -> Self {
        self.subsume_negation_pieces = n;
        self
    }

    /// Sets the stride-form rewrite fuel.
    #[must_use]
    pub fn stride_fuel(mut self, fuel: u32) -> Self {
        self.stride_fuel = fuel;
        self
    }

    /// True if neither a deadline nor op fuel is set (only the exactness
    /// limits apply, which cost nothing to enforce).
    pub fn is_unlimited(&self) -> bool {
        self.deadline_ms.is_none() && self.op_fuel.is_none()
    }
}

/// A shared cancellation flag. Clones observe the same flag, so the token
/// can be handed to another thread (or a request handler) and tripped
/// while a compilation is in flight; the compilation aborts at its next
/// cancellation point with a typed error.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Counters reported by [`Context::governor_stats`](crate::Context::governor_stats):
/// how much work the governor saw and whether it tripped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GovernorStats {
    /// Memoized operations charged against the budget.
    pub ops_charged: u64,
    /// Operations answered conservatively (or refused) after the budget
    /// tripped.
    pub ops_degraded: u64,
    /// Why the budget tripped, if it did (`"deadline"` or `"op fuel"`,
    /// or `"injected"` under fault injection).
    pub tripped: Option<&'static str>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_builder_round_trips() {
        let b = Budget::new()
            .deadline_ms(100)
            .op_fuel(42)
            .max_negation_pieces(9)
            .subsume_negation_pieces(3)
            .stride_fuel(7);
        assert_eq!(b.deadline_ms, Some(100));
        assert_eq!(b.op_fuel, Some(42));
        assert_eq!(b.max_negation_pieces, 9);
        assert_eq!(b.subsume_negation_pieces, 3);
        assert_eq!(b.stride_fuel, 7);
        assert!(!b.is_unlimited());
        assert!(Budget::default().is_unlimited());
    }

    #[test]
    fn cancel_token_is_shared() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }
}
