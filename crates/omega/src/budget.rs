//! Resource governance: compile budgets and cooperative cancellation.
//!
//! A [`Budget`] bounds what one compilation may spend inside the Omega
//! substrate — wall-clock time, a fuel count of memoized set operations,
//! and the piece/fuel limits that keep exact negation and FME from
//! exploding combinatorially. Arm it on a [`Context`](crate::Context) with
//! [`Context::set_budget`](crate::Context::set_budget); every memoized
//! operation then checks the budget at entry. A [`CancelToken`] is the
//! sharper tool: tripping it makes the next fallible operation return
//! [`OmegaError::Cancelled`](crate::OmegaError::Cancelled) so the whole
//! compilation aborts with a typed error.
//!
//! The distinction matters downstream: budget exhaustion means "stop
//! spending, a conservative answer is fine" (the driver degrades to
//! conservative communication), while cancellation means "the caller no
//! longer wants any answer" (the driver aborts).

use crate::OmegaError;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Resource limits for one compilation. All fields default to the
/// historical hard-coded behaviour: no deadline, no fuel cap, and the
/// negation/FME limits that previously lived as constants in `ops.rs`.
///
/// Construct fluently:
///
/// ```
/// use dhpf_omega::Budget;
/// let b = Budget::new().deadline_ms(5_000).op_fuel(2_000_000);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline in milliseconds, measured from the moment the
    /// budget is armed on a context. `None` = no deadline.
    pub deadline_ms: Option<u64>,
    /// Total memoized Omega operations (sat, FME, negation, gist,
    /// simplify) the compilation may charge. `None` = unlimited.
    pub op_fuel: Option<u64>,
    /// Hard cap on the conjunct pieces an exact negation may produce
    /// before it is declared inexact (default 10 000 — the PR-5 value).
    pub max_negation_pieces: usize,
    /// Negation-piece cap above which semantic subsumption skips a pair
    /// (purely an optimization limit; default 64).
    pub subsume_negation_pieces: usize,
    /// Iteration fuel for the stride-form rewrite inside exact negation
    /// (default 500).
    pub stride_fuel: u32,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            deadline_ms: None,
            op_fuel: None,
            max_negation_pieces: 10_000,
            subsume_negation_pieces: 64,
            stride_fuel: 500,
        }
    }
}

impl Budget {
    /// An unlimited budget with the default exactness limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the wall-clock deadline in milliseconds.
    #[must_use]
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the total Omega-operation fuel.
    #[must_use]
    pub fn op_fuel(mut self, fuel: u64) -> Self {
        self.op_fuel = Some(fuel);
        self
    }

    /// Sets the exact-negation piece cap.
    #[must_use]
    pub fn max_negation_pieces(mut self, n: usize) -> Self {
        self.max_negation_pieces = n;
        self
    }

    /// Sets the subsumption-check piece cap.
    #[must_use]
    pub fn subsume_negation_pieces(mut self, n: usize) -> Self {
        self.subsume_negation_pieces = n;
        self
    }

    /// Sets the stride-form rewrite fuel.
    #[must_use]
    pub fn stride_fuel(mut self, fuel: u32) -> Self {
        self.stride_fuel = fuel;
        self
    }

    /// True if neither a deadline nor op fuel is set (only the exactness
    /// limits apply, which cost nothing to enforce).
    pub fn is_unlimited(&self) -> bool {
        self.deadline_ms.is_none() && self.op_fuel.is_none()
    }
}

/// A shared cancellation flag. Clones observe the same flag, so the token
/// can be handed to another thread (or a request handler) and tripped
/// while a compilation is in flight; the compilation aborts at its next
/// cancellation point with a typed error.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Process-wide monotonic anchor for deadline arithmetic: deadlines are
/// stored as microseconds-since-anchor in one `AtomicU64`, so the per-op
/// check is a clock read and a compare — no lock, no `Instant` in shared
/// state.
pub(crate) fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Microseconds elapsed since [`anchor`], saturating.
pub(crate) fn now_us() -> u64 {
    u64::try_from(anchor().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Trip-reason codes (0 = not tripped), shared with the context governor.
pub(crate) const TRIP_DEADLINE: u8 = 1;
pub(crate) const TRIP_FUEL: u8 = 2;
pub(crate) const TRIP_INJECTED: u8 = 3;

pub(crate) fn trip_reason(code: u8) -> Option<&'static str> {
    match code {
        TRIP_DEADLINE => Some("deadline"),
        TRIP_FUEL => Some("op fuel"),
        TRIP_INJECTED => Some("injected"),
        _ => None,
    }
}

struct GovernorInner {
    /// Remaining op fuel; `u64::MAX` = unlimited. Shared atomically so the
    /// parallel driver's worker threads spend from one pool.
    fuel: AtomicU64,
    /// Deadline in microseconds since [`anchor`]; `u64::MAX` = none.
    deadline_us: u64,
    cancel: Option<CancelToken>,
    tripped: AtomicBool,
    trip_code: AtomicU8,
    charged: AtomicU64,
    degraded: AtomicU64,
    /// Exactness limits carried by the request's [`Budget`].
    max_negation_pieces: usize,
    subsume_negation_pieces: usize,
    stride_fuel: u32,
    /// True when the exactness limits differ from [`Budget::default`]:
    /// memoized results then bypass the shared cache entirely, because an
    /// entry computed under tighter (or looser) limits is not
    /// interchangeable with one computed under the defaults.
    non_default_limits: bool,
}

/// A **per-request** governor: the same deadline/fuel/cancellation
/// enforcement as [`Context::set_budget`](crate::Context::set_budget), but
/// scoped to the requesting thread (and any worker threads that re-arm it)
/// instead of the whole shared context.
///
/// This is what lets a long-lived serving context compile many concurrent
/// requests, each under its *own* budget: arming a budget context-wide
/// would let one slow client's deadline trip every in-flight compilation.
/// The governor is `Arc`-shared — clone it into worker tasks and call
/// [`arm_on_thread`](Self::arm_on_thread) there so every thread working on
/// the request spends from one fuel pool and observes one deadline.
///
/// The `dhpf-core` driver arms one automatically whenever
/// `CompileOptions` carries a budget or cancel token; context-global
/// arming via `set_budget` remains available for callers that own their
/// context exclusively.
#[derive(Clone)]
pub struct RequestGovernor {
    inner: Arc<GovernorInner>,
}

impl std::fmt::Debug for RequestGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestGovernor")
            .field("stats", &self.stats())
            .finish()
    }
}

thread_local! {
    /// The request governor armed on the current thread, if any. A fast
    /// boolean gate keeps the unarmed `charge` path to one thread-local
    /// read.
    static REQ_GOV: RefCell<Option<RequestGovernor>> = const { RefCell::new(None) };
    static REQ_GOV_ARMED: Cell<bool> = const { Cell::new(false) };
}

/// True if a request governor is armed on the current thread.
pub(crate) fn request_governor_armed() -> bool {
    REQ_GOV_ARMED.with(Cell::get)
}

/// The request governor armed on the current thread, if any.
pub(crate) fn current_request_governor() -> Option<RequestGovernor> {
    if !request_governor_armed() {
        return None;
    }
    REQ_GOV.with(|g| g.borrow().clone())
}

impl RequestGovernor {
    /// A governor enforcing `budget` (deadline measured from now) and, if
    /// given, `cancel`.
    pub fn new(budget: &Budget, cancel: Option<CancelToken>) -> Self {
        let d = Budget::default();
        let non_default_limits = budget.max_negation_pieces != d.max_negation_pieces
            || budget.subsume_negation_pieces != d.subsume_negation_pieces
            || budget.stride_fuel != d.stride_fuel;
        let deadline_us = budget.deadline_ms.map_or(u64::MAX, |ms| {
            let at = anchor().elapsed() + Duration::from_millis(ms);
            u64::try_from(at.as_micros()).unwrap_or(u64::MAX)
        });
        RequestGovernor {
            inner: Arc::new(GovernorInner {
                fuel: AtomicU64::new(budget.op_fuel.unwrap_or(u64::MAX)),
                deadline_us,
                cancel,
                tripped: AtomicBool::new(false),
                trip_code: AtomicU8::new(0),
                charged: AtomicU64::new(0),
                degraded: AtomicU64::new(0),
                max_negation_pieces: budget.max_negation_pieces,
                subsume_negation_pieces: budget.subsume_negation_pieces,
                stride_fuel: budget.stride_fuel,
                non_default_limits,
            }),
        }
    }

    /// The governor armed on the calling thread, if any. A worker pool
    /// captures this on the submitting thread and re-arms it (via
    /// [`arm_on_thread`](Self::arm_on_thread)) on each pool thread, so
    /// every task of a request runs under that request's budget.
    pub fn current() -> Option<RequestGovernor> {
        current_request_governor()
    }

    /// Arms this governor on the current thread until the guard drops.
    /// Nested arming restores the previous governor on drop, so scopes
    /// compose; the same governor may be armed on many threads at once
    /// (they share fuel, deadline, and counters).
    #[must_use = "enforcement stops when the guard drops"]
    pub fn arm_on_thread(&self) -> RequestGovernorGuard {
        let prev = REQ_GOV.with(|g| g.borrow_mut().replace(self.clone()));
        REQ_GOV_ARMED.with(|a| a.set(true));
        RequestGovernorGuard { prev }
    }

    /// Charges one governed operation. Mirrors the context-global
    /// governor: cancellation always aborts; a grace scope (see
    /// [`governor_grace`](crate::governor_grace)) suspends budget
    /// enforcement; otherwise fuel is spent and the deadline checked, and
    /// once tripped every further charge is refused with the trip reason.
    pub(crate) fn charge(&self, in_grace: bool) -> Result<(), OmegaError> {
        let i = &self.inner;
        if i.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Err(OmegaError::Cancelled);
        }
        if in_grace {
            return Ok(());
        }
        i.charged.fetch_add(1, Ordering::Relaxed);
        if !i.tripped.load(Ordering::Relaxed) {
            let fuel = i.fuel.load(Ordering::Relaxed);
            if fuel != u64::MAX {
                let spent = i
                    .fuel
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| f.checked_sub(1));
                if spent.is_err() {
                    self.trip(TRIP_FUEL);
                }
            }
            if i.deadline_us != u64::MAX && now_us() > i.deadline_us {
                self.trip(TRIP_DEADLINE);
            }
        }
        if i.tripped.load(Ordering::Relaxed) {
            i.degraded.fetch_add(1, Ordering::Relaxed);
            let reason = trip_reason(i.trip_code.load(Ordering::Relaxed)).unwrap_or("budget");
            return Err(OmegaError::BudgetExceeded(reason));
        }
        Ok(())
    }

    fn trip(&self, code: u8) {
        let _ =
            self.inner
                .trip_code
                .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
        self.inner.tripped.store(true, Ordering::Relaxed);
    }

    /// The armed cancel token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.inner.cancel.as_ref()
    }

    /// True once the deadline passed or the fuel ran out.
    pub fn tripped(&self) -> bool {
        self.inner.tripped.load(Ordering::Relaxed)
    }

    /// This governor's counters and trip reason.
    pub fn stats(&self) -> GovernorStats {
        GovernorStats {
            ops_charged: self.inner.charged.load(Ordering::Relaxed),
            ops_degraded: self.inner.degraded.load(Ordering::Relaxed),
            tripped: trip_reason(self.inner.trip_code.load(Ordering::Relaxed)),
        }
    }

    pub(crate) fn max_negation_pieces(&self) -> usize {
        self.inner.max_negation_pieces
    }

    pub(crate) fn subsume_negation_pieces(&self) -> usize {
        self.inner.subsume_negation_pieces
    }

    pub(crate) fn stride_fuel(&self) -> u32 {
        self.inner.stride_fuel
    }

    pub(crate) fn non_default_limits(&self) -> bool {
        self.inner.non_default_limits
    }
}

/// RAII scope of [`RequestGovernor::arm_on_thread`]: restores the
/// previously armed governor (or none) on drop.
pub struct RequestGovernorGuard {
    prev: Option<RequestGovernor>,
}

impl Drop for RequestGovernorGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        REQ_GOV_ARMED.with(|a| a.set(prev.is_some()));
        REQ_GOV.with(|g| *g.borrow_mut() = prev);
    }
}

/// Counters reported by [`Context::governor_stats`](crate::Context::governor_stats):
/// how much work the governor saw and whether it tripped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GovernorStats {
    /// Memoized operations charged against the budget.
    pub ops_charged: u64,
    /// Operations answered conservatively (or refused) after the budget
    /// tripped.
    pub ops_degraded: u64,
    /// Why the budget tripped, if it did (`"deadline"` or `"op fuel"`,
    /// or `"injected"` under fault injection).
    pub tripped: Option<&'static str>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_builder_round_trips() {
        let b = Budget::new()
            .deadline_ms(100)
            .op_fuel(42)
            .max_negation_pieces(9)
            .subsume_negation_pieces(3)
            .stride_fuel(7);
        assert_eq!(b.deadline_ms, Some(100));
        assert_eq!(b.op_fuel, Some(42));
        assert_eq!(b.max_negation_pieces, 9);
        assert_eq!(b.subsume_negation_pieces, 3);
        assert_eq!(b.stride_fuel, 7);
        assert!(!b.is_unlimited());
        assert!(Budget::default().is_unlimited());
    }

    #[test]
    fn cancel_token_is_shared() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }
}
