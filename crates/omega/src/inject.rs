//! Deterministic, seeded fault injection for chaos testing.
//!
//! An [`InjectPlan`] armed on a [`Context`](crate::Context) via
//! [`Context::set_inject`](crate::Context::set_inject) fires a configured
//! [`FaultAction`] at named sites: the five memoized Omega operations
//! (`"sat"`, `"eliminate"`, `"negate"`, `"gist"`, `"simplify"`) plus any
//! site the host compiler registers through
//! [`Context::inject_check`](crate::Context::inject_check) (the dHPF
//! driver registers `"comm_sets"` and `"nest"`).
//!
//! Decisions are a pure function of `(seed, site, per-site hit count)`, so
//! a run is reproducible from its seed regardless of thread interleaving:
//! the k-th arrival at a given site always gets the same verdict, even
//! when a different worker thread gets there first.

/// What to do when an injection point fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Surface a degradable `OmegaError` (inexactness-shaped) from the
    /// site, exercising the driver's fallback paths.
    Error,
    /// Panic at the site, exercising `catch_unwind` isolation.
    Panic,
    /// Trip the governor as if the budget were exhausted; subsequent
    /// governed operations degrade or fail with `BudgetExceeded`.
    ExhaustBudget,
}

/// A deterministic fault-injection campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectPlan {
    /// Seed mixed into every decision.
    pub seed: u64,
    /// Fire on average once per `period` arrivals at a site (1 = always).
    pub period: u64,
    /// The action taken when a site fires.
    pub action: FaultAction,
    /// If set, only this site may fire; other sites are left alone.
    pub site: Option<&'static str>,
}

impl InjectPlan {
    /// A plan firing `action` once every `period` arrivals, at any site.
    pub fn new(seed: u64, period: u64, action: FaultAction) -> Self {
        InjectPlan {
            seed,
            period: period.max(1),
            action,
            site: None,
        }
    }

    /// Restricts the plan to one named site.
    #[must_use]
    pub fn at_site(mut self, site: &'static str) -> Self {
        self.site = Some(site);
        self
    }

    /// Pure decision function: should the `count`-th arrival at `site`
    /// fire? (`count` is 0-based and tracked per site by the context.)
    pub fn should_fire(&self, site: &str, count: u64) -> bool {
        if let Some(only) = self.site {
            if only != site {
                return false;
            }
        }
        mix(self.seed, site, count).is_multiple_of(self.period)
    }
}

/// SplitMix64-style mixing of the seed, the site name, and the hit count
/// into a well-distributed u64.
fn mix(seed: u64, site: &str, count: u64) -> u64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for &b in site.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h ^= count;
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_site_filtered() {
        let p = InjectPlan::new(7, 3, FaultAction::Error);
        let a: Vec<bool> = (0..32).map(|i| p.should_fire("negate", i)).collect();
        let b: Vec<bool> = (0..32).map(|i| p.should_fire("negate", i)).collect();
        assert_eq!(a, b);
        assert!(
            a.iter().any(|&x| x),
            "period-3 plan should fire within 32 hits"
        );

        let only = InjectPlan::new(7, 1, FaultAction::Panic).at_site("sat");
        assert!(only.should_fire("sat", 0));
        assert!(!only.should_fire("negate", 0));
    }

    #[test]
    fn period_one_always_fires() {
        let p = InjectPlan::new(123, 1, FaultAction::ExhaustBudget);
        assert!((0..16).all(|i| p.should_fire("gist", i)));
    }

    #[test]
    fn different_seeds_differ() {
        let a = InjectPlan::new(1, 4, FaultAction::Error);
        let b = InjectPlan::new(2, 4, FaultAction::Error);
        let va: Vec<bool> = (0..64).map(|i| a.should_fire("simplify", i)).collect();
        let vb: Vec<bool> = (0..64).map(|i| b.should_fire("simplify", i)).collect();
        assert_ne!(va, vb);
    }
}
