//! Deterministic pseudo-random generation for the property-test suites.
//!
//! The workspace builds in fully offline environments, so the property
//! tests use this tiny xorshift64* generator instead of an external
//! framework. Failures print the seed; re-running with the same seed
//! reproduces the case exactly.

/// A small deterministic PRNG (xorshift64*), good enough for generating
/// random constraint systems in tests.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed; distinct seeds give independent
    /// streams, and the same seed always replays the same stream.
    pub fn new(seed: u64) -> Self {
        // Splash the seed so small consecutive seeds diverge immediately.
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x2545_F491_4F6C_DD1D;
        if s == 0 {
            s = 0xDEAD_BEEF_CAFE_F00D;
        }
        Rng(s)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform integer in `lo..=hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform index in `0..n` (`n > 0`).
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}
