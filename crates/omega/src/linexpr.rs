//! Affine (linear + constant) integer expressions over [`Var`]s.

use crate::num::{add, floor_div, gcd, mul, try_add, try_mul};
use crate::var::Var;
use crate::OmegaError;
use std::fmt;

/// Inline capacity of [`TermVec`]: expressions with at most this many
/// variable terms (the overwhelming majority — loop bounds, strides, and
/// ownership constraints are 1–3 terms) store their coefficients inside
/// the expression itself with no heap allocation.
const INLINE_TERMS: usize = 4;

/// Coefficient storage for [`LinExpr`]: a hand-rolled small-vector that
/// keeps up to [`INLINE_TERMS`] `(Var, i64)` pairs inline and spills to a
/// heap vector beyond that. A spilled vector never converts back to
/// inline, so all observable behavior (`Eq`, `Ord`, `Hash`, `Debug`)
/// is defined on the logical slice, never the representation.
#[derive(Clone)]
enum TermVec {
    Inline {
        len: u8,
        buf: [(Var, i64); INLINE_TERMS],
    },
    Spilled(Vec<(Var, i64)>),
}

impl TermVec {
    const EMPTY_SLOT: (Var, i64) = (Var::Param(0), 0);

    fn as_slice(&self) -> &[(Var, i64)] {
        match self {
            TermVec::Inline { len, buf } => &buf[..*len as usize],
            TermVec::Spilled(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [(Var, i64)] {
        match self {
            TermVec::Inline { len, buf } => &mut buf[..*len as usize],
            TermVec::Spilled(v) => v,
        }
    }

    fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn insert(&mut self, i: usize, t: (Var, i64)) {
        match self {
            TermVec::Inline { len, buf } => {
                let n = *len as usize;
                if n < INLINE_TERMS {
                    buf.copy_within(i..n, i + 1);
                    buf[i] = t;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(2 * INLINE_TERMS);
                    v.extend_from_slice(&buf[..n]);
                    v.insert(i, t);
                    *self = TermVec::Spilled(v);
                }
            }
            TermVec::Spilled(v) => v.insert(i, t),
        }
    }

    fn remove(&mut self, i: usize) -> (Var, i64) {
        match self {
            TermVec::Inline { len, buf } => {
                let n = *len as usize;
                let t = buf[i];
                buf.copy_within(i + 1..n, i);
                *len -= 1;
                t
            }
            TermVec::Spilled(v) => v.remove(i),
        }
    }
}

impl Default for TermVec {
    fn default() -> Self {
        TermVec::Inline {
            len: 0,
            buf: [Self::EMPTY_SLOT; INLINE_TERMS],
        }
    }
}

impl fmt::Debug for TermVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// An affine expression `c0 + c1*v1 + c2*v2 + ...` with `i64` coefficients.
///
/// Terms are kept sorted by [`Var`] with no zero coefficients, so structural
/// equality coincides with mathematical equality of the expressions.
/// Expressions of up to four terms are stored entirely inline (no heap
/// allocation); `Eq`/`Ord`/`Hash` are representation-independent.
///
/// # Examples
///
/// ```
/// use dhpf_omega::{LinExpr, Var};
/// let e = LinExpr::var(Var::In(0)) + LinExpr::constant(3);
/// assert_eq!(e.coeff(Var::In(0)), 1);
/// assert_eq!(e.constant_term(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LinExpr {
    terms: TermVec,
    constant: i64,
}

impl PartialEq for LinExpr {
    fn eq(&self, other: &Self) -> bool {
        self.constant == other.constant && self.terms.as_slice() == other.terms.as_slice()
    }
}

impl Eq for LinExpr {}

impl PartialOrd for LinExpr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LinExpr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Same lexicographic (terms, constant) order the derived impl on
        // the old `Vec` representation gave: equal-coefficient
        // constraints sort adjacent, tighter constant first.
        self.terms
            .as_slice()
            .cmp(other.terms.as_slice())
            .then_with(|| self.constant.cmp(&other.constant))
    }
}

impl std::hash::Hash for LinExpr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.terms.as_slice().hash(state);
        self.constant.hash(state);
    }
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        LinExpr {
            terms: TermVec::default(),
            constant: c,
        }
    }

    /// The expression `1 * v`.
    pub fn var(v: Var) -> Self {
        LinExpr::term(v, 1)
    }

    /// The expression `c * v`.
    pub fn term(v: Var, c: i64) -> Self {
        let mut e = LinExpr::zero();
        if c != 0 {
            e.terms.insert(0, (v, c));
        }
        e
    }

    /// Builds an expression from `(var, coeff)` pairs and a constant.
    ///
    /// Pairs may be unsorted and may repeat variables; they are merged.
    pub fn from_terms<I: IntoIterator<Item = (Var, i64)>>(terms: I, constant: i64) -> Self {
        let mut e = LinExpr::constant(constant);
        for (v, c) in terms {
            e.add_term(v, c);
        }
        e
    }

    /// The coefficient of `v` (0 if absent).
    pub fn coeff(&self, v: Var) -> i64 {
        let terms = self.terms.as_slice();
        match terms.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => terms[i].1,
            Err(_) => 0,
        }
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Iterates over the `(var, coeff)` terms in canonical order.
    pub fn terms(&self) -> impl Iterator<Item = (Var, i64)> + '_ {
        self.terms.as_slice().iter().copied()
    }

    /// Number of variable terms.
    pub fn n_terms(&self) -> usize {
        self.terms.as_slice().len()
    }

    /// Returns `true` if the expression has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns `true` if the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty() && self.constant == 0
    }

    /// If `other`'s variable part is exactly the negation of `self`'s
    /// (same vars, opposite coefficients), returns the sum of the two
    /// constants — i.e. the constant value of `self + other` — without
    /// materializing the sum. `None` otherwise, or on `i64` overflow
    /// (conservatively treated as "not opposing" by callers).
    pub fn opposing_sum(&self, other: &LinExpr) -> Option<i64> {
        let a = self.terms.as_slice();
        let b = other.terms.as_slice();
        if a.len() != b.len() {
            return None;
        }
        for (&(va, ca), &(vb, cb)) in a.iter().zip(b) {
            if va != vb || ca != cb.checked_neg()? {
                return None;
            }
        }
        self.constant.checked_add(other.constant)
    }

    /// If `other` has the identical variable part, returns
    /// `self.constant - other.constant` — the constant value of
    /// `self - other` — without materializing the difference. `None`
    /// otherwise, or on `i64` overflow.
    pub fn constant_delta(&self, other: &LinExpr) -> Option<i64> {
        if self.terms.as_slice() != other.terms.as_slice() {
            return None;
        }
        self.constant.checked_sub(other.constant)
    }

    /// Adds `c * v` in place.
    pub fn add_term(&mut self, v: Var, c: i64) {
        if c == 0 {
            return;
        }
        match self.terms.as_slice().binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => {
                let nc = add(self.terms.as_slice()[i].1, c);
                if nc == 0 {
                    self.terms.remove(i);
                } else {
                    self.terms.as_mut_slice()[i].1 = nc;
                }
            }
            Err(i) => self.terms.insert(i, (v, c)),
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: i64) {
        self.constant = add(self.constant, c);
    }

    /// Adds `k * other` in place.
    pub fn add_scaled(&mut self, other: &LinExpr, k: i64) {
        if k == 0 {
            return;
        }
        for &(v, c) in other.terms.as_slice() {
            self.add_term(v, mul(c, k));
        }
        self.constant = add(self.constant, mul(other.constant, k));
    }

    /// Returns `k * self`.
    pub fn scaled(&self, k: i64) -> LinExpr {
        let mut e = LinExpr::zero();
        e.add_scaled(self, k);
        e
    }

    /// Returns `self + rhs`.
    pub fn plus(&self, rhs: &LinExpr) -> LinExpr {
        let mut e = self.clone();
        e.add_scaled(rhs, 1);
        e
    }

    /// Returns `self - rhs`.
    pub fn minus(&self, rhs: &LinExpr) -> LinExpr {
        let mut e = self.clone();
        e.add_scaled(rhs, -1);
        e
    }

    /// Checked version of [`add_term`](Self::add_term): reports overflow
    /// instead of panicking. Used by the parser and builder entry points.
    pub fn try_add_term(&mut self, v: Var, c: i64) -> Result<(), OmegaError> {
        if c == 0 {
            return Ok(());
        }
        match self.terms.as_slice().binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => {
                let nc = try_add(self.terms.as_slice()[i].1, c)?;
                if nc == 0 {
                    self.terms.remove(i);
                } else {
                    self.terms.as_mut_slice()[i].1 = nc;
                }
            }
            Err(i) => self.terms.insert(i, (v, c)),
        }
        Ok(())
    }

    /// Checked version of [`add_constant`](Self::add_constant).
    pub fn try_add_constant(&mut self, c: i64) -> Result<(), OmegaError> {
        self.constant = try_add(self.constant, c)?;
        Ok(())
    }

    /// Checked version of [`add_scaled`](Self::add_scaled).
    pub fn try_add_scaled(&mut self, other: &LinExpr, k: i64) -> Result<(), OmegaError> {
        if k == 0 {
            return Ok(());
        }
        for &(v, c) in other.terms.as_slice() {
            self.try_add_term(v, try_mul(c, k)?)?;
        }
        self.constant = try_add(self.constant, try_mul(other.constant, k)?)?;
        Ok(())
    }

    /// Checked version of [`scaled`](Self::scaled).
    pub fn try_scaled(&self, k: i64) -> Result<LinExpr, OmegaError> {
        let mut e = LinExpr::zero();
        e.try_add_scaled(self, k)?;
        Ok(e)
    }

    /// Checked difference `self - rhs`, reporting overflow as an error.
    pub fn try_sub(&self, rhs: &LinExpr) -> Result<LinExpr, OmegaError> {
        let mut e = self.clone();
        e.try_add_scaled(rhs, -1)?;
        Ok(e)
    }

    /// Checked negation, reporting overflow as an error (`-i64::MIN`).
    pub fn try_negated(&self) -> Result<LinExpr, OmegaError> {
        self.try_scaled(-1)
    }

    /// Returns `-self`.
    pub fn negated(&self) -> LinExpr {
        self.scaled(-1)
    }

    /// Replaces every occurrence of `v` with the expression `repl`.
    ///
    /// `repl` must not mention `v` (checked by a `debug_assert`).
    pub fn substitute(&mut self, v: Var, repl: &LinExpr) {
        debug_assert_eq!(repl.coeff(v), 0, "substitution expression mentions target");
        let c = self.coeff(v);
        if c == 0 {
            return;
        }
        self.remove_term(v);
        self.add_scaled(repl, c);
    }

    /// Removes the term for `v` entirely, returning its former coefficient.
    pub fn remove_term(&mut self, v: Var) -> i64 {
        match self.terms.as_slice().binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => self.terms.remove(i).1,
            Err(_) => 0,
        }
    }

    /// GCD of the variable coefficients (0 if there are none).
    pub fn coeff_gcd(&self) -> i64 {
        self.terms.as_slice().iter().fold(0, |g, &(_, c)| gcd(g, c))
    }

    /// Divides every coefficient and the constant by `d` in place
    /// (callers guarantee exact divisibility of the coefficients).
    pub(crate) fn div_exact_coeffs(&mut self, d: i64) {
        for t in self.terms.as_mut_slice() {
            t.1 /= d;
        }
        self.constant /= d;
    }

    /// Divides the coefficients by their gcd `g` exactly and the constant
    /// by floor division, in place: `g*f + c >= 0  <=>  f + floor(c/g) >= 0`
    /// over the integers.
    pub(crate) fn tighten_by_gcd(&mut self, g: i64) {
        for t in self.terms.as_mut_slice() {
            t.1 /= g;
        }
        self.constant = floor_div(self.constant, g);
    }

    /// Negates every coefficient and the constant in place, without
    /// reallocating (term order is var-keyed, so it is unchanged).
    pub(crate) fn negate_in_place(&mut self) {
        for t in self.terms.as_mut_slice() {
            t.1 = -t.1;
        }
        self.constant = -self.constant;
    }

    /// Applies `f` to every variable, renaming terms.
    ///
    /// `f` must be injective on the variables present (merging is still
    /// handled correctly if it is not, by summing coefficients).
    pub fn rename<F: Fn(Var) -> Var>(&self, f: F) -> LinExpr {
        let mut e = LinExpr::constant(self.constant);
        for &(v, c) in self.terms.as_slice() {
            e.add_term(f(v), c);
        }
        e
    }

    /// Evaluates the expression under a full assignment.
    ///
    /// Returns `None` if some variable is unbound.
    pub fn eval<F: Fn(Var) -> Option<i64>>(&self, lookup: F) -> Option<i64> {
        let mut acc = self.constant;
        for &(v, c) in self.terms.as_slice() {
            acc = add(acc, mul(c, lookup(v)?));
        }
        Some(acc)
    }

    /// Partially evaluates: substitutes the bound variables, keeps the rest.
    pub fn partial_eval<F: Fn(Var) -> Option<i64>>(&self, lookup: F) -> LinExpr {
        let mut e = LinExpr::constant(self.constant);
        for &(v, c) in self.terms.as_slice() {
            match lookup(v) {
                Some(val) => e.add_constant(mul(c, val)),
                None => e.add_term(v, c),
            }
        }
        e
    }

    /// Variables mentioned by this expression, in canonical order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.as_slice().iter().map(|&(v, _)| v)
    }

    /// The highest `Exist` index mentioned, if any.
    pub fn max_exist(&self) -> Option<u32> {
        self.terms
            .as_slice()
            .iter()
            .filter_map(|&(v, _)| match v {
                Var::Exist(i) => Some(i),
                _ => None,
            })
            .max()
    }
}

impl std::ops::Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.add_scaled(&rhs, 1);
        self
    }
}

impl std::ops::Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self.add_scaled(&rhs, -1);
        self
    }
}

impl std::ops::Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.negated()
    }
}

impl From<i64> for LinExpr {
    fn from(c: i64) -> Self {
        LinExpr::constant(c)
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        LinExpr::var(v)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &(v, c) in self.terms.as_slice() {
            if first {
                if c == 1 {
                    write!(f, "{v}")?;
                } else if c == -1 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}{v}")?;
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}{v}")?;
                }
            } else if c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(n: u32) -> Var {
        Var::In(n)
    }

    #[test]
    fn build_and_merge_terms() {
        let e = LinExpr::from_terms([(i(0), 2), (i(1), 3), (i(0), -2)], 5);
        assert_eq!(e.coeff(i(0)), 0);
        assert_eq!(e.coeff(i(1)), 3);
        assert_eq!(e.constant_term(), 5);
    }

    #[test]
    fn arithmetic_ops() {
        let a = LinExpr::from_terms([(i(0), 1)], 2);
        let b = LinExpr::from_terms([(i(0), 3), (i(1), 1)], -1);
        let s = a.clone() + b.clone();
        assert_eq!(s.coeff(i(0)), 4);
        assert_eq!(s.coeff(i(1)), 1);
        assert_eq!(s.constant_term(), 1);
        let d = a - b;
        assert_eq!(d.coeff(i(0)), -2);
        assert_eq!(d.coeff(i(1)), -1);
        assert_eq!(d.constant_term(), 3);
    }

    #[test]
    fn substitute_replaces_var() {
        // e = 2*i0 + i1; i0 := i1 + 1  =>  3*i1 + 2
        let mut e = LinExpr::from_terms([(i(0), 2), (i(1), 1)], 0);
        let repl = LinExpr::from_terms([(i(1), 1)], 1);
        e.substitute(i(0), &repl);
        assert_eq!(e.coeff(i(0)), 0);
        assert_eq!(e.coeff(i(1)), 3);
        assert_eq!(e.constant_term(), 2);
    }

    #[test]
    fn eval_and_partial_eval() {
        let e = LinExpr::from_terms([(i(0), 2), (i(1), -1)], 7);
        let v = e
            .eval(|v| match v {
                Var::In(0) => Some(3),
                Var::In(1) => Some(4),
                _ => None,
            })
            .unwrap();
        assert_eq!(v, 2 * 3 - 4 + 7);
        let p = e.partial_eval(|v| if v == i(0) { Some(3) } else { None });
        assert_eq!(p.constant_term(), 13);
        assert_eq!(p.coeff(i(1)), -1);
    }

    #[test]
    fn display_forms() {
        let e = LinExpr::from_terms([(i(0), 1), (i(1), -2)], -3);
        assert_eq!(e.to_string(), "i0 - 2i1 - 3");
        assert_eq!(LinExpr::zero().to_string(), "0");
        assert_eq!(LinExpr::constant(-4).to_string(), "-4");
    }

    #[test]
    fn coeff_gcd() {
        let e = LinExpr::from_terms([(i(0), 4), (i(1), -6)], 3);
        assert_eq!(e.coeff_gcd(), 2);
        assert_eq!(LinExpr::constant(5).coeff_gcd(), 0);
    }

    #[test]
    fn inline_spill_roundtrip_preserves_semantics() {
        // Push past the inline capacity, then remove back below it: the
        // slice view (and so Eq/Ord/Hash) must be identical to an
        // expression built small.
        let vars: Vec<Var> = (0..7).map(i).collect();
        let mut big = LinExpr::constant(9);
        for (k, &v) in vars.iter().enumerate() {
            big.add_term(v, k as i64 + 1);
        }
        assert_eq!(big.n_terms(), 7);
        for &v in &vars[2..] {
            big.remove_term(v);
        }
        let small = LinExpr::from_terms([(i(0), 1), (i(1), 2)], 9);
        assert_eq!(big, small);
        assert_eq!(big.cmp(&small), std::cmp::Ordering::Equal);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |e: &LinExpr| {
            let mut h = DefaultHasher::new();
            e.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&big), hash(&small));
        assert_eq!(format!("{big:?}"), format!("{small:?}"));
    }

    #[test]
    fn opposing_sum_and_constant_delta() {
        let a = LinExpr::from_terms([(i(0), 2), (i(1), -3)], 5);
        let b = LinExpr::from_terms([(i(0), -2), (i(1), 3)], -1);
        assert_eq!(a.opposing_sum(&b), Some(4));
        assert_eq!(a.opposing_sum(&a), None);
        let c = LinExpr::from_terms([(i(0), 2), (i(1), -3)], 1);
        assert_eq!(a.constant_delta(&c), Some(4));
        assert_eq!(a.constant_delta(&b), None);
        assert_eq!(
            LinExpr::constant(3).opposing_sum(&LinExpr::constant(4)),
            Some(7)
        );
    }
}
