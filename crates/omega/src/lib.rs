//! # dhpf-omega — symbolic integer tuple sets and relations
//!
//! A from-scratch reimplementation of the integer-set substrate used by the
//! Rice dHPF compiler (Adve & Mellor-Crummey, PLDI 1998): sets and relations
//! of integer tuples described by Presburger formulas, with the operation
//! vocabulary the paper's equational framework relies on — union,
//! intersection, difference, composition, domain, range, restriction,
//! projection, and gist — all *exact* over the integers.
//!
//! The algorithms follow Pugh's Omega test: equality elimination with
//! symmetric-modulus coefficient reduction, and integer Fourier–Motzkin
//! elimination with dark shadow and splinter sets so that projections of
//! non-unit-coefficient systems (e.g. block data distributions `B·p ≤ a`)
//! remain exact.
//!
//! ## Quick start
//!
//! ```
//! use dhpf_omega::{Relation, Set};
//!
//! // The layout of a BLOCK(25)-distributed array on 4 processors.
//! let layout: Relation = "{[p] -> [a] : 25p <= a <= 25p + 24 && 0 <= p <= 3}".parse()?;
//! // The data referenced by iterations of a loop.
//! let refmap: Relation = "{[i] -> [a] : a = i + 1 && 1 <= i <= N}".parse()?;
//!
//! // Which processor executes which iteration under owner-computes?
//! let cpmap = refmap.then(&layout.inverse());
//! assert!(cpmap.contains_pair(&[30], &[1], &[("N", 90)]));
//!
//! // Sets support exact difference, emptiness, and membership.
//! let s: Set = "{[i] : 1 <= i <= N}".parse()?;
//! let t: Set = "{[i] : 5 <= i}".parse()?;
//! let d = s.subtract(&t);
//! assert!(d.contains(&[4], &[("N", 10)]));
//! assert!(!d.contains(&[5], &[("N", 10)]));
//! # Ok::<(), dhpf_omega::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod builder;
pub mod conjunct;
pub mod context;
pub mod display;
pub mod inject;
pub mod linexpr;
pub mod num;
pub mod ops;
pub mod oracle;
pub mod parse;
pub mod relation;
pub mod set;
pub mod testing;
pub mod var;

pub use budget::{Budget, CancelToken, GovernorStats, RequestGovernor, RequestGovernorGuard};
pub use builder::{RelationBuilder, SetBuilder};
pub use conjunct::{Conjunct, Normalized};
pub use context::{governor_grace, CacheStats, Context, GraceGuard, OpCounts, DEFAULT_CACHE_CAP};
pub use inject::{FaultAction, InjectPlan};
pub use linexpr::LinExpr;
#[allow(deprecated)]
pub use ops::{negate_conjunct, to_stride_form};
pub use ops::{negate_conjunct_in, to_stride_form_in};
pub use parse::ParseError;
pub use relation::Relation;
pub use set::Set;
pub use var::{Var, VarNames};

use std::fmt;

/// Errors reported by set operations and fallible constructors.
///
/// Every fallible public entry point of this crate — parsing, enumeration,
/// exact negation, builder construction — reports through this one enum,
/// so malformed input surfaces as an `Err`, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum OmegaError {
    /// A conjunct's existential system could not be negated exactly
    /// (needed by difference/subset/equality tests).
    InexactNegation,
    /// Enumeration was requested for a set with no constant bounds.
    Unbounded,
    /// The Omega-syntax parser rejected the input; the payload carries the
    /// message and source offset.
    Parse(ParseError),
    /// Coefficient arithmetic overflowed `i64` while building or combining
    /// constraints; the payload names the failing operation.
    Overflow(&'static str),
    /// An operation restricted to a specific tuple arity (the §3.3 1-D
    /// contiguity tests) was applied to a set of a different arity; the
    /// payload names the operation.
    Arity(&'static str),
    /// The compile [`Budget`] armed on the context was exhausted (deadline
    /// passed or op fuel spent); the payload names the exhausted resource.
    /// The driver treats this like inexactness: degrade, don't die.
    BudgetExceeded(&'static str),
    /// The [`CancelToken`] armed on the context was tripped. Unlike budget
    /// exhaustion this is never degraded — the compilation aborts.
    Cancelled,
}

/// Stable, machine-readable error codes shared by every error surface in
/// the workspace — [`OmegaError`] here, `CompileError` in `dhpf-core`, and
/// the `dhpf-serve` wire protocol all map onto this one vocabulary via a
/// `code()` method.
///
/// The string form ([`ErrorCode::as_str`]) is the wire contract: it is
/// what `dhpf-serve` serializes in error responses and what tests assert
/// on, replacing fragile string-matching against `Display` output. Codes
/// are append-only; an existing code never changes meaning or spelling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    /// Malformed Omega-syntax input (`E_PARSE`).
    Parse,
    /// HPF frontend (lexer/parser/semantic) failure (`E_FRONTEND`).
    Frontend,
    /// A construct the compiler does not support (`E_UNSUPPORTED`).
    Unsupported,
    /// Loop-synthesis / code-generation failure (`E_CODEGEN`).
    Codegen,
    /// A set-algebra exactness limit was hit (`E_SET_ALGEBRA`).
    SetAlgebra,
    /// Coefficient arithmetic overflowed `i64` (`E_OVERFLOW`).
    Overflow,
    /// Enumeration of a set with no constant bounds (`E_UNBOUNDED`).
    Unbounded,
    /// An arity-restricted operation got the wrong arity (`E_ARITY`).
    Arity,
    /// The compile budget (deadline/fuel) was exhausted (`E_BUDGET`).
    Budget,
    /// The compilation was cancelled (`E_CANCELLED`).
    Cancelled,
    /// A contained panic / internal invariant failure (`E_INTERNAL`).
    Internal,
    /// A malformed request at the wire-protocol layer (`E_PROTOCOL`).
    Protocol,
}

impl ErrorCode {
    /// Every defined code, in declaration order. Metric exporters
    /// pre-register one error counter per code from this list, and lint
    /// tools use it to reject unknown `E_*` spellings.
    pub const ALL: &'static [ErrorCode] = &[
        ErrorCode::Parse,
        ErrorCode::Frontend,
        ErrorCode::Unsupported,
        ErrorCode::Codegen,
        ErrorCode::SetAlgebra,
        ErrorCode::Overflow,
        ErrorCode::Unbounded,
        ErrorCode::Arity,
        ErrorCode::Budget,
        ErrorCode::Cancelled,
        ErrorCode::Internal,
        ErrorCode::Protocol,
    ];

    /// The stable wire spelling of this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "E_PARSE",
            ErrorCode::Frontend => "E_FRONTEND",
            ErrorCode::Unsupported => "E_UNSUPPORTED",
            ErrorCode::Codegen => "E_CODEGEN",
            ErrorCode::SetAlgebra => "E_SET_ALGEBRA",
            ErrorCode::Overflow => "E_OVERFLOW",
            ErrorCode::Unbounded => "E_UNBOUNDED",
            ErrorCode::Arity => "E_ARITY",
            ErrorCode::Budget => "E_BUDGET",
            ErrorCode::Cancelled => "E_CANCELLED",
            ErrorCode::Internal => "E_INTERNAL",
            ErrorCode::Protocol => "E_PROTOCOL",
        }
    }

    /// Parses a wire spelling back to the code (`None` for unknown text),
    /// so clients can round-trip responses without string comparisons.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "E_PARSE" => ErrorCode::Parse,
            "E_FRONTEND" => ErrorCode::Frontend,
            "E_UNSUPPORTED" => ErrorCode::Unsupported,
            "E_CODEGEN" => ErrorCode::Codegen,
            "E_SET_ALGEBRA" => ErrorCode::SetAlgebra,
            "E_OVERFLOW" => ErrorCode::Overflow,
            "E_UNBOUNDED" => ErrorCode::Unbounded,
            "E_ARITY" => ErrorCode::Arity,
            "E_BUDGET" => ErrorCode::Budget,
            "E_CANCELLED" => ErrorCode::Cancelled,
            "E_INTERNAL" => ErrorCode::Internal,
            "E_PROTOCOL" => ErrorCode::Protocol,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl OmegaError {
    /// The stable machine-readable [`ErrorCode`] of this error.
    pub fn code(&self) -> ErrorCode {
        match self {
            OmegaError::InexactNegation => ErrorCode::SetAlgebra,
            OmegaError::Unbounded => ErrorCode::Unbounded,
            OmegaError::Parse(_) => ErrorCode::Parse,
            OmegaError::Overflow(_) => ErrorCode::Overflow,
            OmegaError::Arity(_) => ErrorCode::Arity,
            OmegaError::BudgetExceeded(_) => ErrorCode::Budget,
            OmegaError::Cancelled => ErrorCode::Cancelled,
        }
    }
}

impl fmt::Display for OmegaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmegaError::InexactNegation => {
                write!(f, "existential system cannot be negated exactly")
            }
            OmegaError::Unbounded => write!(f, "set has no constant bounds to enumerate"),
            OmegaError::Parse(e) => write!(f, "{e}"),
            OmegaError::Overflow(op) => write!(f, "integer overflow in {op}"),
            OmegaError::Arity(op) => write!(f, "{op} requires a 1-D set"),
            OmegaError::BudgetExceeded(what) => write!(f, "compile budget exceeded: {what}"),
            OmegaError::Cancelled => write!(f, "compilation cancelled"),
        }
    }
}

impl std::error::Error for OmegaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OmegaError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for OmegaError {
    fn from(e: ParseError) -> Self {
        OmegaError::Parse(e)
    }
}
