//! Differential correctness oracle for the integer-set substrate.
//!
//! Every equation of the paper (Figs. 3–5) assumes the primitives in this
//! crate — FME with dark shadow and splinters, exact negation, gist, the
//! §3.3 `IsConvex`/`IsSingleton` tests — are *exact* over the integers.
//! This module checks that assumption differentially: a seeded generator
//! (built on [`crate::testing::Rng`]) produces small bounded sets and
//! relations in a miniature constraint language with its own independent
//! reference semantics (plain `i64` arithmetic, no Omega machinery), and a
//! family of algebraic laws compares every library operation against that
//! ground truth over an exhaustive window of integer points, plus
//! [`Set::enumerate`] as a second, library-level ground truth.
//!
//! Failures are minimized by a greedy [`shrink`] pass and reported as
//! [`Counterexample`]s whose inputs are printable `parse_set` /
//! `parse_relation` strings, ready to paste into a regression test (see
//! `crates/omega/tests/oracle_regressions.rs`).
//!
//! The `oracle_fuzz` binary in `crates/bench` drives [`fuzz`] from the
//! command line (`--seed/--iters/--time-budget`); CI runs a fixed-seed
//! smoke iteration count on every push.

use crate::conjunct::Conjunct;
use crate::ops::negate_conjunct_in;
use crate::relation::Relation;
use crate::set::Set;
use crate::testing::Rng;
use crate::{Context, OmegaError};
use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Tunables for the generator and the point-membership window.
///
/// The defaults keep one law check in the low-millisecond range while still
/// covering coefficients large enough to exercise dark-shadow/splinter FME
/// and stride negation.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// Maximum total tuple dimensions (input + output) of a generated form.
    pub max_dims: u32,
    /// Maximum number of disjuncts per generated form.
    pub max_conjuncts: usize,
    /// Maximum extra constraints per conjunct (besides the bounding box).
    pub max_atoms: usize,
    /// Coefficient magnitudes are drawn from `-coeff_max..=coeff_max`.
    pub coeff_max: i64,
    /// Constant terms are drawn from `-const_max..=const_max`.
    pub const_max: i64,
    /// Lower edge of the bounding box baked into generated conjuncts.
    pub box_lo: i64,
    /// Upper edge of the bounding box baked into generated conjuncts.
    pub box_hi: i64,
    /// The membership window extends the box by this much on each side, so
    /// off-by-one errors at the box edges are observable.
    pub window_pad: i64,
    /// Maximum number of symbolic parameters per case.
    pub max_params: usize,
    /// One-in-N chance of dropping one side of a box bound (probing the
    /// unbounded-set paths); `0` disables dropping. Laws that need the form
    /// to stay enumerable force full bounds regardless.
    pub drop_bound_in: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            max_dims: 3,
            max_conjuncts: 3,
            max_atoms: 3,
            coeff_max: 3,
            const_max: 6,
            box_lo: -2,
            box_hi: 6,
            window_pad: 2,
            max_params: 1,
            drop_bound_in: 10,
        }
    }
}

// ---------------------------------------------------------------------
// The miniature constraint language and its reference semantics
// ---------------------------------------------------------------------

/// One generated constraint over the tuple dimensions and parameters.
#[derive(Clone, Debug)]
enum GenAtom {
    /// `Σ c_d·x_d + Σ p_k·param_k + k  (= | >=)  0`.
    Cmp {
        eq: bool,
        coeffs: Vec<i64>,
        pcoeffs: Vec<i64>,
        k: i64,
    },
    /// `Σ c_d·x_d + Σ p_k·param_k + k ≡ 0 (mod m)`, `m >= 2`.
    Stride {
        coeffs: Vec<i64>,
        pcoeffs: Vec<i64>,
        k: i64,
        m: i64,
    },
}

impl GenAtom {
    fn value(&self, point: &[i64], params: &[(String, i64)]) -> i64 {
        let (coeffs, pcoeffs, k) = match self {
            GenAtom::Cmp {
                coeffs, pcoeffs, k, ..
            }
            | GenAtom::Stride {
                coeffs, pcoeffs, k, ..
            } => (coeffs, pcoeffs, k),
        };
        let mut acc = *k;
        for (c, x) in coeffs.iter().zip(point) {
            acc += c * x;
        }
        for (c, (_, v)) in pcoeffs.iter().zip(params) {
            acc += c * v;
        }
        acc
    }

    fn holds(&self, point: &[i64], params: &[(String, i64)]) -> bool {
        let v = self.value(point, params);
        match self {
            GenAtom::Cmp { eq: true, .. } => v == 0,
            GenAtom::Cmp { eq: false, .. } => v >= 0,
            GenAtom::Stride { m, .. } => v.rem_euclid(*m) == 0,
        }
    }
}

/// One generated disjunct: per-dimension box bounds plus extra atoms.
#[derive(Clone, Debug)]
struct GenConj {
    lo: Vec<Option<i64>>,
    hi: Vec<Option<i64>>,
    atoms: Vec<GenAtom>,
}

impl GenConj {
    fn eval(&self, point: &[i64], params: &[(String, i64)]) -> bool {
        for (d, x) in point.iter().enumerate() {
            if let Some(l) = self.lo[d] {
                if *x < l {
                    return false;
                }
            }
            if let Some(h) = self.hi[d] {
                if *x > h {
                    return false;
                }
            }
        }
        self.atoms.iter().all(|a| a.holds(point, params))
    }
}

/// A generated set or relation: the oracle's own AST, with an independent
/// reference evaluator ([`GenForm::eval`]) and a printable Omega-syntax
/// rendering ([`GenForm::source`]) that the library parses back.
#[derive(Clone, Debug)]
pub struct GenForm {
    n_in: u32,
    n_out: u32,
    params: Vec<(String, i64)>,
    conjs: Vec<GenConj>,
}

impl GenForm {
    /// Total tuple dimensions (input + output).
    pub fn dims(&self) -> usize {
        (self.n_in + self.n_out) as usize
    }

    /// Reference membership: pure `i64` arithmetic over the oracle AST —
    /// no Omega machinery involved.
    pub fn eval(&self, point: &[i64]) -> bool {
        debug_assert_eq!(point.len(), self.dims());
        self.conjs.iter().any(|c| c.eval(point, &self.params))
    }

    /// The parameter bindings this form was generated with.
    pub fn bindings(&self) -> Vec<(&str, i64)> {
        self.params.iter().map(|(n, v)| (n.as_str(), *v)).collect()
    }

    fn dim_name(&self, d: usize) -> String {
        if (d as u32) < self.n_in {
            format!("x{d}")
        } else {
            format!("y{}", d as u32 - self.n_in)
        }
    }

    /// Renders the form in Omega syntax, parseable by
    /// [`Context::parse_set`]/[`Context::parse_relation`].
    pub fn source(&self) -> String {
        let mut s = String::from("{[");
        for i in 0..self.n_in {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("x{i}"));
        }
        s.push(']');
        if self.n_out > 0 {
            s.push_str(" -> [");
            for j in 0..self.n_out {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("y{j}"));
            }
            s.push(']');
        }
        s.push_str(" : ");
        let mut first_conj = true;
        for c in &self.conjs {
            if !first_conj {
                s.push_str(" || ");
            }
            first_conj = false;
            s.push_str(&self.render_conj(c));
        }
        if self.conjs.is_empty() {
            s.push_str("0 = 1");
        }
        s.push('}');
        s
    }

    fn render_conj(&self, c: &GenConj) -> String {
        let mut parts: Vec<String> = Vec::new();
        for d in 0..self.dims() {
            let name = self.dim_name(d);
            match (c.lo[d], c.hi[d]) {
                (Some(l), Some(h)) => parts.push(format!("{l} <= {name} <= {h}")),
                (Some(l), None) => parts.push(format!("{name} >= {l}")),
                (None, Some(h)) => parts.push(format!("{name} <= {h}")),
                (None, None) => {}
            }
        }
        let mut witness = 0usize;
        for a in &c.atoms {
            match a {
                GenAtom::Cmp {
                    eq,
                    coeffs,
                    pcoeffs,
                    k,
                } => {
                    let expr = self.render_expr(coeffs, pcoeffs, *k);
                    parts.push(format!("{expr} {} 0", if *eq { "=" } else { ">=" }));
                }
                GenAtom::Stride {
                    coeffs,
                    pcoeffs,
                    k,
                    m,
                } => {
                    let expr = self.render_expr(coeffs, pcoeffs, *k);
                    parts.push(format!("exists(s{witness} : {expr} = {m}s{witness})"));
                    witness += 1;
                }
            }
        }
        if parts.is_empty() {
            parts.push("0 <= 0".to_string());
        }
        parts.join(" && ")
    }

    fn render_expr(&self, coeffs: &[i64], pcoeffs: &[i64], k: i64) -> String {
        let mut s = String::new();
        let push_term = |s: &mut String, c: i64, name: &str| {
            if c == 0 {
                return;
            }
            if s.is_empty() {
                if c == 1 {
                    s.push_str(name);
                } else if c == -1 {
                    s.push_str(&format!("-{name}"));
                } else {
                    s.push_str(&format!("{c}{name}"));
                }
            } else if c > 0 {
                if c == 1 {
                    s.push_str(&format!(" + {name}"));
                } else {
                    s.push_str(&format!(" + {c}{name}"));
                }
            } else if c == -1 {
                s.push_str(&format!(" - {name}"));
            } else {
                s.push_str(&format!(" - {}{name}", -c));
            }
        };
        for (d, &c) in coeffs.iter().enumerate() {
            let name = self.dim_name(d);
            push_term(&mut s, c, &name);
        }
        for (&c, (name, _)) in pcoeffs.iter().zip(&self.params) {
            push_term(&mut s, c, name);
        }
        if s.is_empty() {
            s.push_str(&k.to_string());
        } else if k > 0 {
            s.push_str(&format!(" + {k}"));
        } else if k < 0 {
            s.push_str(&format!(" - {}", -k));
        }
        s
    }

    /// Parses the rendered source as a [`Set`] (requires `n_out == 0`).
    pub fn to_set(&self) -> Result<Set, String> {
        debug_assert_eq!(self.n_out, 0);
        self.source().parse::<Set>().map_err(|e| {
            format!(
                "oracle-generated set failed to parse: {e}: {}",
                self.source()
            )
        })
    }

    /// Parses the rendered source as a [`Relation`].
    pub fn to_relation(&self) -> Result<Relation, String> {
        self.source().parse::<Relation>().map_err(|e| {
            format!(
                "oracle-generated relation failed to parse: {e}: {}",
                self.source()
            )
        })
    }
}

// ---------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------

fn gen_coeff(rng: &mut Rng, cfg: &OracleConfig) -> i64 {
    // Bias toward small magnitudes: 0 and ±1 dominate real constraint
    // systems; larger coefficients exercise the dark-shadow paths.
    match rng.index(6) {
        0 | 1 => 0,
        2 => 1,
        3 => -1,
        _ => rng.range(-cfg.coeff_max, cfg.coeff_max),
    }
}

fn gen_atom(rng: &mut Rng, cfg: &OracleConfig, dims: usize, n_params: usize) -> GenAtom {
    loop {
        let coeffs: Vec<i64> = (0..dims).map(|_| gen_coeff(rng, cfg)).collect();
        let pcoeffs: Vec<i64> = (0..n_params).map(|_| gen_coeff(rng, cfg)).collect();
        if coeffs.iter().all(|&c| c == 0) {
            continue; // a pure parameter/constant constraint is uninteresting
        }
        let k = rng.range(-cfg.const_max, cfg.const_max);
        return if rng.chance(1, 4) {
            GenAtom::Stride {
                coeffs,
                pcoeffs,
                k,
                m: rng.range(2, 4),
            }
        } else {
            GenAtom::Cmp {
                eq: rng.chance(1, 4),
                coeffs,
                pcoeffs,
                k,
            }
        };
    }
}

fn gen_conj(
    rng: &mut Rng,
    cfg: &OracleConfig,
    dims: usize,
    n_params: usize,
    force_bounds: bool,
) -> GenConj {
    let mut lo = Vec::with_capacity(dims);
    let mut hi = Vec::with_capacity(dims);
    for _ in 0..dims {
        let l = rng.range(cfg.box_lo, cfg.box_lo + 2);
        let h = rng.range(cfg.box_hi - 2, cfg.box_hi);
        let drop_l = !force_bounds && cfg.drop_bound_in > 0 && rng.chance(1, cfg.drop_bound_in);
        let drop_h = !force_bounds && cfg.drop_bound_in > 0 && rng.chance(1, cfg.drop_bound_in);
        lo.push(if drop_l { None } else { Some(l) });
        hi.push(if drop_h { None } else { Some(h) });
    }
    let n_atoms = rng.index(cfg.max_atoms + 1);
    let atoms = (0..n_atoms)
        .map(|_| gen_atom(rng, cfg, dims, n_params))
        .collect();
    GenConj { lo, hi, atoms }
}

/// Shared parameter list for one case: names plus concrete test bindings.
fn gen_params(rng: &mut Rng, cfg: &OracleConfig) -> Vec<(String, i64)> {
    let names = ["N", "K"];
    let n = rng.index(cfg.max_params + 1);
    (0..n)
        .map(|i| (names[i % names.len()].to_string(), rng.range(-3, 6)))
        .collect()
}

fn gen_form(
    rng: &mut Rng,
    cfg: &OracleConfig,
    n_in: u32,
    n_out: u32,
    params: &[(String, i64)],
    force_bounds: bool,
) -> GenForm {
    let dims = (n_in + n_out) as usize;
    let n_conjs = 1 + rng.index(cfg.max_conjuncts);
    let conjs = (0..n_conjs)
        .map(|_| gen_conj(rng, cfg, dims, params.len(), force_bounds))
        .collect();
    GenForm {
        n_in,
        n_out,
        params: params.to_vec(),
        conjs,
    }
}

/// Generates a random bounded set of the given arity (public so the bench
/// binary and external harnesses can build custom campaigns).
pub fn gen_set(rng: &mut Rng, cfg: &OracleConfig, arity: u32) -> GenForm {
    let params = gen_params(rng, cfg);
    gen_form(rng, cfg, arity, 0, &params, false)
}

/// Generates a random bounded relation of the given arities.
pub fn gen_relation(rng: &mut Rng, cfg: &OracleConfig, n_in: u32, n_out: u32) -> GenForm {
    let params = gen_params(rng, cfg);
    gen_form(rng, cfg, n_in, n_out, &params, false)
}

/// Picks a (weighted) random arity: small tuples dominate, as in real
/// loop nests, and keep the membership window affordable.
fn gen_arity(rng: &mut Rng, cfg: &OracleConfig) -> u32 {
    let max = cfg.max_dims.max(1);
    match rng.index(10) {
        0..=3 => 1,
        4..=7 => 2.min(max),
        _ => 3.min(max),
    }
}

// ---------------------------------------------------------------------
// Cases, laws, verdicts
// ---------------------------------------------------------------------

/// The algebraic laws the oracle checks, by name.
pub const LAWS: &[&str] = &[
    "enumerate-ref",
    "union",
    "intersect",
    "subtract",
    "negate",
    "project",
    "gist",
    "convex-1d",
    "singleton-1d",
    "rel-inverse",
    "rel-compose",
    "rel-apply",
    "cached-equiv",
    "simplify-preserves",
    "dim-bounds",
    "display-roundtrip",
    "normalize-idempotent",
    "canonical-agree",
];

/// One generated test case: a law plus the generated inputs it ran on.
#[derive(Clone, Debug)]
pub struct Case {
    /// The law name (one of [`LAWS`]).
    pub law: &'static str,
    /// The generated inputs, in law-specific order.
    pub inputs: Vec<GenForm>,
}

/// Outcome of checking one case.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The law held on this case.
    Pass,
    /// The case hit a documented exactness limit (e.g. inexact negation)
    /// and the law does not apply; the payload names the reason.
    Skip(&'static str),
    /// The law was violated; the payload describes the first discrepancy.
    Fail(String),
}

/// A minimized failing case, printable and replayable.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The violated law.
    pub law: &'static str,
    /// The per-case generator seed (replay with [`run_seed`]).
    pub seed: u64,
    /// Minimized inputs as `parse_set`/`parse_relation` strings.
    pub inputs: Vec<String>,
    /// Parameter bindings the failure was observed under.
    pub bindings: Vec<(String, i64)>,
    /// Description of the discrepancy.
    pub detail: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "law `{}` violated (case seed {}):", self.law, self.seed)?;
        for (i, s) in self.inputs.iter().enumerate() {
            writeln!(f, "  input[{i}]: {s}")?;
        }
        if !self.bindings.is_empty() {
            let b: Vec<String> = self
                .bindings
                .iter()
                .map(|(n, v)| format!("{n} = {v}"))
                .collect();
            writeln!(f, "  bindings: {}", b.join(", "))?;
        }
        write!(f, "  {}", self.detail)
    }
}

/// Generates a random case (law + inputs) from the rng stream.
pub fn gen_case(rng: &mut Rng, cfg: &OracleConfig) -> Case {
    let law = LAWS[rng.index(LAWS.len())];
    // Subtraction negates every conjunct of the subtrahend and distributes
    // the cross product, so its cost is exponential in conjunct/atom counts.
    // Composition/application eliminate the shared middle dimension, and
    // mixed stride moduli there trigger recursive splinter blowup. Keep all
    // of these laws on deliberately small forms.
    let small = OracleConfig {
        max_dims: cfg.max_dims.min(2),
        max_conjuncts: cfg.max_conjuncts.min(2),
        max_atoms: cfg.max_atoms.min(2),
        ..cfg.clone()
    };
    let cfg = if matches!(
        law,
        "subtract" | "cached-equiv" | "rel-compose" | "rel-apply"
    ) {
        &small
    } else {
        cfg
    };
    let params = gen_params(rng, cfg);
    let inputs = match law {
        "union" | "intersect" | "subtract" | "gist" | "cached-equiv" => {
            let arity = gen_arity(rng, cfg);
            vec![
                gen_form(rng, cfg, arity, 0, &params, false),
                gen_form(rng, cfg, arity, 0, &params, false),
            ]
        }
        "project" => {
            let arity = 2 + rng.index((cfg.max_dims.max(2) - 1) as usize) as u32;
            vec![gen_form(
                rng,
                cfg,
                arity.min(cfg.max_dims),
                0,
                &params,
                true,
            )]
        }
        "convex-1d" | "singleton-1d" => {
            vec![gen_form(rng, cfg, 1, 0, &[], true)]
        }
        "rel-inverse" => {
            vec![gen_form(rng, cfg, 1, 1, &params, false)]
        }
        "rel-compose" => {
            vec![
                gen_form(rng, cfg, 1, 1, &params, true),
                gen_form(rng, cfg, 1, 1, &params, true),
            ]
        }
        "rel-apply" => {
            vec![
                gen_form(rng, cfg, 1, 1, &params, true),
                gen_form(rng, cfg, 1, 0, &params, true),
            ]
        }
        _ => {
            let arity = gen_arity(rng, cfg);
            vec![gen_form(rng, cfg, arity, 0, &params, false)]
        }
    };
    Case { law, inputs }
}

/// All integer points of `[wlo, whi]^dims`, in lexicographic order.
fn window_points(wlo: i64, whi: i64, dims: usize) -> Vec<Vec<i64>> {
    let mut out = vec![Vec::new()];
    for _ in 0..dims {
        let mut next = Vec::with_capacity(out.len() * (whi - wlo + 1) as usize);
        for p in &out {
            for x in wlo..=whi {
                let mut q = p.clone();
                q.push(x);
                next.push(q);
            }
        }
        out = next;
    }
    out
}

fn window(cfg: &OracleConfig) -> (i64, i64) {
    (cfg.box_lo - cfg.window_pad, cfg.box_hi + cfg.window_pad)
}

/// Membership of a single conjunct, evaluated through a one-conjunct
/// relation that shares `rel`'s parameter table.
fn conjunct_member(rel: &Relation, c: &Conjunct, point: &[i64], params: &[(&str, i64)]) -> bool {
    let mut r = Relation::empty(rel.n_in(), rel.n_out());
    for p in rel.params() {
        r.ensure_param(p);
    }
    r.add_conjunct(c.clone());
    let (inp, outp) = point.split_at(rel.n_in() as usize);
    r.contains_pair(inp, outp, params)
}

/// Symbolic set equality through the fallible subtraction path.
fn try_equal_sets(a: &Set, b: &Set) -> Result<bool, OmegaError> {
    Ok(a.try_subtract(b)?.is_empty() && b.try_subtract(a)?.is_empty())
}

/// Checks one case against the reference semantics.
///
/// This is deliberately a big dispatch on the law name so regression tests
/// and the shrinker can re-run exactly the same decision procedure.
pub fn check(case: &Case, cfg: &OracleConfig) -> Verdict {
    // A panic inside the decision procedure (or the operations under test)
    // is a violation like any other: catch it, turn it into a `Fail`, and
    // let the shrinker minimize the case exactly as it would a wrong
    // answer. Without this, one panicking seed aborts a whole campaign
    // with no minimized reproducer.
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check_inner(case, cfg)));
    match r {
        Ok(Ok(v)) => v,
        Ok(Err(msg)) => Verdict::Fail(msg),
        Err(payload) => Verdict::Fail(format!("panicked: {}", panic_message(&payload))),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn check_inner(case: &Case, cfg: &OracleConfig) -> Result<Verdict, String> {
    let (wlo, whi) = window(cfg);
    let inputs = &case.inputs;
    match case.law {
        "enumerate-ref" => {
            let a = &inputs[0];
            let sa = a.to_set()?;
            let binds = a.bindings();
            match sa.enumerate(&binds) {
                Err(OmegaError::Unbounded) => Ok(Verdict::Skip("unbounded")),
                Err(e) => Err(format!("enumerate failed: {e}")),
                Ok(pts) => {
                    let have: std::collections::BTreeSet<Vec<i64>> = pts.iter().cloned().collect();
                    for p in &pts {
                        if !a.eval(p) {
                            return Err(format!(
                                "enumerate produced non-member {p:?} of {}",
                                a.source()
                            ));
                        }
                    }
                    for w in window_points(wlo, whi, a.dims()) {
                        if a.eval(&w) && !have.contains(&w) {
                            return Err(format!("enumerate missed member {w:?} of {}", a.source()));
                        }
                    }
                    Ok(Verdict::Pass)
                }
            }
        }
        "union" | "intersect" => {
            let (a, b) = (&inputs[0], &inputs[1]);
            let (sa, sb) = (a.to_set()?, b.to_set()?);
            let binds = a.bindings();
            let r = if case.law == "union" {
                sa.union(&sb)
            } else {
                sa.intersection(&sb)
            };
            for w in window_points(wlo, whi, a.dims()) {
                let expect = if case.law == "union" {
                    a.eval(&w) || b.eval(&w)
                } else {
                    a.eval(&w) && b.eval(&w)
                };
                let got = r.contains(&w, &binds);
                if got != expect {
                    return Err(format!(
                        "{}: at {w:?} expected {expect}, got {got}",
                        case.law
                    ));
                }
            }
            Ok(Verdict::Pass)
        }
        "subtract" => {
            let (a, b) = (&inputs[0], &inputs[1]);
            let (sa, sb) = (a.to_set()?, b.to_set()?);
            let binds = a.bindings();
            let d = match sa.try_subtract(&sb) {
                Err(OmegaError::InexactNegation) => return Ok(Verdict::Skip("inexact negation")),
                Err(e) => return Err(format!("subtract failed: {e}")),
                Ok(d) => d,
            };
            for w in window_points(wlo, whi, a.dims()) {
                let expect = a.eval(&w) && !b.eval(&w);
                let got = d.contains(&w, &binds);
                if got != expect {
                    return Err(format!("subtract: at {w:?} expected {expect}, got {got}"));
                }
            }
            // Consistency: (A - B) ∪ (A ∩ B) == A. The symbolic equality
            // itself subtracts, so only attempt it when the operands are
            // small enough that the conjunct cross product stays tractable.
            let rebuilt = d.union(&sa.intersection(&sb));
            if rebuilt.as_relation().conjuncts().len() > 8 || sa.as_relation().conjuncts().len() > 8
            {
                return Ok(Verdict::Pass);
            }
            match try_equal_sets(&rebuilt, &sa) {
                Err(OmegaError::InexactNegation) => Ok(Verdict::Skip("inexact negation")),
                Err(e) => Err(format!("equality test failed: {e}")),
                Ok(true) => Ok(Verdict::Pass),
                Ok(false) => Err("(A - B) ∪ (A ∩ B) != A".to_string()),
            }
        }
        "negate" => {
            let a = &inputs[0];
            let sa = a.to_set()?;
            let rel = sa.as_relation();
            let binds = a.bindings();
            for c in rel.conjuncts() {
                let negs = match negate_conjunct_in(c, None) {
                    Err(OmegaError::InexactNegation) => {
                        return Ok(Verdict::Skip("inexact negation"))
                    }
                    Err(e) => return Err(format!("negate failed: {e}")),
                    Ok(n) => n,
                };
                for w in window_points(wlo, whi, a.dims()) {
                    let inside = conjunct_member(rel, c, &w, &binds);
                    let in_neg = negs.iter().any(|n| conjunct_member(rel, n, &w, &binds));
                    if inside == in_neg {
                        return Err(format!(
                            "negate: point {w:?} is in {} of conjunct and complement",
                            if inside { "both" } else { "neither" }
                        ));
                    }
                }
            }
            Ok(Verdict::Pass)
        }
        "project" => {
            let a = &inputs[0];
            let sa = a.to_set()?;
            let binds = a.bindings();
            // Deterministic interesting choice: keep all dims but the last,
            // in reverse order (exercises both elimination and reordering).
            let dims: Vec<u32> = (0..a.dims() as u32 - 1).rev().collect();
            let proj = sa.project_onto(&dims);
            let full = window_points(wlo, whi, a.dims());
            for w in window_points(wlo, whi, dims.len()) {
                let expect = full.iter().any(|f| {
                    a.eval(f) && dims.iter().enumerate().all(|(i, &d)| f[d as usize] == w[i])
                });
                let got = proj.contains(&w, &binds);
                if got != expect {
                    return Err(format!(
                        "project onto {dims:?}: at {w:?} expected {expect}, got {got}"
                    ));
                }
            }
            Ok(Verdict::Pass)
        }
        "gist" => {
            let (s, c) = (&inputs[0], &inputs[1]);
            let (ss, sc) = (s.to_set()?, c.to_set()?);
            let binds = s.bindings();
            let g = ss.as_relation().gist(sc.as_relation());
            for w in window_points(wlo, whi, s.dims()) {
                if !c.eval(&w) {
                    continue; // gist is only constrained within the context
                }
                let expect = s.eval(&w);
                let got = g.contains_pair(&w, &[], &binds);
                if got != expect {
                    return Err(format!(
                        "gist: inside context at {w:?} expected {expect}, got {got}"
                    ));
                }
            }
            Ok(Verdict::Pass)
        }
        "convex-1d" => {
            let a = &inputs[0];
            let sa = a.to_set()?;
            let claim = match sa.try_is_convex_1d() {
                Err(OmegaError::InexactNegation) => return Ok(Verdict::Skip("inexact negation")),
                Err(e) => return Err(format!("try_is_convex_1d failed: {e}")),
                Ok(v) => v,
            };
            let members: Vec<i64> = (wlo..=whi).filter(|&x| a.eval(&[x])).collect();
            let has_hole = members.windows(2).any(|p| p[1] - p[0] > 1);
            // Parameter-free and fully boxed: the test is exact.
            if claim == has_hole {
                return Err(format!(
                    "convex-1d: is_convex_1d = {claim} but members {members:?}"
                ));
            }
            Ok(Verdict::Pass)
        }
        "singleton-1d" => {
            let a = &inputs[0];
            let sa = a.to_set()?;
            let claim = sa.try_is_singleton_1d().map_err(|e| e.to_string())?;
            let count = (wlo..=whi).filter(|&x| a.eval(&[x])).count();
            if claim != (count <= 1) {
                return Err(format!(
                    "singleton-1d: is_singleton_1d = {claim} but member count = {count}"
                ));
            }
            Ok(Verdict::Pass)
        }
        "rel-inverse" => {
            let r = &inputs[0];
            let rr = r.to_relation()?;
            let inv = rr.inverse();
            let binds = r.bindings();
            for w in window_points(wlo, whi, r.dims()) {
                let (i, o) = w.split_at(r.n_in as usize);
                let expect = r.eval(&w);
                let got = inv.contains_pair(o, i, &binds);
                if got != expect {
                    return Err(format!(
                        "rel-inverse: at {i:?}->{o:?} expected {expect}, got {got}"
                    ));
                }
            }
            Ok(Verdict::Pass)
        }
        "rel-compose" => {
            let (r, s) = (&inputs[0], &inputs[1]);
            let (rr, rs) = (r.to_relation()?, s.to_relation()?);
            let t = rr.then(&rs);
            let binds = r.bindings();
            for i in wlo..=whi {
                for k in wlo..=whi {
                    let expect = (wlo..=whi).any(|j| r.eval(&[i, j]) && s.eval(&[j, k]));
                    let got = t.contains_pair(&[i], &[k], &binds);
                    if got != expect {
                        return Err(format!(
                            "rel-compose: at [{i}]->[{k}] expected {expect}, got {got}"
                        ));
                    }
                }
            }
            Ok(Verdict::Pass)
        }
        "rel-apply" => {
            let (r, x) = (&inputs[0], &inputs[1]);
            let rr = r.to_relation()?;
            let sx = x.to_set()?;
            let binds = r.bindings();
            let img = rr.apply(&sx);
            for j in wlo..=whi {
                let expect = (wlo..=whi).any(|i| x.eval(&[i]) && r.eval(&[i, j]));
                let got = img.contains(&[j], &binds);
                if got != expect {
                    return Err(format!(
                        "rel-apply: image at [{j}] expected {expect}, got {got}"
                    ));
                }
            }
            let dom = rr.domain();
            let rng_set = rr.range();
            for i in wlo..=whi {
                let expect_d = (wlo..=whi).any(|j| r.eval(&[i, j]));
                if dom.contains(&[i], &binds) != expect_d {
                    return Err(format!("rel-apply: domain at [{i}] expected {expect_d}"));
                }
                let expect_r = (wlo..=whi).any(|j| r.eval(&[j, i]));
                if rng_set.contains(&[i], &binds) != expect_r {
                    return Err(format!("rel-apply: range at [{i}] expected {expect_r}"));
                }
            }
            Ok(Verdict::Pass)
        }
        "cached-equiv" => {
            let (a, b) = (&inputs[0], &inputs[1]);
            let binds = a.bindings();
            // Symmetric difference, computed without any context and with a
            // shared memoizing context; the two must agree exactly.
            let plain = {
                let (sa, sb) = (a.to_set()?, b.to_set()?);
                match symmetric_difference(&sa, &sb) {
                    Err(OmegaError::InexactNegation) => {
                        return Ok(Verdict::Skip("inexact negation"))
                    }
                    Err(e) => return Err(format!("symmetric difference failed: {e}")),
                    Ok(d) => d,
                }
            };
            let cached = {
                let ctx = Context::new();
                let sa = ctx.parse_set(&a.source()).map_err(|e| e.to_string())?;
                let sb = ctx.parse_set(&b.source()).map_err(|e| e.to_string())?;
                match symmetric_difference(&sa, &sb) {
                    Err(OmegaError::InexactNegation) => {
                        return Ok(Verdict::Skip("inexact negation"))
                    }
                    Err(e) => return Err(format!("cached symmetric difference failed: {e}")),
                    Ok(d) => d,
                }
            };
            for w in window_points(wlo, whi, a.dims()) {
                let expect = a.eval(&w) != b.eval(&w);
                let p = plain.contains(&w, &binds);
                let c = cached.contains(&w, &binds);
                if p != expect || c != expect {
                    return Err(format!(
                        "cached-equiv: at {w:?} expected {expect}, plain {p}, cached {c}"
                    ));
                }
            }
            Ok(Verdict::Pass)
        }
        "simplify-preserves" => {
            let a = &inputs[0];
            let sa = a.to_set()?;
            let binds = a.bindings();
            let mut sb = sa.clone();
            sb.simplify_deep();
            for w in window_points(wlo, whi, a.dims()) {
                let expect = a.eval(&w);
                let got = sb.contains(&w, &binds);
                if got != expect {
                    return Err(format!(
                        "simplify-preserves: at {w:?} expected {expect}, got {got}"
                    ));
                }
            }
            Ok(Verdict::Pass)
        }
        "dim-bounds" => {
            let a = &inputs[0];
            let sa = a.to_set()?;
            let binds = a.bindings();
            for d in 0..a.dims() {
                let (lo, hi) = sa.dim_bounds(d as u32, &binds);
                for w in window_points(wlo, whi, a.dims()) {
                    if !a.eval(&w) {
                        continue;
                    }
                    if let Some(l) = lo {
                        if w[d] < l {
                            return Err(format!(
                                "dim-bounds: dim {d} reported lo {l} but member {w:?} is below"
                            ));
                        }
                    }
                    if let Some(h) = hi {
                        if w[d] > h {
                            return Err(format!(
                                "dim-bounds: dim {d} reported hi {h} but member {w:?} is above"
                            ));
                        }
                    }
                }
            }
            Ok(Verdict::Pass)
        }
        "display-roundtrip" => {
            let a = &inputs[0];
            let sa = a.to_set()?;
            let binds = a.bindings();
            let printed = sa.to_string();
            let back: Set = printed
                .parse()
                .map_err(|e| format!("display output failed to re-parse: {e}: {printed}"))?;
            for w in window_points(wlo, whi, a.dims()) {
                let expect = sa.contains(&w, &binds);
                let got = back.contains(&w, &binds);
                if got != expect {
                    return Err(format!(
                        "display-roundtrip: at {w:?} original {expect}, reparsed {got}: {printed}"
                    ));
                }
            }
            Ok(Verdict::Pass)
        }
        "normalize-idempotent" => {
            let a = &inputs[0];
            let sa = a.to_set()?;
            for c in sa.as_relation().conjuncts() {
                let mut once = c.clone();
                once.normalize();
                // Rebuild from the normalized constraints so the once-flag
                // is clear and `normalize` actually re-derives.
                let mut twice = Conjunct::new();
                for e in once.eqs() {
                    twice.add_eq(e.clone());
                }
                for e in once.geqs() {
                    twice.add_geq(e.clone());
                }
                twice.normalize();
                if twice != once {
                    return Err(format!(
                        "normalize is not idempotent: {once:?} re-normalized to {twice:?}"
                    ));
                }
            }
            Ok(Verdict::Pass)
        }
        "canonical-agree" => {
            let a = &inputs[0];
            let sa = a.to_set()?;
            let ctx = Context::new();
            for c in sa.as_relation().conjuncts() {
                let canon = c.canonical();
                let mut n = c.clone();
                n.normalize();
                if n != canon {
                    return Err(format!("canonical() disagrees with normalize() on {c:?}"));
                }
                if canon.canonical() != canon {
                    return Err(format!("canonical form is not a fixed point: {canon:?}"));
                }
                // A deliberately messy respelling — scaled constraints in
                // reversed order plus one duplicate — must reach the same
                // canonical form and the same interned identity.
                let mut messy = Conjunct::new();
                for e in c.geqs().iter().rev() {
                    messy.add_geq(e.scaled(2));
                }
                for e in c.eqs().iter().rev() {
                    messy.add_eq(e.scaled(3));
                }
                if let Some(e) = c.geqs().first() {
                    messy.add_geq(e.clone());
                }
                if messy.canonical() != canon {
                    return Err(format!(
                        "respelled conjunct canonicalized differently: {messy:?} vs {canon:?}"
                    ));
                }
                if ctx.intern_conjunct(&messy) != ctx.intern_conjunct(c) {
                    return Err(format!("respelling interned to a distinct id: {c:?}"));
                }
            }
            Ok(Verdict::Pass)
        }
        other => Err(format!("unknown law `{other}`")),
    }
}

/// `(A - B) ∪ (B - A)` through the fallible subtraction path.
fn symmetric_difference(a: &Set, b: &Set) -> Result<Set, OmegaError> {
    Ok(a.try_subtract(b)?.union(&b.try_subtract(a)?))
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// Greedy counterexample minimization: repeatedly applies the first
/// structural simplification (drop a conjunct, drop an atom, zero or halve
/// a coefficient, drop a parameter, narrow a box bound) that keeps the law
/// failing, until none helps.
pub fn shrink(case: &Case, cfg: &OracleConfig) -> Case {
    let mut cur = case.clone();
    let mut budget = 2000usize;
    loop {
        let mut improved = false;
        for cand in candidates(&cur) {
            if budget == 0 {
                return cur;
            }
            budget -= 1;
            if matches!(check(&cand, cfg), Verdict::Fail(_)) {
                cur = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return cur;
        }
    }
}

fn candidates(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    for (fi, form) in case.inputs.iter().enumerate() {
        let mut push = |f: GenForm| {
            let mut c = case.clone();
            c.inputs[fi] = f;
            out.push(c);
        };
        // Drop a conjunct.
        if form.conjs.len() > 1 {
            for ci in 0..form.conjs.len() {
                let mut f = form.clone();
                f.conjs.remove(ci);
                push(f);
            }
        }
        for (ci, conj) in form.conjs.iter().enumerate() {
            // Drop an atom.
            for ai in 0..conj.atoms.len() {
                let mut f = form.clone();
                f.conjs[ci].atoms.remove(ai);
                push(f);
            }
            // Shrink coefficients and constants toward zero.
            for (ai, atom) in conj.atoms.iter().enumerate() {
                let (coeffs, pcoeffs, k) = match atom {
                    GenAtom::Cmp {
                        coeffs, pcoeffs, k, ..
                    }
                    | GenAtom::Stride {
                        coeffs, pcoeffs, k, ..
                    } => (coeffs, pcoeffs, *k),
                };
                for (d, &c) in coeffs.iter().enumerate() {
                    if c != 0 {
                        for nv in [0, c / 2] {
                            if nv == c {
                                continue;
                            }
                            let mut f = form.clone();
                            match &mut f.conjs[ci].atoms[ai] {
                                GenAtom::Cmp { coeffs, .. } | GenAtom::Stride { coeffs, .. } => {
                                    coeffs[d] = nv;
                                }
                            }
                            push(f);
                        }
                    }
                }
                for (d, &c) in pcoeffs.iter().enumerate() {
                    if c != 0 {
                        let mut f = form.clone();
                        match &mut f.conjs[ci].atoms[ai] {
                            GenAtom::Cmp { pcoeffs, .. } | GenAtom::Stride { pcoeffs, .. } => {
                                pcoeffs[d] = 0;
                            }
                        }
                        push(f);
                    }
                }
                if k != 0 {
                    for nv in [0, k / 2] {
                        if nv == k {
                            continue;
                        }
                        let mut f = form.clone();
                        match &mut f.conjs[ci].atoms[ai] {
                            GenAtom::Cmp { k, .. } | GenAtom::Stride { k, .. } => *k = nv,
                        }
                        push(f);
                    }
                }
            }
            // Narrow box bounds.
            for d in 0..form.dims() {
                if let (Some(l), Some(h)) = (conj.lo[d], conj.hi[d]) {
                    if l < h {
                        let mut f = form.clone();
                        f.conjs[ci].lo[d] = Some(l + 1);
                        push(f);
                        let mut f = form.clone();
                        f.conjs[ci].hi[d] = Some(h - 1);
                        push(f);
                    }
                }
            }
        }
        // Drop a parameter (and its coefficient column everywhere).
        for pi in 0..form.params.len() {
            let mut f = form.clone();
            f.params.remove(pi);
            for conj in &mut f.conjs {
                for atom in &mut conj.atoms {
                    match atom {
                        GenAtom::Cmp { pcoeffs, .. } | GenAtom::Stride { pcoeffs, .. } => {
                            if pi < pcoeffs.len() {
                                pcoeffs.remove(pi);
                            }
                        }
                    }
                }
            }
            push(f);
        }
    }
    out
}

// ---------------------------------------------------------------------
// The fuzz driver
// ---------------------------------------------------------------------

/// Per-law tallies of a fuzz run.
#[derive(Clone, Copy, Debug, Default)]
pub struct LawTally {
    /// Cases generated for this law.
    pub runs: u64,
    /// Cases skipped at a documented exactness limit.
    pub skips: u64,
    /// Cases that violated the law.
    pub fails: u64,
}

/// Summary of a [`fuzz`] campaign.
#[derive(Clone, Debug, Default)]
pub struct FuzzOutcome {
    /// Iterations actually executed (may be under the request when the
    /// time budget or failure cap is hit).
    pub iterations: u64,
    /// Total skipped cases.
    pub skips: u64,
    /// Minimized failures, in discovery order.
    pub failures: Vec<Counterexample>,
    /// Per-law tallies.
    pub per_law: BTreeMap<&'static str, LawTally>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl FuzzOutcome {
    /// True if no law was violated.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

fn stop_early(t0: Instant, budget: Option<Duration>) -> bool {
    budget.is_some_and(|b| t0.elapsed() >= b)
}

/// Runs the case derived from one per-case seed, returning its law and
/// verdict (the replay entry point: a failure report's seed goes here).
pub fn run_seed(case_seed: u64, cfg: &OracleConfig) -> (Case, Verdict) {
    let mut rng = Rng::new(case_seed);
    let case = gen_case(&mut rng, cfg);
    let verdict = check(&case, cfg);
    (case, verdict)
}

/// Runs a fuzz campaign: `iters` random cases from the master `seed`,
/// stopping early when `time_budget` elapses or `max_failures` minimized
/// counterexamples have been collected.
pub fn fuzz(
    seed: u64,
    iters: u64,
    time_budget: Option<Duration>,
    cfg: &OracleConfig,
    max_failures: usize,
) -> FuzzOutcome {
    fuzz_threads(seed, iters, time_budget, cfg, max_failures, 1)
}

/// [`fuzz`] sharded over `threads` worker threads.
///
/// The per-case seeds are derived from the master `seed` up front, so the
/// case at index `i` is identical to the one the serial campaign would run
/// — each failure's replay seed stays valid. Verdicts are merged back in
/// seed order, so a full run (no budget/failure-cap early exit) reports
/// the same counterexamples as `threads = 1`. Under an early exit the
/// parallel run may have checked a few cases past the cutoff; those extra
/// verdicts are discarded during the in-order merge.
pub fn fuzz_threads(
    seed: u64,
    iters: u64,
    time_budget: Option<Duration>,
    cfg: &OracleConfig,
    max_failures: usize,
    threads: usize,
) -> FuzzOutcome {
    let t0 = Instant::now();
    let mut master = Rng::new(seed);
    let seeds: Vec<u64> = (0..iters).map(|_| master.next_u64()).collect();
    let verdicts = if threads <= 1 || seeds.len() <= 1 {
        seeds
            .iter()
            .map(|&s| {
                if stop_early(t0, time_budget) {
                    None
                } else {
                    Some(run_seed(s, cfg))
                }
            })
            .collect::<Vec<_>>()
    } else {
        use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
        use std::sync::Mutex;
        let next = AtomicUsize::new(0);
        let fails = AtomicU64::new(0);
        let slots: Vec<Mutex<Option<(Case, Verdict)>>> =
            seeds.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= seeds.len()
                        || stop_early(t0, time_budget)
                        || fails.load(Ordering::Relaxed) >= max_failures as u64
                    {
                        break;
                    }
                    let (case, verdict) = run_seed(seeds[i], cfg);
                    if matches!(verdict, Verdict::Fail(_)) {
                        fails.fetch_add(1, Ordering::Relaxed);
                    }
                    *slots[i].lock().expect("oracle slot") = Some((case, verdict));
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("oracle slot"))
            .collect()
    };

    let mut out = FuzzOutcome::default();
    for (case_seed, result) in seeds.into_iter().zip(verdicts) {
        let Some((case, verdict)) = result else { break };
        out.iterations += 1;
        let tally = out.per_law.entry(case.law).or_default();
        tally.runs += 1;
        match verdict {
            Verdict::Pass => {}
            Verdict::Skip(_) => {
                tally.skips += 1;
                out.skips += 1;
            }
            Verdict::Fail(_) => {
                tally.fails += 1;
                let small = shrink(&case, cfg);
                let detail = match check(&small, cfg) {
                    Verdict::Fail(d) => d,
                    // Shrinking is re-checked on acceptance, so this arm is
                    // unreachable; keep the original case if it ever fires.
                    _ => String::from("(shrunk case no longer fails; reporting unshrunk)"),
                };
                out.failures.push(Counterexample {
                    law: small.law,
                    seed: case_seed,
                    inputs: small.inputs.iter().map(GenForm::source).collect(),
                    bindings: small
                        .inputs
                        .first()
                        .map(|f| f.params.clone())
                        .unwrap_or_default(),
                    detail,
                });
                if out.failures.len() >= max_failures {
                    break;
                }
            }
        }
    }
    out.elapsed = t0.elapsed();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_sources_parse() {
        let cfg = OracleConfig::default();
        let mut rng = Rng::new(42);
        for _ in 0..50 {
            let arity = gen_arity(&mut rng, &cfg);
            let f = gen_set(&mut rng, &cfg, arity);
            f.to_set().expect("generated set parses");
            let r = gen_relation(&mut rng, &cfg, 1, 1);
            r.to_relation().expect("generated relation parses");
        }
    }

    #[test]
    fn reference_eval_matches_omega_on_simple_case() {
        let cfg = OracleConfig::default();
        let mut rng = Rng::new(7);
        let f = gen_set(&mut rng, &cfg, 1);
        let s = f.to_set().unwrap();
        let binds = f.bindings();
        for x in -6..=10i64 {
            assert_eq!(
                s.contains(&[x], &binds),
                f.eval(&[x]),
                "x = {x} of {}",
                f.source()
            );
        }
    }

    #[test]
    fn panicking_case_is_a_shrinkable_failure() {
        // Mismatched arities make the union law panic inside the library
        // ("union: arity mismatch"). check() must catch the unwind and
        // report a Fail like any other violation, and shrink() must be
        // able to re-check candidates without aborting the campaign.
        let form = |arity: u32| GenForm {
            n_in: arity,
            n_out: 0,
            params: vec![],
            conjs: vec![GenConj {
                lo: vec![Some(0); arity as usize],
                hi: vec![Some(3); arity as usize],
                atoms: vec![],
            }],
        };
        let case = Case {
            law: "union",
            inputs: vec![form(1), form(2)],
        };
        let cfg = OracleConfig::default();
        let v = check(&case, &cfg);
        match &v {
            Verdict::Fail(msg) => assert!(msg.contains("panicked"), "got: {msg}"),
            other => panic!("expected Fail, got {other:?}"),
        }
        let small = shrink(&case, &cfg);
        assert!(matches!(check(&small, &cfg), Verdict::Fail(_)));
    }

    #[test]
    fn smoke_fuzz_runs_clean() {
        // A tiny deterministic campaign; the full corpus runs in CI via the
        // oracle_fuzz binary.
        let cfg = OracleConfig::default();
        let out = fuzz(1, 60, None, &cfg, 3);
        assert_eq!(out.iterations, 60);
        for f in &out.failures {
            eprintln!("{f}");
        }
        assert!(out.ok(), "laws violated: {}", out.failures.len());
    }
}
