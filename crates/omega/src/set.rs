//! Sets of integer tuples — relations with no output tuple.

use crate::conjunct::Conjunct;
use crate::num::{ceil_div, floor_div};
use crate::relation::Relation;
use crate::var::Var;
use crate::OmegaError;

/// A symbolic set of integer `k`-tuples `{ [i..] : formula }`.
///
/// Thin, typed wrapper over a [`Relation`] with output arity zero; the set's
/// dimensions are the relation's input variables.
///
/// # Examples
///
/// ```
/// use dhpf_omega::Set;
/// let s: Set = "{[i, j] : 1 <= i <= N && 2 <= j <= i + 1}".parse()?;
/// assert!(s.contains(&[3, 4], &[("N", 10)]));
/// assert!(!s.contains(&[3, 5], &[("N", 10)]));
/// # Ok::<(), dhpf_omega::ParseError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Set {
    rel: Relation,
}

impl Set {
    /// The universe set of the given arity.
    pub fn universe(arity: u32) -> Self {
        Set {
            rel: Relation::universe(arity, 0),
        }
    }

    /// The empty set of the given arity.
    pub fn empty(arity: u32) -> Self {
        Set {
            rel: Relation::empty(arity, 0),
        }
    }

    /// Wraps a relation with no outputs as a set.
    ///
    /// # Panics
    ///
    /// Panics if `rel.n_out() != 0`.
    pub fn from_relation(rel: Relation) -> Self {
        assert_eq!(rel.n_out(), 0, "Set::from_relation: relation has outputs");
        Set { rel }
    }

    /// Attaches a shared [`Context`](crate::Context), returning the set.
    /// See [`Relation::with_context`].
    #[must_use]
    pub fn with_context(mut self, ctx: &crate::Context) -> Self {
        self.rel = self.rel.with_context(ctx);
        self
    }

    /// Attaches (or clears) the shared [`Context`](crate::Context) in place.
    pub fn set_context(&mut self, ctx: Option<&crate::Context>) {
        self.rel.set_context(ctx);
    }

    /// The shared [`Context`](crate::Context) attached to this set, if any.
    pub fn context(&self) -> Option<&crate::Context> {
        self.rel.context()
    }

    /// Views the set as a relation.
    pub fn as_relation(&self) -> &Relation {
        &self.rel
    }

    /// Unwraps into the underlying relation.
    pub fn into_relation(self) -> Relation {
        self.rel
    }

    /// Number of tuple dimensions.
    pub fn arity(&self) -> u32 {
        self.rel.n_in()
    }

    /// Set union.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    pub fn union(&self, other: &Set) -> Set {
        Set {
            rel: self.rel.union(&other.rel),
        }
    }

    /// Set intersection.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    pub fn intersection(&self, other: &Set) -> Set {
        Set {
            rel: self.rel.intersection(&other.rel),
        }
    }

    /// Set difference (exact).
    ///
    /// # Panics
    ///
    /// See [`Relation::subtract`].
    pub fn subtract(&self, other: &Set) -> Set {
        Set {
            rel: self.rel.subtract(&other.rel),
        }
    }

    /// Set difference, reporting inexact negation as an error.
    ///
    /// # Errors
    ///
    /// See [`Relation::try_subtract`].
    pub fn try_subtract(&self, other: &Set) -> Result<Set, OmegaError> {
        Ok(Set {
            rel: self.rel.try_subtract(&other.rel)?,
        })
    }

    /// True if the set has no members for any parameter values.
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    /// True if `self ⊆ other` for all parameter values.
    ///
    /// # Panics
    ///
    /// See [`Relation::is_subset_of`]; prefer [`Set::try_is_subset_of`].
    pub fn is_subset_of(&self, other: &Set) -> bool {
        self.rel.is_subset_of(&other.rel)
    }

    /// Fallible form of [`Set::is_subset_of`].
    ///
    /// # Errors
    ///
    /// See [`Relation::try_is_subset_of`].
    pub fn try_is_subset_of(&self, other: &Set) -> Result<bool, OmegaError> {
        self.rel.try_is_subset_of(&other.rel)
    }

    /// True if the sets are equal for all parameter values.
    ///
    /// # Panics
    ///
    /// See [`Relation::equal`]; prefer [`Set::try_equal`].
    pub fn equal(&self, other: &Set) -> bool {
        self.rel.equal(&other.rel)
    }

    /// Fallible form of [`Set::equal`].
    ///
    /// # Errors
    ///
    /// See [`Relation::try_equal`].
    pub fn try_equal(&self, other: &Set) -> Result<bool, OmegaError> {
        self.rel.try_equal(&other.rel)
    }

    /// Simplifies the representation in place (see [`Relation::simplify`]).
    pub fn simplify(&mut self) {
        self.rel.simplify();
    }

    /// Deep simplification (see [`Relation::simplify_deep`]).
    pub fn simplify_deep(&mut self) {
        self.rel.simplify_deep();
    }

    /// Exact membership test under parameter bindings.
    ///
    /// # Panics
    ///
    /// Panics if the tuple length differs from the arity or a needed
    /// parameter is unbound.
    pub fn contains(&self, point: &[i64], params: &[(&str, i64)]) -> bool {
        self.rel.contains_pair(point, &[], params)
    }

    /// Projects the set onto the given dimensions (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if a dimension index is out of range.
    pub fn project_onto(&self, dims: &[u32]) -> Set {
        let arity = self.arity();
        for &d in dims {
            assert!(d < arity, "project_onto: dim {d} out of range");
        }
        let mut rel = self.rel.clone();
        // Move the kept dims to Out positions, eliminate remaining Ins.
        let pos_of = |d: u32| dims.iter().position(|&x| x == d);
        let conjs: Vec<Conjunct> = rel
            .conjuncts()
            .iter()
            .map(|c| {
                c.rename(|v| match v {
                    Var::In(i) => match pos_of(i) {
                        Some(p) => Var::Out(p as u32),
                        None => Var::In(i),
                    },
                    v => v,
                })
            })
            .collect();
        *rel.conjuncts_mut() = conjs;
        let ctx = self.rel.context().cloned();
        let cx = ctx.as_ref();
        let tmp = Relation::universe(arity, dims.len() as u32);
        let (mut a, _) = Relation::unify_params(rel, tmp);
        for i in 0..arity {
            if pos_of(i).is_none() {
                let mut out = Vec::new();
                for c in a.conjuncts() {
                    out.extend(c.eliminate_exact_in(Var::In(i), cx));
                }
                *a.conjuncts_mut() = out;
            }
        }
        // Re-base: Out(p) -> In(p).
        let conjs: Vec<Conjunct> = a
            .conjuncts()
            .iter()
            .map(|c| {
                c.rename(|v| match v {
                    Var::Out(p) => Var::In(p),
                    v => v,
                })
            })
            .collect();
        let mut tmp = Relation::universe(dims.len() as u32, 0);
        if let Some(cx) = cx {
            tmp = tmp.with_context(cx);
        }
        for p in a.params() {
            tmp.ensure_param(p);
        }
        *tmp.conjuncts_mut() = conjs;
        tmp.simplify();
        Set { rel: tmp }
    }

    /// Constant bounds `[lo, hi]` of dimension `dim` after binding the given
    /// parameters, or `None` on the unbounded side(s).
    pub fn dim_bounds(&self, dim: u32, params: &[(&str, i64)]) -> (Option<i64>, Option<i64>) {
        let mut rel = self.rel.clone();
        for &(name, val) in params {
            rel = rel.specialize_param(name, val);
        }
        let proj = Set { rel }.project_onto(&[dim]);
        let mut lo: Option<i64> = None;
        let mut hi: Option<i64> = None;
        let mut any = false;
        // Stride-form first: congruence-only existentials keep inequalities
        // witness-free, so every bound is directly readable.
        let cx = proj.rel.context().cloned();
        let mut conjs = Vec::new();
        for c in proj.rel.conjuncts() {
            match crate::ops::to_stride_form_in(c.clone(), cx.as_ref()) {
                Ok(parts) => conjs.extend(parts),
                Err(_) => conjs.push(c.clone()),
            }
        }
        // An unbounded conjunct makes the whole union unbounded on that
        // side, permanently: the flags keep a later bounded conjunct from
        // resurrecting a finite bound (which would make `enumerate` silently
        // miss members of the unbounded disjunct).
        let mut lo_unbounded = false;
        let mut hi_unbounded = false;
        for c in &conjs {
            if !c.is_satisfiable_in(cx.as_ref()) {
                continue;
            }
            any = true;
            let (clo, chi) = conjunct_1d_bounds(c);
            match clo {
                None => lo_unbounded = true,
                Some(b) => lo = Some(lo.map_or(b, |a: i64| a.min(b))),
            }
            match chi {
                None => hi_unbounded = true,
                Some(b) => hi = Some(hi.map_or(b, |a: i64| a.max(b))),
            }
        }
        if lo_unbounded {
            lo = None;
        }
        if hi_unbounded {
            hi = None;
        }
        if !any {
            // Empty set: report an empty interval.
            return (Some(0), Some(-1));
        }
        (lo, hi)
    }

    /// Enumerates all members under the given parameter bindings.
    ///
    /// # Errors
    ///
    /// Returns [`OmegaError::Unbounded`] if some dimension has no constant
    /// lower or upper bound after binding the parameters.
    pub fn enumerate(&self, params: &[(&str, i64)]) -> Result<Vec<Vec<i64>>, OmegaError> {
        let arity = self.arity() as usize;
        if arity == 0 {
            let mut rel = self.rel.clone();
            for &(name, val) in params {
                rel = rel.specialize_param(name, val);
            }
            return Ok(if rel.is_satisfiable() {
                vec![Vec::new()]
            } else {
                Vec::new()
            });
        }
        let mut boxes = Vec::with_capacity(arity);
        for d in 0..arity {
            match self.dim_bounds(d as u32, params) {
                (Some(lo), Some(hi)) => boxes.push(lo..=hi),
                _ => return Err(OmegaError::Unbounded),
            }
        }
        let mut out = Vec::new();
        let mut point = vec![0i64; arity];
        enumerate_rec(self, params, &boxes, &mut point, 0, &mut out);
        Ok(out)
    }

    /// True for a 1-D set that provably has no "holes" for any parameter
    /// values: there are no `x < y < z` with `x, z` members and `y` not.
    ///
    /// This is the compile-time `IsConvex` test of the paper's §3.3.
    ///
    /// # Panics
    ///
    /// Panics if the arity is not 1, or if negation is inexact. Prefer
    /// [`Set::try_is_convex_1d`], which reports both conditions as errors.
    pub fn is_convex_1d(&self) -> bool {
        self.try_is_convex_1d()
            .expect("is_convex_1d on a non-1-D or inexactly-negatable set")
    }

    /// Fallible form of [`Set::is_convex_1d`].
    ///
    /// # Errors
    ///
    /// Returns [`OmegaError::Arity`] if the arity is not 1 and
    /// [`OmegaError::InexactNegation`] if the complement needed by the hole
    /// test cannot be formed exactly; callers (e.g. the in-place
    /// communication analysis) fall back to the paper's §3.3 runtime check.
    pub fn try_is_convex_1d(&self) -> Result<bool, OmegaError> {
        if self.arity() != 1 {
            return Err(OmegaError::Arity("is_convex_1d"));
        }
        // holes = { [x,y,z] : x in S, z in S, y not in S, x < y < z }
        let sx = self.embed(3, 0);
        let sz = self.embed(3, 2);
        let sy = self.embed(3, 1);
        let not_y = Set::universe(3).try_subtract(&sy)?;
        let order: Set = "{[x,y,z] : x <= y - 1 && y <= z - 1}".parse().unwrap();
        let holes = sx
            .intersection(&sz)
            .intersection(&not_y)
            .intersection(&order);
        Ok(holes.is_empty())
    }

    /// True for a 1-D set that provably contains at most one element for any
    /// parameter values (the paper's `IsSingleton`).
    ///
    /// # Panics
    ///
    /// Panics if the arity is not 1. Prefer [`Set::try_is_singleton_1d`].
    pub fn is_singleton_1d(&self) -> bool {
        self.try_is_singleton_1d()
            .expect("is_singleton_1d on a non-1-D set")
    }

    /// Fallible form of [`Set::is_singleton_1d`].
    ///
    /// # Errors
    ///
    /// Returns [`OmegaError::Arity`] if the arity is not 1.
    pub fn try_is_singleton_1d(&self) -> Result<bool, OmegaError> {
        if self.arity() != 1 {
            return Err(OmegaError::Arity("is_singleton_1d"));
        }
        let sx = self.embed(2, 0);
        let sy = self.embed(2, 1);
        let order: Set = "{[x,y] : x <= y - 1}".parse().unwrap();
        Ok(sx.intersection(&sy).intersection(&order).is_empty())
    }

    /// Embeds a 1-D set into dimension `dim` of an `arity`-dimensional
    /// universe (all other dimensions unconstrained).
    fn embed(&self, arity: u32, dim: u32) -> Set {
        debug_assert_eq!(self.arity(), 1);
        let mut rel = Relation::universe(arity, 0);
        for p in self.rel.params() {
            rel.ensure_param(p);
        }
        let (src, _) = Relation::unify_params(self.rel.clone(), rel.clone());
        let conjs: Vec<Conjunct> = src
            .conjuncts()
            .iter()
            .map(|c| {
                c.rename(|v| match v {
                    Var::In(0) => Var::In(dim),
                    v => v,
                })
            })
            .collect();
        *rel.conjuncts_mut() = conjs;
        Set { rel }
    }
}

/// Constant bounds of the single dimension of a 1-D conjunct, ignoring
/// stride existentials (safe: strides only remove points).
fn conjunct_1d_bounds(c: &Conjunct) -> (Option<i64>, Option<i64>) {
    let v = Var::In(0);
    let mut lo: Option<i64> = None;
    let mut hi: Option<i64> = None;
    let mut bump_lo = |x: i64| lo = Some(lo.map_or(x, |l: i64| l.max(x)));
    let mut bump_hi = |x: i64| hi = Some(hi.map_or(x, |h: i64| h.min(x)));
    for e in c.eqs() {
        let a = e.coeff(v);
        if a != 0 && e.terms().filter(|&(w, _)| !w.is_exist()).count() == 1 {
            // a*v + k*alpha.. + c = 0; over-approximate with rational solve
            // only when no existentials share the equality.
            if e.terms().all(|(w, _)| w == v) {
                let x = -e.constant_term() / a;
                bump_lo(x);
                bump_hi(x);
            }
        }
    }
    for e in c.geqs() {
        let a = e.coeff(v);
        if a == 0 {
            continue;
        }
        if e.terms().any(|(w, _)| w != v) {
            // Bound involves another (existential) variable: not constant.
            continue;
        }
        let k = e.constant_term();
        if a > 0 {
            bump_lo(ceil_div(-k, a));
        } else {
            bump_hi(floor_div(k, -a));
        }
    }
    (lo, hi)
}

fn enumerate_rec(
    set: &Set,
    params: &[(&str, i64)],
    boxes: &[std::ops::RangeInclusive<i64>],
    point: &mut Vec<i64>,
    d: usize,
    out: &mut Vec<Vec<i64>>,
) {
    if d == boxes.len() {
        if set.contains(point, params) {
            out.push(point.clone());
        }
        return;
    }
    for x in boxes[d].clone() {
        point[d] = x;
        enumerate_rec(set, params, boxes, point, d + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(s: &str) -> Set {
        s.parse().unwrap()
    }

    #[test]
    fn enumerate_box() {
        let s = set("{[i,j] : 1 <= i <= 2 && i <= j <= 3}");
        let pts = s.enumerate(&[]).unwrap();
        assert_eq!(
            pts,
            vec![vec![1, 1], vec![1, 2], vec![1, 3], vec![2, 2], vec![2, 3]]
        );
    }

    #[test]
    fn enumerate_with_params_and_strides() {
        let s = set("{[i] : 0 <= i <= N && exists(a : i = 3a)}");
        let pts = s.enumerate(&[("N", 10)]).unwrap();
        assert_eq!(pts, vec![vec![0], vec![3], vec![6], vec![9]]);
    }

    #[test]
    fn enumerate_unbounded_errors() {
        let s = set("{[i] : i >= 0}");
        assert!(matches!(s.enumerate(&[]), Err(OmegaError::Unbounded)));
    }

    #[test]
    fn project_onto_swaps_and_drops() {
        let s = set("{[i,j] : 1 <= i <= 3 && j = i + 10}");
        let pj = s.project_onto(&[1]);
        let pts = pj.enumerate(&[]).unwrap();
        assert_eq!(pts, vec![vec![11], vec![12], vec![13]]);
        let swapped = s.project_onto(&[1, 0]);
        assert!(swapped.contains(&[12, 2], &[]));
        assert!(!swapped.contains(&[2, 12], &[]));
    }

    #[test]
    fn dim_bounds_union() {
        let a = set("{[i] : 1 <= i <= 3}");
        let b = set("{[i] : 7 <= i <= 9}");
        let u = a.union(&b);
        assert_eq!(u.dim_bounds(0, &[]), (Some(1), Some(9)));
    }

    #[test]
    fn dim_bounds_empty_set() {
        let s = Set::empty(1);
        let (lo, hi) = s.dim_bounds(0, &[]);
        assert!(lo.unwrap() > hi.unwrap());
    }

    #[test]
    fn convexity_tests() {
        assert!(set("{[i] : 2 <= i <= 9}").is_convex_1d());
        let gap = set("{[i] : 1 <= i <= 3}").union(&set("{[i] : 5 <= i <= 8}"));
        assert!(!gap.is_convex_1d());
        // Adjacent intervals are convex even as a union.
        let touch = set("{[i] : 1 <= i <= 4}").union(&set("{[i] : 5 <= i <= 8}"));
        assert!(touch.is_convex_1d());
        // A stride set with a gap is not convex.
        assert!(!set("{[i] : 0 <= i <= 6 && exists(a : i = 2a)}").is_convex_1d());
    }

    #[test]
    fn convexity_symbolic() {
        // {i : 1 <= i <= N} is convex for every N.
        assert!(set("{[i] : 1 <= i <= N}").is_convex_1d());
        // {i : 1 <= i <= N || 2N + 2 <= i <= 3N} has a hole for N >= 1.
        let u = set("{[i] : 1 <= i <= N}").union(&set("{[i] : 2N + 2 <= i <= 3N}"));
        assert!(!u.is_convex_1d());
    }

    #[test]
    fn singleton_tests() {
        assert!(set("{[i] : i = 5}").is_singleton_1d());
        assert!(set("{[i] : 5 <= i <= 5}").is_singleton_1d());
        assert!(!set("{[i] : 5 <= i <= 6}").is_singleton_1d());
        assert!(Set::empty(1).is_singleton_1d());
        // Symbolic: {i : i = N} is a singleton for every N.
        assert!(set("{[i] : i = N}").is_singleton_1d());
        // {i : N <= i <= N+1} never is.
        assert!(!set("{[i] : N <= i <= N + 1}").is_singleton_1d());
    }
}
