//! Pretty-printing of sets and relations in Omega syntax.

use crate::conjunct::Conjunct;
use crate::linexpr::LinExpr;
use crate::relation::Relation;
use crate::set::Set;
use crate::var::Var;
use std::fmt;

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        write_tuple(f, self.n_in(), &self.in_names, "i")?;
        if self.n_out() > 0 || !self.out_names.is_empty() {
            write!(f, " -> ")?;
            write_tuple(f, self.n_out(), &self.out_names, "o")?;
        }
        if self.conjuncts().is_empty() {
            write!(f, " : FALSE")?;
        } else {
            let all_universe = self.conjuncts().iter().all(|c| c.is_universe());
            if !all_universe {
                write!(f, " : ")?;
                for (k, c) in self.conjuncts().iter().enumerate() {
                    if k > 0 {
                        write!(f, " || ")?;
                    }
                    write_conjunct(f, c, self)?;
                }
            }
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_relation().fmt(f)
    }
}

fn write_tuple(f: &mut fmt::Formatter<'_>, n: u32, names: &[String], prefix: &str) -> fmt::Result {
    write!(f, "[")?;
    for k in 0..n {
        if k > 0 {
            write!(f, ",")?;
        }
        match names.get(k as usize) {
            Some(name) => write!(f, "{name}")?,
            None => write!(f, "{prefix}{k}")?,
        }
    }
    write!(f, "]")
}

fn var_name(v: Var, rel: &Relation) -> String {
    match v {
        Var::Param(i) => rel
            .params()
            .get(i as usize)
            .cloned()
            .unwrap_or_else(|| format!("P{i}")),
        Var::In(i) => rel
            .in_names
            .get(i as usize)
            .cloned()
            .unwrap_or_else(|| format!("i{i}")),
        Var::Out(i) => rel
            .out_names
            .get(i as usize)
            .cloned()
            .unwrap_or_else(|| format!("o{i}")),
        Var::Exist(i) => format!("a{i}"),
    }
}

fn write_conjunct(f: &mut fmt::Formatter<'_>, c: &Conjunct, rel: &Relation) -> fmt::Result {
    let used_exists: Vec<u32> = (0..c.n_exist())
        .filter(|&i| c.mentions(Var::Exist(i)))
        .collect();
    if !used_exists.is_empty() {
        write!(f, "exists(")?;
        for (k, i) in used_exists.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "a{i}")?;
        }
        write!(f, ": ")?;
    }
    let mut first = true;
    if c.is_universe() {
        write!(f, "TRUE")?;
        first = false;
    }
    for e in c.eqs() {
        if !first {
            write!(f, " && ")?;
        }
        first = false;
        write_cmp(f, e, "=", rel)?;
    }
    for e in c.geqs() {
        if !first {
            write!(f, " && ")?;
        }
        first = false;
        write_cmp(f, e, ">=", rel)?;
    }
    if !used_exists.is_empty() {
        write!(f, ")")?;
    }
    Ok(())
}

/// Writes `e op 0` in the friendlier split form `pos op neg`.
fn write_cmp(f: &mut fmt::Formatter<'_>, e: &LinExpr, op: &str, rel: &Relation) -> fmt::Result {
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for (v, c) in e.terms() {
        if c > 0 {
            pos.push((var_name(v, rel), c));
        } else {
            neg.push((var_name(v, rel), -c));
        }
    }
    let k = e.constant_term();
    let write_side =
        |f: &mut fmt::Formatter<'_>, terms: &[(String, i64)], konst: i64| -> fmt::Result {
            let mut first = true;
            for (name, c) in terms {
                if !first {
                    write!(f, " + ")?;
                }
                first = false;
                if *c == 1 {
                    write!(f, "{name}")?;
                } else {
                    write!(f, "{c}{name}")?;
                }
            }
            if konst != 0 || first {
                if !first {
                    write!(f, " + ")?;
                }
                write!(f, "{konst}")?;
            }
            Ok(())
        };
    write_side(f, &pos, if k > 0 { k } else { 0 })?;
    write!(f, " {op} ")?;
    write_side(f, &neg, if k < 0 { -k } else { 0 })
}

#[cfg(test)]
mod tests {
    use crate::{Relation, Set};

    #[test]
    fn roundtrip_display_parse() {
        let inputs = [
            "{[i] : 1 <= i <= 10}",
            "{[i,j] -> [p] : 25p <= j && j <= 25p + 24 && 1 <= i <= N}",
            "{[i] : 1 <= i <= 3 || 7 <= i <= 9}",
            "{[i] : exists(a : i = 4a + 1) && 0 <= i <= 20}",
        ];
        for src in inputs {
            let r: Relation = src.parse().unwrap();
            let printed = r.to_string();
            let back: Relation = printed.parse().unwrap_or_else(|e| {
                panic!("reparse of {printed:?} failed: {e}");
            });
            assert!(
                r.equal(&back),
                "display/parse roundtrip changed meaning: {src} -> {printed}"
            );
        }
    }

    #[test]
    fn displays_names() {
        let s: Set = "{[i,j] : i <= j}".parse().unwrap();
        let txt = s.to_string();
        assert!(txt.contains("[i,j]"), "{txt}");
        assert!(
            txt.contains("i <= j") || txt.contains("j >= i") || txt.contains(">="),
            "{txt}"
        );
    }

    #[test]
    fn empty_and_universe_render() {
        let e = Set::empty(1);
        assert!(e.to_string().contains("FALSE"));
        let u = Set::universe(2);
        assert_eq!(u.to_string(), "{[i0,i1]}");
    }
}
