//! Conjunctions of affine equality/inequality constraints with existentials.
//!
//! A [`Conjunct`] is the convex-with-congruences building block of a
//! [`Relation`](crate::Relation): a conjunction of `e = 0` and `e >= 0`
//! constraints over parameters, tuple variables, and existentially
//! quantified variables. Non-convex sets are unions of conjuncts.
//!
//! The key algorithms here are exact *integer* variable elimination:
//! equality elimination via Pugh's symmetric-modulus substitution, and
//! inequality elimination via Fourier–Motzkin with the Omega test's dark
//! shadow and splinter sets, so that projections remain exact over Z.

use crate::linexpr::LinExpr;
use crate::num::{floor_div, modulo, try_mul, try_sub};
use crate::var::Var;
use crate::OmegaError;
use std::collections::BTreeSet;

/// A conjunction of constraints: all `eqs` are `= 0`, all `geqs` are `>= 0`.
///
/// Existential variables `Var::Exist(0..n_exist)` are local to the conjunct.
///
/// # Examples
///
/// ```
/// use dhpf_omega::{Conjunct, LinExpr, Var};
/// // { [i] : 1 <= i <= 10 }
/// let mut c = Conjunct::new();
/// c.add_geq(LinExpr::var(Var::In(0)) - LinExpr::constant(1));
/// c.add_geq(LinExpr::constant(10) - LinExpr::var(Var::In(0)));
/// assert!(c.is_satisfiable());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Conjunct {
    n_exist: u32,
    eqs: Vec<LinExpr>,
    geqs: Vec<LinExpr>,
    /// Normalized-form flag: `true` iff the conjunct is known to be a
    /// fixed point of [`normalize`](Self::normalize). Maintained by the
    /// mutators, read by `normalize`/`canonical` to skip re-derivation,
    /// and excluded from `Eq`/`Ord`/`Hash` (it is a cache, not content).
    norm: bool,
}

impl PartialEq for Conjunct {
    fn eq(&self, other: &Self) -> bool {
        self.n_exist == other.n_exist && self.eqs == other.eqs && self.geqs == other.geqs
    }
}

impl Eq for Conjunct {}

impl std::hash::Hash for Conjunct {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.n_exist.hash(state);
        self.eqs.hash(state);
        self.geqs.hash(state);
    }
}

impl PartialOrd for Conjunct {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Conjunct {
    /// Deterministic structural order (constraints first, then the
    /// existential count), used to sort a relation's conjuncts into a
    /// canonical sequence without formatting them to strings.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.eqs
            .cmp(&other.eqs)
            .then_with(|| self.geqs.cmp(&other.geqs))
            .then_with(|| self.n_exist.cmp(&other.n_exist))
    }
}

/// Result of normalizing a conjunct: either still possibly satisfiable, or
/// proven empty by a trivial contradiction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Normalized {
    /// No trivial contradiction was found.
    Consistent,
    /// The conjunct is provably empty.
    False,
}

impl Conjunct {
    /// Creates the unconstrained (universe) conjunct.
    pub fn new() -> Self {
        Conjunct::default()
    }

    /// Number of existential variables in use.
    pub fn n_exist(&self) -> u32 {
        self.n_exist
    }

    /// The equality constraints (`expr = 0`).
    pub fn eqs(&self) -> &[LinExpr] {
        &self.eqs
    }

    /// The inequality constraints (`expr >= 0`).
    pub fn geqs(&self) -> &[LinExpr] {
        &self.geqs
    }

    /// A canonical copy for hash-consing, by way of
    /// [`normalize`](Self::normalize): conjuncts that differ only in
    /// constraint order, repetition, scaling, slack constants, or
    /// trailing unused existentials share one interned identity (and one
    /// memo-cache entry). Conjuncts `normalize` proves empty all map to
    /// the single canonical false form ([`is_false`](Self::is_false)).
    ///
    /// There is exactly one canonicalization discipline: this is the
    /// same transformation `normalize` applies in place, so the parser,
    /// the ops-layer producers, and the arena all agree on identity.
    pub fn canonical(&self) -> Conjunct {
        let mut c = self.clone();
        c.normalize();
        c
    }

    /// Whether this conjunct is already a fixed point of
    /// [`normalize`](Self::normalize) (and therefore of
    /// [`canonical`](Self::canonical)).
    pub fn is_normalized(&self) -> bool {
        self.norm
    }

    /// Whether this is the canonical false conjunct (`-1 >= 0`) that
    /// every trivially-contradictory conjunct normalizes to.
    pub fn is_false(&self) -> bool {
        self.eqs.is_empty()
            && self.geqs.len() == 1
            && self.geqs[0].is_constant()
            && self.geqs[0].constant_term() == -1
    }

    /// Rewrites the conjunct into the canonical false form: no
    /// equalities, the single inequality `-1 >= 0`, no existentials.
    /// Every conjunct [`normalize`](Self::normalize) proves empty takes
    /// this one shape, so all of them intern to one arena id.
    fn set_false(&mut self) {
        self.eqs.clear();
        self.geqs.clear();
        self.geqs.push(LinExpr::constant(-1));
        self.n_exist = 0;
        self.norm = true;
    }

    /// Adds the constraint `e = 0`.
    pub fn add_eq(&mut self, e: LinExpr) {
        self.norm = false;
        self.note_exists(&e);
        self.eqs.push(e);
    }

    /// Adds the constraint `e >= 0`.
    pub fn add_geq(&mut self, e: LinExpr) {
        self.norm = false;
        self.note_exists(&e);
        self.geqs.push(e);
    }

    /// Adds the pair `lo <= v <= hi` for convenience.
    pub fn add_bounds(&mut self, v: Var, lo: i64, hi: i64) {
        self.add_geq(LinExpr::var(v) - LinExpr::constant(lo));
        self.add_geq(LinExpr::constant(hi) - LinExpr::var(v));
    }

    /// Allocates a fresh existential variable.
    pub fn fresh_exist(&mut self) -> Var {
        self.norm = false;
        let v = Var::Exist(self.n_exist);
        self.n_exist += 1;
        v
    }

    /// Adds the congruence `e ≡ 0 (mod k)` via a fresh existential.
    ///
    /// # Panics
    ///
    /// Panics if `k <= 0`.
    pub fn add_stride(&mut self, e: LinExpr, k: i64) {
        assert!(k > 0, "stride modulus must be positive, got {k}");
        if k == 1 {
            return;
        }
        let alpha = self.fresh_exist();
        let mut c = e;
        c.add_term(alpha, -k);
        self.add_eq(c);
    }

    fn note_exists(&mut self, e: &LinExpr) {
        if let Some(m) = e.max_exist() {
            self.n_exist = self.n_exist.max(m + 1);
        }
    }

    /// All non-existential variables mentioned by the constraints.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        self.all_vars()
            .into_iter()
            .filter(|v| !v.is_exist())
            .collect()
    }

    /// All variables (including existentials) mentioned by the constraints.
    pub fn all_vars(&self) -> BTreeSet<Var> {
        let mut s = BTreeSet::new();
        for e in self.eqs.iter().chain(&self.geqs) {
            s.extend(e.vars());
        }
        s
    }

    /// Returns `true` if `v` occurs in any constraint.
    pub fn mentions(&self, v: Var) -> bool {
        self.eqs.iter().chain(&self.geqs).any(|e| e.coeff(v) != 0)
    }

    /// Renames all variables through `f` (must be injective).
    pub fn rename<F: Fn(Var) -> Var>(&self, f: F) -> Conjunct {
        let mut c = Conjunct::new();
        for e in &self.eqs {
            c.add_eq(e.rename(&f));
        }
        for e in &self.geqs {
            c.add_geq(e.rename(&f));
        }
        c.n_exist = c.n_exist.max(self.n_exist);
        c
    }

    /// Conjoins `other` into `self`, renumbering `other`'s existentials so
    /// they do not collide.
    pub fn merge(&mut self, other: &Conjunct) {
        self.norm = false;
        let off = self.n_exist;
        if off == 0 || other.n_exist == 0 {
            // No renumbering needed: either we have no existentials to
            // collide with, or `other` has none to shift.
            self.eqs.extend_from_slice(&other.eqs);
            self.geqs.extend_from_slice(&other.geqs);
            self.n_exist = off.max(other.n_exist);
            return;
        }
        let remap = |v: Var| match v {
            Var::Exist(i) => Var::Exist(i + off),
            v => v,
        };
        for e in &other.eqs {
            self.eqs.push(e.rename(remap));
        }
        for e in &other.geqs {
            self.geqs.push(e.rename(remap));
        }
        self.n_exist = off + other.n_exist;
    }

    /// Conjoins `other`'s constraints verbatim — no existential
    /// renumbering. The caller guarantees the two sides' existential
    /// indices are already disjoint (or deliberately shared); taking
    /// `other` by value lets the expressions move without cloning.
    pub fn conjoin_raw(&mut self, other: Conjunct) {
        self.norm = false;
        self.eqs.extend(other.eqs);
        self.geqs.extend(other.geqs);
        self.n_exist = self.n_exist.max(other.n_exist);
    }

    /// Substitutes `v := repl` in every constraint.
    pub fn substitute(&mut self, v: Var, repl: &LinExpr) {
        self.norm = false;
        self.note_exists(repl);
        for e in self.eqs.iter_mut().chain(self.geqs.iter_mut()) {
            e.substitute(v, repl);
        }
    }

    /// Binds several variables to constants (partial evaluation).
    pub fn bind<F: Fn(Var) -> Option<i64>>(&self, lookup: F) -> Conjunct {
        let mut c = Conjunct::new();
        for e in &self.eqs {
            c.add_eq(e.partial_eval(&lookup));
        }
        for e in &self.geqs {
            c.add_geq(e.partial_eval(&lookup));
        }
        c.n_exist = self.n_exist;
        c
    }

    /// Normalizes constraints in place into the canonical form used for
    /// hash-consing: divides by coefficient GCDs (tightening inequalities
    /// over Z), canonicalizes equality signs, drops tautologies, promotes
    /// opposing inequalities to equalities, sorts and deduplicates, keeps
    /// only the tightest of parallel inequalities, trims trailing unused
    /// existentials, and detects trivial contradictions (rewriting the
    /// conjunct to the canonical false form, so all trivially-empty
    /// conjuncts are structurally identical).
    ///
    /// Normalization happens exactly once: the result is flagged
    /// ([`is_normalized`](Self::is_normalized)) and re-normalizing is a
    /// constant-time no-op until the conjunct is mutated again.
    pub fn normalize(&mut self) -> Normalized {
        if self.norm {
            return if self.is_false() {
                Normalized::False
            } else {
                Normalized::Consistent
            };
        }
        let mut ok = true;
        self.eqs.retain_mut(|e| {
            let g = e.coeff_gcd();
            if g == 0 {
                if e.constant_term() != 0 {
                    ok = false;
                }
                return false; // constant eq: tautology or contradiction
            }
            if e.constant_term() % g != 0 {
                ok = false; // e.g. 2x + 1 = 0 has no integer solution
                return true;
            }
            if g > 1 {
                e.div_exact_coeffs(g);
            }
            // Canonical sign: leading coefficient positive.
            if matches!(e.terms().next(), Some((_, c)) if c < 0) {
                e.negate_in_place();
            }
            true
        });
        if !ok {
            self.set_false();
            return Normalized::False;
        }
        self.geqs.retain_mut(|e| {
            let g = e.coeff_gcd();
            if g == 0 {
                if e.constant_term() < 0 {
                    ok = false;
                }
                return false;
            }
            if g > 1 {
                // g*f + c >= 0  <=>  f + floor(c/g) >= 0 over the integers.
                e.tighten_by_gcd(g);
            }
            true
        });
        if !ok {
            self.set_false();
            return Normalized::False;
        }
        // Opposing inequalities e >= 0 and -e >= 0 become the equality e = 0;
        // e >= 0 and -e - k >= 0 (k > 0) is a contradiction. (On overflow,
        // `opposing_sum` returns `None` and the pair is conservatively kept
        // as two inequalities.)
        let mut i = 0;
        while i < self.geqs.len() {
            let mut j = i + 1;
            let mut promoted = false;
            while j < self.geqs.len() {
                if let Some(c) = self.geqs[i].opposing_sum(&self.geqs[j]) {
                    if c < 0 {
                        self.set_false();
                        return Normalized::False;
                    }
                    if c == 0 {
                        self.geqs.remove(j);
                        let mut e = self.geqs.remove(i);
                        // The equality-sign pass above already ran, so give
                        // the promoted equality its canonical sign here:
                        // without this, {x >= 5, x <= 5} yields `x - 5 = 0`
                        // or `-x + 5 = 0` depending on insertion order.
                        if matches!(e.terms().next(), Some((_, c)) if c < 0) {
                            e.negate_in_place();
                        }
                        self.eqs.push(e);
                        promoted = true;
                        break;
                    }
                }
                j += 1;
            }
            if !promoted {
                i += 1;
            }
        }
        self.eqs.sort();
        self.eqs.dedup();
        self.geqs.sort();
        self.geqs.dedup();
        // Keep only the tightest of parallel inequalities (same coefficients,
        // different constants). `dedup_by` hands the closure the *later*
        // element first and the retained earlier one second; after the sort,
        // the earlier one has the smaller constant — the tighter bound —
        // so a non-negative delta means the later one is implied.
        self.geqs
            .dedup_by(|b, a| b.constant_delta(a).is_some_and(|d| d >= 0));
        // Trim trailing unused existentials so conjuncts that differ only
        // in dead quantifier slots are structurally identical. (Indices of
        // *used* existentials are never renumbered: callers hold `Var`s.)
        self.n_exist = self
            .eqs
            .iter()
            .chain(&self.geqs)
            .filter_map(LinExpr::max_exist)
            .max()
            .map_or(0, |m| m + 1);
        self.norm = true;
        Normalized::Consistent
    }

    /// Returns `true` if the conjunct has no constraints at all.
    pub fn is_universe(&self) -> bool {
        self.eqs.is_empty() && self.geqs.is_empty()
    }

    /// Decides satisfiability exactly over the integers, treating *all*
    /// variables (parameters included) as unknowns.
    ///
    /// This is the Omega test: equality elimination with coefficient
    /// reduction, then Fourier–Motzkin with dark shadow and splinters.
    pub fn is_satisfiable(&self) -> bool {
        self.is_satisfiable_in(None)
    }

    /// [`is_satisfiable`](Self::is_satisfiable) with an optional shared
    /// [`Context`]: the result is memoized per distinct conjunct structure,
    /// and the eliminations performed along the way share the context's
    /// projection cache.
    pub fn is_satisfiable_in(&self, ctx: Option<&crate::Context>) -> bool {
        match ctx {
            Some(cx) => cx.cached_sat(self, || self.sat_uncached(ctx)),
            None => self.sat_uncached(None),
        }
    }

    /// Exact-or-fail form of [`is_satisfiable_in`](Self::is_satisfiable_in):
    /// where the governed variant degrades to a conservative `true` after
    /// a budget trip, this one surfaces the trip as an error. Use it
    /// wherever a spurious "satisfiable" is *unsound* — e.g. pruning
    /// pieces before loop-bound emission in code generation, where a
    /// retained empty piece widens hull bounds into phantom iterations.
    ///
    /// # Errors
    ///
    /// Returns the budget/cancellation error when the context's governor
    /// refuses the operation.
    pub fn try_is_satisfiable_in(&self, ctx: Option<&crate::Context>) -> Result<bool, OmegaError> {
        match ctx {
            Some(cx) => cx.cached_sat_strict(self, || self.sat_uncached(ctx)),
            None => Ok(self.sat_uncached(None)),
        }
    }

    fn sat_uncached(&self, ctx: Option<&crate::Context>) -> bool {
        let mut work = vec![self.clone()];
        let mut fuel: u64 = 200_000;
        while let Some(mut c) = work.pop() {
            if fuel == 0 {
                // Fuel exhaustion is conservative: report satisfiable.
                return true;
            }
            fuel = fuel.saturating_sub(1);
            if c.normalize() == Normalized::False {
                continue;
            }
            match c.pick_sat_step() {
                SatStep::Done => {
                    // No variables left; normalize() already validated the
                    // constant constraints.
                    return true;
                }
                SatStep::SubstituteUnit(idx, v) => {
                    if c.substitute_from_eq(idx, v) {
                        work.push(c);
                    }
                }
                SatStep::ModhatReduce(idx, v) => {
                    c.modhat_reduce(idx, v);
                    work.push(c);
                }
                SatStep::Fme(v) => match c.try_eliminate_exact_in(v, ctx) {
                    Ok(parts) => work.extend(parts),
                    // Overflow is conservative like fuel exhaustion: report
                    // satisfiable rather than abort (sound for emptiness
                    // tests, which only trust `false`).
                    Err(_) => return true,
                },
            }
        }
        false
    }

    /// Chooses the next satisfiability-preserving reduction step.
    fn pick_sat_step(&self) -> SatStep {
        // Prefer a variable with a unit coefficient in an equality.
        for (i, e) in self.eqs.iter().enumerate() {
            for (v, c) in e.terms() {
                if c.abs() == 1 {
                    return SatStep::SubstituteUnit(i, v);
                }
            }
        }
        // Then reduce any equality with variables (Pugh's symmetric-modulus
        // step; coefficients shrink until a unit appears).
        for (i, e) in self.eqs.iter().enumerate() {
            if let Some(v) = e.terms().min_by_key(|&(_, c)| c.abs()).map(|(v, _)| v) {
                return SatStep::ModhatReduce(i, v);
            }
        }
        // Then the inequality variable with the cheapest FME cost.
        let vars = self.all_vars();
        match vars.into_iter().min_by_key(|&v| {
            let lowers = self.geqs.iter().filter(|e| e.coeff(v) > 0).count();
            let uppers = self.geqs.iter().filter(|e| e.coeff(v) < 0).count();
            lowers * uppers
        }) {
            Some(v) => SatStep::Fme(v),
            None => SatStep::Done,
        }
    }

    /// Substitutes `v` away using equality `eqs[idx]` where `v` has a unit
    /// coefficient. Returns `false` if normalization finds a contradiction.
    fn substitute_from_eq(&mut self, idx: usize, v: Var) -> bool {
        let eq = self.eqs.remove(idx);
        let a = eq.coeff(v);
        debug_assert_eq!(a.abs(), 1);
        let mut rest = eq;
        rest.remove_term(v);
        let repl = rest.scaled(-a);
        self.substitute(v, &repl);
        self.normalize() != Normalized::False
    }

    /// One step of Pugh's symmetric-modulus equality reduction on
    /// `eqs[idx]`, whose minimum-coefficient variable is `v` (|coeff| > 1).
    /// Introduces a fresh existential and substitutes `v` away; the reduced
    /// equality's coefficients shrink, guaranteeing overall termination.
    fn modhat_reduce(&mut self, idx: usize, v: Var) {
        let eq = self.eqs[idx].clone();
        let a = eq.coeff(v);
        debug_assert!(a.abs() > 1);
        let m = a.abs() + 1;
        let sigma = self.fresh_exist();
        let mut neweq = LinExpr::term(sigma, -m);
        for (w, cw) in eq.terms() {
            neweq.add_term(w, modhat(cw, m));
        }
        neweq.add_constant(modhat(eq.constant_term(), m));
        let cv = neweq.coeff(v);
        debug_assert_eq!(cv.abs(), 1, "modhat must give v a unit coefficient");
        let mut rest = neweq;
        rest.remove_term(v);
        let repl = rest.scaled(-cv);
        self.substitute(v, &repl);
    }

    /// Exactly eliminates `v`, returning a disjunction of conjuncts whose
    /// integer solutions project precisely onto the solutions of `self`
    /// with `v` removed. Tuple/parameter variables eliminated through
    /// congruences are replaced by fresh existentials.
    pub fn eliminate_exact(&self, v: Var) -> Vec<Conjunct> {
        self.eliminate_exact_in(v, None)
    }

    /// [`eliminate_exact`](Self::eliminate_exact) with an optional shared
    /// [`Context`] memoizing the projection per `(conjunct, var)` pair.
    ///
    /// # Panics
    ///
    /// Panics if coefficient arithmetic overflows `i64`; prefer
    /// [`try_eliminate_exact_in`](Self::try_eliminate_exact_in) where the
    /// overflow can be handled.
    pub fn eliminate_exact_in(&self, v: Var, ctx: Option<&crate::Context>) -> Vec<Conjunct> {
        self.try_eliminate_exact_in(v, ctx)
            .expect("coefficient overflow during exact elimination")
    }

    /// Fallible form of [`eliminate_exact`](Self::eliminate_exact).
    ///
    /// # Errors
    ///
    /// Returns [`OmegaError::Overflow`] if a Fourier–Motzkin combination,
    /// dark-shadow gap, or splinter bound overflows `i64`.
    pub fn try_eliminate_exact(&self, v: Var) -> Result<Vec<Conjunct>, OmegaError> {
        self.try_eliminate_exact_in(v, None)
    }

    /// Fallible form of [`eliminate_exact_in`](Self::eliminate_exact_in).
    ///
    /// # Errors
    ///
    /// Returns [`OmegaError::Overflow`] if a Fourier–Motzkin combination,
    /// dark-shadow gap, or splinter bound overflows `i64`. Errors are
    /// memoized like successes, so a retried elimination stays cheap.
    pub fn try_eliminate_exact_in(
        &self,
        v: Var,
        ctx: Option<&crate::Context>,
    ) -> Result<Vec<Conjunct>, OmegaError> {
        match ctx {
            Some(cx) => cx.cached_eliminate(self, v, || self.eliminate_uncached(v, ctx)),
            None => self.eliminate_uncached(v, None),
        }
    }

    fn eliminate_uncached(
        &self,
        v: Var,
        ctx: Option<&crate::Context>,
    ) -> Result<Vec<Conjunct>, OmegaError> {
        let mut c = self.clone();
        if c.normalize() == Normalized::False {
            return Ok(Vec::new());
        }
        if !c.mentions(v) {
            return Ok(vec![c]);
        }
        // Equality path.
        if let Some(idx) = c.best_eq_for(v) {
            return c.eliminate_via_eq(idx, v);
        }
        c.eliminate_via_fme(v, ctx)
    }

    /// Index of the equality in which `v` has the smallest nonzero |coeff|.
    fn best_eq_for(&self, v: Var) -> Option<usize> {
        self.eqs
            .iter()
            .enumerate()
            .filter(|(_, e)| e.coeff(v) != 0)
            .min_by_key(|(_, e)| e.coeff(v).abs())
            .map(|(i, _)| i)
    }

    /// Eliminates `v` using equality `eqs[idx]`.
    fn eliminate_via_eq(mut self, idx: usize, v: Var) -> Result<Vec<Conjunct>, OmegaError> {
        self.norm = false; // constraints are edited in place below
        let eq = self.eqs[idx].clone();
        let a = eq.coeff(v);
        debug_assert_ne!(a, 0);
        if a.abs() == 1 {
            // v = -a * (eq - a*v)  since a*v + rest = 0 => v = -rest/a.
            let mut rest = eq.clone();
            rest.remove_term(v);
            let repl = rest.try_scaled(-a)?; // a in {1,-1}: -rest/a == -a*rest
            self.eqs.remove(idx);
            self.substitute(v, &repl);
            let mut out = self;
            if out.normalize() == Normalized::False {
                return Ok(Vec::new());
            }
            return Ok(vec![out]);
        }
        // |a| > 1: multiply-through elimination. Remove v from every *other*
        // constraint by exact linear combination with the defining equality
        // (a*v = -e); the defining equality itself then holds v as a pure
        // congruence witness (`exists v : a*v + e = 0`  <=>  `e ≡ 0 mod a`).
        let mut e_rest = eq.clone();
        e_rest.remove_term(v); // eq is a*v + e_rest = 0
        for (k, f) in self.eqs.iter_mut().enumerate() {
            if k == idx {
                continue;
            }
            let av = f.remove_term(v);
            if av == 0 {
                continue;
            }
            // a*f - av*(a*v + e_rest) = a*(f - av*v) - av*e_rest = 0
            let mut nf = f.try_scaled(a)?;
            nf.try_add_scaled(&e_rest, try_sub(0, av)?)?;
            *f = nf;
        }
        for h in self.geqs.iter_mut() {
            let av = h.remove_term(v);
            if av == 0 {
                continue;
            }
            // |a|*(av*v + h') >= 0 with a*v = -e_rest:
            //   a > 0:  -av*e_rest + a*h' >= 0
            //   a < 0:   av*e_rest - a*h' >= 0
            let mut nh = h.try_scaled(a.abs())?;
            nh.try_add_scaled(&e_rest, if a > 0 { try_sub(0, av)? } else { av })?;
            *h = nh;
        }
        // Re-home the witness: if v was a tuple or parameter variable, the
        // congruence must quantify a fresh existential instead.
        if !v.is_exist() {
            let alpha = self.fresh_exist();
            let i = self
                .eqs
                .iter()
                .position(|e| e.coeff(v) != 0)
                .expect("defining equality present");
            let c = self.eqs[i].remove_term(v);
            self.eqs[i].add_term(alpha, c);
        }
        if self.normalize() == Normalized::False {
            return Ok(Vec::new());
        }
        Ok(vec![self])
    }

    /// Eliminates `v` (appearing only in inequalities) exactly:
    /// dark shadow plus splinters.
    fn eliminate_via_fme(
        mut self,
        v: Var,
        ctx: Option<&crate::Context>,
    ) -> Result<Vec<Conjunct>, OmegaError> {
        let mut lowers = Vec::new(); // (a, L): a*v + L >= 0 with a > 0
        let mut uppers = Vec::new(); // (b, U): -b*v + U >= 0 with b > 0
        let mut others = Vec::new();
        for e in self.geqs.drain(..) {
            let cv = e.coeff(v);
            let mut rest = e;
            rest.remove_term(v);
            if cv > 0 {
                lowers.push((cv, rest));
            } else if cv < 0 {
                uppers.push((-cv, rest));
            } else {
                others.push(rest);
            }
        }
        let base = {
            let mut c = Conjunct::new();
            c.n_exist = self.n_exist;
            c.eqs = self.eqs.clone();
            c.geqs = others;
            c
        };
        if lowers.is_empty() || uppers.is_empty() {
            // v is unbounded on one side: projection drops its constraints.
            let mut out = base;
            if out.normalize() == Normalized::False {
                return Ok(Vec::new());
            }
            return Ok(vec![out]);
        }
        let mut exact = true;
        let mut dark = base.clone();
        for (a, l) in &lowers {
            for (b, u) in &uppers {
                // a*v >= -L and b*v <= U  =>  a*U + b*L >= 0 (real shadow)
                let mut comb = u.try_scaled(*a)?;
                comb.try_add_scaled(l, *b)?;
                if *a > 1 && *b > 1 {
                    exact = false;
                    // dark shadow: a*U + b*L >= (a-1)(b-1)
                    let mut d = comb.clone();
                    d.try_add_constant(try_sub(0, try_mul(*a - 1, *b - 1)?)?)?;
                    dark.add_geq(d);
                } else {
                    dark.add_geq(comb);
                }
            }
        }
        if exact {
            let mut out = dark;
            if out.normalize() == Normalized::False {
                return Ok(Vec::new());
            }
            return Ok(vec![out]);
        }
        let mut results = Vec::new();
        if dark.normalize() != Normalized::False {
            results.push(dark);
        }
        // Splinters: any solution outside the dark shadow satisfies
        // a*v = -L + i for some lower bound (a, L) with a > 1 and
        // 0 <= i <= (a*bmax - a - bmax) / bmax.
        let bmax = uppers.iter().map(|&(b, _)| b).max().unwrap();
        for (a, l) in &lowers {
            if *a <= 1 {
                continue;
            }
            let imax = floor_div(try_sub(try_sub(try_mul(*a, bmax)?, *a)?, bmax)?, bmax);
            for i in 0..=imax {
                // Rebuild the original conjunct and pin a*v + L - i = 0.
                let mut s = base.clone();
                for (a2, l2) in &lowers {
                    let mut e = l2.clone();
                    e.add_term(v, *a2);
                    s.add_geq(e);
                }
                for (b2, u2) in &uppers {
                    let mut e = u2.clone();
                    e.add_term(v, -*b2);
                    s.add_geq(e);
                }
                let mut pin = l.clone();
                pin.add_term(v, *a);
                pin.try_add_constant(try_sub(0, i)?)?;
                s.add_eq(pin);
                // Recurse: the pinned equality eliminates v exactly.
                results.extend(s.try_eliminate_exact_in(v, ctx)?);
            }
        }
        Ok(results)
    }

    /// Returns `true` if this conjunct, conjoined with `context`, is
    /// unsatisfiable.
    pub fn is_empty_given(&self, context: &Conjunct) -> bool {
        self.is_empty_given_in(context, None)
    }

    /// [`is_empty_given`](Self::is_empty_given) threading an optional shared
    /// [`Context`] through the satisfiability test.
    pub fn is_empty_given_in(&self, context: &Conjunct, ctx: Option<&crate::Context>) -> bool {
        let mut c = self.clone();
        c.merge(context);
        !c.is_satisfiable_in(ctx)
    }

    /// Removes constraints that are implied by `context` (the *gist*
    /// operation): the result, conjoined with `context`, equals
    /// `self ∧ context`.
    pub fn gist_given(&self, context: &Conjunct) -> Conjunct {
        self.gist_given_in(context, None)
    }

    /// [`gist_given`](Self::gist_given) with an optional shared [`Context`]
    /// memoizing the result per `(self, context)` pair.
    pub fn gist_given_in(&self, context: &Conjunct, ctx: Option<&crate::Context>) -> Conjunct {
        match ctx {
            Some(cx) => cx.cached_gist(self, context, || self.gist_uncached(context, ctx)),
            None => self.gist_uncached(context, None),
        }
    }

    fn gist_uncached(&self, context: &Conjunct, ctx: Option<&crate::Context>) -> Conjunct {
        let mut out = Conjunct::new();
        out.n_exist = self.n_exist;
        for e in &self.eqs {
            // e = 0 implied iff both e >= 0 and -e >= 0 are implied.
            if implied_by(context, self, e, true, ctx) {
                continue;
            }
            out.eqs.push(e.clone());
        }
        for e in &self.geqs {
            if implied_by(context, self, e, false, ctx) {
                continue;
            }
            out.geqs.push(e.clone());
        }
        out
    }

    /// Removes inequalities implied by the *other* constraints of this
    /// conjunct (redundancy elimination).
    pub fn remove_redundant(&mut self) {
        self.remove_redundant_in(None)
    }

    /// [`remove_redundant`](Self::remove_redundant) threading an optional
    /// shared [`Context`] through the implied-constraint tests.
    pub fn remove_redundant_in(&mut self, ctx: Option<&crate::Context>) {
        self.norm = false; // removal can orphan the trailing-exist trim
        let mut i = 0;
        while i < self.geqs.len() {
            // geqs[i] is redundant iff (rest ∧ geqs[i] <= -1) is unsat.
            let mut test = self.clone();
            let e = test.geqs.remove(i);
            let mut neg = e.negated();
            neg.add_constant(-1);
            test.add_geq(neg);
            if !test.is_satisfiable_in(ctx) {
                self.geqs.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Evaluates membership of a full assignment of the *free* variables:
    /// substitutes and decides the remaining existential system exactly.
    pub fn contains<F: Fn(Var) -> Option<i64>>(&self, lookup: F) -> bool {
        self.contains_in(lookup, None)
    }

    /// [`contains`](Self::contains) threading an optional shared [`Context`]
    /// through the final satisfiability decision.
    pub fn contains_in<F: Fn(Var) -> Option<i64>>(
        &self,
        lookup: F,
        ctx: Option<&crate::Context>,
    ) -> bool {
        let bound = self.bind(|v| if v.is_exist() { None } else { lookup(v) });
        bound.is_satisfiable_in(ctx)
    }
}

/// `true` if constraint `e` (eq if `as_eq`) is implied by `context` within
/// the world of `subject`'s remaining constraints.
fn implied_by(
    context: &Conjunct,
    _subject: &Conjunct,
    e: &LinExpr,
    as_eq: bool,
    ctx: Option<&crate::Context>,
) -> bool {
    // e >= 0 implied by context  iff  context ∧ (e <= -1) unsat.
    let implied_geq = |expr: &LinExpr| {
        let mut test = context.clone();
        let mut neg = expr.negated();
        neg.add_constant(-1);
        test.add_geq(neg);
        !test.is_satisfiable_in(ctx)
    };
    if as_eq {
        implied_geq(e) && implied_geq(&e.negated())
    } else {
        implied_geq(e)
    }
}

/// One step of the satisfiability decision procedure.
#[derive(Clone, Copy, Debug)]
enum SatStep {
    /// All variables eliminated; the conjunct is satisfiable.
    Done,
    /// Substitute the unit-coefficient variable of the given equality.
    SubstituteUnit(usize, Var),
    /// Reduce the given equality's coefficients with a symmetric-modulus
    /// substitution of the given variable.
    ModhatReduce(usize, Var),
    /// Fourier–Motzkin-eliminate the given inequality-only variable.
    Fme(Var),
}

/// Symmetric modulus: `modhat(a, m) ≡ a (mod m)` with result in
/// `(-m/2, m/2]`.
fn modhat(a: i64, m: i64) -> i64 {
    let r = modulo(a, m);
    if 2 * r > m {
        r - m
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(n: u32) -> Var {
        Var::In(n)
    }

    fn e(terms: &[(Var, i64)], c: i64) -> LinExpr {
        LinExpr::from_terms(terms.iter().copied(), c)
    }

    #[test]
    fn modhat_properties() {
        for m in 2..8i64 {
            for a in -20..20i64 {
                let r = modhat(a, m);
                assert_eq!(modulo(a - r, m), 0, "a={a} m={m}");
                assert!(2 * r <= m && 2 * r > -m, "a={a} m={m} r={r}");
            }
        }
        // Key property used by equality elimination.
        assert_eq!(modhat(4, 5), -1);
        assert_eq!(modhat(-4, 5), 1);
    }

    #[test]
    fn normalize_tightens_inequalities() {
        // 2x - 3 >= 0  =>  x - 2 >= 0 (x >= ceil(3/2) = 2)
        let mut c = Conjunct::new();
        c.add_geq(e(&[(iv(0), 2)], -3));
        assert_eq!(c.normalize(), Normalized::Consistent);
        assert_eq!(c.geqs()[0], e(&[(iv(0), 1)], -2));
    }

    #[test]
    fn normalize_detects_integer_infeasible_equality() {
        // 2x + 1 = 0 has no integer solution.
        let mut c = Conjunct::new();
        c.add_eq(e(&[(iv(0), 2)], 1));
        assert_eq!(c.normalize(), Normalized::False);
    }

    #[test]
    fn normalize_promotes_opposing_inequalities() {
        let mut c = Conjunct::new();
        c.add_geq(e(&[(iv(0), 1)], -5)); // x >= 5
        c.add_geq(e(&[(iv(0), -1)], 5)); // x <= 5
        assert_eq!(c.normalize(), Normalized::Consistent);
        assert_eq!(c.eqs().len(), 1);
        assert!(c.geqs().is_empty());
    }

    #[test]
    fn satisfiable_simple_box() {
        let mut c = Conjunct::new();
        c.add_bounds(iv(0), 1, 10);
        c.add_bounds(iv(1), 5, 5);
        assert!(c.is_satisfiable());
    }

    #[test]
    fn unsatisfiable_empty_interval() {
        let mut c = Conjunct::new();
        c.add_bounds(iv(0), 10, 1);
        assert!(!c.is_satisfiable());
    }

    #[test]
    fn omega_test_catches_integer_holes() {
        // 2x = y, 3x = z, y = 1, z = 1 -> no integer solution
        let mut c = Conjunct::new();
        c.add_eq(e(&[(iv(0), 2), (iv(1), -1)], 0));
        c.add_eq(e(&[(iv(1), 1)], -1));
        assert!(!c.is_satisfiable());
    }

    #[test]
    fn dark_shadow_inexact_case() {
        // Classic: 0 <= 3x - 2 and 3x <= 4 -> x in [2/3, 4/3] -> x = 1. Sat.
        let mut c = Conjunct::new();
        c.add_geq(e(&[(iv(0), 3)], -2));
        c.add_geq(e(&[(iv(0), -3)], 4));
        assert!(c.is_satisfiable());
        // 3 <= 3x - ... : 3x in [4, 5] -> no integer x. Unsat.
        let mut c2 = Conjunct::new();
        c2.add_geq(e(&[(iv(0), 3)], -4)); // 3x >= 4
        c2.add_geq(e(&[(iv(0), -3)], 5)); // 3x <= 5
        assert!(!c2.is_satisfiable());
    }

    #[test]
    fn stride_constraints() {
        // { x : 0 <= x <= 10, x ≡ 0 mod 4, x ≡ 0 mod 3 } -> x in {0, 12...}
        // within bounds only x = 0; adding x >= 1 makes it unsat.
        let mut c = Conjunct::new();
        c.add_bounds(iv(0), 1, 10);
        c.add_stride(LinExpr::var(iv(0)), 4);
        c.add_stride(LinExpr::var(iv(0)), 3);
        assert!(!c.is_satisfiable());
        let mut c2 = Conjunct::new();
        c2.add_bounds(iv(0), 0, 12);
        c2.add_stride(LinExpr::var(iv(0)), 4);
        c2.add_stride(LinExpr::var(iv(0)), 3);
        assert!(c2.is_satisfiable());
    }

    #[test]
    fn eliminate_exact_projection_block_distribution() {
        // { a : exists p : 25p <= a <= 25p + 24, 0 <= p <= 3 } == [0, 99]
        // when a ranges over, say, [-10, 110].
        let p = Var::Exist(0);
        let a = iv(0);
        let mut c = Conjunct::new();
        c.n_exist = 1;
        c.add_geq(e(&[(a, 1), (p, -25)], 0)); // a - 25p >= 0
        c.add_geq(e(&[(a, -1), (p, 25)], 24)); // 25p + 24 - a >= 0
        c.add_bounds(p, 0, 3);
        let pieces = c.eliminate_exact(p);
        assert!(!pieces.is_empty());
        for aval in -10..=110i64 {
            let member = pieces
                .iter()
                .any(|pc| pc.contains(|v| if v == a { Some(aval) } else { None }));
            assert_eq!(member, (0..=99).contains(&aval), "a = {aval}");
        }
    }

    #[test]
    fn contains_respects_existentials() {
        // { x : exists a : x = 2a } = even numbers
        let mut c = Conjunct::new();
        c.add_stride(LinExpr::var(iv(0)), 2);
        assert!(c.contains(|v| if v == iv(0) { Some(4) } else { None }));
        assert!(!c.contains(|v| if v == iv(0) { Some(5) } else { None }));
    }

    #[test]
    fn gist_removes_implied_constraints() {
        // gist (1 <= x <= 5) given (x >= 1) = (x <= 5)
        let mut g = Conjunct::new();
        g.add_bounds(iv(0), 1, 5);
        let mut ctx = Conjunct::new();
        ctx.add_geq(e(&[(iv(0), 1)], -1));
        let r = g.gist_given(&ctx);
        assert_eq!(r.geqs().len(), 1);
        assert_eq!(r.geqs()[0], e(&[(iv(0), -1)], 5));
    }

    #[test]
    fn remove_redundant_drops_loose_bound() {
        let mut c = Conjunct::new();
        c.add_geq(e(&[(iv(0), 1)], -5)); // x >= 5
        c.add_geq(e(&[(iv(0), 1)], 0)); // x >= 0 (redundant)
        c.remove_redundant();
        assert_eq!(c.geqs().len(), 1);
        assert_eq!(c.geqs()[0], e(&[(iv(0), 1)], -5));
    }

    #[test]
    fn merge_renumbers_existentials() {
        let mut a = Conjunct::new();
        a.add_stride(LinExpr::var(iv(0)), 2); // uses Exist(0)
        let mut b = Conjunct::new();
        b.add_stride(LinExpr::var(iv(0)), 3); // also Exist(0)
        a.merge(&b);
        assert_eq!(a.n_exist(), 2);
        // x must be divisible by 6 now.
        assert!(a.contains(|v| if v == iv(0) { Some(6) } else { None }));
        assert!(!a.contains(|v| if v == iv(0) { Some(4) } else { None }));
        assert!(!a.contains(|v| if v == iv(0) { Some(3) } else { None }));
    }

    #[test]
    fn equality_with_large_coeff_eliminated_exactly() {
        // 7x - 3y = 1, 1 <= x <= 10, 1 <= y <= 20: solutions (x,y) = (1,2), (4,9), (7,16)
        let mut c = Conjunct::new();
        c.add_eq(e(&[(iv(0), 7), (iv(1), -3)], -1));
        c.add_bounds(iv(0), 1, 10);
        c.add_bounds(iv(1), 1, 20);
        assert!(c.is_satisfiable());
        let mut sols = Vec::new();
        for x in 1..=10i64 {
            for y in 1..=20i64 {
                if c.contains(|v| match v {
                    Var::In(0) => Some(x),
                    Var::In(1) => Some(y),
                    _ => None,
                }) {
                    sols.push((x, y));
                }
            }
        }
        assert_eq!(sols, vec![(1, 2), (4, 9), (7, 16)]);
    }
}
